/**
 * @file
 * Chemistry-inspired UCCSD-style ansatz.
 *
 * A Trotterized unitary coupled-cluster ansatz is a product of Pauli
 * exponentials exp(-i theta_k / 2 * P_k) for excitation strings P_k.
 * We provide:
 *
 *  - pauliExponential(): the generic compilation of exp(-i theta/2 P)
 *    into basis changes + CNOT ladder + RZ (the standard construction),
 *  - uccsdCircuit(): a fixed excitation pool (Y single excitations on
 *    each qubit plus XY double excitations on a ring of pairs), giving
 *    the 3-parameter H2 and 8-parameter LiH ansaetze of Table 3.
 */

#ifndef OSCAR_ANSATZ_UCCSD_H
#define OSCAR_ANSATZ_UCCSD_H

#include <vector>

#include "src/quantum/circuit.h"
#include "src/quantum/pauli.h"

namespace oscar {

/**
 * Append exp(-i angle / 2 * P) to `circuit`, where the rotation angle
 * is coeff * params[param_index]. Identity strings are rejected.
 */
void appendPauliExponential(Circuit& circuit, const PauliString& pauli,
                            int param_index, double coeff = 1.0);

/** Excitation pool used by uccsdCircuit(), exposed for tests. */
std::vector<PauliString> uccsdExcitations(int num_qubits);

/** Number of parameters of uccsdCircuit(n). */
int uccsdNumParams(int num_qubits);

/**
 * Build the UCCSD-style ansatz: one parameter per excitation string,
 * applied to the |0...0> reference state.
 */
Circuit uccsdCircuit(int num_qubits);

} // namespace oscar

#endif // OSCAR_ANSATZ_UCCSD_H
