#include "src/ansatz/qaoa.h"

#include <stdexcept>

namespace oscar {

int
qaoaBetaIndex(int layer, int depth)
{
    if (layer < 0 || layer >= depth)
        throw std::out_of_range("qaoaBetaIndex: bad layer");
    return layer;
}

int
qaoaGammaIndex(int layer, int depth)
{
    if (layer < 0 || layer >= depth)
        throw std::out_of_range("qaoaGammaIndex: bad layer");
    return depth + layer;
}

Circuit
qaoaCircuit(const Graph& graph, int depth)
{
    if (depth < 1)
        throw std::invalid_argument("qaoaCircuit: depth must be >= 1");
    const int n = graph.numVertices();
    Circuit circuit(n, 2 * depth);

    for (int q = 0; q < n; ++q)
        circuit.append(Gate::h(q));

    for (int layer = 0; layer < depth; ++layer) {
        const int gi = qaoaGammaIndex(layer, depth);
        const int bi = qaoaBetaIndex(layer, depth);
        // U_C(gamma) = exp(-i gamma sum w (1 - ZZ)/2). Per edge, up to
        // global phase: exp(+i gamma w ZZ / 2) = RZZ(-w * gamma).
        for (const Edge& e : graph.edges())
            circuit.append(Gate::rzzParam(e.u, e.v, gi, -e.weight));
        // U_B(beta) = exp(-i beta X) per qubit = RX(2 beta).
        for (int q = 0; q < n; ++q)
            circuit.append(Gate::rxParam(q, bi, 2.0));
    }
    return circuit;
}

} // namespace oscar
