#include "src/ansatz/two_local.h"

#include <stdexcept>

namespace oscar {

int
twoLocalNumParams(int num_qubits, int reps)
{
    return num_qubits * (reps + 1);
}

Circuit
twoLocalCircuit(int num_qubits, int reps)
{
    if (reps < 0)
        throw std::invalid_argument("twoLocalCircuit: negative reps");
    Circuit circuit(num_qubits, twoLocalNumParams(num_qubits, reps));

    int param = 0;
    for (int q = 0; q < num_qubits; ++q)
        circuit.append(Gate::ryParam(q, param++));
    for (int rep = 0; rep < reps; ++rep) {
        for (int q = 0; q + 1 < num_qubits; ++q)
            circuit.append(Gate::cz(q, q + 1));
        for (int q = 0; q < num_qubits; ++q)
            circuit.append(Gate::ryParam(q, param++));
    }
    return circuit;
}

} // namespace oscar
