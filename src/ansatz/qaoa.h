/**
 * @file
 * QAOA ansatz builder.
 *
 * Convention (matches Farhi et al. and the closed-form p=1 expectation
 * used by the analytic backend): the cost function is
 *     C(z) = sum_{(u,v)} w_uv (1 - Z_u Z_v) / 2   (the cut value),
 * the layer unitaries are U_C(gamma) = exp(-i gamma C) and
 * U_B(beta) = exp(-i beta sum_q X_q), and the circuit is
 *     |s> = H^n |0>,  prod_l U_B(beta_l) U_C(gamma_l) |s>.
 *
 * The parameter vector is [beta_0..beta_{p-1}, gamma_0..gamma_{p-1}],
 * matching the (beta, gamma) grid-axis order of the paper's Table 1.
 *
 * VQA cost to MINIMIZE is <H_C> = -<C> (see maxcut.h), so landscapes
 * have the negative-valued wells shown in the paper's Fig. 2.
 */

#ifndef OSCAR_ANSATZ_QAOA_H
#define OSCAR_ANSATZ_QAOA_H

#include "src/graph/graph.h"
#include "src/quantum/circuit.h"

namespace oscar {

/** Index of beta_layer in the QAOA parameter vector. */
int qaoaBetaIndex(int layer, int depth);

/** Index of gamma_layer in the QAOA parameter vector. */
int qaoaGammaIndex(int layer, int depth);

/**
 * Build the depth-p QAOA circuit for a (possibly weighted) graph.
 * The circuit has 2p parameters ordered as documented above.
 */
Circuit qaoaCircuit(const Graph& graph, int depth);

} // namespace oscar

#endif // OSCAR_ANSATZ_QAOA_H
