#include "src/ansatz/uccsd.h"

#include <stdexcept>

namespace oscar {

void
appendPauliExponential(Circuit& circuit, const PauliString& pauli,
                       int param_index, double coeff)
{
    if (pauli.numQubits() != circuit.numQubits())
        throw std::invalid_argument(
            "appendPauliExponential: qubit count mismatch");
    if (pauli.isIdentity())
        throw std::invalid_argument(
            "appendPauliExponential: identity string");

    std::vector<int> active;
    for (int q = 0; q < pauli.numQubits(); ++q) {
        if (pauli.op(q) != PauliOp::I)
            active.push_back(q);
    }

    // Basis change: map each local X/Y to Z. For Y the change-of-basis
    // unitary is W = S*H (W Z W^dag = Y); we apply W^dag = H after Sdg.
    for (int q : active) {
        switch (pauli.op(q)) {
          case PauliOp::X:
            circuit.append(Gate::h(q));
            break;
          case PauliOp::Y:
            circuit.append(Gate::sdg(q));
            circuit.append(Gate::h(q));
            break;
          default:
            break;
        }
    }

    // Parity ladder onto the last active qubit.
    for (std::size_t i = 0; i + 1 < active.size(); ++i)
        circuit.append(Gate::cx(active[i], active[i + 1]));

    circuit.append(Gate::rzParam(active.back(), param_index, coeff));

    // Undo ladder and basis change.
    for (std::size_t i = active.size() - 1; i-- > 0;)
        circuit.append(Gate::cx(active[i], active[i + 1]));
    for (int q : active) {
        switch (pauli.op(q)) {
          case PauliOp::X:
            circuit.append(Gate::h(q));
            break;
          case PauliOp::Y:
            circuit.append(Gate::h(q));
            circuit.append(Gate::s(q));
            break;
          default:
            break;
        }
    }
}

std::vector<PauliString>
uccsdExcitations(int num_qubits)
{
    if (num_qubits < 2)
        throw std::invalid_argument("uccsdExcitations: need >= 2 qubits");
    std::vector<PauliString> pool;
    // Single excitations: Y on each qubit.
    for (int q = 0; q < num_qubits; ++q)
        pool.push_back(PauliString::single(num_qubits, q, PauliOp::Y));
    // Double excitations: XY on a ring of adjacent pairs.
    const int num_doubles = num_qubits == 2 ? 1 : num_qubits;
    for (int k = 0; k < num_doubles; ++k) {
        PauliString p(num_qubits);
        p.setOp(k, PauliOp::X);
        p.setOp((k + 1) % num_qubits, PauliOp::Y);
        pool.push_back(p);
    }
    return pool;
}

int
uccsdNumParams(int num_qubits)
{
    return static_cast<int>(uccsdExcitations(num_qubits).size());
}

Circuit
uccsdCircuit(int num_qubits)
{
    const auto pool = uccsdExcitations(num_qubits);
    Circuit circuit(num_qubits, static_cast<int>(pool.size()));
    for (std::size_t k = 0; k < pool.size(); ++k)
        appendPauliExponential(circuit, pool[k], static_cast<int>(k));
    return circuit;
}

} // namespace oscar
