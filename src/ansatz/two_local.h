/**
 * @file
 * Hardware-efficient "Two-local" ansatz (RY rotations + CZ
 * entanglement), mirroring Qiskit's TwoLocal circuit used in the
 * paper's Tables 2-4.
 *
 * Structure for `reps` repetitions on n qubits:
 *     [RY layer] ( [linear CZ chain] [RY layer] ) x reps
 * giving n * (reps + 1) parameters, one per RY gate, ordered layer by
 * layer then qubit by qubit. reps == 0 yields a product ansatz.
 */

#ifndef OSCAR_ANSATZ_TWO_LOCAL_H
#define OSCAR_ANSATZ_TWO_LOCAL_H

#include "src/quantum/circuit.h"

namespace oscar {

/** Number of parameters of twoLocalCircuit(n, reps). */
int twoLocalNumParams(int num_qubits, int reps);

/** Build the Two-local ansatz circuit. */
Circuit twoLocalCircuit(int num_qubits, int reps);

} // namespace oscar

#endif // OSCAR_ANSATZ_TWO_LOCAL_H
