/**
 * @file
 * Sherrington-Kirkpatrick spin-glass Hamiltonian.
 *
 * The SK model couples every spin pair with Gaussian couplings:
 *     H_SK = sum_{i<j} J_ij Z_i Z_j,   J_ij ~ N(0, 1) / sqrt(n).
 * The paper evaluates landscape reconstruction on SK instances both in
 * simulation (Table 2) and on Google Sycamore data (Fig. 5/6).
 */

#ifndef OSCAR_HAMILTONIAN_SK_MODEL_H
#define OSCAR_HAMILTONIAN_SK_MODEL_H

#include "src/common/rng.h"
#include "src/graph/graph.h"
#include "src/hamiltonian/pauli_sum.h"

namespace oscar {

/** Build H_SK from a coupling graph (typically skInstance()). */
PauliSum skHamiltonian(const Graph& couplings);

/** Convenience: draw an SK instance and build its Hamiltonian. */
PauliSum randomSkHamiltonian(int num_spins, Rng& rng);

} // namespace oscar

#endif // OSCAR_HAMILTONIAN_SK_MODEL_H
