/**
 * @file
 * MaxCut cost Hamiltonian.
 *
 * For a weighted graph G = (V, E) the cut of an assignment z in {0,1}^n
 * is C(z) = sum_{(u,v) in E} w_uv [z_u != z_v]. QAOA minimizes the
 * energy of
 *     H_C = sum_{(u,v) in E} (w_uv / 2) (Z_u Z_v - 1),
 * whose ground energy is -maxcut and whose expectation is -<cut>. This
 * matches the negative cost values plotted in the paper (Fig. 2).
 */

#ifndef OSCAR_HAMILTONIAN_MAXCUT_H
#define OSCAR_HAMILTONIAN_MAXCUT_H

#include "src/graph/graph.h"
#include "src/hamiltonian/pauli_sum.h"

namespace oscar {

/** Build H_C = sum (w/2)(Z_u Z_v - 1) for a graph. */
PauliSum maxcutHamiltonian(const Graph& graph);

/**
 * The identity offset of the MaxCut Hamiltonian:
 * -sum_e w_e / 2. expectation(H_C) = <ZZ-part> + offset.
 */
double maxcutOffset(const Graph& graph);

} // namespace oscar

#endif // OSCAR_HAMILTONIAN_MAXCUT_H
