/**
 * @file
 * Molecular electronic-structure Hamiltonians (H2 and LiH).
 *
 * The paper's Table 3 reconstructs VQE landscapes for the hydrogen
 * molecule (2 qubits) and lithium hydride (4 qubits).
 *
 * H2: the standard 2-qubit reduced Hamiltonian at bond length 0.735 A
 * (STO-3G, parity mapping with symmetry reduction), with the widely
 * used coefficients from O'Malley et al., PRX 6, 031007 (2016).
 *
 * LiH: the authors used a qubit-reduced LiH Hamiltonian produced by a
 * chemistry package we do not ship. We substitute a fixed 4-qubit
 * Pauli sum with the same structure (dominant diagonal Z/ZZ terms plus
 * weaker XX/YY exchange terms, coefficient magnitudes matching
 * published 4-qubit LiH reductions). Landscape-reconstruction behaviour
 * depends only on this structure, not on chemical accuracy; see
 * DESIGN.md substitution #4.
 */

#ifndef OSCAR_HAMILTONIAN_MOLECULES_H
#define OSCAR_HAMILTONIAN_MOLECULES_H

#include "src/hamiltonian/pauli_sum.h"

namespace oscar {

/** 2-qubit H2 Hamiltonian at equilibrium bond length (Hartree). */
PauliSum h2Hamiltonian();

/** 4-qubit LiH-structured Hamiltonian (see file comment). */
PauliSum lihHamiltonian();

} // namespace oscar

#endif // OSCAR_HAMILTONIAN_MOLECULES_H
