#include "src/hamiltonian/maxcut.h"

namespace oscar {

PauliSum
maxcutHamiltonian(const Graph& graph)
{
    PauliSum h(graph.numVertices());
    double offset = 0.0;
    for (const Edge& e : graph.edges()) {
        h.add(e.weight / 2.0,
              PauliString::zString(graph.numVertices(), {e.u, e.v}));
        offset -= e.weight / 2.0;
    }
    // Constant term: identity string with the accumulated offset.
    h.add(offset, PauliString(graph.numVertices()));
    return h;
}

double
maxcutOffset(const Graph& graph)
{
    double offset = 0.0;
    for (const Edge& e : graph.edges())
        offset -= e.weight / 2.0;
    return offset;
}

} // namespace oscar
