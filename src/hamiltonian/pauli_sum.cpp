#include "src/hamiltonian/pauli_sum.h"

#include <algorithm>
#include <stdexcept>

#include "src/quantum/kernels.h"

namespace oscar {

PauliSum::PauliSum(int num_qubits)
    : numQubits_(num_qubits)
{
    if (num_qubits < 1)
        throw std::invalid_argument("PauliSum: need at least one qubit");
}

void
PauliSum::add(double coeff, PauliString pauli)
{
    if (pauli.numQubits() != numQubits_)
        throw std::invalid_argument("PauliSum::add: qubit count mismatch");
    terms_.push_back({coeff, std::move(pauli)});
}

void
PauliSum::add(double coeff, const std::string& label)
{
    add(coeff, PauliString::fromLabel(label));
}

bool
PauliSum::isDiagonal() const
{
    return std::all_of(terms_.begin(), terms_.end(), [](const PauliTerm& t) {
        return t.pauli.isDiagonal();
    });
}

double
PauliSum::expectation(const Statevector& state) const
{
    return expectation(state, kernels::defaultKernelTable());
}

double
PauliSum::expectation(const Statevector& state,
                      const kernels::KernelTable& table) const
{
    if (isDiagonal())
        return state.expectationDiagonal(diagonalTable());
    double acc = 0.0;
    for (const PauliTerm& t : terms_)
        acc += t.coeff * state.expectation(t.pauli, table);
    return acc;
}

void
PauliSum::expectationBatch(const cplx* const* states, std::size_t count,
                           std::size_t dim,
                           const kernels::KernelTable& table,
                           double* out) const
{
    static const cplx kPhases[4] = {{1.0, 0.0},
                                    {0.0, 1.0},
                                    {-1.0, 0.0},
                                    {0.0, -1.0}};
    std::fill(out, out + count, 0.0);
    std::vector<double> term(count);
    for (const PauliTerm& t : terms_) {
        const PauliMasks m = t.pauli.masks();
        table.expectationPauliBatch(states, count, dim, m.flip, m.sign,
                                    kPhases[m.numY & 3], term.data());
        for (std::size_t s = 0; s < count; ++s)
            out[s] += t.coeff * term[s];
    }
}

double
PauliSum::expectation(const DensityMatrix& rho) const
{
    double acc = 0.0;
    for (const PauliTerm& t : terms_)
        acc += t.coeff * rho.expectation(t.pauli);
    return acc;
}

std::vector<double>
PauliSum::diagonalTable() const
{
    if (!isDiagonal())
        throw std::logic_error("PauliSum::diagonalTable: not diagonal");
    const std::size_t dim = std::size_t{1} << numQubits_;
    std::vector<double> table(dim, 0.0);
    for (const PauliTerm& t : terms_) {
        for (std::size_t z = 0; z < dim; ++z)
            table[z] += t.coeff * t.pauli.diagonalEigenvalue(z);
    }
    return table;
}

double
PauliSum::diagonalMinimum() const
{
    const auto table = diagonalTable();
    return *std::min_element(table.begin(), table.end());
}

} // namespace oscar
