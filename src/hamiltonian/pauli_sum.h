/**
 * @file
 * Weighted sums of Pauli strings (observables / cost Hamiltonians).
 *
 * Every problem in the library -- MaxCut, SK, molecular ground states --
 * is expressed as a PauliSum whose expectation value under the ansatz
 * state is the VQA cost function. Diagonal sums (all I/Z) additionally
 * expose a per-basis-state value table so executors can integrate the
 * cost directly against the output distribution.
 */

#ifndef OSCAR_HAMILTONIAN_PAULI_SUM_H
#define OSCAR_HAMILTONIAN_PAULI_SUM_H

#include <string>
#include <vector>

#include "src/quantum/density_matrix.h"
#include "src/quantum/pauli.h"
#include "src/quantum/statevector.h"

namespace oscar {

namespace kernels {
struct KernelTable;
}

/** One weighted Pauli string. */
struct PauliTerm
{
    double coeff;
    PauliString pauli;
};

/** A Hermitian observable H = sum_k c_k P_k. */
class PauliSum
{
  public:
    /** Zero observable on n qubits. */
    explicit PauliSum(int num_qubits);

    int numQubits() const { return numQubits_; }
    std::size_t numTerms() const { return terms_.size(); }
    const std::vector<PauliTerm>& terms() const { return terms_; }

    /** Add coeff * pauli. Qubit counts must match. */
    void add(double coeff, PauliString pauli);

    /** Add coeff * P where P is parsed from a label such as "ZZI". */
    void add(double coeff, const std::string& label);

    /** True when all terms are diagonal (I/Z only). */
    bool isDiagonal() const;

    /**
     * Exact expectation <psi|H|psi>. Diagonal sums integrate the
     * per-basis-state value table; general sums contract every term
     * through the SIMD-dispatched Pauli expectation kernel (the
     * process default table, or an explicit one for evaluators that
     * pin a kernel ISA).
     */
    double expectation(const Statevector& state) const;
    double expectation(const Statevector& state,
                       const kernels::KernelTable& table) const;

    /**
     * Term-by-term expectation of `count` states at once: for each
     * state s, out[s] = sum_k c_k <s|P_k|s>, contracted through the
     * batched Pauli kernel (one pass over all states per term).
     * Bit-identical per state to the term-by-term single-state path —
     * the batched kernel accumulates each state with the identical
     * operation sequence, and terms fold in the same order. Meant for
     * non-diagonal sums; diagonal sums should keep using the value
     * table (expectation() takes that shortcut, this does not).
     */
    void expectationBatch(const cplx* const* states, std::size_t count,
                          std::size_t dim,
                          const kernels::KernelTable& table,
                          double* out) const;

    /** Exact expectation Tr(rho H). */
    double expectation(const DensityMatrix& rho) const;

    /**
     * Per-basis-state values H(z) of a diagonal observable, indexed by
     * basis state. Requires isDiagonal().
     */
    std::vector<double> diagonalTable() const;

    /**
     * Minimum eigenvalue of a diagonal observable (brute force over
     * basis states). Requires isDiagonal().
     */
    double diagonalMinimum() const;

  private:
    int numQubits_;
    std::vector<PauliTerm> terms_;
};

} // namespace oscar

#endif // OSCAR_HAMILTONIAN_PAULI_SUM_H
