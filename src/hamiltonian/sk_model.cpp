#include "src/hamiltonian/sk_model.h"

#include "src/graph/generators.h"

namespace oscar {

PauliSum
skHamiltonian(const Graph& couplings)
{
    PauliSum h(couplings.numVertices());
    for (const Edge& e : couplings.edges()) {
        h.add(e.weight,
              PauliString::zString(couplings.numVertices(), {e.u, e.v}));
    }
    return h;
}

PauliSum
randomSkHamiltonian(int num_spins, Rng& rng)
{
    return skHamiltonian(skInstance(num_spins, rng));
}

} // namespace oscar
