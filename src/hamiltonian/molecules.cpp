#include "src/hamiltonian/molecules.h"

namespace oscar {

PauliSum
h2Hamiltonian()
{
    // O'Malley et al. (2016), bond length 0.735 A, coefficients in
    // Hartree. Qubit 0 is the left label character.
    // Five-term form; the Hartree-Fock state is |01> (qubit 0 = 1)
    // with E_HF ~ -1.8370 Ha, the exact ground energy is ~ -1.8573 Ha.
    PauliSum h(2);
    h.add(-1.052373245772859, "II");
    h.add(+0.39793742484318045, "ZI");
    h.add(-0.39793742484318045, "IZ");
    h.add(-0.01128010425623538, "ZZ");
    h.add(+0.18093119978423156, "XX");
    return h;
}

PauliSum
lihHamiltonian()
{
    // Fixed LiH-structured 4-qubit Pauli sum (see header comment):
    // strong identity/Z diagonal sector, weak exchange sector, values
    // patterned after published 4-qubit freeze-core LiH reductions at
    // bond length ~1.6 A.
    PauliSum h(4);
    h.add(-7.498946842056, "IIII");
    h.add(+0.161198952277, "ZIII");
    h.add(+0.161198952277, "IZII");
    h.add(-0.013636399947, "IIZI");
    h.add(-0.013636399947, "IIIZ");
    h.add(+0.121563842093, "ZZII");
    h.add(+0.011406349015, "ZIZI");
    h.add(+0.056002231505, "ZIIZ");
    h.add(+0.056002231505, "IZZI");
    h.add(+0.011406349015, "IZIZ");
    h.add(+0.084550326100, "IIZZ");
    h.add(+0.010462385860, "XXII");
    h.add(+0.010462385860, "YYII");
    h.add(+0.002930512350, "IIXX");
    h.add(+0.002930512350, "IIYY");
    h.add(+0.007859003266, "XXZZ");
    h.add(+0.007859003266, "YYZZ");
    h.add(+0.003428964440, "ZZXX");
    h.add(+0.003428964440, "ZZYY");
    return h;
}

} // namespace oscar
