#include "src/core/oscar.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

#include "src/cs/reconstructor.h"
#include "src/interp/bicubic.h"

namespace oscar {

PipelineEngine::PipelineEngine(ExecutionEngine* caller,
                               const OscarOptions& options)
{
    if (caller) {
        engine_ = caller;
        return;
    }
    if (options.distributed.numWorkers != 0) {
        // Any explicit setting — enabled (> 0) or force-disabled
        // (< 0, overriding OSCAR_DIST_WORKERS) — needs a dedicated
        // engine so the distributed options' lifetime is the pipeline
        // run; the shared serial engine must not inherit them.
        EngineOptions opts;
        opts.numThreads = options.numThreads;
        opts.dist = options.distributed;
        owned_ = std::make_unique<ExecutionEngine>(opts);
        engine_ = owned_.get();
    } else if (options.numThreads == 1) {
        engine_ = &ExecutionEngine::serial();
    } else {
        owned_ = std::make_unique<ExecutionEngine>(options.numThreads);
        engine_ = owned_.get();
    }
}

namespace {

/**
 * Adapt OscarOptions::progress to a SubmitOptions::onComplete: count
 * completed points (atomically -- streaming shards may complete
 * concurrently) and report (completed, total). The shared counter
 * outlives the submitting scope, so capture it by shared_ptr.
 */
SubmitOptions
progressSubmitOptions(const OscarOptions& options, std::size_t total)
{
    SubmitOptions submit;
    if (!options.progress)
        return submit;
    auto done = std::make_shared<std::atomic<std::size_t>>(0);
    submit.onComplete = [progress = options.progress, done,
                         total](std::size_t, double) {
        progress(done->fetch_add(1) + 1, total);
    };
    return submit;
}

OscarResult
finalize(const GridSpec& grid, SampleSet samples, const CsOptions& cs)
{
    OscarResult result;
    NdArray values = reconstructLandscape(grid.shape(), samples.indices,
                                          samples.values, cs);
    result.reconstructed = Landscape(grid, std::move(values));
    result.queriesUsed = samples.size();
    result.querySpeedup = static_cast<double>(grid.numPoints()) /
                          static_cast<double>(samples.size());
    result.execution = samples.stats;
    result.samples = std::move(samples);
    return result;
}

/**
 * Streaming pipeline: submit the sample batch as `shards` asynchronous
 * shards (in one global prefix-friendly submission order, so values
 * are bit-identical to the single-batch pipeline), and run fixed
 * FISTA warm-up budgets on already-finished samples while later
 * shards execute on the engine's workers.
 */
OscarResult
reconstructStreaming(const GridSpec& grid, CostFunction& cost,
                     const std::vector<std::size_t>& indices,
                     const OscarOptions& options, ExecutionEngine* engine)
{
    const std::size_t n = indices.size();
    const std::size_t shards =
        std::max<std::size_t>(1, std::min(options.streaming.shards, n));
    const std::vector<std::size_t> perm =
        prefixSubmissionOrder(grid, cost, indices);

    // Submit every shard up front; ordinals are reserved in shard
    // order, so the concatenated stream equals the one-batch stream.
    ExecutionEngine& eng = ExecutionEngine::engineOr(engine);
    std::vector<BatchHandle> handles;
    std::vector<std::size_t> shard_lo;
    handles.reserve(shards);
    // One progress adapter for all shards: the copies handed to each
    // submission share the completed-point counter, so the reported
    // count is monotonic over the whole sample batch.
    const SubmitOptions submit = progressSubmitOptions(options, n);
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t lo = s * n / shards;
        const std::size_t hi = (s + 1) * n / shards;
        shard_lo.push_back(lo);
        handles.push_back(eng.submitGenerated(
            cost, hi - lo,
            [&grid, &indices, &perm, lo](std::size_t i) {
                return grid.pointAt(indices[perm[lo + i]]);
            },
            submit));
    }

    SampleSet samples;
    samples.indices = indices;
    samples.values.assign(n, 0.0);

    // Incorporate shards strictly in submission order; between shards
    // run a fixed warm-up budget on everything received so far. The
    // schedule depends only on the options, never on completion
    // timing, so any thread count reproduces it bit for bit.
    std::vector<std::size_t> got_indices;
    std::vector<double> got_values;
    got_indices.reserve(n);
    got_values.reserve(n);
    const bool warmups = options.cs.solver == CsSolver::Fista &&
                         options.streaming.warmupIterations > 0;
    CsOptions warm_cs = options.cs;
    warm_cs.fista.maxIters = options.streaming.warmupIterations;
    NdArray warm;
    // The lambda continuation anneals ONCE across the whole chain of
    // warm-ups plus the final solve (each phase resumes the previous
    // phase's fraction), so the streamed solves do roughly the same
    // total work a single cold solve would -- just earlier.
    double warm_lambda = -1.0;
    bool have_warm = false;
    for (std::size_t s = 0; s < shards; ++s) {
        const std::vector<double> shard = handles[s].get();
        samples.stats += handles[s].stats();
        for (std::size_t i = 0; i < shard.size(); ++i) {
            const std::size_t pos = perm[shard_lo[s] + i];
            samples.values[pos] = shard[i];
            got_indices.push_back(indices[pos]);
            got_values.push_back(shard[i]);
        }
        if (warmups && s + 1 < shards) {
            CsSolveResult partial = csSolveFolded(
                grid.shape(), got_indices, got_values, warm_cs,
                have_warm ? &warm : nullptr, warm_lambda);
            warm = std::move(partial.coefficients);
            warm_lambda = partial.lambdaFraction;
            have_warm = true;
        }
    }

    // The final solve re-anneals briefly from above the warm-up
    // chain's resume point: the warm support was accumulated from
    // partial data and converges slowly at the final lambda, while a
    // short re-anneal re-sparsifies it and restores the cold solve's
    // convergence profile (empirically: same iteration count, same
    // NRMSE, but the warm head start is kept).
    double final_lambda = warm_lambda;
    if (have_warm && warm_lambda >= 0.0) {
        final_lambda =
            std::min(options.cs.fista.lambdaInitFraction,
                     std::max(4.0 * warm_lambda, 0.02));
    }
    CsSolveResult solve =
        csSolveFolded(grid.shape(), got_indices, got_values, options.cs,
                      have_warm ? &warm : nullptr, final_lambda);

    OscarResult result;
    result.reconstructed = Landscape(grid, std::move(solve.values));
    result.queriesUsed = n;
    result.querySpeedup = static_cast<double>(grid.numPoints()) /
                          static_cast<double>(n);
    result.execution = samples.stats;
    result.samples = std::move(samples);
    return result;
}

} // namespace

OscarResult
Oscar::reconstruct(const GridSpec& grid, CostFunction& cost,
                   const OscarOptions& options, ExecutionEngine* engine)
{
    const PipelineEngine eng(engine, options);
    cost.configureKernel(options.kernel);
    Rng rng(options.seed);
    const auto indices = chooseSampleIndices(
        grid.numPoints(), options.samplingFraction, rng);
    if (options.streaming.shards > 1)
        return reconstructStreaming(grid, cost, indices, options,
                                    eng.get());
    SampleSet samples =
        gatherCost(grid, cost, indices, eng.get(),
                   progressSubmitOptions(options, indices.size()));
    return finalize(grid, std::move(samples), options.cs);
}

OscarResult
Oscar::reconstructFromLandscape(const Landscape& truth,
                                const OscarOptions& options,
                                ExecutionEngine* engine)
{
    const PipelineEngine eng(engine, options);
    Rng rng(options.seed);
    SampleSet samples =
        sampleLandscape(truth, options.samplingFraction, rng, eng.get());
    return finalize(truth.grid(), std::move(samples), options.cs);
}

Landscape
Oscar::reconstructFromSamples(const GridSpec& grid,
                              const SampleSet& samples, const CsOptions& cs)
{
    NdArray values = reconstructLandscape(grid.shape(), samples.indices,
                                          samples.values, cs);
    return Landscape(grid, std::move(values));
}

OscarResult
Oscar::reconstructParallel(const GridSpec& grid,
                           std::vector<QpuDevice>& devices,
                           const std::vector<double>& fractions,
                           bool use_ncm, double ncm_train_fraction,
                           Rng& rng, const OscarOptions& options,
                           ExecutionEngine* engine)
{
    if (devices.empty())
        throw std::invalid_argument("reconstructParallel: no devices");

    const PipelineEngine eng(engine, options);
    for (QpuDevice& device : devices) {
        if (device.cost)
            device.cost->configureKernel(options.kernel);
    }
    const auto indices = chooseSampleIndices(
        grid.numPoints(), options.samplingFraction, rng);
    ParallelRunResult run =
        runParallelSampling(grid, devices, indices, rng,
                            options.parallelAssignment, fractions,
                            eng.get());

    // Train one NCM per non-reference device and transform its share.
    // Training batches count toward the run's execution stats too.
    BatchStats ncm_stats;
    SampleSet merged = run.deviceSamples(0);
    for (std::size_t d = 1; d < devices.size(); ++d) {
        SampleSet share = run.deviceSamples(d);
        if (share.size() == 0)
            continue;
        if (use_ncm) {
            const auto ncm = NoiseCompensationModel::trainOnDevices(
                grid, devices[0], devices[d], ncm_train_fraction, rng,
                eng.get(), &ncm_stats);
            share = ncm.transform(std::move(share));
        }
        merged.indices.insert(merged.indices.end(), share.indices.begin(),
                              share.indices.end());
        merged.values.insert(merged.values.end(), share.values.begin(),
                             share.values.end());
    }
    merged.stats = run.execStats;
    merged.stats += ncm_stats;
    return finalize(grid, std::move(merged), options.cs);
}

std::vector<double>
suggestInitialPoint(const Landscape& reconstructed, Optimizer& optimizer,
                    const std::vector<double>& start)
{
    InterpolatedLandscapeCost interp(reconstructed);
    const OptimizerResult run = optimizer.minimize(interp, start);
    return run.bestParams;
}

} // namespace oscar
