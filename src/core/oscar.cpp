#include "src/core/oscar.h"

#include <stdexcept>

#include "src/interp/bicubic.h"

namespace oscar {

namespace {

/**
 * Engine selection for one pipeline run: use the caller's engine when
 * provided, otherwise spin up a pool sized by options.numThreads
 * (1 = borrow the shared serial engine, no threads spawned).
 */
class PipelineEngine
{
  public:
    PipelineEngine(ExecutionEngine* caller, const OscarOptions& options)
    {
        if (caller) {
            engine_ = caller;
        } else if (options.numThreads == 1) {
            engine_ = &ExecutionEngine::serial();
        } else {
            owned_ = std::make_unique<ExecutionEngine>(options.numThreads);
            engine_ = owned_.get();
        }
    }

    ExecutionEngine* get() const { return engine_; }

  private:
    ExecutionEngine* engine_ = nullptr;
    std::unique_ptr<ExecutionEngine> owned_;
};

OscarResult
finalize(const GridSpec& grid, SampleSet samples, const CsOptions& cs)
{
    OscarResult result;
    NdArray values = reconstructLandscape(grid.shape(), samples.indices,
                                          samples.values, cs);
    result.reconstructed = Landscape(grid, std::move(values));
    result.queriesUsed = samples.size();
    result.querySpeedup = static_cast<double>(grid.numPoints()) /
                          static_cast<double>(samples.size());
    result.samples = std::move(samples);
    return result;
}

} // namespace

OscarResult
Oscar::reconstruct(const GridSpec& grid, CostFunction& cost,
                   const OscarOptions& options, ExecutionEngine* engine)
{
    const PipelineEngine eng(engine, options);
    cost.configureKernel(options.kernel);
    Rng rng(options.seed);
    SampleSet samples =
        sampleCost(grid, cost, options.samplingFraction, rng, eng.get());
    return finalize(grid, std::move(samples), options.cs);
}

OscarResult
Oscar::reconstructFromLandscape(const Landscape& truth,
                                const OscarOptions& options,
                                ExecutionEngine* engine)
{
    const PipelineEngine eng(engine, options);
    Rng rng(options.seed);
    SampleSet samples =
        sampleLandscape(truth, options.samplingFraction, rng, eng.get());
    return finalize(truth.grid(), std::move(samples), options.cs);
}

Landscape
Oscar::reconstructFromSamples(const GridSpec& grid,
                              const SampleSet& samples, const CsOptions& cs)
{
    NdArray values = reconstructLandscape(grid.shape(), samples.indices,
                                          samples.values, cs);
    return Landscape(grid, std::move(values));
}

OscarResult
Oscar::reconstructParallel(const GridSpec& grid,
                           std::vector<QpuDevice>& devices,
                           const std::vector<double>& fractions,
                           bool use_ncm, double ncm_train_fraction,
                           Rng& rng, const OscarOptions& options,
                           ExecutionEngine* engine)
{
    if (devices.empty())
        throw std::invalid_argument("reconstructParallel: no devices");

    const PipelineEngine eng(engine, options);
    for (QpuDevice& device : devices) {
        if (device.cost)
            device.cost->configureKernel(options.kernel);
    }
    const auto indices = chooseSampleIndices(
        grid.numPoints(), options.samplingFraction, rng);
    ParallelRunResult run =
        runParallelSampling(grid, devices, indices, rng,
                            Assignment::FractionSplit, fractions,
                            eng.get());

    // Train one NCM per non-reference device and transform its share.
    SampleSet merged = run.deviceSamples(0);
    for (std::size_t d = 1; d < devices.size(); ++d) {
        SampleSet share = run.deviceSamples(d);
        if (share.size() == 0)
            continue;
        if (use_ncm) {
            const auto ncm = NoiseCompensationModel::trainOnDevices(
                grid, devices[0], devices[d], ncm_train_fraction, rng,
                eng.get());
            share = ncm.transform(std::move(share));
        }
        merged.indices.insert(merged.indices.end(), share.indices.begin(),
                              share.indices.end());
        merged.values.insert(merged.values.end(), share.values.begin(),
                             share.values.end());
    }
    return finalize(grid, std::move(merged), options.cs);
}

std::vector<double>
suggestInitialPoint(const Landscape& reconstructed, Optimizer& optimizer,
                    const std::vector<double>& start)
{
    InterpolatedLandscapeCost interp(reconstructed);
    const OptimizerResult run = optimizer.minimize(interp, start);
    return run.bestParams;
}

} // namespace oscar
