/**
 * @file
 * OSCAR: cOmpressed Sensing based Cost lAndscape Reconstruction.
 *
 * Top-level pipelines tying the substrates together (paper Fig. 3):
 *
 *   1. parameter sampling   (landscape/sampler)
 *   2. circuit execution    (backend, parallel)
 *   3. reconstruction       (cs)
 *
 * plus the three debugging use cases built on top:
 *
 *   - noise-mitigation benchmarking via landscape metrics (Section 6),
 *   - optimizer pre-checking on the interpolated reconstruction
 *     (Section 7),
 *   - optimizer initialization from the reconstruction's minimizer
 *     (Section 8).
 */

#ifndef OSCAR_CORE_OSCAR_H
#define OSCAR_CORE_OSCAR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "src/backend/engine.h"
#include "src/backend/executor.h"
#include "src/cs/reconstructor.h"
#include "src/landscape/grid.h"
#include "src/landscape/landscape.h"
#include "src/landscape/sampler.h"
#include "src/optimize/optimizer.h"
#include "src/parallel/ncm.h"
#include "src/parallel/qpu.h"
#include "src/parallel/scheduler.h"

namespace oscar {

/** Configuration for an OSCAR reconstruction. */
struct OscarOptions
{
    /** Fraction of grid points to sample (paper: 3%-10% typical). */
    double samplingFraction = 0.1;

    /** Compressed-sensing solver configuration. */
    CsOptions cs;

    /** Seed for sample selection. */
    std::uint64_t seed = 42;

    /**
     * Worker threads for the execution phase (0 = hardware
     * concurrency). Results are bit-identical for any value: sample
     * selection is untouched and evaluation streams are keyed by
     * submission order, not by thread.
     */
    int numThreads = 1;

    /**
     * Compiled-circuit kernel tuning for the execution phase (prefix
     * checkpoint cache on/off, checkpoint memory budget). Applied to
     * the cost function (and every QPU device) at pipeline entry.
     * Bit-exact: toggling changes performance, never values.
     */
    KernelOptions kernel;
};

/** Outcome of an OSCAR reconstruction. */
struct OscarResult
{
    Landscape reconstructed;

    /** The measured grid points the reconstruction used. */
    SampleSet samples;

    /** Circuit executions consumed (== samples.size() here). */
    std::size_t queriesUsed = 0;

    /**
     * Grid-point ratio: full grid search cost / OSCAR cost. This is
     * the paper's headline "2x-20x (up to 100x) speedup" metric.
     */
    double querySpeedup = 0.0;
};

/** Compressed-sensing landscape reconstruction pipelines. */
class Oscar
{
  public:
    /**
     * Single-device pipeline: sample `fraction` of the grid uniformly
     * at random, execute the cost function there (batched across
     * `options.numThreads` workers, or on `engine` when provided),
     * reconstruct.
     */
    static OscarResult reconstruct(const GridSpec& grid, CostFunction& cost,
                                   const OscarOptions& options = {},
                                   ExecutionEngine* engine = nullptr);

    /**
     * Dataset replay: sample an already-computed landscape (e.g. the
     * hardware-dataset experiments of Section 4.3).
     */
    static OscarResult reconstructFromLandscape(
        const Landscape& truth, const OscarOptions& options = {},
        ExecutionEngine* engine = nullptr);

    /** Reconstruct from externally collected samples. */
    static Landscape reconstructFromSamples(const GridSpec& grid,
                                            const SampleSet& samples,
                                            const CsOptions& cs = {});

    /**
     * Multi-QPU pipeline (Section 5): split samples across devices
     * (device 0 is the reference), optionally transform every
     * non-reference device's values through an NCM trained on
     * `ncm_train_fraction` of the grid, then reconstruct.
     *
     * @param fractions per-device sample shares (must sum to 1)
     */
    static OscarResult reconstructParallel(
        const GridSpec& grid, std::vector<QpuDevice>& devices,
        const std::vector<double>& fractions, bool use_ncm,
        double ncm_train_fraction, Rng& rng,
        const OscarOptions& options = {},
        ExecutionEngine* engine = nullptr);
};

/**
 * Use case 3 (Section 8): reconstruct, interpolate, minimize on the
 * interpolant, and return the interpolant's minimizer as the initial
 * point for the real workflow. Requires a rank-2 grid.
 */
std::vector<double> suggestInitialPoint(const Landscape& reconstructed,
                                        Optimizer& optimizer,
                                        const std::vector<double>& start);

} // namespace oscar

#endif // OSCAR_CORE_OSCAR_H
