/**
 * @file
 * OSCAR: cOmpressed Sensing based Cost lAndscape Reconstruction.
 *
 * Top-level pipelines tying the substrates together (paper Fig. 3):
 *
 *   1. parameter sampling   (landscape/sampler)
 *   2. circuit execution    (backend, parallel)
 *   3. reconstruction       (cs)
 *
 * plus the three debugging use cases built on top:
 *
 *   - noise-mitigation benchmarking via landscape metrics (Section 6),
 *   - optimizer pre-checking on the interpolated reconstruction
 *     (Section 7),
 *   - optimizer initialization from the reconstruction's minimizer
 *     (Section 8).
 */

#ifndef OSCAR_CORE_OSCAR_H
#define OSCAR_CORE_OSCAR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/backend/engine.h"
#include "src/backend/executor.h"
#include "src/cs/reconstructor.h"
#include "src/landscape/grid.h"
#include "src/landscape/landscape.h"
#include "src/landscape/sampler.h"
#include "src/optimize/optimizer.h"
#include "src/parallel/ncm.h"
#include "src/parallel/qpu.h"
#include "src/parallel/scheduler.h"

namespace oscar {

/**
 * Execution/reconstruction overlap of the streaming pipeline.
 *
 * With shards > 1, Oscar::reconstruct splits the sample batch into
 * `shards` asynchronous submissions and interleaves reconstruction
 * with execution: after each completed shard it runs
 * `warmupIterations` FISTA iterations on all samples received so far
 * (warm-started from the previous partial solve), while later shards
 * keep executing on the engine's workers. The final solve is
 * warm-started from the accumulated coefficients.
 *
 * Determinism: the interleaving schedule is fixed by these two
 * numbers alone -- shards are incorporated in submission order and
 * every warm-up runs a fixed iteration budget -- so the result never
 * depends on timing or thread count. The measured samples themselves
 * are bit-identical to the non-streaming pipeline's; only the solver
 * trajectory (and hence the reconstruction) differs from shards = 1.
 * Warm-ups apply to the FISTA solver; under OMP the shards still
 * overlap execution, but the single solve runs at the end.
 */
struct StreamingOptions
{
    /** Execution shards; 1 = synchronous barrier (no overlap). */
    std::size_t shards = 1;

    /**
     * FISTA iterations run after each completed shard. The default is
     * small on purpose: the warm-up chain shares one global lambda
     * annealing schedule with the final solve, so a few iterations
     * per shard capture most of the head start, while larger budgets
     * only pay off when many cores keep the shards in flight long
     * enough to hide them.
     */
    std::size_t warmupIterations = 10;
};

/** Configuration for an OSCAR reconstruction. */
struct OscarOptions
{
    /** Fraction of grid points to sample (paper: 3%-10% typical). */
    double samplingFraction = 0.1;

    /** Compressed-sensing solver configuration. */
    CsOptions cs;

    /** Seed for sample selection. */
    std::uint64_t seed = 42;

    /**
     * Worker threads for the execution phase. Same convention and
     * same default as EngineOptions::numThreads: 0 = hardware
     * concurrency, 1 = serial (the shared serial engine; no threads
     * spawned). Results are bit-identical for any value: sample
     * selection is untouched and evaluation streams are keyed by
     * submission order, not by thread.
     */
    int numThreads = 0;

    /**
     * Compiled-circuit kernel tuning for the execution phase (prefix
     * checkpoint cache on/off, checkpoint memory budget). Applied to
     * the cost function (and every QPU device) at pipeline entry.
     * Bit-exact: toggling changes performance, never values.
     */
    KernelOptions kernel;

    /** Execution/reconstruction overlap (off by default). */
    StreamingOptions streaming;

    /**
     * Multi-process landscape sharding (src/dist). With
     * numWorkers > 0 the pipeline's engine forks that many
     * oscar-worker processes and routes execution shards of
     * distributable cost functions to them through the fault-tolerant
     * distributed task queue; OSCAR_DIST_WORKERS enables it
     * process-wide. Bit-identical to in-process execution for a fixed
     * kernel ISA -- worker count, completion order, and crash-driven
     * requeues never change values. Ignored when the caller passes
     * its own engine (that engine's own dist options govern).
     */
    dist::DistOptions distributed;

    /**
     * Execution-phase progress callback: (points completed, total
     * points to sample), invoked as sampled points finish. Purely
     * observational -- it never affects values or scheduling. Calls
     * are serialized within one submission batch but may interleave
     * across streaming shards; the completed count is monotonic
     * either way. Used by oscar-serve to stream Progress frames to
     * waiting clients.
     */
    std::function<void(std::size_t completed, std::size_t total)> progress;

    /**
     * Sample-to-device policy of reconstructParallel. FractionSplit
     * honours the caller's per-device fractions; PrefixPull makes
     * devices pull same-prefix task groups from a shared queue (each
     * device's PrefixCache stays hot, loads balance by simulated
     * speed) and ignores the fractions.
     */
    Assignment parallelAssignment = Assignment::FractionSplit;
};

/** Outcome of an OSCAR reconstruction. */
struct OscarResult
{
    Landscape reconstructed;

    /** The measured grid points the reconstruction used. */
    SampleSet samples;

    /** Circuit executions consumed (== samples.size() here). */
    std::size_t queriesUsed = 0;

    /**
     * Grid-point ratio: full grid search cost / OSCAR cost. This is
     * the paper's headline "2x-20x (up to 100x) speedup" metric.
     */
    double querySpeedup = 0.0;

    /**
     * Execution-phase counters: points completed/cancelled and the
     * kernel layer's prefix-cache hit/miss/eviction traffic, summed
     * over every batch the pipeline submitted (all devices in the
     * multi-QPU path). Makes cache effectiveness observable without a
     * debugger; purely informational, never affects values.
     */
    BatchStats execution;
};

/**
 * Engine selection for one pipeline run: use the caller's engine when
 * provided, otherwise spin up a pool sized by options.numThreads
 * (1 = borrow the shared serial engine, no threads spawned; 0 =
 * hardware concurrency, see OscarOptions::numThreads).
 */
class PipelineEngine
{
  public:
    PipelineEngine(ExecutionEngine* caller, const OscarOptions& options);

    ExecutionEngine* get() const { return engine_; }

  private:
    ExecutionEngine* engine_ = nullptr;
    std::unique_ptr<ExecutionEngine> owned_;
};

/** Compressed-sensing landscape reconstruction pipelines. */
class Oscar
{
  public:
    /**
     * Single-device pipeline: sample `fraction` of the grid uniformly
     * at random, execute the cost function there (batched across
     * `options.numThreads` workers, or on `engine` when provided),
     * reconstruct.
     */
    static OscarResult reconstruct(const GridSpec& grid, CostFunction& cost,
                                   const OscarOptions& options = {},
                                   ExecutionEngine* engine = nullptr);

    /**
     * Dataset replay: sample an already-computed landscape (e.g. the
     * hardware-dataset experiments of Section 4.3).
     */
    static OscarResult reconstructFromLandscape(
        const Landscape& truth, const OscarOptions& options = {},
        ExecutionEngine* engine = nullptr);

    /** Reconstruct from externally collected samples. */
    static Landscape reconstructFromSamples(const GridSpec& grid,
                                            const SampleSet& samples,
                                            const CsOptions& cs = {});

    /**
     * Multi-QPU pipeline (Section 5): split samples across devices
     * (device 0 is the reference), optionally transform every
     * non-reference device's values through an NCM trained on
     * `ncm_train_fraction` of the grid, then reconstruct.
     *
     * @param fractions per-device sample shares (must sum to 1)
     */
    static OscarResult reconstructParallel(
        const GridSpec& grid, std::vector<QpuDevice>& devices,
        const std::vector<double>& fractions, bool use_ncm,
        double ncm_train_fraction, Rng& rng,
        const OscarOptions& options = {},
        ExecutionEngine* engine = nullptr);
};

/**
 * Use case 3 (Section 8): reconstruct, interpolate, minimize on the
 * interpolant, and return the interpolant's minimizer as the initial
 * point for the real workflow. Requires a rank-2 grid.
 */
std::vector<double> suggestInitialPoint(const Landscape& reconstructed,
                                        Optimizer& optimizer,
                                        const std::vector<double>& start);

} // namespace oscar

#endif // OSCAR_CORE_OSCAR_H
