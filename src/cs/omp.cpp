#include "src/cs/omp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/common/linear_regression.h"

namespace oscar {

OmpResult
ompSolve(const Dct2d& dct, const std::vector<std::size_t>& sample_index,
         const std::vector<double>& sample_value, const OmpOptions& options)
{
    if (sample_index.size() != sample_value.size())
        throw std::invalid_argument("ompSolve: index/value size mismatch");
    if (sample_index.empty())
        throw std::invalid_argument("ompSolve: no samples");

    const std::size_t nr = dct.rows();
    const std::size_t nc = dct.cols();
    const std::size_t n = nr * nc;
    const std::size_t m = sample_index.size();

    std::size_t max_atoms = options.maxAtoms;
    if (max_atoms == 0)
        max_atoms = std::max<std::size_t>(1, m / 4);
    max_atoms = std::min({max_atoms, m, n});

    double y_norm = 0.0;
    for (double v : sample_value)
        y_norm += v * v;
    y_norm = std::sqrt(y_norm);
    if (y_norm == 0.0)
        return {NdArray({nr, nc}), 0, 0.0};

    std::vector<double> residual = sample_value;
    std::vector<std::size_t> selected;          // coefficient indices
    std::vector<std::vector<double>> columns;   // dictionary atoms at Omega
    std::vector<char> is_selected(n, 0);
    std::vector<double> coeffs;                 // current LS solution

    OmpResult result;
    result.coefficients = NdArray({nr, nc});

    for (std::size_t iter = 0; iter < max_atoms; ++iter) {
        // Correlations A^T r: scatter residual, forward DCT.
        NdArray scatter({nr, nc});
        for (std::size_t k = 0; k < m; ++k)
            scatter[sample_index[k]] = residual[k];
        const NdArray corr = dct.forward(scatter);

        std::size_t best = n;
        double best_abs = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            if (is_selected[j])
                continue;
            const double a = std::abs(corr[j]);
            if (a > best_abs) {
                best_abs = a;
                best = j;
            }
        }
        if (best == n || best_abs < 1e-14)
            break;

        // Materialize the new atom: IDCT2 of a unit coefficient,
        // gathered at the sample locations.
        NdArray unit({nr, nc});
        unit[best] = 1.0;
        const NdArray atom_full = dct.inverse(unit);
        std::vector<double> atom(m);
        for (std::size_t k = 0; k < m; ++k)
            atom[k] = atom_full[sample_index[k]];

        is_selected[best] = 1;
        selected.push_back(best);
        columns.push_back(std::move(atom));

        // Least squares on the selected set via normal equations.
        const std::size_t s = selected.size();
        std::vector<double> gram(s * s, 0.0);
        std::vector<double> rhs(s, 0.0);
        for (std::size_t i = 0; i < s; ++i) {
            for (std::size_t j = i; j < s; ++j) {
                double dot = 0.0;
                for (std::size_t k = 0; k < m; ++k)
                    dot += columns[i][k] * columns[j][k];
                gram[i * s + j] = dot;
                gram[j * s + i] = dot;
            }
            double dot = 0.0;
            for (std::size_t k = 0; k < m; ++k)
                dot += columns[i][k] * sample_value[k];
            rhs[i] = dot;
        }
        coeffs = solveDense(std::move(gram), std::move(rhs), s);

        // Update residual r = y - A_S c.
        double res_norm = 0.0;
        for (std::size_t k = 0; k < m; ++k) {
            double fit = 0.0;
            for (std::size_t i = 0; i < s; ++i)
                fit += columns[i][k] * coeffs[i];
            residual[k] = sample_value[k] - fit;
            res_norm += residual[k] * residual[k];
        }
        res_norm = std::sqrt(res_norm);
        result.atomsSelected = s;
        result.relativeResidual = res_norm / y_norm;
        if (result.relativeResidual < options.residualTolerance)
            break;
    }

    for (std::size_t i = 0; i < selected.size(); ++i)
        result.coefficients[selected[i]] = coeffs[i];
    return result;
}

} // namespace oscar
