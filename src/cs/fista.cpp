#include "src/cs/fista.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace oscar {

double
softThreshold(double x, double threshold)
{
    if (x > threshold)
        return x - threshold;
    if (x < -threshold)
        return x + threshold;
    return 0.0;
}

FistaResult
fistaSolve(const Dct2d& dct, const std::vector<std::size_t>& sample_index,
           const std::vector<double>& sample_value,
           const FistaOptions& options, const NdArray* warm_start,
           double warm_lambda_fraction)
{
    if (sample_index.size() != sample_value.size())
        throw std::invalid_argument("fistaSolve: index/value size mismatch");
    if (sample_index.empty())
        throw std::invalid_argument("fistaSolve: no samples");

    const std::size_t nr = dct.rows();
    const std::size_t nc = dct.cols();
    const std::size_t n = nr * nc;
    for (std::size_t idx : sample_index) {
        if (idx >= n)
            throw std::out_of_range("fistaSolve: sample index out of grid");
    }

    // A^T y: scatter measurements onto the grid, then forward DCT.
    NdArray scatter({nr, nc});
    for (std::size_t m = 0; m < sample_index.size(); ++m)
        scatter[sample_index[m]] = sample_value[m];
    NdArray aty = dct.forward(scatter);
    double max_aty = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        max_aty = std::max(max_aty, std::abs(aty[i]));
    if (max_aty == 0.0)
        return {NdArray({nr, nc}), 0, 0.0};

    const double lambda_final = options.lambdaFinalFraction * max_aty;
    // Cold starts anneal lambda from lambdaInitFraction (continuation
    // speeds up the early shrinkage). A warm start resumes the
    // caller's annealing state instead of re-shrinking the iterate:
    // at the handed-over lambda fraction when given, else directly at
    // the final objective (the iterate is assumed near-converged).
    double init_fraction = options.lambdaInitFraction;
    if (warm_start) {
        init_fraction = warm_lambda_fraction >= 0.0
                            ? warm_lambda_fraction
                            : options.lambdaFinalFraction;
    }
    double lambda = std::max(init_fraction * max_aty, lambda_final);

    NdArray s({nr, nc});       // current iterate
    if (warm_start) {
        if (warm_start->shape() != std::vector<std::size_t>{nr, nc})
            throw std::invalid_argument(
                "fistaSolve: warm start shape mismatch");
        s = *warm_start;
    }
    NdArray s_prev({nr, nc});  // previous iterate
    NdArray z = s;             // momentum point
    double t = 1.0;

    FistaResult result;
    for (std::size_t iter = 0; iter < options.maxIters; ++iter) {
        // Gradient of 1/2||A z - y||^2 at z: A^T (A z - y).
        NdArray x = dct.inverse(z);
        NdArray residual({nr, nc});
        double res_norm2 = 0.0;
        for (std::size_t m = 0; m < sample_index.size(); ++m) {
            const double r = x[sample_index[m]] - sample_value[m];
            residual[sample_index[m]] = r;
            res_norm2 += r * r;
        }
        NdArray grad = dct.forward(residual);

        // Proximal step (unit step size, ||A|| <= 1).
        s_prev = s;
        for (std::size_t i = 0; i < n; ++i)
            s[i] = softThreshold(z[i] - grad[i], lambda);

        // Nesterov momentum.
        const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t * t));
        const double momentum = (t - 1.0) / t_next;
        double change2 = 0.0, norm2 = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double d = s[i] - s_prev[i];
            change2 += d * d;
            norm2 += s[i] * s[i];
            z[i] = s[i] + momentum * d;
        }
        t = t_next;
        result.iterations = iter + 1;
        result.residualNorm = std::sqrt(res_norm2);

        // Lambda continuation toward the basis-pursuit limit.
        if ((iter + 1) % options.continuationEvery == 0 &&
            lambda > lambda_final) {
            lambda = std::max(lambda * 0.7, lambda_final);
            t = 1.0; // restart momentum after changing the objective
            continue;
        }

        if (lambda <= lambda_final && norm2 > 0.0 &&
            std::sqrt(change2 / norm2) < options.tolerance) {
            break;
        }
    }

    result.lambdaFraction = lambda / max_aty;
    result.coefficients = std::move(s);
    return result;
}

} // namespace oscar
