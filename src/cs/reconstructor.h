/**
 * @file
 * High-level compressed-sensing landscape reconstruction.
 *
 * This is the "Landscape Reconstruction" phase of the OSCAR workflow
 * (paper Fig. 3): given measured values at a subset of grid points,
 * recover the full grid. Grids of any rank are supported through the
 * paper's concatenation trick (Section 4.2.4): a rank-2k grid is
 * reshaped to 2-D by merging the first k and last k axes before the
 * 2-D DCT solve.
 */

#ifndef OSCAR_CS_RECONSTRUCTOR_H
#define OSCAR_CS_RECONSTRUCTOR_H

#include <cstddef>
#include <vector>

#include "src/common/ndarray.h"
#include "src/cs/fista.h"
#include "src/cs/omp.h"

namespace oscar {

/** Which L1 solver backs the reconstruction. */
enum class CsSolver
{
    Fista,
    Omp,
};

/** Reconstruction configuration. */
struct CsOptions
{
    CsSolver solver = CsSolver::Fista;
    FistaOptions fista;
    OmpOptions omp;
};

/**
 * Reconstruct a full 2-D landscape from samples.
 *
 * @param shape        grid shape {rows, cols}
 * @param sample_index flat row-major indices of measured points
 * @param sample_value measured values
 */
NdArray reconstructLandscape2d(const std::vector<std::size_t>& shape,
                               const std::vector<std::size_t>& sample_index,
                               const std::vector<double>& sample_value,
                               const CsOptions& options = {});

/**
 * Reconstruct a grid of arbitrary even rank 2k by reshaping to
 * (prod of first k extents) x (prod of last k extents). Rank-2 grids
 * pass through unchanged. The returned array has the original shape.
 */
NdArray reconstructLandscape(const std::vector<std::size_t>& shape,
                             const std::vector<std::size_t>& sample_index,
                             const std::vector<double>& sample_value,
                             const CsOptions& options = {});

/** A solve that also exposes its coefficient iterate (folded 2-D). */
struct CsSolveResult
{
    /** DCT coefficients in the folded (rows x cols) shape. */
    NdArray coefficients;

    /** Reconstructed values in the original grid shape. */
    NdArray values;

    /** Solver iterations executed. */
    std::size_t iterations = 0;

    /** FISTA continuation state at exit (FistaResult::lambdaFraction). */
    double lambdaFraction = -1.0;
};

/**
 * reconstructLandscape with the solver state exposed, so a caller can
 * chain solves: the streaming pipeline runs a few FISTA iterations
 * after each completed execution shard (warm-started from the
 * previous partial solve's coefficients and continuation state) and
 * hands the final solve the accumulated iterate. `warm_coefficients`
 * must be in the folded 2-D shape; warm state is honoured by the
 * FISTA solver only (OMP rebuilds its support greedily and starts
 * cold).
 */
CsSolveResult csSolveFolded(const std::vector<std::size_t>& shape,
                            const std::vector<std::size_t>& sample_index,
                            const std::vector<double>& sample_value,
                            const CsOptions& options = {},
                            const NdArray* warm_coefficients = nullptr,
                            double warm_lambda_fraction = -1.0);

/** The 2-D shape used internally for a given grid shape. */
std::vector<std::size_t> csFoldedShape(const std::vector<std::size_t>& shape);

} // namespace oscar

#endif // OSCAR_CS_RECONSTRUCTOR_H
