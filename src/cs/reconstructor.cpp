#include "src/cs/reconstructor.h"

#include <numeric>
#include <stdexcept>

namespace oscar {

std::vector<std::size_t>
csFoldedShape(const std::vector<std::size_t>& shape)
{
    if (shape.size() < 2 || shape.size() % 2 != 0)
        throw std::invalid_argument(
            "csFoldedShape: rank must be even and >= 2");
    const std::size_t half = shape.size() / 2;
    std::size_t rows = 1, cols = 1;
    for (std::size_t d = 0; d < half; ++d)
        rows *= shape[d];
    for (std::size_t d = half; d < shape.size(); ++d)
        cols *= shape[d];
    return {rows, cols};
}

NdArray
reconstructLandscape2d(const std::vector<std::size_t>& shape,
                       const std::vector<std::size_t>& sample_index,
                       const std::vector<double>& sample_value,
                       const CsOptions& options)
{
    if (shape.size() != 2)
        throw std::invalid_argument("reconstructLandscape2d: need rank 2");
    return csSolveFolded(shape, sample_index, sample_value, options)
        .values;
}

NdArray
reconstructLandscape(const std::vector<std::size_t>& shape,
                     const std::vector<std::size_t>& sample_index,
                     const std::vector<double>& sample_value,
                     const CsOptions& options)
{
    return csSolveFolded(shape, sample_index, sample_value, options)
        .values;
}

CsSolveResult
csSolveFolded(const std::vector<std::size_t>& shape,
              const std::vector<std::size_t>& sample_index,
              const std::vector<double>& sample_value,
              const CsOptions& options, const NdArray* warm_coefficients,
              double warm_lambda_fraction)
{
    const auto folded = csFoldedShape(shape);
    // Row-major flattening is invariant under the fold, so the flat
    // sample indices are reused directly.
    const Dct2d dct(folded[0], folded[1]);
    CsSolveResult result;
    if (options.solver == CsSolver::Fista) {
        FistaResult solve =
            fistaSolve(dct, sample_index, sample_value, options.fista,
                       warm_coefficients, warm_lambda_fraction);
        result.coefficients = std::move(solve.coefficients);
        result.iterations = solve.iterations;
        result.lambdaFraction = solve.lambdaFraction;
    } else {
        OmpResult solve = ompSolve(dct, sample_index, sample_value,
                                   options.omp);
        result.coefficients = std::move(solve.coefficients);
        result.iterations = solve.atomsSelected;
    }
    result.values = dct.inverse(result.coefficients).reshape(shape);
    return result;
}

} // namespace oscar
