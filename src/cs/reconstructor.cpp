#include "src/cs/reconstructor.h"

#include <numeric>
#include <stdexcept>

namespace oscar {

std::vector<std::size_t>
csFoldedShape(const std::vector<std::size_t>& shape)
{
    if (shape.size() < 2 || shape.size() % 2 != 0)
        throw std::invalid_argument(
            "csFoldedShape: rank must be even and >= 2");
    const std::size_t half = shape.size() / 2;
    std::size_t rows = 1, cols = 1;
    for (std::size_t d = 0; d < half; ++d)
        rows *= shape[d];
    for (std::size_t d = half; d < shape.size(); ++d)
        cols *= shape[d];
    return {rows, cols};
}

NdArray
reconstructLandscape2d(const std::vector<std::size_t>& shape,
                       const std::vector<std::size_t>& sample_index,
                       const std::vector<double>& sample_value,
                       const CsOptions& options)
{
    if (shape.size() != 2)
        throw std::invalid_argument("reconstructLandscape2d: need rank 2");
    const Dct2d dct(shape[0], shape[1]);
    NdArray coeffs;
    if (options.solver == CsSolver::Fista) {
        coeffs = fistaSolve(dct, sample_index, sample_value, options.fista)
                     .coefficients;
    } else {
        coeffs = ompSolve(dct, sample_index, sample_value, options.omp)
                     .coefficients;
    }
    return dct.inverse(coeffs);
}

NdArray
reconstructLandscape(const std::vector<std::size_t>& shape,
                     const std::vector<std::size_t>& sample_index,
                     const std::vector<double>& sample_value,
                     const CsOptions& options)
{
    const auto folded = csFoldedShape(shape);
    // Row-major flattening is invariant under the fold, so the flat
    // sample indices are reused directly.
    NdArray recon = reconstructLandscape2d(folded, sample_index,
                                           sample_value, options);
    return recon.reshape(shape);
}

} // namespace oscar
