/**
 * @file
 * Orthonormal DCT-II transforms (1-D and separable 2-D).
 *
 * The DCT is the sparsifying basis Psi of the paper's compressed
 * sensing formulation (Appendix A): VQA landscapes are periodic and
 * smooth, so their energy concentrates in a handful of low-frequency
 * DCT coefficients (Table 4). We use the orthonormal scaling so the
 * transform matrix satisfies Psi^T Psi = I, which makes the FISTA
 * gradient step exactly the adjoint transform and gives the
 * measurement operator unit spectral norm.
 *
 * Grid extents in this library are small (tens to hundreds per axis),
 * so the direct O(n^2) matrix transform with a precomputed cosine
 * table is both simple and fast enough; the 2-D transform is applied
 * separably (rows then columns).
 */

#ifndef OSCAR_CS_DCT_H
#define OSCAR_CS_DCT_H

#include <cstddef>
#include <vector>

#include "src/common/ndarray.h"

namespace oscar {

/** Precomputed orthonormal 1-D DCT-II of a fixed length. */
class Dct1d
{
  public:
    explicit Dct1d(std::size_t length);

    std::size_t length() const { return n_; }

    /** Forward DCT-II: coefficients from samples. */
    std::vector<double> forward(const std::vector<double>& x) const;

    /** Inverse (DCT-III with orthonormal scaling): samples from
     * coefficients. */
    std::vector<double> inverse(const std::vector<double>& c) const;

  private:
    std::size_t n_;
    std::vector<double> basis_; // basis_[k*n + j] = a_k cos(pi(2j+1)k/2n)
};

/** Separable 2-D orthonormal DCT over a (rows x cols) array. */
class Dct2d
{
  public:
    Dct2d(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rowT_.length(); }
    std::size_t cols() const { return colT_.length(); }

    /** Forward 2-D DCT of a (rows x cols) NdArray. */
    NdArray forward(const NdArray& x) const;

    /** Inverse 2-D DCT of a (rows x cols) coefficient array. */
    NdArray inverse(const NdArray& c) const;

  private:
    NdArray applySeparable(const NdArray& x, bool forward) const;

    Dct1d rowT_;
    Dct1d colT_;
};

} // namespace oscar

#endif // OSCAR_CS_DCT_H
