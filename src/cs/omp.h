/**
 * @file
 * Orthogonal Matching Pursuit over the 2-D DCT dictionary.
 *
 * OMP is the greedy alternative to FISTA's convex relaxation: it picks
 * the dictionary atom most correlated with the residual, re-solves the
 * least squares problem restricted to the selected atoms, and repeats.
 * The library ships both solvers so the ablation bench can compare
 * them (DESIGN.md "Ablations"); FISTA is the default because the
 * paper's landscapes are compressible rather than exactly sparse.
 */

#ifndef OSCAR_CS_OMP_H
#define OSCAR_CS_OMP_H

#include <cstddef>
#include <vector>

#include "src/common/ndarray.h"
#include "src/cs/dct.h"

namespace oscar {

/** OMP configuration. */
struct OmpOptions
{
    /** Maximum number of atoms to select (0 = m / 4 heuristic). */
    std::size_t maxAtoms = 0;

    /** Stop when ||residual|| / ||y|| drops below this. */
    double residualTolerance = 1e-6;
};

/** Result of an OMP solve. */
struct OmpResult
{
    /** DCT coefficients of the reconstruction (rows x cols). */
    NdArray coefficients;

    /** Number of atoms selected. */
    std::size_t atomsSelected = 0;

    /** Final relative residual norm. */
    double relativeResidual = 0.0;
};

/**
 * Solve the 2-D compressed-sensing problem greedily. Parameters match
 * fistaSolve().
 */
OmpResult ompSolve(const Dct2d& dct,
                   const std::vector<std::size_t>& sample_index,
                   const std::vector<double>& sample_value,
                   const OmpOptions& options = {});

} // namespace oscar

#endif // OSCAR_CS_OMP_H
