/**
 * @file
 * FISTA solver for the LASSO form of the basis-pursuit problem.
 *
 * OSCAR's reconstruction step (paper Eq. 7) is
 *     min ||s||_1   s.t.   y = C Psi s,
 * which we solve in its Lagrangian (LASSO) form
 *     min_s  lambda ||s||_1 + 1/2 ||A s - y||_2^2,
 * with A = Sample_Omega o IDCT2 applied implicitly (never
 * materialized). Because Psi is orthonormal and sampling selects rows,
 * ||A|| <= 1, so a unit gradient step is valid and FISTA needs no line
 * search. A geometric continuation schedule on lambda (standard for
 * basis pursuit) drives the solution toward the constrained problem.
 */

#ifndef OSCAR_CS_FISTA_H
#define OSCAR_CS_FISTA_H

#include <cstddef>
#include <vector>

#include "src/common/ndarray.h"
#include "src/cs/dct.h"

namespace oscar {

/** FISTA configuration. */
struct FistaOptions
{
    /** Maximum proximal-gradient iterations. */
    std::size_t maxIters = 800;

    /** Stop when the relative change of s drops below this. */
    double tolerance = 1e-6;

    /** Initial lambda as a fraction of max |A^T y|. */
    double lambdaInitFraction = 0.5;

    /** Final lambda as a fraction of max |A^T y|. */
    double lambdaFinalFraction = 1e-4;

    /** Iterations between lambda decay steps (factor 0.7). */
    std::size_t continuationEvery = 5;
};

/** Result of a FISTA solve. */
struct FistaResult
{
    /** DCT coefficients of the reconstruction (rows x cols). */
    NdArray coefficients;

    /** Number of iterations executed. */
    std::size_t iterations = 0;

    /** Final residual norm ||A s - y||_2. */
    double residualNorm = 0.0;

    /**
     * Final lambda as a fraction of max |A^T y| -- the continuation
     * state at exit. Feeding it back as `warm_lambda_fraction`
     * resumes the annealing schedule where it left off, so a chain of
     * partial solves (the streaming pipeline's warm-ups) anneals once
     * globally instead of restarting per phase.
     */
    double lambdaFraction = 0.0;
};

/**
 * Solve the 2-D compressed-sensing problem.
 *
 * @param dct          transform pair for the target grid shape
 * @param sample_index flat row-major indices of the measured grid points
 * @param sample_value measured landscape values (same length)
 * @param options      solver configuration
 * @param warm_start   optional initial coefficient iterate (rows x
 *                     cols). Used by the streaming reconstruction
 *                     pipeline to continue from iterations already run
 *                     on a sample subset while later execution shards
 *                     were still in flight; momentum restarts from the
 *                     given point. Null = cold start from zero.
 * @param warm_lambda_fraction
 *                     continuation state to resume from (a previous
 *                     solve's FistaResult::lambdaFraction). Negative =
 *                     anneal from lambdaInitFraction as usual; with a
 *                     warm start but no fraction the solve begins at
 *                     lambdaFinalFraction (the iterate is assumed
 *                     near-converged).
 */
FistaResult fistaSolve(const Dct2d& dct,
                       const std::vector<std::size_t>& sample_index,
                       const std::vector<double>& sample_value,
                       const FistaOptions& options = {},
                       const NdArray* warm_start = nullptr,
                       double warm_lambda_fraction = -1.0);

/** Soft-thresholding operator applied elementwise (exposed for tests). */
double softThreshold(double x, double threshold);

} // namespace oscar

#endif // OSCAR_CS_FISTA_H
