#include "src/cs/dct.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace oscar {

Dct1d::Dct1d(std::size_t length)
    : n_(length)
{
    if (length == 0)
        throw std::invalid_argument("Dct1d: zero length");
    basis_.resize(n_ * n_);
    const double pi = std::numbers::pi;
    for (std::size_t k = 0; k < n_; ++k) {
        const double a =
            k == 0 ? std::sqrt(1.0 / n_) : std::sqrt(2.0 / n_);
        for (std::size_t j = 0; j < n_; ++j) {
            basis_[k * n_ + j] =
                a * std::cos(pi * (2.0 * j + 1.0) * k / (2.0 * n_));
        }
    }
}

std::vector<double>
Dct1d::forward(const std::vector<double>& x) const
{
    assert(x.size() == n_);
    std::vector<double> c(n_, 0.0);
    for (std::size_t k = 0; k < n_; ++k) {
        double acc = 0.0;
        const double* row = &basis_[k * n_];
        for (std::size_t j = 0; j < n_; ++j)
            acc += row[j] * x[j];
        c[k] = acc;
    }
    return c;
}

std::vector<double>
Dct1d::inverse(const std::vector<double>& c) const
{
    assert(c.size() == n_);
    // Orthonormal: inverse is the transpose.
    std::vector<double> x(n_, 0.0);
    for (std::size_t k = 0; k < n_; ++k) {
        const double ck = c[k];
        if (ck == 0.0)
            continue;
        const double* row = &basis_[k * n_];
        for (std::size_t j = 0; j < n_; ++j)
            x[j] += row[j] * ck;
    }
    return x;
}

Dct2d::Dct2d(std::size_t rows, std::size_t cols)
    : rowT_(rows), colT_(cols)
{
}

NdArray
Dct2d::applySeparable(const NdArray& x, bool forward) const
{
    const std::size_t nr = rows();
    const std::size_t nc = cols();
    assert(x.rank() == 2 && x.dim(0) == nr && x.dim(1) == nc);

    NdArray out({nr, nc});

    // Transform along columns dimension (each row independently).
    std::vector<double> buf(nc);
    for (std::size_t r = 0; r < nr; ++r) {
        for (std::size_t c = 0; c < nc; ++c)
            buf[c] = x[r * nc + c];
        const auto t = forward ? colT_.forward(buf) : colT_.inverse(buf);
        for (std::size_t c = 0; c < nc; ++c)
            out[r * nc + c] = t[c];
    }
    // Transform along rows dimension (each column independently).
    std::vector<double> col(nr);
    for (std::size_t c = 0; c < nc; ++c) {
        for (std::size_t r = 0; r < nr; ++r)
            col[r] = out[r * nc + c];
        const auto t = forward ? rowT_.forward(col) : rowT_.inverse(col);
        for (std::size_t r = 0; r < nr; ++r)
            out[r * nc + c] = t[r];
    }
    return out;
}

NdArray
Dct2d::forward(const NdArray& x) const
{
    return applySeparable(x, true);
}

NdArray
Dct2d::inverse(const NdArray& c) const
{
    return applySeparable(c, false);
}

} // namespace oscar
