#include "src/store/landscape_store.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "src/common/fnv1a.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/archive.h"

namespace fs = std::filesystem;

namespace oscar {
namespace store {

namespace {

using dist::WireReader;
using dist::WireWriter;

/** Stream names inside a container. */
constexpr const char* kStreamMeta = "meta";
constexpr const char* kStreamGrid = "grid";
constexpr const char* kStreamSampleIdx = "samples.idx";
constexpr const char* kStreamSampleVal = "samples.val";
constexpr const char* kStreamRecon = "recon";
constexpr const char* kStreamKernelStats = "kstats";

/** Container file suffix (gc and totalBytes only touch these). */
constexpr const char* kContainerSuffix = ".oscar";

std::vector<std::uint8_t>
encodeDoubles(const std::vector<double>& values)
{
    WireWriter w;
    for (double v : values)
        w.f64(v);
    return w.take();
}

std::vector<double>
decodeDoubles(const std::vector<std::uint8_t>& bytes)
{
    if (bytes.size() % 8 != 0)
        throw ArchiveError("double stream size not a multiple of 8");
    WireReader r(bytes);
    std::vector<double> out(bytes.size() / 8);
    for (double& v : out)
        v = r.f64();
    return out;
}

std::vector<std::uint8_t>
encodeU64s(const std::vector<std::uint64_t>& values)
{
    WireWriter w;
    for (std::uint64_t v : values)
        w.u64(v);
    return w.take();
}

std::vector<std::uint64_t>
decodeU64s(const std::vector<std::uint8_t>& bytes)
{
    if (bytes.size() % 8 != 0)
        throw ArchiveError("u64 stream size not a multiple of 8");
    WireReader r(bytes);
    std::vector<std::uint64_t> out(bytes.size() / 8);
    for (std::uint64_t& v : out)
        v = r.u64();
    return out;
}

/** The named stream, or throw (caught by load() as a corrupt miss). */
const std::vector<std::uint8_t>&
need(const Archive& archive, const char* name)
{
    const std::vector<std::uint8_t>* s = archive.find(name);
    if (!s)
        throw ArchiveError(std::string("missing stream: ") + name);
    return *s;
}

} // namespace

std::uint64_t
gridHash(const GridSpec& grid)
{
    WireWriter w;
    encodeGridSpec(w, grid);
    return fnv1a(w.bytes());
}

std::uint64_t
configHash(double sampling_fraction, std::uint64_t seed)
{
    std::uint64_t h = kFnv1aOffsetBasis;
    h = fnv1aAppendU64(h, std::bit_cast<std::uint64_t>(sampling_fraction));
    h = fnv1aAppendU64(h, seed);
    return h;
}

void
encodeGridSpec(dist::WireWriter& w, const GridSpec& grid)
{
    w.u32(static_cast<std::uint32_t>(grid.rank()));
    for (const GridAxis& axis : grid.axes()) {
        w.f64(axis.lo);
        w.f64(axis.hi);
        w.u64(axis.count);
    }
}

GridSpec
decodeGridSpec(dist::WireReader& r)
{
    const std::uint32_t rank = r.u32();
    // 16 axes is far beyond any real VQA grid; the bound keeps a
    // crafted rank from driving a giant allocation.
    if (rank < 1 || rank > 16)
        throw dist::WireError("grid rank out of range");
    std::vector<GridAxis> axes;
    axes.reserve(rank);
    std::size_t points = 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
        GridAxis axis;
        axis.lo = r.f64();
        axis.hi = r.f64();
        axis.count = r.u64();
        if (axis.count < 1 || axis.count > (std::size_t{1} << 32))
            throw dist::WireError("grid axis count out of range");
        if (points > (std::size_t{1} << 32) / axis.count)
            throw dist::WireError("grid too large");
        points *= axis.count;
        axes.push_back(axis);
    }
    return GridSpec(std::move(axes));
}

LandscapeStore::LandscapeStore(StoreOptions options)
    : options_(std::move(options))
{
    if (options_.dir.empty())
        throw std::runtime_error(
            "LandscapeStore: store directory must be non-empty");
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    if (ec || !fs::is_directory(options_.dir))
        throw std::runtime_error("LandscapeStore: cannot create " +
                                 options_.dir + ": " + ec.message());
}

std::string
LandscapeStore::containerPath(const StoreKey& key) const
{
    char name[3 * 16 + 3 + 8];
    std::snprintf(name, sizeof(name), "%016llx-%016llx-%016llx",
                  static_cast<unsigned long long>(key.costId),
                  static_cast<unsigned long long>(key.gridHash),
                  static_cast<unsigned long long>(key.cfgHash));
    return (fs::path(options_.dir) / (std::string(name) + kContainerSuffix))
        .string();
}

std::optional<StoredLandscape>
LandscapeStore::load(const StoreKey& key)
{
    obs::ScopedSpan span(obs::SpanCategory::Store, "get", key.costId);
    if (obs::metricsEnabled()) {
        static obs::Counter& gets =
            obs::Registry::global().counter("store.gets");
        gets.add();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const std::string path = containerPath(key);
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) {
        stats_.misses++;
        return std::nullopt;
    }
    try {
        const Archive archive = readArchive(path);

        StoredLandscape entry;
        {
            WireReader r(need(archive, kStreamMeta));
            entry.samplingFraction = r.f64();
            entry.sampleSeed = r.u64();
            entry.queriesUsed = r.u64();
            entry.querySpeedup = r.f64();
            r.expectEnd();
        }
        {
            WireReader r(need(archive, kStreamGrid));
            entry.grid = decodeGridSpec(r);
            r.expectEnd();
        }
        {
            WireReader r(need(archive, kStreamKernelStats));
            entry.kernel = dist::decodeKernelStats(r);
            r.expectEnd();
        }
        entry.sampleIndices = decodeU64s(need(archive, kStreamSampleIdx));
        entry.sampleValues = decodeDoubles(need(archive, kStreamSampleVal));
        entry.reconstructed = decodeDoubles(need(archive, kStreamRecon));

        // The container must actually BE the entry its name claims:
        // a renamed or cross-linked file serving under the wrong key
        // would be a wrong value, the one failure mode worse than any
        // crash.
        if (gridHash(entry.grid) != key.gridHash ||
            configHash(entry.samplingFraction, entry.sampleSeed) !=
                key.cfgHash ||
            entry.reconstructed.size() != entry.grid.numPoints() ||
            entry.sampleValues.size() != entry.sampleIndices.size())
            throw ArchiveError("container does not match its key");

        // LRU recency: a hit makes this container the newest.
        fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
        stats_.hits++;
        if (obs::metricsEnabled()) {
            static obs::Counter& hits =
                obs::Registry::global().counter("store.hits");
            hits.add();
        }
        return entry;
    } catch (const ArchiveError&) {
        // Damaged container: unlink so the rewrite starts clean, and
        // report a miss -- the caller recomputes.
        fs::remove(path, ec);
        stats_.misses++;
        stats_.corruptMisses++;
        return std::nullopt;
    } catch (const dist::WireError&) {
        fs::remove(path, ec);
        stats_.misses++;
        stats_.corruptMisses++;
        return std::nullopt;
    }
}

void
LandscapeStore::put(const StoreKey& key, const StoredLandscape& entry)
{
    obs::ScopedSpan span(obs::SpanCategory::Store, "put", key.costId,
                         entry.reconstructed.size());
    if (obs::metricsEnabled()) {
        static obs::Counter& puts =
            obs::Registry::global().counter("store.puts");
        puts.add();
    }
    ArchiveWriter writer;
    {
        WireWriter w;
        w.f64(entry.samplingFraction);
        w.u64(entry.sampleSeed);
        w.u64(entry.queriesUsed);
        w.f64(entry.querySpeedup);
        writer.add(kStreamMeta, w.take());
    }
    {
        WireWriter w;
        encodeGridSpec(w, entry.grid);
        writer.add(kStreamGrid, w.take());
    }
    {
        WireWriter w;
        dist::encodeKernelStats(w, entry.kernel);
        writer.add(kStreamKernelStats, w.take());
    }
    writer.add(kStreamSampleIdx, encodeU64s(entry.sampleIndices));
    writer.add(kStreamSampleVal, encodeDoubles(entry.sampleValues));
    writer.add(kStreamRecon, encodeDoubles(entry.reconstructed));

    std::lock_guard<std::mutex> lock(mutex_);
    writer.write(containerPath(key));
    stats_.puts++;
    gcLocked();
}

std::size_t
LandscapeStore::gc()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gcLocked();
}

std::size_t
LandscapeStore::gcLocked()
{
    struct Container
    {
        fs::path path;
        std::uintmax_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Container> containers;
    std::uintmax_t total = 0;
    std::error_code ec;
    for (const auto& it : fs::directory_iterator(options_.dir, ec)) {
        if (!it.is_regular_file(ec))
            continue;
        const fs::path& p = it.path();
        if (p.extension() != kContainerSuffix)
            continue;
        Container c;
        c.path = p;
        c.bytes = it.file_size(ec);
        if (ec)
            continue;
        c.mtime = fs::last_write_time(p, ec);
        if (ec)
            continue;
        total += c.bytes;
        containers.push_back(std::move(c));
    }
    if (total <= options_.budgetBytes)
        return 0;
    std::sort(containers.begin(), containers.end(),
              [](const Container& a, const Container& b) {
                  return a.mtime < b.mtime;
              });
    std::size_t removed = 0;
    for (const Container& c : containers) {
        if (total <= options_.budgetBytes)
            break;
        if (fs::remove(c.path, ec) && !ec) {
            total -= c.bytes;
            removed++;
        }
    }
    stats_.containersRemoved += removed;
    return removed;
}

std::size_t
LandscapeStore::totalBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uintmax_t total = 0;
    std::error_code ec;
    for (const auto& it : fs::directory_iterator(options_.dir, ec)) {
        if (!it.is_regular_file(ec))
            continue;
        if (it.path().extension() != kContainerSuffix)
            continue;
        const std::uintmax_t bytes = it.file_size(ec);
        if (!ec)
            total += bytes;
    }
    return static_cast<std::size_t>(total);
}

StoreStats
LandscapeStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::string
resolveStoreDir(const std::string& configured)
{
    if (!configured.empty())
        return configured;
    const char* env = std::getenv("OSCAR_STORE_DIR");
    if (!env)
        return "";
    if (*env == '\0')
        throw std::runtime_error(
            "OSCAR_STORE_DIR: expected a non-empty directory path for "
            "the persistent landscape store, got \"\"");
    return env;
}

std::size_t
resolveStoreBudgetBytes(long long configured_mb)
{
    constexpr long long kMaxMb = 1048576; // 1 TiB
    if (configured_mb >= 0) {
        if (configured_mb < 1 || configured_mb > kMaxMb)
            throw std::runtime_error(
                "store budget: expected an LRU byte budget in MB "
                "(1..1048576), got " +
                std::to_string(configured_mb));
        return static_cast<std::size_t>(configured_mb) << 20;
    }
    const char* env = std::getenv("OSCAR_STORE_BUDGET_MB");
    if (!env)
        return std::size_t{1024} << 20;
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 1 || parsed > kMaxMb)
        throw std::runtime_error(
            "OSCAR_STORE_BUDGET_MB: expected an LRU byte budget in MB "
            "(1..1048576), got \"" +
            std::string(env) + "\"");
    return static_cast<std::size_t>(parsed) << 20;
}

} // namespace store
} // namespace oscar
