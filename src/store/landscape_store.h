/**
 * @file
 * Persistent, content-addressed landscape store.
 *
 * Every OSCAR reconstruction is a pure function of (cost spec, grid
 * spec, sampling config) per fixed kernel ISA and fusion plan -- so a
 * finished reconstruction can be memoized on disk and served again
 * bit-identically, without touching the execution pool. The store
 * keeps one archive container (src/store/archive.h) per key:
 *
 *   key = (CostSpec FNV-1a content hash      -- src/dist/wire.h,
 *          canonical GridSpec FNV-1a hash,
 *          sampling-config FNV-1a hash        -- fraction + seed)
 *
 * holding the sampled points, the reconstructed values, the kernel
 * stats, and the grid spec as named streams. All doubles are stored as
 * raw IEEE-754 bit patterns, so a warm hit returns exactly the bytes a
 * fresh computation would produce.
 *
 * Robustness contract: a container that is truncated, bit-flipped,
 * version-stale, or mid-write (temp file) NEVER crashes the caller or
 * yields a wrong value -- load() reports a miss (corrupt containers
 * are additionally unlinked so the rewrite is clean), and the caller
 * recomputes and rewrites.
 *
 * The store is bounded by an LRU byte budget: load() touches the
 * container's mtime, and gc() (run after every put) deletes
 * least-recently-used containers until the directory fits the budget.
 */

#ifndef OSCAR_STORE_LANDSCAPE_STORE_H
#define OSCAR_STORE_LANDSCAPE_STORE_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/backend/executor.h"
#include "src/dist/wire.h"
#include "src/landscape/grid.h"

namespace oscar {
namespace store {

/** Content address of one stored reconstruction. */
struct StoreKey
{
    std::uint64_t costId = 0;   ///< CostSpec content hash (dist wire)
    std::uint64_t gridHash = 0; ///< canonical GridSpec hash
    std::uint64_t cfgHash = 0;  ///< sampling config (fraction, seed)
};

/** One memoized reconstruction (the container's stream contents). */
struct StoredLandscape
{
    GridSpec grid;
    std::vector<std::uint64_t> sampleIndices;
    std::vector<double> sampleValues;
    /** Reconstructed value at every grid point (row-major). */
    std::vector<double> reconstructed;
    KernelStats kernel;
    double samplingFraction = 0.0;
    std::uint64_t sampleSeed = 0;
    std::uint64_t queriesUsed = 0;
    double querySpeedup = 0.0;
};

/** Monotonic store counters (safe to poll anytime). */
struct StoreStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        ///< includes corruptMisses
    std::uint64_t corruptMisses = 0; ///< load found a damaged container
    std::uint64_t puts = 0;
    std::uint64_t containersRemoved = 0; ///< by gc()
};

struct StoreOptions
{
    /** Container directory (created on demand). Must be non-empty. */
    std::string dir;

    /**
     * LRU byte budget over all containers; gc() evicts
     * least-recently-used containers beyond it.
     */
    std::size_t budgetBytes = std::size_t{1024} << 20;
};

/** Content-addressed on-disk archive of finished reconstructions. */
class LandscapeStore
{
  public:
    /**
     * Opens (and creates, if needed) the store directory.
     * @throws std::runtime_error when the directory cannot be created
     */
    explicit LandscapeStore(StoreOptions options);

    const std::string& dir() const { return options_.dir; }
    std::size_t budgetBytes() const { return options_.budgetBytes; }

    /**
     * Load the entry for `key`, or nullopt on a miss -- where "miss"
     * includes every form of container damage (see file comment). A
     * hit bumps the container's LRU recency.
     */
    std::optional<StoredLandscape> load(const StoreKey& key);

    /**
     * Publish an entry atomically (write-then-rename), then enforce
     * the byte budget via gc().
     * @throws ArchiveError when the container cannot be written
     */
    void put(const StoreKey& key, const StoredLandscape& entry);

    /**
     * Delete least-recently-used containers until the store fits the
     * byte budget; returns the number removed. Runs automatically
     * after every put(); public for explicit maintenance.
     */
    std::size_t gc();

    /** Bytes currently used by containers (directory scan). */
    std::size_t totalBytes() const;

    StoreStats stats() const;

    /** Container path of a key (for tests and tooling). */
    std::string containerPath(const StoreKey& key) const;

  private:
    std::size_t gcLocked();

    mutable std::mutex mutex_; ///< serializes directory access + stats

    StoreOptions options_;
    StoreStats stats_;
};

/** Canonical FNV-1a hash of a grid spec (axis bounds bits + counts). */
std::uint64_t gridHash(const GridSpec& grid);

/** FNV-1a hash of the sampling config (StoreKey::cfgHash). */
std::uint64_t configHash(double sampling_fraction, std::uint64_t seed);

/** Canonical GridSpec encoding (shared with the serve protocol). */
void encodeGridSpec(dist::WireWriter& w, const GridSpec& grid);

/**
 * Inverse of encodeGridSpec.
 * @throws dist::WireError on out-of-range axes
 */
GridSpec decodeGridSpec(dist::WireReader& r);

/**
 * Resolve a store directory: a non-empty `configured` wins, else the
 * OSCAR_STORE_DIR environment variable, else "" (store disabled). An
 * OSCAR_STORE_DIR that is set but empty throws std::runtime_error
 * listing the valid form -- like OSCAR_DIST_THREADS, a malformed
 * setting must fail loudly, never silently disable persistence.
 */
std::string resolveStoreDir(const std::string& configured);

/**
 * Resolve the LRU budget in bytes: `configured_mb` >= 1 wins; -1
 * consults OSCAR_STORE_BUDGET_MB (unset = 1024 MB). Malformed or
 * out-of-range values (valid: 1..1048576 MB) throw
 * std::runtime_error listing the valid form.
 */
std::size_t resolveStoreBudgetBytes(long long configured_mb);

} // namespace store
} // namespace oscar

#endif // OSCAR_STORE_LANDSCAPE_STORE_H
