#include "src/store/archive.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/crc32.h"
#include "src/common/packbits.h"
#include "src/dist/wire.h"

namespace oscar {
namespace store {

namespace {

using dist::WireReader;
using dist::WireWriter;

/** Hard cap on one stream's raw size (sanity against crafted sizes). */
constexpr std::uint64_t kMaxStreamBytes = std::uint64_t{1} << 32;

} // namespace

std::vector<std::uint8_t>
packBits(std::span<const std::uint8_t> raw)
{
    return packbits::pack(raw);
}

std::vector<std::uint8_t>
unpackBits(std::span<const std::uint8_t> packed, std::size_t raw_size)
{
    try {
        return packbits::unpack(packed, raw_size);
    } catch (const packbits::CodecError& e) {
        // Malformed compressed data inside a container is container
        // corruption; keep the store-layer error type.
        throw ArchiveError(e.what());
    }
}

const std::vector<std::uint8_t>*
Archive::find(const std::string& name) const
{
    for (const ArchiveStream& s : streams)
        if (s.name == name)
            return &s.bytes;
    return nullptr;
}

void
ArchiveWriter::add(std::string name, std::vector<std::uint8_t> bytes)
{
    if (name.empty())
        throw ArchiveError("stream name must be non-empty");
    if (bytes.size() > kMaxStreamBytes)
        throw ArchiveError("stream exceeds size limit");
    for (const ArchiveStream& s : streams_)
        if (s.name == name)
            throw ArchiveError("duplicate stream name: " + name);
    streams_.push_back({std::move(name), std::move(bytes)});
}

std::vector<std::uint8_t>
ArchiveWriter::serialize() const
{
    std::vector<std::uint8_t> out;
    {
        WireWriter w;
        w.u32(kArchiveMagic);
        w.u16(kArchiveVersion);
        w.u16(static_cast<std::uint16_t>(streams_.size()));
        out = w.take();
    }
    for (const ArchiveStream& s : streams_) {
        // Smallest of {raw, PackBits, plane-split PackBits}; ties keep
        // the simpler codec (shared logic in src/common/packbits.h).
        const packbits::Encoded enc = packbits::pickSmallest(s.bytes);
        const std::span<const std::uint8_t> payload =
            enc.codec == StreamCodec::Raw ? std::span(s.bytes)
                                          : std::span(enc.bytes);
        WireWriter w;
        w.str(s.name);
        w.u8(static_cast<std::uint8_t>(enc.codec));
        w.u64(s.bytes.size());
        w.u64(payload.size());
        w.u32(::oscar::crc32(s.bytes));
        const std::vector<std::uint8_t> head = w.take();
        out.insert(out.end(), head.begin(), head.end());
        out.insert(out.end(), payload.begin(), payload.end());
    }
    {
        WireWriter w;
        w.u32(kArchiveFooter);
        const std::vector<std::uint8_t> tail = w.take();
        out.insert(out.end(), tail.begin(), tail.end());
    }
    return out;
}

void
ArchiveWriter::write(const std::string& path) const
{
    const std::vector<std::uint8_t> bytes = serialize();
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw ArchiveError("cannot create " + tmp + ": " +
                           std::strerror(errno));
    const bool wrote =
        bytes.empty() ||
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    // Flush through to disk before publishing: rename() makes the
    // container visible, and a visible container must be complete.
    const bool flushed =
        wrote && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    if (!flushed) {
        std::remove(tmp.c_str());
        throw ArchiveError("cannot write " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw ArchiveError("cannot publish " + path + ": " +
                           std::strerror(errno));
    }
}

Archive
decodeArchive(std::span<const std::uint8_t> bytes)
{
    try {
        WireReader r(bytes);
        if (r.u32() != kArchiveMagic)
            throw ArchiveError("bad container magic");
        const std::uint16_t version = r.u16();
        if (version != kArchiveVersion)
            throw ArchiveError("unsupported container version " +
                               std::to_string(version));
        const std::uint16_t count = r.u16();
        Archive archive;
        archive.streams.reserve(count);
        for (std::uint16_t i = 0; i < count; ++i) {
            ArchiveStream s;
            s.name = r.str();
            const std::uint8_t codec = r.u8();
            if (codec > static_cast<std::uint8_t>(
                            StreamCodec::PlanePackBits))
                throw ArchiveError("unknown stream codec");
            const std::uint64_t raw_size = r.u64();
            const std::uint64_t stored_size = r.u64();
            const std::uint32_t crc = r.u32();
            if (raw_size > kMaxStreamBytes ||
                stored_size > r.remaining())
                throw ArchiveError("stream runs past container end");
            std::vector<std::uint8_t> stored(stored_size);
            for (std::uint64_t b = 0; b < stored_size; ++b)
                stored[b] = r.u8();
            try {
                s.bytes = packbits::decode(codec, stored, raw_size);
            } catch (const packbits::CodecError& e) {
                throw ArchiveError(e.what());
            }
            if (::oscar::crc32(s.bytes) != crc)
                throw ArchiveError("stream CRC mismatch: " + s.name);
            archive.streams.push_back(std::move(s));
        }
        if (r.u32() != kArchiveFooter)
            throw ArchiveError("bad container footer");
        r.expectEnd();
        return archive;
    } catch (const dist::WireError& e) {
        // Bounds overruns inside the reader mean a truncated or
        // mis-sized container; surface them as archive corruption.
        throw ArchiveError(e.what());
    }
}

Archive
readArchive(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw ArchiveError("cannot open " + path + ": " +
                           std::strerror(errno));
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        throw ArchiveError("cannot read " + path);
    return decodeArchive(bytes);
}

} // namespace store
} // namespace oscar
