#include "src/store/archive.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/crc32.h"
#include "src/dist/wire.h"

namespace oscar {
namespace store {

namespace {

using dist::WireReader;
using dist::WireWriter;

/** Hard cap on one stream's raw size (sanity against crafted sizes). */
constexpr std::uint64_t kMaxStreamBytes = std::uint64_t{1} << 32;

/**
 * Byte-plane split of an f64 (or any 8-byte-record) array: plane j
 * holds byte j of every record. High exponent bytes of smooth
 * landscape data barely change between neighbours, so the split turns
 * them into long runs PackBits can collapse.
 */
std::vector<std::uint8_t>
planeSplit(std::span<const std::uint8_t> raw)
{
    const std::size_t n = raw.size() / 8;
    std::vector<std::uint8_t> out(raw.size());
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            out[j * n + i] = raw[i * 8 + j];
    return out;
}

std::vector<std::uint8_t>
planeJoin(std::span<const std::uint8_t> planes)
{
    const std::size_t n = planes.size() / 8;
    std::vector<std::uint8_t> out(planes.size());
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            out[i * 8 + j] = planes[j * n + i];
    return out;
}

} // namespace

std::vector<std::uint8_t>
packBits(std::span<const std::uint8_t> raw)
{
    // Classic PackBits: control byte c in 0..127 announces c+1 literal
    // bytes; c in 129..255 announces 257-c repeats of the next byte;
    // 128 is unused. Repeat runs only pay off from length 3.
    std::vector<std::uint8_t> out;
    out.reserve(raw.size() / 2 + 16);
    std::size_t i = 0;
    while (i < raw.size()) {
        // Measure the run starting at i.
        std::size_t run = 1;
        while (i + run < raw.size() && run < 128 &&
               raw[i + run] == raw[i])
            ++run;
        if (run >= 3) {
            out.push_back(static_cast<std::uint8_t>(257 - run));
            out.push_back(raw[i]);
            i += run;
            continue;
        }
        // Literal run: until the next >=3 repeat or 128 bytes.
        std::size_t lit = 0;
        while (i + lit < raw.size() && lit < 128) {
            const std::size_t at = i + lit;
            if (at + 2 < raw.size() && raw[at] == raw[at + 1] &&
                raw[at] == raw[at + 2])
                break;
            ++lit;
        }
        out.push_back(static_cast<std::uint8_t>(lit - 1));
        out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(i),
                   raw.begin() + static_cast<std::ptrdiff_t>(i + lit));
        i += lit;
    }
    return out;
}

std::vector<std::uint8_t>
unpackBits(std::span<const std::uint8_t> packed, std::size_t raw_size)
{
    std::vector<std::uint8_t> out;
    out.reserve(raw_size);
    std::size_t i = 0;
    while (i < packed.size()) {
        const std::uint8_t c = packed[i++];
        if (c < 128) {
            const std::size_t lit = static_cast<std::size_t>(c) + 1;
            if (i + lit > packed.size())
                throw ArchiveError("packbits literal run truncated");
            out.insert(out.end(),
                       packed.begin() + static_cast<std::ptrdiff_t>(i),
                       packed.begin() +
                           static_cast<std::ptrdiff_t>(i + lit));
            i += lit;
        } else if (c > 128) {
            if (i >= packed.size())
                throw ArchiveError("packbits repeat run truncated");
            out.insert(out.end(), 257 - static_cast<std::size_t>(c),
                       packed[i++]);
        } else {
            throw ArchiveError("packbits control byte 128 is invalid");
        }
        if (out.size() > raw_size)
            throw ArchiveError("packbits output exceeds declared size");
    }
    if (out.size() != raw_size)
        throw ArchiveError("packbits output shorter than declared size");
    return out;
}

const std::vector<std::uint8_t>*
Archive::find(const std::string& name) const
{
    for (const ArchiveStream& s : streams)
        if (s.name == name)
            return &s.bytes;
    return nullptr;
}

void
ArchiveWriter::add(std::string name, std::vector<std::uint8_t> bytes)
{
    if (name.empty())
        throw ArchiveError("stream name must be non-empty");
    if (bytes.size() > kMaxStreamBytes)
        throw ArchiveError("stream exceeds size limit");
    for (const ArchiveStream& s : streams_)
        if (s.name == name)
            throw ArchiveError("duplicate stream name: " + name);
    streams_.push_back({std::move(name), std::move(bytes)});
}

std::vector<std::uint8_t>
ArchiveWriter::serialize() const
{
    std::vector<std::uint8_t> out;
    {
        WireWriter w;
        w.u32(kArchiveMagic);
        w.u16(kArchiveVersion);
        w.u16(static_cast<std::uint16_t>(streams_.size()));
        out = w.take();
    }
    for (const ArchiveStream& s : streams_) {
        // Pick the smallest encoding; ties keep the simpler codec.
        StreamCodec codec = StreamCodec::Raw;
        std::vector<std::uint8_t> stored;
        std::vector<std::uint8_t> packed = packBits(s.bytes);
        if (packed.size() < s.bytes.size()) {
            codec = StreamCodec::PackBits;
            stored = std::move(packed);
        }
        if (!s.bytes.empty() && s.bytes.size() % 8 == 0) {
            std::vector<std::uint8_t> planar =
                packBits(planeSplit(s.bytes));
            const std::size_t best = codec == StreamCodec::Raw
                                         ? s.bytes.size()
                                         : stored.size();
            if (planar.size() < best) {
                codec = StreamCodec::PlanePackBits;
                stored = std::move(planar);
            }
        }
        const std::span<const std::uint8_t> payload =
            codec == StreamCodec::Raw ? std::span(s.bytes)
                                      : std::span(stored);
        WireWriter w;
        w.str(s.name);
        w.u8(static_cast<std::uint8_t>(codec));
        w.u64(s.bytes.size());
        w.u64(payload.size());
        w.u32(::oscar::crc32(s.bytes));
        const std::vector<std::uint8_t> head = w.take();
        out.insert(out.end(), head.begin(), head.end());
        out.insert(out.end(), payload.begin(), payload.end());
    }
    {
        WireWriter w;
        w.u32(kArchiveFooter);
        const std::vector<std::uint8_t> tail = w.take();
        out.insert(out.end(), tail.begin(), tail.end());
    }
    return out;
}

void
ArchiveWriter::write(const std::string& path) const
{
    const std::vector<std::uint8_t> bytes = serialize();
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw ArchiveError("cannot create " + tmp + ": " +
                           std::strerror(errno));
    const bool wrote =
        bytes.empty() ||
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    // Flush through to disk before publishing: rename() makes the
    // container visible, and a visible container must be complete.
    const bool flushed =
        wrote && std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
    std::fclose(f);
    if (!flushed) {
        std::remove(tmp.c_str());
        throw ArchiveError("cannot write " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw ArchiveError("cannot publish " + path + ": " +
                           std::strerror(errno));
    }
}

Archive
decodeArchive(std::span<const std::uint8_t> bytes)
{
    try {
        WireReader r(bytes);
        if (r.u32() != kArchiveMagic)
            throw ArchiveError("bad container magic");
        const std::uint16_t version = r.u16();
        if (version != kArchiveVersion)
            throw ArchiveError("unsupported container version " +
                               std::to_string(version));
        const std::uint16_t count = r.u16();
        Archive archive;
        archive.streams.reserve(count);
        for (std::uint16_t i = 0; i < count; ++i) {
            ArchiveStream s;
            s.name = r.str();
            const std::uint8_t codec = r.u8();
            if (codec > static_cast<std::uint8_t>(
                            StreamCodec::PlanePackBits))
                throw ArchiveError("unknown stream codec");
            const std::uint64_t raw_size = r.u64();
            const std::uint64_t stored_size = r.u64();
            const std::uint32_t crc = r.u32();
            if (raw_size > kMaxStreamBytes ||
                stored_size > r.remaining())
                throw ArchiveError("stream runs past container end");
            std::vector<std::uint8_t> stored(stored_size);
            for (std::uint64_t b = 0; b < stored_size; ++b)
                stored[b] = r.u8();
            switch (static_cast<StreamCodec>(codec)) {
              case StreamCodec::Raw:
                if (stored.size() != raw_size)
                    throw ArchiveError("raw stream size mismatch");
                s.bytes = std::move(stored);
                break;
              case StreamCodec::PackBits:
                s.bytes = unpackBits(stored, raw_size);
                break;
              case StreamCodec::PlanePackBits:
                if (raw_size % 8 != 0)
                    throw ArchiveError(
                        "plane-split stream size not a multiple of 8");
                s.bytes = planeJoin(unpackBits(stored, raw_size));
                break;
            }
            if (::oscar::crc32(s.bytes) != crc)
                throw ArchiveError("stream CRC mismatch: " + s.name);
            archive.streams.push_back(std::move(s));
        }
        if (r.u32() != kArchiveFooter)
            throw ArchiveError("bad container footer");
        r.expectEnd();
        return archive;
    } catch (const dist::WireError& e) {
        // Bounds overruns inside the reader mean a truncated or
        // mis-sized container; surface them as archive corruption.
        throw ArchiveError(e.what());
    }
}

Archive
readArchive(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw ArchiveError("cannot open " + path + ": " +
                           std::strerror(errno));
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        throw ArchiveError("cannot read " + path);
    return decodeArchive(bytes);
}

} // namespace store
} // namespace oscar
