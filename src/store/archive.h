/**
 * @file
 * Many-named-streams archive container: the on-disk format of the
 * persistent landscape store.
 *
 * One container file holds any number of named byte streams (sampled
 * points, reconstructed values, kernel stats, grid spec, ...) behind a
 * versioned superblock, in the LTSmin archive style (archive.h /
 * archive_dir.c: a directory of named streams in one container).
 * Layout, all integers little-endian:
 *
 *   superblock:  [magic u32 "OSCA"][version u16][stream count u16]
 *   per stream:  [name u32+bytes][codec u8][raw size u64]
 *                [stored size u64][crc32 u32 of the RAW bytes]
 *                [stored bytes]
 *   footer:      [magic u32 "ENDA"]  -- and then end-of-file, exactly
 *
 * Streams are compressed independently (PackBits run-length coding,
 * optionally behind a byte-plane split that groups the slowly-varying
 * high bytes of f64 arrays into long runs); a stream whose compressed
 * form would not shrink is stored raw, so compression is always
 * size-bounded and bit-exact. The CRC is over the uncompressed bytes:
 * corruption is detected after decode, whichever codec was used.
 *
 * Any structural defect -- short file, bad magic, unknown version or
 * codec, size overrun, CRC mismatch, trailing bytes -- throws
 * ArchiveError; the landscape store treats that as a clean cache miss
 * (recompute and rewrite), never a wrong value.
 *
 * Publication is atomic: writers serialize into `path + ".tmp.<pid>"`
 * and rename(2) over the final name, so readers only ever observe
 * complete containers and a crash mid-write leaves the previous
 * version (or nothing) in place.
 */

#ifndef OSCAR_STORE_ARCHIVE_H
#define OSCAR_STORE_ARCHIVE_H

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/packbits.h"

namespace oscar {
namespace store {

/** Malformed or unreadable archive container. */
class ArchiveError : public std::runtime_error
{
  public:
    explicit ArchiveError(const std::string& what)
        : std::runtime_error("archive: " + what)
    {
    }
};

constexpr std::uint32_t kArchiveMagic = 0x4143534Fu;  // "OSCA"
constexpr std::uint32_t kArchiveFooter = 0x41444E45u; // "ENDA"

/**
 * Container format version. Readers reject any other value, so a
 * stale container from an older (or newer) build loads as a miss
 * instead of being misparsed.
 */
constexpr std::uint16_t kArchiveVersion = 1;

/**
 * Per-stream storage codec. The codec itself lives in
 * src/common/packbits.h, shared with the distributed wire layer's
 * compressed framing; the alias keeps the historical store-layer name
 * (and its on-disk byte values: Raw=0, PackBits=1, PlanePackBits=2).
 */
using StreamCodec = ::oscar::packbits::Codec;

/**
 * PackBits-compress a byte span (always decodable, may expand).
 * Delegates to the shared codec in src/common/packbits.h.
 */
std::vector<std::uint8_t> packBits(std::span<const std::uint8_t> raw);

/**
 * Inverse of packBits; `raw_size` is the expected output size.
 * Delegates to the shared codec in src/common/packbits.h.
 * @throws ArchiveError on malformed input or a size mismatch
 */
std::vector<std::uint8_t> unpackBits(std::span<const std::uint8_t> packed,
                                     std::size_t raw_size);

/** One named stream of a decoded container. */
struct ArchiveStream
{
    std::string name;
    std::vector<std::uint8_t> bytes; ///< decompressed
};

/** A decoded container: named streams in file order. */
struct Archive
{
    std::vector<ArchiveStream> streams;

    /** The named stream's bytes, or nullptr when absent. */
    const std::vector<std::uint8_t>* find(const std::string& name) const;
};

/**
 * Container builder. Streams are written in add() order; each picks
 * the smallest of {raw, PackBits, plane-split PackBits} at write time
 * (the choice is recorded per stream, so decoding is unambiguous).
 */
class ArchiveWriter
{
  public:
    void add(std::string name, std::vector<std::uint8_t> bytes);

    /** Serialize the container (superblock + streams + footer). */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Serialize and publish atomically: write `path + ".tmp.<pid>"`,
     * fsync, rename over `path`.
     * @throws ArchiveError on any I/O failure (the temp file is
     *         removed best-effort)
     */
    void write(const std::string& path) const;

  private:
    std::vector<ArchiveStream> streams_;
};

/**
 * Decode a serialized container.
 * @throws ArchiveError on any structural defect or CRC mismatch
 */
Archive decodeArchive(std::span<const std::uint8_t> bytes);

/**
 * Read and decode a container file.
 * @throws ArchiveError when the file is missing, unreadable, or
 *         corrupt in any way
 */
Archive readArchive(const std::string& path);

} // namespace store
} // namespace oscar

#endif // OSCAR_STORE_ARCHIVE_H
