/**
 * @file
 * Payload schemas of the oscar-serve protocol (wire v4).
 *
 * The always-on serving daemon fronts the execution pool behind the
 * existing OSCW framing (src/dist/wire.h) on a Unix socket. Three
 * frame types extend the protocol:
 *
 *   Request  (client -> serve)  one reconstruction / store query /
 *                               stats poll, tagged by the client
 *   Response (serve -> client)  the terminal answer to one Request,
 *                               echoing its tag
 *   Progress (serve -> client)  sampling progress of a Request that
 *                               asked for it (completed / total)
 *
 * A Reconstruct request carries the full problem: cost spec (circuit +
 * Hamiltonian + kernel options, content-addressed exactly like the
 * distributed task queue's), grid spec, sampling fraction and seed.
 * The daemon answers from the persistent landscape store when it can,
 * attaches the request to an identical in-flight computation when one
 * exists, and computes otherwise -- in every case the returned values
 * are bit-identical to a fresh Oscar::reconstruct of the same request
 * (per fixed kernel ISA and fusion plan), by the determinism contract
 * the store and the pool share.
 *
 * Requests are tagged (RequestMsg::tag, echoed by Response/Progress)
 * so one connection can pipeline several requests and match answers.
 */

#ifndef OSCAR_SERVE_PROTOCOL_H
#define OSCAR_SERVE_PROTOCOL_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/dist/wire.h"
#include "src/store/landscape_store.h"

namespace oscar {
namespace serve {

/** What a Request asks the daemon to do. */
enum class RequestKind : std::uint8_t
{
    /** Serve from store / in-flight dedupe / fresh computation. */
    Reconstruct = 0,
    /** Serve from store only; a miss answers Miss, never computes. */
    Fetch = 1,
    /** Return the daemon's counters. */
    Stats = 2,
};

/** One client request. */
struct RequestMsg
{
    RequestKind kind = RequestKind::Stats;

    /** Client-chosen id echoed by Response/Progress frames. */
    std::uint64_t tag = 0;

    // Reconstruct / Fetch body:
    dist::CostSpec cost;
    GridSpec grid;
    double samplingFraction = 0.1;
    std::uint64_t sampleSeed = 42;

    /** Reconstruct only: stream Progress frames while sampling. */
    bool wantProgress = false;
};

enum class ResponseStatus : std::uint8_t
{
    Ok = 0,    ///< landscape attached
    Miss = 1,  ///< Fetch found no stored entry
    Error = 2, ///< message attached
    Stats = 3, ///< counters attached
};

/** Where an Ok answer came from. */
enum class ServedFrom : std::uint8_t
{
    Computed = 0, ///< a fresh pool evaluation (possibly shared)
    Store = 1,    ///< the persistent landscape store
};

/** Daemon-lifetime counters (monotonic; Stats responses carry them). */
struct ServeCounters
{
    std::uint64_t requests = 0;     ///< requests decoded
    std::uint64_t responses = 0;    ///< responses sent
    std::uint64_t evaluations = 0;  ///< fresh pool computations started
    std::uint64_t storeHits = 0;    ///< requests answered from the store
    std::uint64_t dedupWaiters = 0; ///< requests attached to an
                                    ///< identical in-flight computation
    std::uint64_t errors = 0;       ///< Error responses sent

    /** The landscape store's own counters (zero when disabled). */
    store::StoreStats store;
};

/** One daemon answer. */
struct ResponseMsg
{
    ResponseStatus status = ResponseStatus::Error;
    std::uint64_t tag = 0;
    ServedFrom servedFrom = ServedFrom::Computed;
    std::string error;                 ///< Error only
    store::StoredLandscape landscape;  ///< Ok only
    ServeCounters counters;            ///< Stats only
};

/** Sampling progress of an in-flight Reconstruct. */
struct ProgressMsg
{
    std::uint64_t tag = 0;
    std::uint64_t completed = 0;
    std::uint64_t total = 0;
};

/**
 * Encode a request, resolving a KernelIsa::Auto cost to this host's
 * concrete ISA and stamping cost.costId (content hash) -- exactly like
 * the distributed pool does before serializing a cost spec, and for
 * the same reason: the hash must name the concrete computation.
 */
std::vector<std::uint8_t> encodeRequest(RequestMsg& msg);

/** @throws dist::WireError on any malformed payload */
RequestMsg decodeRequest(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encodeResponse(const ResponseMsg& msg);
ResponseMsg decodeResponse(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encodeProgress(const ProgressMsg& msg);
ProgressMsg decodeProgress(std::span<const std::uint8_t> payload);

/** Stored-landscape body shared by Ok responses (and tests). */
void encodeStoredLandscape(dist::WireWriter& w,
                           const store::StoredLandscape& entry);
store::StoredLandscape decodeStoredLandscape(dist::WireReader& r);

/**
 * The store key a request addresses. Requires cost.costId to be
 * stamped (encodeRequest, or an explicit encodeCostSpec).
 */
store::StoreKey storeKeyFor(const RequestMsg& msg);

/**
 * Resolve the daemon's Unix socket path: a non-empty `configured`
 * wins, else the OSCAR_SERVE_SOCKET environment variable, else
 * /tmp/oscar-serve.sock. A set-but-invalid OSCAR_SERVE_SOCKET (empty,
 * or longer than a sockaddr_un::sun_path can hold) throws
 * std::runtime_error listing the valid form -- malformed settings
 * fail loudly, never fall back silently.
 */
std::string resolveSocketPath(const std::string& configured);

} // namespace serve
} // namespace oscar

#endif // OSCAR_SERVE_PROTOCOL_H
