/**
 * @file
 * The oscar-serve daemon: a long-running coordinator that fronts the
 * execution pool behind the OSCW wire protocol on a Unix socket.
 *
 * Topology:
 *
 *   oscar_client ----+
 *   oscar_client ----+--> oscar-serve --> LandscapeStore (disk)
 *   oscar_client ----+         |
 *                              +--> Oscar::reconstruct
 *                                   (thread pool / ProcessPool workers)
 *
 * One poll(2) event loop owns the listening socket and every client
 * connection; requests are parsed there and handed to a small pool of
 * job threads that probe the store and run reconstructions. Three
 * serving guarantees:
 *
 *  - Determinism: a served value -- from the store, from a shared
 *    in-flight computation, or freshly computed -- is bit-identical
 *    to a fresh Oscar::reconstruct of the same request (per fixed
 *    kernel ISA and fusion plan).
 *  - Dedupe: identical cost specs in flight share ONE pool
 *    evaluation; later identical requests attach as waiters and all
 *    receive the same bits. Store hits never touch the pool.
 *  - Fairness: request admission to the job pool is round-robin over
 *    client connections, so one chatty client cannot starve others.
 *
 * Shutdown is graceful: stop() (async-signal-safe, callable from a
 * SIGTERM handler) stops accepting work; in-flight and admitted jobs
 * finish and their responses are delivered before run() returns.
 */

#ifndef OSCAR_SERVE_SERVER_H
#define OSCAR_SERVE_SERVER_H

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/oscar.h"
#include "src/serve/protocol.h"
#include "src/store/landscape_store.h"

namespace oscar {
namespace serve {

struct ServeOptions
{
    /** Unix socket path (see resolveSocketPath). Must be non-empty. */
    std::string socketPath;

    /** Landscape store directory; "" disables persistence. */
    std::string storeDir;

    /** Store LRU byte budget (resolveStoreBudgetBytes). */
    std::size_t storeBudgetBytes = std::size_t{1024} << 20;

    /** Concurrent reconstruction jobs (>= 1). */
    int jobThreads = 2;

    /**
     * Base pipeline options for every computed request. The request
     * overrides samplingFraction, seed, kernel, and progress; thread
     * count, distribution, CS solver tuning etc. are the daemon's.
     */
    OscarOptions oscar;

    /** listen(2) backlog. */
    int backlog = 16;
};

/** The serving daemon. Construct (binds + listens), then run(). */
class ServeServer
{
  public:
    /**
     * Opens the store (when configured), binds the Unix socket
     * (removing a stale socket file first), and starts the job
     * threads. @throws std::runtime_error when the socket or store
     * cannot be set up.
     */
    explicit ServeServer(ServeOptions options);

    /** stop()s, drains, closes, and removes the socket file. */
    ~ServeServer();

    ServeServer(const ServeServer&) = delete;
    ServeServer& operator=(const ServeServer&) = delete;

    /**
     * Serve until stop(): accept clients, parse requests, dispatch
     * jobs, deliver responses. Returns after the graceful drain.
     */
    void run();

    /**
     * Request shutdown. Async-signal-safe (an atomic flag plus one
     * write(2) to the wake pipe), so a SIGTERM handler may call it.
     */
    void stop();

    ServeCounters counters() const;

    /**
     * Prometheus text exposition answered to MetricsRequest frames:
     * the process-wide obs::Registry merged across any distributed
     * workers, plus the authoritative ServeCounters (and store
     * counters) rendered as `oscar_serve_*` / `oscar_store_*` series
     * -- so scraped values always match what counters() reports, even
     * with OSCAR_METRICS off.
     */
    std::string metricsText() const;

    const std::string& socketPath() const { return options_.socketPath; }

    /** The landscape store, or nullptr when persistence is off. */
    store::LandscapeStore* store() { return store_.get(); }

  private:
    struct Conn;
    struct Job;

    void acceptClients();
    void readClient(const std::shared_ptr<Conn>& conn);
    void closeConn(const std::shared_ptr<Conn>& conn);
    void handleRequest(const std::shared_ptr<Conn>& conn, RequestMsg req);
    void enqueueLocked(const std::shared_ptr<Conn>& conn,
                       const std::shared_ptr<Job>& job);
    void jobLoop();
    std::shared_ptr<Job> nextJob();
    void execute(const std::shared_ptr<Job>& job);
    void respond(const std::shared_ptr<Job>& job, ResponseMsg base,
                 bool unregister);
    void broadcastProgress(const std::shared_ptr<Job>& job,
                           std::size_t completed, std::size_t total);
    void drainAndJoin();

    ServeOptions options_;
    std::unique_ptr<store::LandscapeStore> store_;
    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::atomic<bool> stop_{false};

    mutable std::mutex m_;
    std::condition_variable cv_;
    bool draining_ = false;
    std::uint64_t nextConnId_ = 1;
    /** Live connections, by id. Mutated only by the run() thread. */
    std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;
    /** Round-robin admission queue: conns with pending jobs. */
    std::deque<std::shared_ptr<Conn>> admission_;
    /** In-flight deduped computations by store key. */
    std::map<std::array<std::uint64_t, 3>, std::shared_ptr<Job>> inflight_;
    ServeCounters counters_;
    std::vector<std::thread> jobThreads_;
};

} // namespace serve
} // namespace oscar

#endif // OSCAR_SERVE_SERVER_H
