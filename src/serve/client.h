/**
 * @file
 * Synchronous client for the oscar-serve daemon.
 *
 * One ServeClient is one Unix-socket connection. call() sends a
 * Request frame and blocks until the matching Response arrives,
 * invoking the caller's progress callback for every Progress frame
 * tagged with this request on the way. Thread-compatible, not
 * thread-safe: use one client per thread (the daemon is built for
 * many concurrent connections).
 */

#ifndef OSCAR_SERVE_CLIENT_H
#define OSCAR_SERVE_CLIENT_H

#include <cstdint>
#include <functional>
#include <string>

#include "src/dist/wire.h"
#include "src/serve/protocol.h"

namespace oscar {
namespace serve {

class ServeClient
{
  public:
    /**
     * Connect to the daemon's Unix socket.
     * @throws std::runtime_error when the connection fails
     */
    explicit ServeClient(const std::string& socket_path);

    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    /**
     * Send one request and wait for its Response. A zero msg.tag is
     * replaced by a fresh per-connection tag; Progress frames for the
     * request are forwarded to `on_progress` (when set) as they
     * arrive. @throws std::runtime_error when the daemon hangs up,
     * dist::WireError on protocol corruption.
     */
    ResponseMsg call(
        RequestMsg msg,
        const std::function<void(const ProgressMsg&)>& on_progress = {});

    /**
     * Fetch the daemon's live Prometheus-style metrics exposition
     * (one MetricsRequest / MetricsResponse round-trip). Same error
     * behavior as call().
     */
    std::string metrics();

  private:
    int fd_ = -1;
    std::uint64_t nextTag_ = 1;
    dist::FrameDecoder decoder_;
};

} // namespace serve
} // namespace oscar

#endif // OSCAR_SERVE_CLIENT_H
