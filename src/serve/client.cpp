#include "src/serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace oscar {
namespace serve {

namespace {

bool
writeAll(int fd, const std::uint8_t* data, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

} // namespace

ServeClient::ServeClient(const std::string& socket_path)
{
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        throw std::runtime_error(std::string("oscar-client: socket: ") +
                                 std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
        ::close(fd_);
        throw std::runtime_error("oscar-client: bad socket path: \"" +
                                 socket_path + "\"");
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(fd_);
        throw std::runtime_error("oscar-client: cannot connect to " +
                                 socket_path + ": " + reason +
                                 " (is oscar-serve running?)");
    }
}

ServeClient::~ServeClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

ResponseMsg
ServeClient::call(RequestMsg msg,
                  const std::function<void(const ProgressMsg&)>& on_progress)
{
    if (msg.tag == 0)
        msg.tag = nextTag_++;
    const std::uint64_t tag = msg.tag;
    const std::vector<std::uint8_t> frame =
        dist::encodeFrame(dist::FrameType::Request, encodeRequest(msg));
    if (!writeAll(fd_, frame.data(), frame.size()))
        throw std::runtime_error("oscar-client: send failed "
                                 "(daemon hung up?)");

    for (;;) {
        while (auto got = decoder_.next()) {
            switch (got->type) {
              case dist::FrameType::Response: {
                ResponseMsg response = decodeResponse(got->payload);
                if (response.tag == tag)
                    return response;
                // A response to an abandoned earlier tag: drop it.
                break;
              }
              case dist::FrameType::Progress: {
                const ProgressMsg progress = decodeProgress(got->payload);
                if (progress.tag == tag && on_progress)
                    on_progress(progress);
                break;
              }
              default:
                throw dist::WireError(
                    "unexpected frame type from oscar-serve");
            }
        }
        std::uint8_t buf[65536];
        const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
        if (r == 0)
            throw std::runtime_error(
                "oscar-client: daemon closed the connection");
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(std::string("oscar-client: recv: ") +
                                     std::strerror(errno));
        }
        decoder_.feed(buf, static_cast<std::size_t>(r));
    }
}

std::string
ServeClient::metrics()
{
    dist::MetricsRequestMsg req;
    req.tag = nextTag_++;
    const std::vector<std::uint8_t> frame = dist::encodeFrame(
        dist::FrameType::MetricsRequest, dist::encodeMetricsRequest(req));
    if (!writeAll(fd_, frame.data(), frame.size()))
        throw std::runtime_error("oscar-client: send failed "
                                 "(daemon hung up?)");
    for (;;) {
        while (auto got = decoder_.next()) {
            switch (got->type) {
              case dist::FrameType::MetricsResponse: {
                dist::MetricsResponseMsg resp =
                    dist::decodeMetricsResponse(got->payload);
                if (resp.tag == req.tag)
                    return std::move(resp.text);
                break; // stale tag: drop
              }
              case dist::FrameType::Response:
              case dist::FrameType::Progress:
                break; // leftovers of an abandoned call(): drop
              default:
                throw dist::WireError(
                    "unexpected frame type from oscar-serve");
            }
        }
        std::uint8_t buf[65536];
        const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
        if (r == 0)
            throw std::runtime_error(
                "oscar-client: daemon closed the connection");
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(std::string("oscar-client: recv: ") +
                                     std::strerror(errno));
        }
        decoder_.feed(buf, static_cast<std::size_t>(r));
    }
}

} // namespace serve
} // namespace oscar
