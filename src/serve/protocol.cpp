#include "src/serve/protocol.h"

#include <sys/un.h>

#include <cstdlib>
#include <stdexcept>

#include "src/quantum/kernels.h"

namespace oscar {
namespace serve {

namespace {

using dist::WireError;
using dist::WireReader;
using dist::WireWriter;

/** Embed a byte blob as one length-prefixed field. */
void
blob(WireWriter& w, const std::vector<std::uint8_t>& bytes)
{
    w.u64(bytes.size());
    for (std::uint8_t b : bytes)
        w.u8(b);
}

std::vector<std::uint8_t>
readBlob(WireReader& r)
{
    const std::uint64_t n = r.u64();
    if (n > r.remaining())
        throw WireError("embedded blob runs past payload end");
    std::vector<std::uint8_t> bytes(n);
    for (std::uint64_t i = 0; i < n; ++i)
        bytes[i] = r.u8();
    return bytes;
}

void
encodeCounters(WireWriter& w, const ServeCounters& c)
{
    w.u64(c.requests);
    w.u64(c.responses);
    w.u64(c.evaluations);
    w.u64(c.storeHits);
    w.u64(c.dedupWaiters);
    w.u64(c.errors);
    w.u64(c.store.hits);
    w.u64(c.store.misses);
    w.u64(c.store.corruptMisses);
    w.u64(c.store.puts);
    w.u64(c.store.containersRemoved);
}

ServeCounters
decodeCounters(WireReader& r)
{
    ServeCounters c;
    c.requests = r.u64();
    c.responses = r.u64();
    c.evaluations = r.u64();
    c.storeHits = r.u64();
    c.dedupWaiters = r.u64();
    c.errors = r.u64();
    c.store.hits = r.u64();
    c.store.misses = r.u64();
    c.store.corruptMisses = r.u64();
    c.store.puts = r.u64();
    c.store.containersRemoved = r.u64();
    return c;
}

} // namespace

std::vector<std::uint8_t>
encodeRequest(RequestMsg& msg)
{
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(msg.kind));
    w.u64(msg.tag);
    if (msg.kind != RequestKind::Stats) {
        // The concrete computation, not "whatever this host picks":
        // Auto resolves before hashing so the content address is the
        // same one the distributed pool would stamp.
        msg.cost.kernel.isa =
            kernels::kernelTable(msg.cost.kernel.isa).isa;
        blob(w, dist::encodeCostSpec(msg.cost));
        store::encodeGridSpec(w, msg.grid);
        w.f64(msg.samplingFraction);
        w.u64(msg.sampleSeed);
        w.u8(msg.wantProgress ? 1 : 0);
    }
    return w.take();
}

RequestMsg
decodeRequest(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    RequestMsg msg;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(RequestKind::Stats))
        throw WireError("unknown request kind");
    msg.kind = static_cast<RequestKind>(kind);
    msg.tag = r.u64();
    if (msg.kind != RequestKind::Stats) {
        msg.cost = dist::decodeCostSpec(readBlob(r));
        msg.grid = store::decodeGridSpec(r);
        msg.samplingFraction = r.f64();
        msg.sampleSeed = r.u64();
        if (!(msg.samplingFraction > 0.0) || msg.samplingFraction > 1.0)
            throw WireError("sampling fraction out of (0, 1]");
        msg.wantProgress = r.u8() != 0;
    }
    r.expectEnd();
    return msg;
}

void
encodeStoredLandscape(dist::WireWriter& w,
                      const store::StoredLandscape& entry)
{
    store::encodeGridSpec(w, entry.grid);
    w.f64(entry.samplingFraction);
    w.u64(entry.sampleSeed);
    w.u64(entry.queriesUsed);
    w.f64(entry.querySpeedup);
    dist::encodeKernelStats(w, entry.kernel);
    w.u64(entry.sampleIndices.size());
    for (std::uint64_t idx : entry.sampleIndices)
        w.u64(idx);
    for (double v : entry.sampleValues)
        w.f64(v);
    w.u64(entry.reconstructed.size());
    for (double v : entry.reconstructed)
        w.f64(v);
}

store::StoredLandscape
decodeStoredLandscape(dist::WireReader& r)
{
    store::StoredLandscape entry;
    entry.grid = store::decodeGridSpec(r);
    entry.samplingFraction = r.f64();
    entry.sampleSeed = r.u64();
    entry.queriesUsed = r.u64();
    entry.querySpeedup = r.f64();
    entry.kernel = dist::decodeKernelStats(r);
    const std::uint64_t samples = r.u64();
    if (samples > r.remaining() / 16)
        throw WireError("sample count runs past payload end");
    entry.sampleIndices.resize(samples);
    for (std::uint64_t& idx : entry.sampleIndices)
        idx = r.u64();
    entry.sampleValues.resize(samples);
    for (double& v : entry.sampleValues)
        v = r.f64();
    const std::uint64_t points = r.u64();
    if (points > r.remaining() / 8)
        throw WireError("point count runs past payload end");
    if (points != entry.grid.numPoints())
        throw WireError("reconstruction size does not match the grid");
    entry.reconstructed.resize(points);
    for (double& v : entry.reconstructed)
        v = r.f64();
    return entry;
}

std::vector<std::uint8_t>
encodeResponse(const ResponseMsg& msg)
{
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(msg.status));
    w.u64(msg.tag);
    switch (msg.status) {
      case ResponseStatus::Ok:
        w.u8(static_cast<std::uint8_t>(msg.servedFrom));
        encodeStoredLandscape(w, msg.landscape);
        break;
      case ResponseStatus::Miss:
        break;
      case ResponseStatus::Error:
        w.str(msg.error);
        break;
      case ResponseStatus::Stats:
        encodeCounters(w, msg.counters);
        break;
    }
    return w.take();
}

ResponseMsg
decodeResponse(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    ResponseMsg msg;
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(ResponseStatus::Stats))
        throw WireError("unknown response status");
    msg.status = static_cast<ResponseStatus>(status);
    msg.tag = r.u64();
    switch (msg.status) {
      case ResponseStatus::Ok: {
        const std::uint8_t from = r.u8();
        if (from > static_cast<std::uint8_t>(ServedFrom::Store))
            throw WireError("unknown served-from marker");
        msg.servedFrom = static_cast<ServedFrom>(from);
        msg.landscape = decodeStoredLandscape(r);
        break;
      }
      case ResponseStatus::Miss:
        break;
      case ResponseStatus::Error:
        msg.error = r.str();
        break;
      case ResponseStatus::Stats:
        msg.counters = decodeCounters(r);
        break;
    }
    r.expectEnd();
    return msg;
}

std::vector<std::uint8_t>
encodeProgress(const ProgressMsg& msg)
{
    WireWriter w;
    w.u64(msg.tag);
    w.u64(msg.completed);
    w.u64(msg.total);
    return w.take();
}

ProgressMsg
decodeProgress(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    ProgressMsg msg;
    msg.tag = r.u64();
    msg.completed = r.u64();
    msg.total = r.u64();
    r.expectEnd();
    if (msg.completed > msg.total)
        throw WireError("progress exceeds its total");
    return msg;
}

store::StoreKey
storeKeyFor(const RequestMsg& msg)
{
    store::StoreKey key;
    key.costId = msg.cost.costId;
    key.gridHash = store::gridHash(msg.grid);
    key.cfgHash = store::configHash(msg.samplingFraction, msg.sampleSeed);
    return key;
}

std::string
resolveSocketPath(const std::string& configured)
{
    // sun_path is 108 bytes on Linux; keep headroom for the NUL.
    constexpr std::size_t kMaxPath = sizeof(sockaddr_un{}.sun_path) - 1;
    if (!configured.empty()) {
        if (configured.size() > kMaxPath)
            throw std::runtime_error(
                "serve socket: expected a unix socket path of at most " +
                std::to_string(kMaxPath) + " bytes, got \"" + configured +
                "\"");
        return configured;
    }
    const char* env = std::getenv("OSCAR_SERVE_SOCKET");
    if (!env)
        return "/tmp/oscar-serve.sock";
    const std::string path(env);
    if (path.empty() || path.size() > kMaxPath)
        throw std::runtime_error(
            "OSCAR_SERVE_SOCKET: expected a unix socket path of 1.." +
            std::to_string(kMaxPath) + " bytes, got \"" + path + "\"");
    return path;
}

} // namespace serve
} // namespace oscar
