#include "src/serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/backend/statevector_backend.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/quantum/kernels.h"
#include "src/store/archive.h"

namespace oscar {
namespace serve {

namespace {

using dist::FrameType;

/** Blocking full-buffer send (MSG_NOSIGNAL: EPIPE, not SIGPIPE). */
bool
writeAll(int fd, const std::uint8_t* data, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

std::array<std::uint64_t, 3>
mapKeyOf(const store::StoreKey& key)
{
    return {key.costId, key.gridHash, key.cfgHash};
}

} // namespace

/**
 * One client connection. The run() thread owns the fd's read side;
 * job threads send frames through send(), which serializes writes and
 * never races the close: close() and send() take the same mutex, and
 * a closed connection swallows the frame (the client is gone).
 */
struct ServeServer::Conn
{
    Conn(int fd_in, std::uint64_t id_in) : fd(fd_in), id(id_in) {}

    ~Conn() { close(); }

    bool
    send(FrameType type, std::span<const std::uint8_t> payload)
    {
        const std::vector<std::uint8_t> bytes =
            dist::encodeFrame(type, payload);
        std::lock_guard<std::mutex> lock(sendMutex);
        if (closed)
            return false;
        return writeAll(fd, bytes.data(), bytes.size());
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lock(sendMutex);
        if (!closed) {
            ::close(fd);
            closed = true;
        }
    }

    const int fd;
    const std::uint64_t id;
    std::mutex sendMutex;
    bool closed = false;
    dist::FrameDecoder decoder;
    /** Jobs admitted from this client, FIFO (guarded by server m_). */
    std::deque<std::shared_ptr<Job>> pending;
};

/** A request that needs the store or the pool -- attachable waiters. */
struct ServeServer::Job
{
    /** Waiting requester: where (and under which tag) to answer. */
    struct Waiter
    {
        std::shared_ptr<Conn> conn;
        std::uint64_t tag = 0;
        bool wantProgress = false;
    };

    RequestMsg req; ///< the first requester's request
    store::StoreKey key;
    std::array<std::uint64_t, 3> mapKey{};
    bool fetchOnly = false;
    /** Guarded by the server's m_ until respond() snapshots them. */
    std::vector<Waiter> waiters;
};

ServeServer::ServeServer(ServeOptions options)
    : options_(std::move(options))
{
    if (options_.socketPath.empty())
        throw std::runtime_error("oscar-serve: socket path must be "
                                 "non-empty (see resolveSocketPath)");
    if (options_.jobThreads < 1)
        options_.jobThreads = 1;
    if (!options_.storeDir.empty()) {
        store::StoreOptions store_options;
        store_options.dir = options_.storeDir;
        store_options.budgetBytes = options_.storeBudgetBytes;
        store_ = std::make_unique<store::LandscapeStore>(store_options);
    }

    int wake[2];
    if (::pipe2(wake, O_CLOEXEC | O_NONBLOCK) != 0)
        throw std::runtime_error(std::string("oscar-serve: pipe2: ") +
                                 std::strerror(errno));
    wakeRead_ = wake[0];
    wakeWrite_ = wake[1];

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK,
                         0);
    if (listenFd_ < 0) {
        ::close(wakeRead_);
        ::close(wakeWrite_);
        throw std::runtime_error(std::string("oscar-serve: socket: ") +
                                 std::strerror(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof(addr.sun_path)) {
        ::close(listenFd_);
        ::close(wakeRead_);
        ::close(wakeWrite_);
        throw std::runtime_error("oscar-serve: socket path too long: " +
                                 options_.socketPath);
    }
    std::memcpy(addr.sun_path, options_.socketPath.c_str(),
                options_.socketPath.size() + 1);
    // A stale socket file from a dead daemon would make bind fail with
    // EADDRINUSE forever; remove it first. A *live* daemon also loses
    // its socket this way -- running two daemons on one path is a
    // deployment error this layer cannot detect.
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, options_.backlog) != 0) {
        const std::string reason = std::strerror(errno);
        ::close(listenFd_);
        ::close(wakeRead_);
        ::close(wakeWrite_);
        throw std::runtime_error("oscar-serve: cannot listen on " +
                                 options_.socketPath + ": " + reason);
    }

    jobThreads_.reserve(static_cast<std::size_t>(options_.jobThreads));
    for (int t = 0; t < options_.jobThreads; ++t)
        jobThreads_.emplace_back([this] { jobLoop(); });
}

ServeServer::~ServeServer()
{
    stop();
    drainAndJoin();
    for (auto& [id, conn] : conns_)
        conn->close();
    conns_.clear();
    ::close(listenFd_);
    ::close(wakeRead_);
    ::close(wakeWrite_);
    ::unlink(options_.socketPath.c_str());
}

void
ServeServer::stop()
{
    // Async-signal-safe on purpose: a SIGTERM handler calls this.
    stop_.store(true);
    const char byte = 1;
    [[maybe_unused]] const ssize_t w = ::write(wakeWrite_, &byte, 1);
}

void
ServeServer::drainAndJoin()
{
    {
        std::lock_guard<std::mutex> lock(m_);
        draining_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : jobThreads_) {
        if (t.joinable())
            t.join();
    }
}

ServeCounters
ServeServer::counters() const
{
    std::lock_guard<std::mutex> lock(m_);
    ServeCounters c = counters_;
    if (store_)
        c.store = store_->stats();
    return c;
}

std::string
ServeServer::metricsText() const
{
    // The registry (local + any telemetry-reporting workers) carries
    // the opt-in metrics; the serve/store counters are injected from
    // their authoritative mutex-guarded structs so the exposition
    // matches counters() exactly regardless of OSCAR_METRICS.
    obs::MetricsSnapshot snap = obs::Registry::global().merged();
    const ServeCounters c = counters();
    snap.counters["serve.requests"] = c.requests;
    snap.counters["serve.responses"] = c.responses;
    snap.counters["serve.evaluations"] = c.evaluations;
    snap.counters["serve.store.hits"] = c.storeHits;
    snap.counters["serve.dedup.waiters"] = c.dedupWaiters;
    snap.counters["serve.errors"] = c.errors;
    snap.counters["store.container.hits"] = c.store.hits;
    snap.counters["store.container.misses"] = c.store.misses;
    snap.counters["store.container.puts"] = c.store.puts;
    return obs::renderPrometheus(snap);
}

void
ServeServer::run()
{
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Conn>> polled;
    while (!stop_.load()) {
        fds.clear();
        polled.clear();
        fds.push_back({wakeRead_, POLLIN, 0});
        fds.push_back({listenFd_, POLLIN, 0});
        for (const auto& [id, conn] : conns_) {
            fds.push_back({conn->fd, POLLIN, 0});
            polled.push_back(conn);
        }
        if (::poll(fds.data(), fds.size(), -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (stop_.load())
            break;
        if (fds[0].revents & POLLIN) {
            char buf[64];
            while (::read(wakeRead_, buf, sizeof(buf)) > 0) {
            }
        }
        if (fds[1].revents & POLLIN)
            acceptClients();
        for (std::size_t i = 0; i < polled.size(); ++i) {
            if (fds[2 + i].revents & (POLLIN | POLLHUP | POLLERR))
                readClient(polled[i]);
        }
    }
    // Graceful drain: no new connections or requests; admitted jobs
    // finish and answer before we return.
    drainAndJoin();
}

void
ServeServer::acceptClients()
{
    for (;;) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN: queue drained (or transient error)
        }
        auto conn = std::make_shared<Conn>(fd, nextConnId_++);
        conns_.emplace(conn->id, conn);
    }
}

void
ServeServer::readClient(const std::shared_ptr<Conn>& conn)
{
    std::uint8_t buf[65536];
    const ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r == 0 || (r < 0 && errno != EINTR && errno != EAGAIN)) {
        closeConn(conn);
        return;
    }
    if (r < 0)
        return;
    try {
        conn->decoder.feed(buf, static_cast<std::size_t>(r));
        while (auto frame = conn->decoder.next()) {
            if (frame->type == FrameType::MetricsRequest) {
                // Live exposition: answered inline on the event-loop
                // thread (snapshots never block writers).
                const dist::MetricsRequestMsg req =
                    dist::decodeMetricsRequest(frame->payload);
                dist::MetricsResponseMsg resp;
                resp.tag = req.tag;
                resp.text = metricsText();
                conn->send(FrameType::MetricsResponse,
                           dist::encodeMetricsResponse(resp));
                continue;
            }
            if (frame->type != FrameType::Request)
                throw dist::WireError("client sent a non-Request frame");
            handleRequest(conn, decodeRequest(frame->payload));
        }
    } catch (const dist::WireError& e) {
        // One malformed client loses its connection; the daemon and
        // every other client keep serving.
        std::fprintf(stderr, "oscar-serve: client %llu: %s\n",
                     static_cast<unsigned long long>(conn->id), e.what());
        closeConn(conn);
    }
}

void
ServeServer::closeConn(const std::shared_ptr<Conn>& conn)
{
    conn->close();
    conns_.erase(conn->id);
    // Jobs already admitted from this conn stay queued: they may have
    // waiters from other connections, and a computed result still
    // warms the store. Their sends to this conn become no-ops.
}

void
ServeServer::enqueueLocked(const std::shared_ptr<Conn>& conn,
                           const std::shared_ptr<Job>& job)
{
    const bool was_empty = conn->pending.empty();
    conn->pending.push_back(job);
    if (was_empty)
        admission_.push_back(conn);
}

void
ServeServer::handleRequest(const std::shared_ptr<Conn>& conn,
                           RequestMsg req)
{
    if (req.kind == RequestKind::Stats) {
        ResponseMsg msg;
        msg.status = ResponseStatus::Stats;
        msg.tag = req.tag;
        {
            std::lock_guard<std::mutex> lock(m_);
            counters_.requests++;
            counters_.responses++;
            msg.counters = counters_;
        }
        if (store_)
            msg.counters.store = store_->stats();
        conn->send(FrameType::Response, encodeResponse(msg));
        return;
    }

    // Re-derive the content address locally: the key must name the
    // computation THIS daemon would run, whatever the client claimed.
    req.cost.kernel.isa =
        kernels::kernelTable(req.cost.kernel.isa).isa;
    dist::CostSpec spec = req.cost;
    dist::encodeCostSpec(spec);
    req.cost.costId = spec.costId;
    const store::StoreKey key = storeKeyFor(req);

    std::lock_guard<std::mutex> lock(m_);
    counters_.requests++;
    if (req.kind == RequestKind::Reconstruct) {
        const auto it = inflight_.find(mapKeyOf(key));
        if (it != inflight_.end()) {
            // Identical computation already in flight: attach, don't
            // recompute. All waiters receive the same bits.
            it->second->waiters.push_back(
                {conn, req.tag, req.wantProgress});
            counters_.dedupWaiters++;
            return;
        }
    }
    auto job = std::make_shared<Job>();
    job->key = key;
    job->mapKey = mapKeyOf(key);
    job->fetchOnly = req.kind == RequestKind::Fetch;
    job->waiters.push_back({conn, req.tag, req.wantProgress});
    job->req = std::move(req);
    if (!job->fetchOnly)
        inflight_.emplace(job->mapKey, job);
    enqueueLocked(conn, job);
    cv_.notify_one();
}

std::shared_ptr<ServeServer::Job>
ServeServer::nextJob()
{
    std::unique_lock<std::mutex> lock(m_);
    cv_.wait(lock, [&] { return draining_ || !admission_.empty(); });
    if (admission_.empty())
        return nullptr; // draining, queue empty
    const std::shared_ptr<Conn> conn = admission_.front();
    admission_.pop_front();
    std::shared_ptr<Job> job = conn->pending.front();
    conn->pending.pop_front();
    // Round-robin fairness: a conn with more pending work goes to the
    // BACK of the admission queue, behind every other waiting client.
    if (!conn->pending.empty())
        admission_.push_back(conn);
    return job;
}

void
ServeServer::jobLoop()
{
    while (std::shared_ptr<Job> job = nextJob())
        execute(job);
}

void
ServeServer::broadcastProgress(const std::shared_ptr<Job>& job,
                               std::size_t completed, std::size_t total)
{
    std::vector<Job::Waiter> waiters;
    {
        std::lock_guard<std::mutex> lock(m_);
        waiters = job->waiters; // late attachers get progress too
    }
    ProgressMsg msg;
    msg.completed = completed;
    msg.total = total;
    for (const Job::Waiter& w : waiters) {
        if (!w.wantProgress)
            continue;
        msg.tag = w.tag;
        w.conn->send(FrameType::Progress, encodeProgress(msg));
    }
}

void
ServeServer::respond(const std::shared_ptr<Job>& job, ResponseMsg base,
                     bool unregister)
{
    std::vector<Job::Waiter> waiters;
    {
        std::lock_guard<std::mutex> lock(m_);
        // Order matters: the store was already written (on the Ok
        // path), so a request arriving after this erase misses the
        // dedupe map but hits the store -- never recomputes.
        if (unregister)
            inflight_.erase(job->mapKey);
        waiters = std::move(job->waiters);
        job->waiters.clear();
        counters_.responses += waiters.size();
        if (base.status == ResponseStatus::Error)
            counters_.errors += waiters.size();
    }
    for (const Job::Waiter& w : waiters) {
        base.tag = w.tag;
        w.conn->send(FrameType::Response, encodeResponse(base));
    }
}

void
ServeServer::execute(const std::shared_ptr<Job>& job)
{
    obs::ScopedSpan span(obs::SpanCategory::Serve, "execute",
                         job->key.costId);
    const std::uint64_t t0 =
        obs::metricsEnabled() ? obs::Tracer::nowNs() : 0;
    struct LatencyGuard
    {
        std::uint64_t t0;
        ~LatencyGuard()
        {
            if (t0 == 0 || !obs::metricsEnabled())
                return;
            static obs::Histogram& latency =
                obs::Registry::global().histogram(
                    "serve.request.latency.ns");
            latency.observe(obs::Tracer::nowNs() - t0);
        }
    } latency_guard{t0};

    // 1. The store answers without touching the pool.
    if (store_) {
        if (auto hit = store_->load(job->key)) {
            ResponseMsg msg;
            msg.status = ResponseStatus::Ok;
            msg.servedFrom = ServedFrom::Store;
            msg.landscape = std::move(*hit);
            {
                std::lock_guard<std::mutex> lock(m_);
                counters_.storeHits++;
            }
            respond(job, std::move(msg), !job->fetchOnly);
            return;
        }
    }
    if (job->fetchOnly) {
        ResponseMsg msg;
        msg.status = ResponseStatus::Miss;
        msg.tag = 0;
        respond(job, std::move(msg), false);
        return;
    }

    // 2. Fresh pool evaluation -- exactly one per deduped request
    //    group; the counter is what the serving tests assert on.
    {
        std::lock_guard<std::mutex> lock(m_);
        counters_.evaluations++;
    }
    ResponseMsg msg;
    try {
        StatevectorCost cost(std::move(job->req.cost.circuit),
                             std::move(job->req.cost.hamiltonian));
        OscarOptions opts = options_.oscar;
        opts.samplingFraction = job->req.samplingFraction;
        opts.seed = job->req.sampleSeed;
        opts.kernel = job->req.cost.kernel;
        opts.progress = [this, job](std::size_t done, std::size_t total) {
            // Throttle to ~16 frames per request plus the final one.
            const std::size_t step = std::max<std::size_t>(1, total / 16);
            if (done % step == 0 || done == total)
                broadcastProgress(job, done, total);
        };
        const OscarResult result =
            Oscar::reconstruct(job->req.grid, cost, opts);

        store::StoredLandscape entry;
        entry.grid = job->req.grid;
        entry.sampleIndices.assign(result.samples.indices.begin(),
                                   result.samples.indices.end());
        entry.sampleValues = result.samples.values;
        entry.reconstructed = result.reconstructed.values().flat();
        entry.kernel = result.execution.kernel;
        entry.samplingFraction = job->req.samplingFraction;
        entry.sampleSeed = job->req.sampleSeed;
        entry.queriesUsed = result.queriesUsed;
        entry.querySpeedup = result.querySpeedup;

        // Persist BEFORE unregistering from the dedupe map (see
        // respond()): between put and erase, duplicates attach as
        // waiters; after the erase, they hit the store.
        if (store_) {
            try {
                store_->put(job->key, entry);
            } catch (const store::ArchiveError& e) {
                // A full or read-only disk must not fail the request:
                // the computed answer is still correct.
                std::fprintf(stderr, "oscar-serve: store: %s\n",
                             e.what());
            }
        }
        msg.status = ResponseStatus::Ok;
        msg.servedFrom = ServedFrom::Computed;
        msg.landscape = std::move(entry);
    } catch (const std::exception& e) {
        msg.status = ResponseStatus::Error;
        msg.error = e.what();
    }
    respond(job, std::move(msg), true);
}

} // namespace serve
} // namespace oscar
