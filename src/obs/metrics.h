/**
 * @file
 * Process-wide metrics: the second half of the observability
 * subsystem (src/obs/).
 *
 * A Registry maps stable names to three metric kinds:
 *
 *   Counter    monotonic u64, relaxed add
 *   Gauge      last-written u64 (plus a max() combinator)
 *   Histogram  fixed log2-bucket u64 distribution (65 buckets:
 *              bucket 0 counts zeros, bucket i counts values with
 *              bit_width i, i.e. [2^(i-1), 2^i)), relaxed adds,
 *              with count and sum for averages
 *
 * Updates are single relaxed atomic RMWs -- safe from any thread, on
 * any hot path. Lookup by name takes the registry mutex, so call
 * sites cache the returned reference (metrics are never removed;
 * references stay valid for the registry's lifetime):
 *
 *   static obs::Counter& hits =
 *       obs::Registry::global().counter("engine.cache.hits");
 *   if (obs::metricsEnabled()) hits.add();
 *
 * snapshot() reads every metric without stopping writers (each value
 * is independently atomic; a snapshot is a consistent *per-metric*
 * view, the standard contract for monitoring counters). Worker
 * processes ship cumulative snapshots to the coordinator in wire v6
 * Telemetry frames; the coordinator keeps the latest snapshot per
 * worker pid and merges `local + sum(latest per worker)` -- a
 * deterministic, order-independent fold (no double counting, because
 * each worker's contribution is replaced, never accumulated).
 *
 * renderPrometheus() emits the text exposition format
 * (`# TYPE`-annotated, cumulative `_bucket{le="..."}` histograms)
 * that `oscar-serve` answers MetricsRequest frames with.
 *
 * Standard library only -- no project headers -- for the same reason
 * as trace.h.
 */

#ifndef OSCAR_OBS_METRICS_H
#define OSCAR_OBS_METRICS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace.h" // metricsEnabled()

namespace oscar {
namespace obs {

/** Monotonic counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-written value. */
class Gauge
{
  public:
    void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }

    /** Raise to `v` when larger (e.g. high-water marks). */
    void max(std::uint64_t v)
    {
        std::uint64_t cur = v_.load(std::memory_order_relaxed);
        while (cur < v &&
               !v_.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed))
            ;
    }

    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Log2-bucket histogram bucket count: {0} + 64 bit_width classes. */
constexpr std::size_t kHistogramBuckets = 65;

/** Bucket index of a value: 0 for 0, else std::bit_width(v). */
inline std::size_t
histogramBucketOf(std::uint64_t v)
{
    return static_cast<std::size_t>(std::bit_width(v));
}

/**
 * Inclusive upper bound of bucket `i` (the Prometheus `le` label):
 * bucket 0 holds only 0; bucket i holds (2^(i-1), 2^i], expressed via
 * bit_width as [2^(i-1), 2^i - 1] -- the bound is 2^i - 1.
 */
inline std::uint64_t
histogramBucketBound(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
}

/** Point-in-time copy of one histogram. */
struct HistogramSnapshot
{
    std::uint64_t buckets[kHistogramBuckets] = {0};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /**
     * Quantile estimate (q in [0,1]) by linear interpolation inside
     * the bucket containing the q-th observation. Exact for bucket
     * boundaries; within one bucket's width otherwise. 0 when empty.
     */
    double quantile(double q) const;

    double mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }

    /** Per-bucket sum (merging worker snapshots). */
    HistogramSnapshot& operator+=(const HistogramSnapshot& other);

    /**
     * Per-bucket difference, for interval measurements over a
     * cumulative histogram (bench percentile columns). Requires
     * `other` to be an earlier snapshot of the same histogram.
     */
    HistogramSnapshot operator-(const HistogramSnapshot& other) const;
};

/** Fixed-bucket log-scale histogram. */
class Histogram
{
  public:
    void observe(std::uint64_t v)
    {
        buckets_[histogramBucketOf(v)].fetch_add(
            1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    HistogramSnapshot snapshot() const;

  private:
    std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * Point-in-time copy of a whole registry. std::map keys make every
 * traversal (merge, render) deterministic by construction.
 */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::uint64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /**
     * Merge another snapshot in: counters and histograms add, gauges
     * take the maximum (the only order-independent combinator for
     * last-written values from different processes).
     */
    MetricsSnapshot& operator+=(const MetricsSnapshot& other);

    bool empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }
};

/**
 * Named-metric registry. global() is the process-wide instance every
 * instrumented site uses; separate instances exist for tests.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    static Registry& global();

    /** Find-or-create; the reference stays valid for the registry. */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Snapshot every local metric without stopping writers. */
    MetricsSnapshot snapshot() const;

    /**
     * Replace the latest cumulative snapshot of one worker process
     * (from a Telemetry frame). Replacing -- not accumulating -- is
     * what makes merged() deterministic and double-count-free however
     * often a worker reports.
     */
    void setWorkerSnapshot(std::int32_t pid,
                           const MetricsSnapshot& snapshot);

    /** Forget one departed worker's contribution (pool retire path). */
    void dropWorkerSnapshot(std::int32_t pid);

    /**
     * local snapshot + sum over the latest snapshot of every known
     * worker, in pid order: deterministic for a fixed set of reports,
     * regardless of arrival interleaving.
     */
    MetricsSnapshot merged() const;

    /** Worker pids currently contributing to merged(). */
    std::vector<std::int32_t> workerPids() const;

  private:
    mutable std::mutex m_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;

    mutable std::mutex remoteMutex_;
    std::map<std::int32_t, MetricsSnapshot> workerSnapshots_;
};

/**
 * Prometheus text exposition of a snapshot: every metric name is
 * sanitized (non-[a-zA-Z0-9_] -> '_') and prefixed "oscar_";
 * counters render as `<name>_total`, histograms as cumulative
 * `_bucket{le="..."}` series plus `_sum` and `_count`.
 */
std::string renderPrometheus(const MetricsSnapshot& snapshot);

} // namespace obs
} // namespace oscar

#endif // OSCAR_OBS_METRICS_H
