#include "src/obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace oscar {
namespace obs {

namespace detail {
std::atomic<bool> g_tracingEnabled{false};
std::atomic<bool> g_metricsEnabled{false};
} // namespace detail

const char*
spanCategoryName(SpanCategory cat)
{
    switch (cat) {
    case SpanCategory::Engine:
        return "engine";
    case SpanCategory::Replay:
        return "replay";
    case SpanCategory::Cache:
        return "cache";
    case SpanCategory::Dist:
        return "dist";
    case SpanCategory::Wire:
        return "wire";
    case SpanCategory::Store:
        return "store";
    case SpanCategory::Serve:
        return "serve";
    }
    return "unknown";
}

void
setTracing(bool enabled)
{
    detail::g_tracingEnabled.store(enabled, std::memory_order_relaxed);
}

void
setMetrics(bool enabled)
{
    detail::g_metricsEnabled.store(enabled, std::memory_order_relaxed);
}

namespace {

/** Parse a strict 0/1 toggle env var; throws naming the valid form. */
bool
resolveToggle(const char* name, bool fallback)
{
    const char* env = std::getenv(name);
    if (!env)
        return fallback;
    const std::string value(env);
    if (value == "0")
        return false;
    if (value == "1")
        return true;
    throw std::runtime_error(std::string(name) +
                             ": expected 0 or 1, got \"" + value + "\"");
}

} // namespace

bool
resolveTraceEnabled(bool fallback)
{
    return resolveToggle("OSCAR_TRACE", fallback);
}

bool
resolveMetricsEnabled(bool fallback)
{
    return resolveToggle("OSCAR_METRICS", fallback);
}

std::size_t
resolveTraceBufferKb()
{
    constexpr std::size_t kDefaultKb = 256;
    const char* env = std::getenv("OSCAR_TRACE_BUFFER_KB");
    if (!env)
        return kDefaultKb;
    const std::string value(env);
    std::size_t parsed = 0;
    bool ok = !value.empty() && value.size() <= 8;
    for (const char c : value) {
        if (c < '0' || c > '9') {
            ok = false;
            break;
        }
        parsed = parsed * 10 + static_cast<std::size_t>(c - '0');
    }
    if (!ok || parsed < 16 || parsed > 65536)
        throw std::runtime_error(
            "OSCAR_TRACE_BUFFER_KB: expected a per-thread span buffer "
            "size in KiB (16..65536), got \"" +
            value + "\"");
    return parsed;
}

namespace {

/** Per-thread ring capacity, fixed at first buffer creation. */
std::atomic<std::size_t> g_bufferKb{256};

void
atexitExportTrace()
{
    const char* path = std::getenv("OSCAR_TRACE_FILE");
    if (path && *path)
        exportChromeTraceFile(path);
}

} // namespace

void
applyEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        // Resolve all three before applying any: a malformed value
        // must not leave tracing half-configured.
        const bool trace = resolveTraceEnabled();
        const bool metrics = resolveMetricsEnabled();
        const std::size_t kb = resolveTraceBufferKb();
        g_bufferKb.store(kb, std::memory_order_relaxed);
        if (trace)
            setTracing(true);
        if (metrics)
            setMetrics(true);
        const char* file = std::getenv("OSCAR_TRACE_FILE");
        if (file && *file)
            std::atexit(atexitExportTrace);
    });
}

// ---------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------

/**
 * One 64-byte slot: a seqlock word plus the span payload. The owning
 * thread is the only writer; it bumps seq to odd, stores the payload
 * with relaxed atomic words, and bumps seq to even (both bumps
 * release). A collector acquires seq, copies the payload relaxed,
 * and re-checks seq: any change or odd value discards the copy, so a
 * torn read can be *detected* but never *returned*.
 */
struct alignas(64) Slot
{
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> t0{0};
    std::atomic<std::uint64_t> dur{0};
    /** category in the low byte. */
    std::atomic<std::uint64_t> meta{0};
    /** kSpanNameChars+1 name bytes as two LE words. */
    std::atomic<std::uint64_t> name0{0};
    std::atomic<std::uint64_t> name1{0};
    std::atomic<std::uint64_t> arg0{0};
    std::atomic<std::uint64_t> arg1{0};
};

static_assert(sizeof(Slot) == 64, "one cache line per span slot");

struct Tracer::ThreadBuffer
{
    explicit ThreadBuffer(std::size_t slot_count, std::uint32_t tid_in)
        : slots(slot_count), tid(tid_in)
    {
    }

    std::vector<Slot> slots;
    /** Total spans ever recorded; slot index = head % slots.size(). */
    std::atomic<std::uint64_t> head{0};
    /** Collector-only drain cursor (drain() consumes up to here). */
    std::atomic<std::uint64_t> consumed{0};
    std::uint32_t tid = 0;
};

Tracer&
Tracer::global()
{
    static Tracer* instance = new Tracer(); // never destroyed: worker
                                            // threads may outlive exit
    return *instance;
}

Tracer::ThreadBuffer&
Tracer::localBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer;
    if (!buffer) {
        const std::size_t kb = g_bufferKb.load(std::memory_order_relaxed);
        const std::size_t count = std::max<std::size_t>(
            16, kb * 1024 / sizeof(Slot));
        std::lock_guard<std::mutex> lock(registryMutex_);
        buffer = std::make_shared<ThreadBuffer>(count, nextTid_++);
        buffers_.push_back(buffer);
    }
    return *buffer;
}

void
Tracer::record(SpanCategory cat, const char* name, std::uint64_t t0_ns,
               std::uint64_t t1_ns, std::uint64_t arg0,
               std::uint64_t arg1)
{
    if (!tracingEnabled())
        return;
    ThreadBuffer& buffer = localBuffer();

    char padded[kSpanNameChars + 1] = {0};
    for (std::size_t i = 0; i < kSpanNameChars && name[i]; ++i)
        padded[i] = name[i];
    std::uint64_t name_words[2];
    std::memcpy(name_words, padded, sizeof(name_words));

    const std::uint64_t index =
        buffer.head.load(std::memory_order_relaxed);
    Slot& slot = buffer.slots[index % buffer.slots.size()];

    const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(seq + 1, std::memory_order_release); // odd: writing
    slot.t0.store(t0_ns, std::memory_order_relaxed);
    slot.dur.store(t1_ns >= t0_ns ? t1_ns - t0_ns : 0,
                   std::memory_order_relaxed);
    slot.meta.store(static_cast<std::uint64_t>(cat),
                    std::memory_order_relaxed);
    slot.name0.store(name_words[0], std::memory_order_relaxed);
    slot.name1.store(name_words[1], std::memory_order_relaxed);
    slot.arg0.store(arg0, std::memory_order_relaxed);
    slot.arg1.store(arg1, std::memory_order_relaxed);
    slot.seq.store(seq + 2, std::memory_order_release); // even: stable
    buffer.head.store(index + 1, std::memory_order_release);
}

namespace {

/** Try to copy one slot; false when mid-write or overwritten. */
bool
readSlot(const Slot& slot, std::uint32_t tid, SpanRecord* out)
{
    const std::uint64_t seq_before =
        slot.seq.load(std::memory_order_acquire);
    if (seq_before & 1)
        return false;
    SpanRecord rec;
    rec.t0Ns = slot.t0.load(std::memory_order_relaxed);
    rec.durNs = slot.dur.load(std::memory_order_relaxed);
    const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    std::uint64_t name_words[2];
    name_words[0] = slot.name0.load(std::memory_order_relaxed);
    name_words[1] = slot.name1.load(std::memory_order_relaxed);
    rec.arg0 = slot.arg0.load(std::memory_order_relaxed);
    rec.arg1 = slot.arg1.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before)
        return false; // torn: the writer lapped us mid-copy
    rec.category = static_cast<SpanCategory>(meta & 0xFF);
    std::memcpy(rec.name, name_words, sizeof(name_words));
    rec.name[kSpanNameChars] = '\0';
    rec.pid = static_cast<std::int32_t>(::getpid());
    rec.tid = tid;
    *out = rec;
    return true;
}

} // namespace

std::vector<SpanRecord>
Tracer::collect() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        buffers = buffers_;
    }
    std::vector<SpanRecord> spans;
    for (const auto& buffer : buffers) {
        const std::uint64_t head =
            buffer->head.load(std::memory_order_acquire);
        const std::uint64_t capacity = buffer->slots.size();
        const std::uint64_t first = head > capacity ? head - capacity : 0;
        for (std::uint64_t i = first; i < head; ++i) {
            SpanRecord rec;
            if (readSlot(buffer->slots[i % capacity], buffer->tid, &rec))
                spans.push_back(rec);
        }
    }
    return spans;
}

std::vector<SpanRecord>
Tracer::drain()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        buffers = buffers_;
    }
    std::vector<SpanRecord> spans;
    for (const auto& buffer : buffers) {
        const std::uint64_t head =
            buffer->head.load(std::memory_order_acquire);
        const std::uint64_t capacity = buffer->slots.size();
        const std::uint64_t consumed =
            buffer->consumed.load(std::memory_order_relaxed);
        const std::uint64_t first =
            std::max(consumed, head > capacity ? head - capacity : 0);
        for (std::uint64_t i = first; i < head; ++i) {
            SpanRecord rec;
            if (readSlot(buffer->slots[i % capacity], buffer->tid, &rec))
                spans.push_back(rec);
        }
        buffer->consumed.store(head, std::memory_order_relaxed);
    }
    return spans;
}

void
Tracer::addRemoteSpans(std::int32_t pid,
                       const std::vector<SpanRecord>& spans)
{
    std::lock_guard<std::mutex> lock(remoteMutex_);
    std::vector<SpanRecord>& parked = remote_[pid];
    for (const SpanRecord& span : spans) {
        parked.push_back(span);
        // The key is authoritative: a record whose pid disagrees (or
        // was left zero) is corrected so the export's process mapping
        // can't split one worker across lanes.
        parked.back().pid = pid;
    }
    if (parked.size() > kMaxRemoteSpansPerPid)
        parked.erase(parked.begin(),
                     parked.begin() +
                         static_cast<std::ptrdiff_t>(
                             parked.size() - kMaxRemoteSpansPerPid));
}

std::vector<SpanRecord>
Tracer::collectAll() const
{
    std::vector<SpanRecord> spans = collect();
    std::lock_guard<std::mutex> lock(remoteMutex_);
    for (const auto& [pid, parked] : remote_)
        spans.insert(spans.end(), parked.begin(), parked.end());
    return spans;
}

void
Tracer::clear()
{
    {
        std::lock_guard<std::mutex> lock(remoteMutex_);
        remote_.clear();
    }
    std::lock_guard<std::mutex> lock(registryMutex_);
    for (const auto& buffer : buffers_) {
        const std::uint64_t head =
            buffer->head.load(std::memory_order_acquire);
        buffer->consumed.store(head, std::memory_order_relaxed);
    }
}

std::uint64_t
Tracer::droppedSpans() const
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    std::uint64_t dropped = 0;
    for (const auto& buffer : buffers_) {
        const std::uint64_t head =
            buffer->head.load(std::memory_order_acquire);
        const std::uint64_t capacity = buffer->slots.size();
        if (head > capacity)
            dropped += head - capacity;
    }
    return dropped;
}

// ---------------------------------------------------------------------
// Chrome trace export
// ---------------------------------------------------------------------

namespace {

void
appendJsonEscaped(std::string* out, const char* s)
{
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out->push_back('\\');
            out->push_back(c);
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out->push_back(c);
        }
    }
}

void
appendEvent(std::string* out, const char* phase, const SpanRecord& span,
            std::uint64_t ts_ns, bool with_args)
{
    char buf[160];
    out->append("    {\"name\": \"");
    appendJsonEscaped(out, span.name);
    std::snprintf(buf, sizeof(buf),
                  "\", \"cat\": \"%s\", \"ph\": \"%s\", "
                  "\"ts\": %.3f, \"pid\": %" PRId32 ", \"tid\": %" PRIu32,
                  spanCategoryName(span.category), phase,
                  static_cast<double>(ts_ns) / 1000.0, span.pid,
                  span.tid);
    out->append(buf);
    if (with_args) {
        std::snprintf(buf, sizeof(buf),
                      ", \"args\": {\"arg0\": %" PRIu64
                      ", \"arg1\": %" PRIu64 "}",
                      span.arg0, span.arg1);
        out->append(buf);
    }
    out->append("}");
}

} // namespace

std::string
exportChromeTrace(const std::vector<SpanRecord>& spans,
                  const std::map<std::int32_t, std::string>& process_names)
{
    // Sort by begin time so B events are emitted in order and nested
    // spans on one tid open outermost-first (what the viewer expects).
    std::vector<const SpanRecord*> order;
    order.reserve(spans.size());
    for (const SpanRecord& span : spans)
        order.push_back(&span);
    std::stable_sort(order.begin(), order.end(),
                     [](const SpanRecord* a, const SpanRecord* b) {
                         return a->t0Ns < b->t0Ns;
                     });

    std::map<std::int32_t, std::string> names = process_names;
    for (const SpanRecord& span : spans)
        if (!names.count(span.pid))
            names[span.pid] = "worker " + std::to_string(span.pid);

    std::string out = "{\"traceEvents\": [\n";
    bool first = true;
    char buf[160];
    for (const auto& [pid, name] : names) {
        if (!first)
            out.append(",\n");
        first = false;
        out.append("    {\"name\": \"process_name\", \"ph\": \"M\", ");
        std::snprintf(buf, sizeof(buf), "\"pid\": %" PRId32
                      ", \"tid\": 0, \"args\": {\"name\": \"", pid);
        out.append(buf);
        appendJsonEscaped(&out, name.c_str());
        out.append("\"}}");
    }
    for (const SpanRecord* span : order) {
        if (!first)
            out.append(",\n");
        first = false;
        appendEvent(&out, "B", *span, span->t0Ns, /*with_args=*/true);
        out.append(",\n");
        appendEvent(&out, "E", *span, span->t0Ns + span->durNs,
                    /*with_args=*/false);
    }
    out.append("\n]}\n");
    return out;
}

bool
exportChromeTraceFile(const std::string& path)
{
    const std::string json =
        exportChromeTrace(Tracer::global().collectAll());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "obs: cannot write trace file %s\n",
                     path.c_str());
        return false;
    }
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (!ok)
        std::fprintf(stderr, "obs: short write on trace file %s\n",
                     path.c_str());
    return ok;
}

} // namespace obs
} // namespace oscar
