#include "src/obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace oscar {
namespace obs {

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target observation, 1-based.
    const double rank = q * static_cast<double>(count);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
        if (buckets[i] == 0)
            continue;
        const std::uint64_t next = seen + buckets[i];
        if (static_cast<double>(next) >= rank) {
            // Interpolate inside bucket i, which spans
            // [lower, histogramBucketBound(i)].
            const double lower =
                i == 0 ? 0.0
                       : static_cast<double>(histogramBucketBound(i - 1)) +
                             1.0;
            const double upper =
                static_cast<double>(histogramBucketBound(i));
            const double into =
                buckets[i] == 0
                    ? 0.0
                    : (rank - static_cast<double>(seen)) /
                          static_cast<double>(buckets[i]);
            return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
        }
        seen = next;
    }
    return static_cast<double>(histogramBucketBound(kHistogramBuckets - 1));
}

HistogramSnapshot&
HistogramSnapshot::operator+=(const HistogramSnapshot& other)
{
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        buckets[i] += other.buckets[i];
    count += other.count;
    sum += other.sum;
    return *this;
}

HistogramSnapshot
HistogramSnapshot::operator-(const HistogramSnapshot& other) const
{
    HistogramSnapshot delta;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        delta.buckets[i] =
            buckets[i] >= other.buckets[i] ? buckets[i] - other.buckets[i]
                                           : 0;
    delta.count = count >= other.count ? count - other.count : 0;
    delta.sum = sum >= other.sum ? sum - other.sum : 0;
    return delta;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
}

MetricsSnapshot&
MetricsSnapshot::operator+=(const MetricsSnapshot& other)
{
    for (const auto& [name, value] : other.counters)
        counters[name] += value;
    for (const auto& [name, value] : other.gauges) {
        std::uint64_t& mine = gauges[name];
        mine = std::max(mine, value);
    }
    for (const auto& [name, value] : other.histograms)
        histograms[name] += value;
    return *this;
}

Registry&
Registry::global()
{
    static Registry* instance = new Registry(); // never destroyed, like
                                                // Tracer::global()
    return *instance;
}

Counter&
Registry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(m_);
    std::unique_ptr<Counter>& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
Registry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(m_);
    std::unique_ptr<Gauge>& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
Registry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(m_);
    std::unique_ptr<Histogram>& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(m_);
    for (const auto& [name, counter] : counters_)
        snap.counters[name] = counter->value();
    for (const auto& [name, gauge] : gauges_)
        snap.gauges[name] = gauge->value();
    for (const auto& [name, histogram] : histograms_)
        snap.histograms[name] = histogram->snapshot();
    return snap;
}

void
Registry::setWorkerSnapshot(std::int32_t pid,
                            const MetricsSnapshot& snapshot)
{
    std::lock_guard<std::mutex> lock(remoteMutex_);
    workerSnapshots_[pid] = snapshot;
}

void
Registry::dropWorkerSnapshot(std::int32_t pid)
{
    std::lock_guard<std::mutex> lock(remoteMutex_);
    workerSnapshots_.erase(pid);
}

MetricsSnapshot
Registry::merged() const
{
    MetricsSnapshot merged = snapshot();
    std::lock_guard<std::mutex> lock(remoteMutex_);
    for (const auto& [pid, snap] : workerSnapshots_)
        merged += snap;
    return merged;
}

std::vector<std::int32_t>
Registry::workerPids() const
{
    std::lock_guard<std::mutex> lock(remoteMutex_);
    std::vector<std::int32_t> pids;
    pids.reserve(workerSnapshots_.size());
    for (const auto& [pid, snap] : workerSnapshots_)
        pids.push_back(pid);
    return pids;
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

namespace {

std::string
promName(const std::string& name)
{
    std::string out = "oscar_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

std::string
renderPrometheus(const MetricsSnapshot& snapshot)
{
    std::string out;
    char buf[128];
    for (const auto& [name, value] : snapshot.counters) {
        const std::string prom = promName(name) + "_total";
        out += "# TYPE " + prom + " counter\n";
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
        out += prom + buf;
    }
    for (const auto& [name, value] : snapshot.gauges) {
        const std::string prom = promName(name);
        out += "# TYPE " + prom + " gauge\n";
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
        out += prom + buf;
    }
    for (const auto& [name, hist] : snapshot.histograms) {
        const std::string prom = promName(name);
        out += "# TYPE " + prom + " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
            if (hist.buckets[i] == 0)
                continue; // sparse: 65 log2 buckets, few occupied
            cumulative += hist.buckets[i];
            std::snprintf(buf, sizeof(buf),
                          "{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                          histogramBucketBound(i), cumulative);
            out += prom + "_bucket" + buf;
        }
        std::snprintf(buf, sizeof(buf), "{le=\"+Inf\"} %" PRIu64 "\n",
                      hist.count);
        out += prom + "_bucket" + buf;
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", hist.sum);
        out += prom + "_sum" + buf;
        std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", hist.count);
        out += prom + "_count" + buf;
    }
    return out;
}

} // namespace obs
} // namespace oscar
