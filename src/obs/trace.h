/**
 * @file
 * Lock-free span tracing: the tracing half of the observability
 * subsystem (src/obs/).
 *
 * Every instrumented site records *spans* -- named, categorized
 * [begin, end) intervals with up to two integer arguments -- into a
 * fixed-slot ring buffer owned by the recording thread. The hot path
 * takes no mutex and performs no allocation: one relaxed head
 * increment plus a per-slot seqlock publication (odd while a write is
 * in progress, even when stable), so a concurrent collector can
 * snapshot the buffers without ever observing a torn record and
 * without stopping writers. When the ring wraps, the oldest spans are
 * overwritten first (drop-oldest); nothing blocks.
 *
 * Tracing is off by default. When disabled, an instrumented site costs
 * one relaxed atomic load and nothing else -- no clock read, no
 * buffer, no allocation. Enable it programmatically (setTracing) or
 * with OSCAR_TRACE=1 (applied by applyEnv(), which the execution
 * engine, the worker entry point, and the daemons call at startup;
 * malformed values throw instead of silently not tracing).
 *
 * Spans from worker processes ship to the coordinator inside wire v6
 * Telemetry frames and are parked here (addRemoteSpans) under the
 * worker's pid, so one exportChromeTrace() call emits a single
 * chrome://tracing JSON covering the whole fleet: the coordinator and
 * each worker get distinct pids, each recording thread a distinct tid.
 * Timestamps are raw CLOCK_MONOTONIC nanoseconds, which every process
 * on a host shares, so coordinator and worker spans land on one
 * common timeline.
 *
 * This header depends only on the standard library (no project
 * headers), so every layer -- wire codec included -- can instrument
 * itself without include cycles.
 */

#ifndef OSCAR_OBS_TRACE_H
#define OSCAR_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace oscar {
namespace obs {

/** Span categories (the "cat" field of the Chrome trace). */
enum class SpanCategory : std::uint8_t
{
    Engine = 0, ///< engine batches and chunks
    Replay = 1, ///< compiled-circuit replay segments
    Cache = 2,  ///< prefix-cache hits and misses
    Dist = 3,   ///< shard dispatch / steal / requeue
    Wire = 4,   ///< frame encode / decode (+compression)
    Store = 5,  ///< landscape-store get / put
    Serve = 6,  ///< serve job lifecycle
};

/** Printable name of a category ("engine", "wire", ...). */
const char* spanCategoryName(SpanCategory cat);

/** Max chars of a span name stored in a slot (excluding the NUL). */
constexpr std::size_t kSpanNameChars = 15;

/** One collected span. */
struct SpanRecord
{
    std::uint64_t t0Ns = 0;  ///< CLOCK_MONOTONIC begin, nanoseconds
    std::uint64_t durNs = 0; ///< duration, nanoseconds
    SpanCategory category = SpanCategory::Engine;
    char name[kSpanNameChars + 1] = {0};
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    /** Recording process (getpid of the recorder). */
    std::int32_t pid = 0;
    /** Recording thread, unique within its process. */
    std::uint32_t tid = 0;
};

// ---------------------------------------------------------------------
// Enable flags
// ---------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_tracingEnabled;
extern std::atomic<bool> g_metricsEnabled;
} // namespace detail

/** Is span recording on? One relaxed load: safe on any hot path. */
inline bool
tracingEnabled()
{
    return detail::g_tracingEnabled.load(std::memory_order_relaxed);
}

/** Is metrics recording on? One relaxed load. */
inline bool
metricsEnabled()
{
    return detail::g_metricsEnabled.load(std::memory_order_relaxed);
}

void setTracing(bool enabled);
void setMetrics(bool enabled);

/**
 * Resolve OSCAR_TRACE: unset -> `fallback`, "0" -> false, "1" -> true.
 * Anything else throws std::runtime_error naming the valid form
 * (the strict-resolver convention of OSCAR_DIST_WORKERS et al.).
 */
bool resolveTraceEnabled(bool fallback = false);

/**
 * Resolve OSCAR_TRACE_BUFFER_KB: per-thread span ring capacity in
 * KiB. Unset -> 256. Valid range 16..65536; malformed or out-of-range
 * values throw std::runtime_error naming the valid form.
 */
std::size_t resolveTraceBufferKb();

/** Resolve OSCAR_METRICS exactly like resolveTraceEnabled. */
bool resolveMetricsEnabled(bool fallback = false);

/**
 * Apply the environment once per process: OSCAR_TRACE /
 * OSCAR_TRACE_BUFFER_KB / OSCAR_METRICS via the strict resolvers
 * above, and OSCAR_TRACE_FILE (when set, an atexit hook exports the
 * full Chrome trace there on clean process exit, so ordinary test and
 * tool binaries produce traces under OSCAR_TRACE=1 without code
 * changes). Subsequent calls are no-ops; malformed values throw on
 * the first call.
 */
void applyEnv();

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

/**
 * The process-wide span sink. Thread buffers register themselves on
 * first use (the only mutex acquisition on the recording side, once
 * per thread); record() is lock-free thereafter.
 */
class Tracer
{
  public:
    static Tracer& global();

    /** Raw CLOCK_MONOTONIC nanoseconds (shared by all host processes). */
    static std::uint64_t nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /**
     * Record one completed span into the calling thread's ring. No-op
     * when tracing is disabled. `name` is truncated to kSpanNameChars.
     */
    void record(SpanCategory cat, const char* name, std::uint64_t t0_ns,
                std::uint64_t t1_ns, std::uint64_t arg0 = 0,
                std::uint64_t arg1 = 0);

    /**
     * Snapshot every local thread buffer without disturbing writers
     * (records mid-write are skipped, never torn). Does not consume:
     * a later collect() sees the same spans again (minus any the ring
     * dropped).
     */
    std::vector<SpanRecord> collect() const;

    /**
     * Collect-and-consume: like collect(), but advances each buffer's
     * consumed cursor so the next drain only returns newer spans. The
     * worker telemetry path uses this to ship each span exactly once.
     */
    std::vector<SpanRecord> drain();

    /**
     * Park spans a worker shipped in a Telemetry frame, keyed by its
     * pid. Bounded (kMaxRemoteSpansPerPid, drop-oldest) so a chatty
     * worker cannot grow coordinator memory without limit.
     */
    void addRemoteSpans(std::int32_t pid,
                        const std::vector<SpanRecord>& spans);

    /** Local spans plus every parked remote span, for export. */
    std::vector<SpanRecord> collectAll() const;

    /** Forget all parked remote spans and reset consumed cursors. */
    void clear();

    /** Spans dropped locally by ring wraparound since start/clear(). */
    std::uint64_t droppedSpans() const;

    static constexpr std::size_t kMaxRemoteSpansPerPid = 1u << 20;

  private:
    Tracer() = default;

    struct ThreadBuffer;
    ThreadBuffer& localBuffer();

    mutable std::mutex registryMutex_;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
    std::uint32_t nextTid_ = 1;

    mutable std::mutex remoteMutex_;
    std::map<std::int32_t, std::vector<SpanRecord>> remote_;
};

/**
 * RAII span: stamps the begin time at construction (when tracing is
 * on) and records on destruction. Stack-only, allocation-free; when
 * tracing is off the whole object is one bool and two dead loads.
 */
class ScopedSpan
{
  public:
    ScopedSpan(SpanCategory cat, const char* name, std::uint64_t arg0 = 0,
               std::uint64_t arg1 = 0)
        : active_(tracingEnabled()), cat_(cat), name_(name), arg0_(arg0),
          arg1_(arg1)
    {
        if (active_)
            t0_ = Tracer::nowNs();
    }

    ~ScopedSpan()
    {
        if (active_)
            Tracer::global().record(cat_, name_, t0_, Tracer::nowNs(),
                                    arg0_, arg1_);
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /** Update the args before the span closes (e.g. bytes produced). */
    void setArgs(std::uint64_t arg0, std::uint64_t arg1 = 0)
    {
        arg0_ = arg0;
        arg1_ = arg1;
    }

  private:
    bool active_;
    SpanCategory cat_;
    const char* name_;
    std::uint64_t arg0_;
    std::uint64_t arg1_;
    std::uint64_t t0_ = 0;
};

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

/**
 * Render spans as chrome://tracing "Trace Event Format" JSON: one
 * balanced B/E event pair per span plus process_name metadata, pids
 * and tids taken from the records. `process_names` labels pids in the
 * viewer (e.g. {getpid(): "coordinator"}); unlabeled worker pids get
 * "worker <pid>".
 */
std::string exportChromeTrace(
    const std::vector<SpanRecord>& spans,
    const std::map<std::int32_t, std::string>& process_names = {});

/**
 * Export Tracer::global().collectAll() to `path`. Returns false (and
 * warns on stderr) when the file cannot be written.
 */
bool exportChromeTraceFile(const std::string& path);

} // namespace obs
} // namespace oscar

#endif // OSCAR_OBS_TRACE_H
