#include "src/dist/worker.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "src/backend/engine.h"
#include "src/backend/statevector_backend.h"
#include "src/dist/wire.h"

namespace oscar {
namespace dist {

namespace {

/** Blocking full-buffer write (MSG_NOSIGNAL: EPIPE, not SIGPIPE). */
bool
writeAll(int fd, const std::uint8_t* data, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

/**
 * Frame writes from the main loop and the heartbeat thread interleave
 * on one fd; the mutex keeps frames whole.
 */
class FrameSender
{
  public:
    explicit FrameSender(int fd) : fd_(fd) {}

    bool
    send(FrameType type, std::span<const std::uint8_t> payload)
    {
        const std::vector<std::uint8_t> bytes =
            encodeFrame(type, payload);
        std::lock_guard<std::mutex> lock(mutex_);
        return writeAll(fd_, bytes.data(), bytes.size());
    }

  private:
    int fd_;
    std::mutex mutex_;
};

/** Periodic heartbeat until stopped (or the pipe breaks). */
class Heartbeat
{
  public:
    Heartbeat(FrameSender& sender, int period_ms)
        : sender_(sender), periodMs_(std::max(10, period_ms)),
          thread_([this] { run(); })
    {
    }

    ~Heartbeat()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            lock.unlock();
            if (!sender_.send(FrameType::Heartbeat, {})) {
                // Pool gone; the main loop will see EOF and exit.
                lock.lock();
                return;
            }
            lock.lock();
            cv_.wait_for(lock, std::chrono::milliseconds(periodMs_),
                         [&] { return stop_; });
        }
    }

    FrameSender& sender_;
    int periodMs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

} // namespace

int
workerMain(int fd, int heartbeat_ms, int threads)
{
    FrameSender sender(fd);

    // The worker's own evaluation pool (hybrid process x thread
    // execution). 0 resolves to this host's hardware concurrency --
    // worker-side, since the coordinator may run on a different
    // machine class than its workers some day. Distribution is pinned
    // off: a worker forking worker pools of its own would fork-bomb
    // under a process-wide OSCAR_DIST_WORKERS.
    if (threads < 0)
        threads = 1;
    const int resolved = ExecutionEngine::resolveThreads(threads);
    EngineOptions engine_options;
    engine_options.numThreads = resolved;
    engine_options.dist.numWorkers = -1;
    ExecutionEngine engine(engine_options);

    // Greet first, then start heartbeating: the pool's construction
    // handshake keys on Hello arriving before anything else. The
    // Hello advertises the resolved thread count as this worker's
    // capacity, so the coordinator can size and route shards
    // proportionally.
    {
        HelloMsg hello;
        hello.pid = static_cast<std::int32_t>(::getpid());
        hello.isa = kernels::defaultKernelTable().isa;
        hello.threads = static_cast<std::uint16_t>(
            std::min(resolved, 65535));
        WireWriter w;
        encodeHello(w, hello);
        if (!sender.send(FrameType::Hello, w.bytes()))
            return 1;
    }
    Heartbeat heartbeat(sender, heartbeat_ms);

    // Rebuilt evaluators, content-addressed by cost spec hash. The
    // pool sends each spec to each worker at most once; a spec's
    // prefix cache stays warm across every shard that references it.
    // The cache is bounded (FIFO eviction): each entry owns a
    // statevector and a prefix-checkpoint budget, so an unbounded map
    // would leak the worker's memory across a long-lived pipeline of
    // distinct specs. Evicting is safe because a Task naming an
    // evicted id answers with kTaskErrorUnknownCost, and the pool
    // re-sends the spec and requeues the shard.
    constexpr std::size_t kMaxCachedCosts = 16;
    std::unordered_map<std::uint64_t, std::unique_ptr<CostFunction>>
        costs;
    std::deque<std::uint64_t> cost_order;

    FrameDecoder decoder;
    for (;;) {
        std::uint8_t buf[65536];
        const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
        if (r == 0)
            return 0; // pool closed the pipe
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return 1;
        }
        try {
            decoder.feed(buf, static_cast<std::size_t>(r));
            while (auto frame = decoder.next()) {
                switch (frame->type) {
                  case FrameType::Shutdown:
                    return 0;
                  case FrameType::LoadCost: {
                    CostSpec spec = decodeCostSpec(frame->payload);
                    auto cost = std::make_unique<StatevectorCost>(
                        std::move(spec.circuit),
                        std::move(spec.hamiltonian));
                    cost->configureKernel(spec.kernel);
                    if (costs.try_emplace(spec.costId, std::move(cost))
                            .second)
                        cost_order.push_back(spec.costId);
                    while (costs.size() > kMaxCachedCosts) {
                        costs.erase(cost_order.front());
                        cost_order.pop_front();
                    }
                    break;
                  }
                  case FrameType::Task: {
                    TaskMsg task = decodeTask(frame->payload);
                    const auto it = costs.find(task.costId);
                    if (it == costs.end()) {
                        TaskErrorMsg err;
                        err.taskId = task.taskId;
                        err.code = kTaskErrorUnknownCost;
                        err.message = "unknown cost id";
                        if (!sender.send(FrameType::TaskError,
                                         encodeTaskError(err)))
                            return 1;
                        break;
                    }
                    CostFunction& cost = *it->second;
                    ResultMsg result;
                    result.taskId = task.taskId;
                    try {
                        // Replay the shard across the worker's own
                        // thread pool at its reserved ordinals; the
                        // batch stats carry the kernel-counter delta
                        // (per-chunk replicas share the cost's prefix
                        // cache, so checkpoints stay warm across
                        // shards and threads alike).
                        BatchHandle handle = engine.submitAt(
                            cost, std::move(task.points),
                            task.baseOrdinal);
                        result.values = handle.get();
                        result.kernel = handle.stats().kernel;
                    } catch (const std::exception& e) {
                        TaskErrorMsg err;
                        err.taskId = task.taskId;
                        err.message = e.what();
                        if (!sender.send(FrameType::TaskError,
                                         encodeTaskError(err)))
                            return 1;
                        break;
                    }
                    if (!sender.send(FrameType::Result,
                                     encodeResult(result)))
                        return 1;
                    break;
                  }
                  default:
                    // Pool-to-worker protocol only; anything else is
                    // a framing bug worth dying loudly over.
                    std::fprintf(stderr,
                                 "oscar-worker: unexpected frame "
                                 "type %u\n",
                                 static_cast<unsigned>(frame->type));
                    return 2;
                }
            }
        } catch (const WireError& e) {
            std::fprintf(stderr, "oscar-worker: %s\n", e.what());
            return 2;
        }
    }
}

int
workerEntry(int argc, char** argv)
{
    int fd = -1;
    int heartbeat_ms = 100;
    int threads = 1;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--worker-fd") == 0)
            fd = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--heartbeat-ms") == 0)
            heartbeat_ms = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--threads") == 0)
            threads = std::atoi(argv[i + 1]);
    }
    if (fd < 0) {
        std::fprintf(stderr,
                     "usage: oscar-worker --worker-fd N "
                     "[--heartbeat-ms M] [--threads T]\n"
                     "(spawned by the oscar distributed execution "
                     "subsystem; not meant to be run by hand)\n");
        return 64;
    }
    return workerMain(fd, heartbeat_ms, threads);
}

} // namespace dist
} // namespace oscar
