#include "src/dist/worker.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/backend/engine.h"
#include "src/backend/statevector_backend.h"
#include "src/dist/options.h"
#include "src/dist/wire.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oscar {
namespace dist {

namespace {

/** Blocking full-buffer write (MSG_NOSIGNAL: EPIPE, not SIGPIPE). */
bool
writeAll(int fd, const std::uint8_t* data, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(w);
    }
    return true;
}

/**
 * Frame writes from the main loop and the heartbeat thread interleave
 * on one fd; the mutex keeps frames whole.
 */
class FrameSender
{
  public:
    explicit FrameSender(int fd) : fd_(fd) {}

    bool
    send(FrameType type, std::span<const std::uint8_t> payload)
    {
        const std::vector<std::uint8_t> bytes =
            encodeFrame(type, payload);
        std::lock_guard<std::mutex> lock(mutex_);
        return writeAll(fd_, bytes.data(), bytes.size());
    }

  private:
    int fd_;
    std::mutex mutex_;
};

/**
 * Periodic heartbeat until stopped (or the pipe breaks). `on_beat`
 * runs before each beat on the heartbeat thread -- the telemetry
 * shipping hook (FrameSender's mutex keeps its frames whole against
 * the main loop's).
 */
class Heartbeat
{
  public:
    Heartbeat(FrameSender& sender, int period_ms,
              std::function<bool()> on_beat = {})
        : sender_(sender), onBeat_(std::move(on_beat)),
          periodMs_(std::max(10, period_ms)),
          thread_([this] { run(); })
    {
    }

    ~Heartbeat()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    void
    run()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            lock.unlock();
            if (onBeat_ && !onBeat_()) {
                lock.lock();
                return;
            }
            if (!sender_.send(FrameType::Heartbeat, {})) {
                // Pool gone; the main loop will see EOF and exit.
                lock.lock();
                return;
            }
            lock.lock();
            cv_.wait_for(lock, std::chrono::milliseconds(periodMs_),
                         [&] { return stop_; });
        }
    }

    FrameSender& sender_;
    std::function<bool()> onBeat_;
    int periodMs_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_;
};

/**
 * Test/bench hook: OSCAR_WORKER_SLOW_US sleeps this many microseconds
 * per point before each evaluation sub-batch, turning the worker into
 * a deliberate straggler (steal-protocol and tail-latency coverage).
 * Strict like the other knobs: malformed input throws instead of
 * silently running at full speed.
 */
long
resolveWorkerSlowUs()
{
    const char* env = std::getenv("OSCAR_WORKER_SLOW_US");
    if (!env)
        return 0;
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0 || parsed > 10000000)
        throw std::runtime_error(
            "OSCAR_WORKER_SLOW_US: expected a per-point slowdown in "
            "microseconds (0..10000000), got \"" +
            std::string(env) + "\"");
    return parsed;
}

/** The shard currently being evaluated, sub-batch by sub-batch. */
struct ActiveShard
{
    TaskMsg task;
    CostFunction* cost = nullptr;
    /** Values for points [0, next); grows one sub-batch at a time. */
    std::vector<double> values;
    KernelStats kernel;
    std::size_t next = 0;
};

} // namespace

int
workerMain(int fd, int heartbeat_ms, int threads,
           const std::string& secret, bool await_challenge)
{
    obs::applyEnv(); // OSCAR_TRACE / OSCAR_METRICS travel via env

    FrameSender sender(fd);
    const long slow_us = resolveWorkerSlowUs();

    // Ship accumulated spans (drained: each span exactly once) and
    // the *cumulative* metrics snapshot (the coordinator replaces,
    // never accumulates, this worker's contribution). Piggybacked on
    // the heartbeat cadence and flushed before every Result so a
    // shard's spans never trail its values by more than one beat.
    const std::int32_t self_pid =
        static_cast<std::int32_t>(::getpid());
    const auto sendTelemetry = [&sender, self_pid]() -> bool {
        if (!obs::tracingEnabled() && !obs::metricsEnabled())
            return true;
        TelemetryMsg msg;
        msg.pid = self_pid;
        if (obs::tracingEnabled())
            msg.spans = obs::Tracer::global().drain();
        if (obs::metricsEnabled())
            msg.metrics = obs::Registry::global().snapshot();
        if (msg.spans.empty() && msg.metrics.empty())
            return true;
        return sender.send(FrameType::Telemetry,
                           encodeTelemetry(msg));
    };

    // The worker's own evaluation pool (hybrid process x thread
    // execution). 0 resolves to this host's hardware concurrency --
    // worker-side, since the coordinator may run on a different
    // machine class than its workers some day. Distribution is pinned
    // off: a worker forking worker pools of its own would fork-bomb
    // under a process-wide OSCAR_DIST_WORKERS.
    if (threads < 0)
        threads = 1;
    const int resolved = ExecutionEngine::resolveThreads(threads);
    EngineOptions engine_options;
    engine_options.numThreads = resolved;
    engine_options.dist.numWorkers = -1;
    // Sub-batches are a few points per thread; don't let the engine's
    // serial-small-batch heuristic collapse them onto one thread.
    engine_options.minPointsPerThread = 1;
    ExecutionEngine engine(engine_options);

    HelloMsg hello;
    hello.pid = static_cast<std::int32_t>(::getpid());
    hello.isa = kernels::defaultKernelTable().isa;
    hello.threads =
        static_cast<std::uint16_t>(std::min(resolved, 65535));

    FrameDecoder decoder;

    // TCP joiners must answer the pool's challenge inside their
    // Hello; greeting unprompted would be rejected as unauthenticated.
    if (await_challenge) {
        bool challenged = false;
        while (!challenged) {
            std::uint8_t buf[4096];
            const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
            if (r == 0)
                return 1; // pool vanished mid-handshake
            if (r < 0) {
                if (errno == EINTR)
                    continue;
                return 1;
            }
            try {
                decoder.feed(buf, static_cast<std::size_t>(r));
                while (auto frame = decoder.next()) {
                    if (frame->type == FrameType::Shutdown)
                        return 0;
                    if (frame->type != FrameType::Challenge) {
                        std::fprintf(stderr,
                                     "oscar-worker: expected "
                                     "Challenge, got frame type %u\n",
                                     static_cast<unsigned>(
                                         frame->type));
                        return 2;
                    }
                    const ChallengeMsg challenge =
                        decodeChallenge(frame->payload);
                    hello.authTag =
                        helloAuthTag(secret, challenge.nonce, hello);
                    challenged = true;
                }
            } catch (const WireError& e) {
                std::fprintf(stderr, "oscar-worker: %s\n", e.what());
                return 2;
            }
        }
    }

    // Greet first, then start heartbeating: the pool's membership
    // handshake keys on Hello arriving before anything else. The
    // Hello advertises the resolved thread count as this worker's
    // capacity, so the coordinator can size and route shards
    // proportionally.
    {
        WireWriter w;
        encodeHello(w, hello);
        if (!sender.send(FrameType::Hello, w.bytes()))
            return 1;
    }
    Heartbeat heartbeat(sender, heartbeat_ms, sendTelemetry);

    // Rebuilt evaluators, content-addressed by cost spec hash. The
    // pool sends each spec to each worker at most once; a spec's
    // prefix cache stays warm across every shard that references it.
    // The cache is bounded (FIFO eviction): each entry owns a
    // statevector and a prefix-checkpoint budget, so an unbounded map
    // would leak the worker's memory across a long-lived pipeline of
    // distinct specs. Evicting is safe because a Task naming an
    // evicted id answers with kTaskErrorUnknownCost, and the pool
    // re-sends the spec and requeues the shard.
    constexpr std::size_t kMaxCachedCosts = 16;
    std::unordered_map<std::uint64_t, std::unique_ptr<CostFunction>>
        costs;
    std::deque<std::uint64_t> cost_order;

    std::optional<ActiveShard> active;
    std::deque<TaskMsg> queue; // pipelined shards behind the active one

    // Sub-batch width: a few points per engine thread. Small enough
    // that a StealRequest is answered within one sub-batch, wide
    // enough to keep every thread busy between polls.
    const std::size_t chunk_points =
        static_cast<std::size_t>(std::max(1, resolved)) * 4;

    /** Send the Result for everything evaluated so far (may be a
     *  steal-shortened prefix). Clears the active shard. */
    const auto finishActive = [&]() -> bool {
        ResultMsg result;
        result.taskId = active->task.taskId;
        result.values = std::move(active->values);
        result.kernel = active->kernel;
        active.reset();
        if (!sendTelemetry())
            return false;
        return sender.send(FrameType::Result, encodeResult(result));
    };

    for (;;) {
        // Promote the next queued shard when idle.
        if (!active && !queue.empty()) {
            TaskMsg task = std::move(queue.front());
            queue.pop_front();
            const auto it = costs.find(task.costId);
            if (it == costs.end()) {
                TaskErrorMsg err;
                err.taskId = task.taskId;
                err.code = kTaskErrorUnknownCost;
                err.message = "unknown cost id";
                if (!sender.send(FrameType::TaskError,
                                 encodeTaskError(err)))
                    return 1;
                continue;
            }
            active.emplace();
            active->task = std::move(task);
            active->cost = it->second.get();
            active->values.reserve(active->task.points.size());
        }

        // Drain the socket: block when idle, peek between sub-batches
        // while evaluating (this is where steal requests land).
        struct pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, active ? 0 : -1);
        if (pr > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR))) {
            std::uint8_t buf[65536];
            const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
            if (r == 0)
                return 0; // pool closed the pipe
            if (r < 0 && errno != EINTR)
                return 1;
            if (r > 0) {
                try {
                    decoder.feed(buf, static_cast<std::size_t>(r));
                    while (auto frame = decoder.next()) {
                        switch (frame->type) {
                          case FrameType::Shutdown:
                            return 0;
                          case FrameType::LoadCost: {
                            CostSpec spec =
                                decodeCostSpec(frame->payload);
                            auto cost =
                                std::make_unique<StatevectorCost>(
                                    std::move(spec.circuit),
                                    std::move(spec.hamiltonian));
                            cost->configureKernel(spec.kernel);
                            if (costs
                                    .try_emplace(spec.costId,
                                                 std::move(cost))
                                    .second)
                                cost_order.push_back(spec.costId);
                            // Evict oldest first, but never a cost an
                            // active or queued shard still references
                            // (active->cost points into the map).
                            std::unordered_set<std::uint64_t> in_use;
                            if (active)
                                in_use.insert(active->task.costId);
                            for (const TaskMsg& t : queue)
                                in_use.insert(t.costId);
                            while (costs.size() > kMaxCachedCosts) {
                                const auto victim = std::find_if(
                                    cost_order.begin(),
                                    cost_order.end(),
                                    [&](std::uint64_t id) {
                                        return !in_use.count(id);
                                    });
                                if (victim == cost_order.end())
                                    break; // all referenced; overshoot
                                costs.erase(*victim);
                                cost_order.erase(victim);
                            }
                            break;
                          }
                          case FrameType::Task:
                            queue.push_back(decodeTask(frame->payload));
                            break;
                          case FrameType::StealRequest: {
                            const StealRequestMsg msg =
                                decodeStealRequest(frame->payload);
                            if (active &&
                                active->task.taskId == msg.taskId) {
                                // Yield the unrun tail: grant first,
                                // then the Result for the evaluated
                                // prefix -- the coordinator shrinks
                                // the shard before the Result lands.
                                StealGrantMsg grant;
                                grant.taskId = msg.taskId;
                                grant.keep = active->next;
                                WireWriter w;
                                encodeStealGrant(w, grant);
                                if (!sender.send(FrameType::StealGrant,
                                                 w.bytes()))
                                    return 1;
                                if (active->next > 0) {
                                    if (!finishActive())
                                        return 1;
                                } else {
                                    active.reset();
                                }
                                break;
                            }
                            const auto qit = std::find_if(
                                queue.begin(), queue.end(),
                                [&](const TaskMsg& t) {
                                    return t.taskId == msg.taskId;
                                });
                            if (qit != queue.end()) {
                                // Not started: yield it whole.
                                StealGrantMsg grant;
                                grant.taskId = msg.taskId;
                                grant.keep = 0;
                                WireWriter w;
                                encodeStealGrant(w, grant);
                                if (!sender.send(FrameType::StealGrant,
                                                 w.bytes()))
                                    return 1;
                                queue.erase(qit);
                            }
                            // Unknown id: the shard finished before
                            // the request arrived; its full Result is
                            // already ahead on the wire. Ignore.
                            break;
                          }
                          default:
                            // Pool-to-worker protocol only; anything
                            // else is a framing bug worth dying
                            // loudly over.
                            std::fprintf(
                                stderr,
                                "oscar-worker: unexpected frame "
                                "type %u\n",
                                static_cast<unsigned>(frame->type));
                            return 2;
                        }
                    }
                } catch (const WireError& e) {
                    std::fprintf(stderr, "oscar-worker: %s\n",
                                 e.what());
                    return 2;
                }
            }
        }

        if (!active)
            continue;

        // One evaluation sub-batch across the worker's own thread
        // pool at its reserved ordinals; the per-chunk replicas share
        // the cost's prefix cache, so checkpoints stay warm across
        // shards and threads alike.
        const std::size_t total = active->task.points.size();
        const std::size_t lo = active->next;
        const std::size_t n = std::min(chunk_points, total - lo);
        if (n > 0) {
            if (slow_us > 0)
                std::this_thread::sleep_for(std::chrono::microseconds(
                    slow_us * static_cast<long>(n)));
            std::vector<std::vector<double>> chunk;
            chunk.reserve(n);
            for (std::size_t i = lo; i < lo + n; ++i)
                chunk.push_back(std::move(active->task.points[i]));
            try {
                BatchHandle handle = engine.submitAt(
                    *active->cost, std::move(chunk),
                    active->task.baseOrdinal + lo);
                std::vector<double> values = handle.get();
                active->kernel += handle.stats().kernel;
                active->values.insert(active->values.end(),
                                      values.begin(), values.end());
                active->next = lo + n;
            } catch (const std::exception& e) {
                TaskErrorMsg err;
                err.taskId = active->task.taskId;
                err.message = e.what();
                active.reset();
                if (!sender.send(FrameType::TaskError,
                                 encodeTaskError(err)))
                    return 1;
                continue;
            }
        }
        if (active->next >= total) {
            if (!finishActive())
                return 1;
        }
    }
}

namespace {

/** One TCP connect attempt to a validated "host:port"; -1 on failure. */
int
connectTo(const std::string& spec)
{
    const std::size_t colon = spec.rfind(':');
    const std::string host = spec.substr(0, colon);
    const std::string port = spec.substr(colon + 1);

    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 ||
        res == nullptr)
        return -1;

    int fd = -1;
    for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            break;
        }
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    return fd;
}

/** Retry for ~5s: a worker may start slightly before its pool. */
int
connectWithRetry(const std::string& spec)
{
    for (int attempt = 0; attempt < 25; ++attempt) {
        const int fd = connectTo(spec);
        if (fd >= 0)
            return fd;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    return -1;
}

} // namespace

int
workerEntry(int argc, char** argv)
{
    int fd = -1;
    int heartbeat_ms = 100;
    int threads = -1; // -1: consult OSCAR_DIST_THREADS below
    std::string connect;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--worker-fd") == 0)
            fd = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--heartbeat-ms") == 0)
            heartbeat_ms = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--threads") == 0)
            threads = std::atoi(argv[i + 1]);
        else if (std::strcmp(argv[i], "--connect") == 0)
            connect = argv[i + 1];
    }
    try {
        if (threads < 0)
            threads = resolveThreadsPerWorker(-1);
        if (fd >= 0)
            return workerMain(fd, heartbeat_ms, threads);
        const std::string target = resolveDistConnect(connect);
        if (!target.empty()) {
            const std::string secret = resolveDistSecret("");
            const int sock = connectWithRetry(target);
            if (sock < 0) {
                std::fprintf(stderr,
                             "oscar-worker: cannot connect to %s\n",
                             target.c_str());
                return 1;
            }
            return workerMain(sock, heartbeat_ms, threads, secret,
                              /*await_challenge=*/true);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "oscar-worker: %s\n", e.what());
        return 64;
    }
    std::fprintf(stderr,
                 "usage: oscar-worker --worker-fd N | "
                 "--connect host:port [--heartbeat-ms M] "
                 "[--threads T]\n"
                 "(spawned by the oscar distributed execution "
                 "subsystem; not meant to be run by hand)\n");
    return 64;
}

} // namespace dist
} // namespace oscar
