/**
 * @file
 * Compact wire format of the distributed execution subsystem.
 *
 * Every message between the coordinating process and an oscar-worker
 * is one *frame*:
 *
 *   [magic u32 "OSCW"][version u16][type u16][raw length u64]
 *   [stored length u64][codec u8]
 *   [stored bytes][crc32 u32 of header + RAW payload]
 *
 * v5 layers per-frame compression under the framing: the encoder
 * picks the smallest of {raw, PackBits, byte-plane PackBits} (the
 * shared codec in src/common/packbits.h, the same one the landscape
 * store uses on disk) and records the choice in the codec byte. A
 * compressed frame's stored length is always strictly smaller than
 * its raw length; incompressible payloads ship raw, so framing never
 * expands beyond the fixed header. The CRC covers the header and the
 * RAW payload: corruption is detected after decode whichever codec
 * was used, a flipped header field (even one that still parses, like
 * a valid neighbouring frame type) fails the trailer check, and
 * decode itself is bounds-checked (a crafted stored stream that
 * overruns or undershoots the declared raw length is a WireError, not
 * an allocation).
 *
 * All integers are little-endian; doubles travel as their IEEE-754
 * bit pattern (the same build runs on both ends, so bitwise transport
 * is what keeps distributed values identical to in-process values).
 * A frame is rejected -- WireError -- on bad magic, unknown version,
 * type, or codec, an oversized or inconsistent length pair, a CRC
 * mismatch, malformed compressed bytes, or payload decode
 * overrun/trailing bytes; a truncated frame is simply "not complete
 * yet" and never yields a message.
 *
 * Payload schemas (task specs with circuit + Hamiltonian + kernel
 * options + reserved ordinals, result frames with values and kernel
 * stats) live here too, so the worker, the pool, and the tests share
 * one encoder/decoder pair per message.
 */

#ifndef OSCAR_DIST_WIRE_H
#define OSCAR_DIST_WIRE_H

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/backend/executor.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/quantum/circuit.h"

namespace oscar {
namespace dist {

/** Malformed wire data (framing, CRC, or payload decode). */
class WireError : public std::runtime_error
{
  public:
    explicit WireError(const std::string& what)
        : std::runtime_error("wire: " + what)
    {
    }
};

constexpr std::uint32_t kWireMagic = 0x4F534357u; // "OSCW"
// v2: KernelOptions carries fuseWindow, KernelStats carries the
// super-kernel/batched-Pauli counters, and the ISA byte admits avx512.
// v3: Hello advertises the worker's evaluation capacity (resolved
// thread count) so the coordinator can size and route shards
// proportionally to hybrid process x thread workers.
// v4: the serving frames (Request/Response/Progress, payload schemas
// in src/serve/protocol.h) join the protocol, carried over the same
// framing on the oscar-serve daemon's Unix socket.
// v5: compressed framing (stored length + codec byte in the header,
// smallest-of {raw, PackBits, plane PackBits} per frame), the
// authenticated TCP handshake (Challenge frame, Hello carries an
// HMAC-style tag over the challenge nonce), and per-point work
// stealing (StealRequest/StealGrant).
// v6: the observability frames. Telemetry ships a worker's trace
// spans and its cumulative metrics snapshot to the coordinator
// (piggybacked on the heartbeat cadence and before each Result);
// MetricsRequest/MetricsResponse let a client scrape a live
// oscar-serve daemon's Prometheus text exposition.
constexpr std::uint16_t kWireVersion = 6;

/**
 * Fixed frame header size (magic + version + type + raw length +
 * stored length + codec byte).
 */
constexpr std::size_t kFrameHeaderSize = 25;

/** Hard upper bound on one frame's payload (sanity, not a target). */
constexpr std::size_t kMaxFramePayload = std::size_t{1} << 30;

/** Message kinds of the protocol. */
enum class FrameType : std::uint16_t
{
    Hello = 1,     ///< worker -> pool: pid + wire version + kernel ISA
    LoadCost = 2,  ///< pool -> worker: cost spec to cache by id
    Task = 3,      ///< pool -> worker: one parameter-point shard
    Result = 4,    ///< worker -> pool: shard values + kernel stats
    Heartbeat = 5, ///< worker -> pool: liveness beacon
    TaskError = 6, ///< worker -> pool: shard evaluation failed
    Shutdown = 7,  ///< pool -> worker: drain and exit
    // v4: client <-> oscar-serve daemon (src/serve/protocol.h).
    Request = 8,   ///< client -> serve: reconstruction/query/stats
    Response = 9,  ///< serve -> client: terminal answer to a Request
    Progress = 10, ///< serve -> client: sampling progress of a Request
    // v5: elastic TCP membership and work stealing.
    Challenge = 11,    ///< pool -> worker: auth nonce (TCP accept)
    StealRequest = 12, ///< pool -> worker: yield a shard's unrun tail
    StealGrant = 13,   ///< worker -> pool: how much of it was kept
    // v6: observability (src/obs/).
    Telemetry = 14,       ///< worker -> pool: spans + metrics snapshot
    MetricsRequest = 15,  ///< client -> serve: scrape live metrics
    MetricsResponse = 16, ///< serve -> client: Prometheus exposition
};

/**
 * CRC-32 (IEEE 802.3 polynomial) of a byte span. The implementation
 * lives in src/common/crc32.h, shared with the on-disk landscape
 * archive; this alias keeps the historical wire-layer entry point.
 */
std::uint32_t crc32(std::span<const std::uint8_t> data);

// ---------------------------------------------------------------------
// Primitive encode/decode
// ---------------------------------------------------------------------

/** Little-endian append-only byte buffer. */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void f64(double v);
    void str(const std::string& s);

    const std::vector<std::uint8_t>& bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked little-endian reader; throws WireError on overrun. */
class WireReader
{
  public:
    explicit WireReader(std::span<const std::uint8_t> data)
        : data_(data)
    {
    }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    double f64();
    std::string str();

    bool atEnd() const { return pos_ == data_.size(); }
    std::size_t remaining() const { return data_.size() - pos_; }

    /** Throw unless the payload was consumed exactly. */
    void expectEnd() const;

  private:
    const std::uint8_t* need(std::size_t n);

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::vector<std::uint8_t> payload;
    /**
     * Bytes this frame occupied on the wire (header + stored bytes +
     * CRC), as consumed by the decoder. With compression this is at
     * most kFrameHeaderSize + payload.size() + 4; the delta is the
     * framing layer's on-wire saving (BatchStats::bytesOnWire*).
     */
    std::size_t wireBytes = 0;
};

/**
 * Serialize a complete frame (header + stored payload + CRC over the
 * raw payload), compressing the payload when that strictly shrinks it.
 */
std::vector<std::uint8_t> encodeFrame(FrameType type,
                                      std::span<const std::uint8_t> payload);

/**
 * Incremental frame decoder over a byte stream. feed() appends raw
 * bytes; next() yields complete, CRC-verified frames in order, or
 * nullopt while the tail frame is still truncated. Corruption throws
 * WireError, after which the stream is unusable (the transport --
 * a worker connection -- is torn down, not resynchronized).
 */
class FrameDecoder
{
  public:
    void feed(const std::uint8_t* data, std::size_t n);
    std::optional<Frame> next();

    /** Bytes buffered but not yet consumed by next(). */
    std::size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Message payloads
// ---------------------------------------------------------------------

/** Worker greeting. */
struct HelloMsg
{
    std::int32_t pid = 0;
    std::uint16_t wireVersion = kWireVersion;
    kernels::KernelIsa isa = kernels::KernelIsa::Scalar;
    /**
     * v3: evaluation threads the worker resolved for its own
     * ExecutionEngine pool (its advertised capacity; >= 1). A v2-shaped
     * payload without the field decodes as 1 -- the pre-hybrid
     * single-threaded worker.
     */
    std::uint16_t threads = 1;
    /**
     * v5: HMAC-style tag over the pool's Challenge nonce and this
     * Hello's identity fields, keyed by the shared fleet secret
     * (helloAuthTag). Zero on unchallenged transports (the pool's own
     * socketpair workers) and in v3-shaped payloads without the field.
     */
    std::uint64_t authTag = 0;
};

/** Authentication challenge the pool sends on a fresh TCP accept. */
struct ChallengeMsg
{
    std::uint64_t nonce = 0;
};

/**
 * Pool -> worker: the named in-flight shard should yield its unrun
 * tail to an idle worker. The worker answers with a StealGrant naming
 * how many leading points it keeps (its completed prefix) and then
 * sends a Result for exactly that prefix; a worker that already
 * finished (or never knew) the shard simply ignores the request --
 * its full Result is already on the wire ahead of any grant.
 */
struct StealRequestMsg
{
    std::uint64_t taskId = 0;
};

/**
 * Worker -> pool: the shard keeps its first `keep` points; the pool
 * re-shards [keep, size) onto the queue under a fresh task id. keep=0
 * means the worker had not started the shard (no Result will follow).
 * Ordinals were reserved at submission, so the stolen tail evaluates
 * bit-identically wherever it lands.
 */
struct StealGrantMsg
{
    std::uint64_t taskId = 0;
    std::uint64_t keep = 0;
};

/**
 * A cost function a worker can evaluate: ansatz circuit + Hamiltonian
 * + kernel tuning. Content-addressed: `costId` is the FNV-1a hash of
 * the encoded body, so the pool loads each distinct cost into each
 * worker at most once and requeues survive without renegotiation.
 */
struct CostSpec
{
    std::uint64_t costId = 0;
    Circuit circuit;
    PauliSum hamiltonian{1};
    KernelOptions kernel;
};

/** One parameter-point shard with its reserved ordinal base. */
struct TaskMsg
{
    std::uint64_t taskId = 0;
    std::uint64_t costId = 0;
    /** First point's reserved ordinal (point i runs at base + i). */
    std::uint64_t baseOrdinal = 0;
    std::vector<std::vector<double>> points;
};

/** Completed shard: values plus the kernel-layer counter delta. */
struct ResultMsg
{
    std::uint64_t taskId = 0;
    std::vector<double> values;
    KernelStats kernel;
};

/** TaskErrorMsg::code values. */
enum : std::uint8_t
{
    /** The cost evaluation threw; the batch fails. */
    kTaskErrorEvaluation = 0,
    /**
     * The worker no longer holds this cost id (its bounded spec cache
     * evicted it); the pool re-sends the spec and requeues the shard.
     */
    kTaskErrorUnknownCost = 1,
};

/** Failed shard. */
struct TaskErrorMsg
{
    std::uint64_t taskId = 0;
    std::uint8_t code = kTaskErrorEvaluation;
    std::string message;
};

/**
 * v6: one observability report from a worker process -- the spans its
 * tracer drained since the last report (each span ships exactly once)
 * plus its *cumulative* metrics snapshot. Cumulative is what makes
 * the coordinator-side merge deterministic: the pool replaces the
 * worker's previous snapshot instead of accumulating deltas, so lost
 * or reordered reports never double-count. Suppressed entirely when
 * both tracing and metrics are disabled.
 */
struct TelemetryMsg
{
    std::int32_t pid = 0;
    std::vector<obs::SpanRecord> spans;
    obs::MetricsSnapshot metrics;
};

/** v6: client -> oscar-serve metrics scrape. */
struct MetricsRequestMsg
{
    /** Client-chosen id echoed by the MetricsResponse. */
    std::uint64_t tag = 0;
};

/** v6: the daemon's answer -- Prometheus text exposition. */
struct MetricsResponseMsg
{
    std::uint64_t tag = 0;
    std::string text;
};

void encodeHello(WireWriter& w, const HelloMsg& msg);
HelloMsg decodeHello(std::span<const std::uint8_t> payload);

/**
 * The v5 membership tag: an HMAC-style FNV-1a construction over the
 * challenge nonce and the Hello's identity fields (pid, wire version,
 * ISA, capacity), keyed by the shared fleet secret. This gates
 * membership against accidental cross-fleet joins and stray
 * connections -- it is NOT cryptographic security; run fleets on
 * trusted networks.
 */
std::uint64_t helloAuthTag(const std::string& secret, std::uint64_t nonce,
                           const HelloMsg& msg);

void encodeChallenge(WireWriter& w, const ChallengeMsg& msg);
ChallengeMsg decodeChallenge(std::span<const std::uint8_t> payload);

void encodeStealRequest(WireWriter& w, const StealRequestMsg& msg);
StealRequestMsg decodeStealRequest(std::span<const std::uint8_t> payload);

void encodeStealGrant(WireWriter& w, const StealGrantMsg& msg);
StealGrantMsg decodeStealGrant(std::span<const std::uint8_t> payload);

void encodeCircuit(WireWriter& w, const Circuit& circuit);
Circuit decodeCircuit(WireReader& r);

void encodePauliSum(WireWriter& w, const PauliSum& sum);
PauliSum decodePauliSum(WireReader& r);

void encodeKernelOptions(WireWriter& w, const KernelOptions& options);
KernelOptions decodeKernelOptions(WireReader& r);

void encodeKernelStats(WireWriter& w, const KernelStats& stats);
KernelStats decodeKernelStats(WireReader& r);

/**
 * Encode a cost spec body and stamp costId with the body's FNV-1a
 * hash (ignoring any costId already set).
 */
std::vector<std::uint8_t> encodeCostSpec(CostSpec& spec);
CostSpec decodeCostSpec(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encodeTask(const TaskMsg& msg);
TaskMsg decodeTask(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encodeResult(const ResultMsg& msg);
ResultMsg decodeResult(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encodeTaskError(const TaskErrorMsg& msg);
TaskErrorMsg decodeTaskError(std::span<const std::uint8_t> payload);

void encodeMetricsSnapshot(WireWriter& w,
                           const obs::MetricsSnapshot& snapshot);
obs::MetricsSnapshot decodeMetricsSnapshot(WireReader& r);

std::vector<std::uint8_t> encodeTelemetry(const TelemetryMsg& msg);
TelemetryMsg decodeTelemetry(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t> encodeMetricsRequest(const MetricsRequestMsg& msg);
MetricsRequestMsg decodeMetricsRequest(std::span<const std::uint8_t> payload);

std::vector<std::uint8_t>
encodeMetricsResponse(const MetricsResponseMsg& msg);
MetricsResponseMsg
decodeMetricsResponse(std::span<const std::uint8_t> payload);

} // namespace dist
} // namespace oscar

#endif // OSCAR_DIST_WIRE_H
