/**
 * @file
 * Multi-process landscape sharding behind a fault-tolerant task queue.
 *
 * The ProcessPool forks worker processes -- the `oscar-worker` entry
 * point of this same build -- each connected over a socketpair, and
 * implements the ExecutionEngine submission surface: submit() returns
 * a BatchHandle whose Control is backed by remote execution. A
 * submitted batch is cut into contiguous parameter-point shards and
 * placed on a shared FIFO task queue; a monitor thread dispatches
 * shards to idle workers, collects result frames, and watches
 * liveness.
 *
 * Elastic TCP fleets: with DistOptions::listen set, the pool binds a
 * TCP listener instead of (only) socketpairs. Local workers connect
 * over loopback, and any `oscar-worker --connect host:port` process
 * -- on this machine or another -- may join at any time, mid-batch
 * included. Every TCP accept is challenged (a nonce frame); the
 * worker's Hello must carry the HMAC-style tag keyed by the shared
 * fleet secret, or the connection is dropped before it can receive
 * work. A joiner is simply another dispatch target: queued shards
 * flow to it on the next dispatch pass. Departure is the existing
 * death path below. A listening pool with zero members keeps batches
 * queued until someone joins rather than failing them.
 *
 * Fault tolerance: every worker heartbeats on a fixed period. A
 * worker that closes its pipe (crash, SIGKILL) is detected
 * immediately; one that goes silent past the heartbeat timeout (hang,
 * SIGSTOP) is killed. Either way its in-flight shard goes back on the
 * queue -- head first, so recovery preempts new work -- and runs on a
 * surviving worker; BatchStats::shardsRequeued counts these. When no
 * workers survive, outstanding batches fail with an error rather than
 * hanging (unless the pool is listening, where new members can still
 * arrive), and the engine falls back to in-process execution for
 * later submissions.
 *
 * Work stealing: when the queue drains and a member goes idle while
 * another still holds a large in-flight shard, the coordinator sends
 * a StealRequest; the busy worker grants its unrun tail between
 * evaluation sub-batches, and the tail is re-sharded onto the queue
 * for the idle worker (BatchStats::shardsStolen). Per-frame payload
 * compression (smallest-of {raw, PackBits, plane PackBits}, shared
 * with the landscape store's codec) keeps cost specs and f64 arrays
 * small on the wire; BatchStats::bytesOnWire{Raw,Compressed} report
 * the saving per batch.
 *
 * Determinism contract: queries and ordinals are reserved at
 * submission in the coordinating process (exactly like the thread
 * engine), each shard carries its ordinal base on the wire, and
 * workers of the same build evaluate with the same kernel ISA
 * (resolved concretely before the cost spec is serialized). Values
 * are therefore bit-identical to in-process execution for any worker
 * count, any completion order, and any number of crash-triggered
 * requeues.
 */

#ifndef OSCAR_DIST_PROCESS_POOL_H
#define OSCAR_DIST_PROCESS_POOL_H

#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/backend/engine.h"
#include "src/dist/options.h"

namespace oscar {
namespace dist {

struct PoolCore;    // shared pool state (process_pool.cpp)
struct RemoteBatch; // remote-execution BatchHandle::Control (ditto)

/** Pool-lifetime counters (monotonic; safe to poll anytime). */
struct PoolStats
{
    std::size_t workersSpawned = 0;
    std::size_t workersLost = 0;
    /** TCP members that passed the authenticated Hello handshake. */
    std::size_t workersJoined = 0;
    std::size_t tasksDispatched = 0;
    std::size_t tasksRequeued = 0;
    /** Shard tails split off busy workers via StealRequest/Grant. */
    std::size_t tasksStolen = 0;
    /** Dispatches to TCP members that were not spawned by this pool. */
    std::size_t tasksToRemote = 0;
};

/** Fork/exec worker-process pool with the engine submission surface. */
class ProcessPool
{
  public:
    /**
     * Spawns options.numWorkers workers (must be >= 1). Throws
     * std::runtime_error when the worker executable cannot be
     * resolved or the processes cannot be created; the caller (the
     * ExecutionEngine) treats that as "distribution unavailable" and
     * stays in-process.
     */
    explicit ProcessPool(const DistOptions& options);

    /**
     * Cancels still-queued shards (refunding their queries), drains
     * in-flight shards, shuts the workers down, and reaps them.
     * Outstanding handles stay valid, exactly like engine handles.
     */
    ~ProcessPool();

    ProcessPool(const ProcessPool&) = delete;
    ProcessPool& operator=(const ProcessPool&) = delete;

    /** Workers spawned at construction. */
    int numWorkers() const;

    /**
     * True while at least one fully-handshaken worker is alive, or
     * the pool is listening for joiners (an elastic fleet is healthy
     * even while momentarily empty).
     */
    bool healthy() const;

    /**
     * Pids of the currently-alive local workers (fault injection
     * hooks). Remote TCP members run in other processes -- possibly
     * on other hosts -- and are not listed.
     */
    std::vector<int> workerPids() const;

    /**
     * The TCP listener's bound port (useful with a ":0" listen spec),
     * or 0 when the pool is not listening.
     */
    std::uint16_t listenPort() const;

    PoolStats stats() const;

    /**
     * Submit a batch for remote execution; same semantics as
     * ExecutionEngine::submit (ordinals/queries reserved here, in
     * submission order; result[i] corresponds to points[i];
     * onComplete streams per completed shard in submission order
     * within the shard). Throws -- before consuming `points` or
     * reserving anything -- if the cost is not distributable or the
     * pool has no live workers.
     */
    BatchHandle submit(CostFunction& cost,
                       std::vector<std::vector<double>>&& points,
                       SubmitOptions options = {});

    /**
     * Locate the worker executable: `override` if non-empty, else
     * $OSCAR_WORKER_BIN, else the build tree's oscar-worker, else an
     * oscar-worker beside /proc/self/exe. Throws when none exists.
     */
    static std::string resolveWorkerPath(const std::string& override_path);

  private:
    static void monitorLoop(const std::shared_ptr<PoolCore>& core);

    std::shared_ptr<PoolCore> core_;
    std::thread monitor_;
};

} // namespace dist
} // namespace oscar

#endif // OSCAR_DIST_PROCESS_POOL_H
