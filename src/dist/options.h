/**
 * @file
 * Configuration of the distributed execution subsystem.
 *
 * Kept free of other project includes so the backend layer
 * (backend/engine.h) and the core pipelines (core/oscar.h) can embed
 * these options by value without depending on the process pool itself.
 */

#ifndef OSCAR_DIST_OPTIONS_H
#define OSCAR_DIST_OPTIONS_H

#include <cstddef>
#include <string>

namespace oscar {
namespace dist {

/**
 * Multi-process landscape sharding configuration.
 *
 * With numWorkers > 0 the ExecutionEngine forks worker processes (the
 * `oscar-worker` entry point of the same build) and routes large
 * batches of distributable cost functions to them as parameter-point
 * shards over a fault-tolerant task queue. Ordinals are reserved at
 * submission, so results are bit-identical to in-process execution
 * (for a fixed kernel ISA) regardless of worker count, completion
 * order, or crash-triggered requeues.
 */
struct DistOptions
{
    /**
     * Worker processes. 0 = disabled unless the OSCAR_DIST_WORKERS
     * environment variable names a count; negative = force-disabled
     * (ignore the environment too).
     */
    int numWorkers = 0;

    /**
     * Points per task shard. 0 = auto: roughly four shards per worker
     * per batch, so a crashed worker forfeits at most ~1/(4W) of the
     * batch and stragglers rebalance, while shards stay long enough to
     * keep each worker's prefix cache hot. Purely a performance knob:
     * sharding never changes values.
     */
    std::size_t shardSize = 0;

    /**
     * Batches smaller than this run in-process (threaded): a process
     * round-trip costs more than it saves on tiny batches.
     */
    std::size_t minPointsToDistribute = 16;

    /** Worker heartbeat period, milliseconds. */
    int heartbeatIntervalMs = 100;

    /**
     * A worker silent for this long (no heartbeat, result, or hello)
     * is declared dead: it is killed, and its in-flight shard is
     * requeued onto the surviving workers. Crashes are additionally
     * detected immediately via pipe EOF; the timeout catches hung
     * (not crashed) workers.
     */
    int heartbeatTimeoutMs = 3000;

    /**
     * Worker executable. Empty = resolve automatically: the
     * OSCAR_WORKER_BIN environment variable, then the build
     * directory's `oscar-worker`, then an `oscar-worker` next to the
     * current executable.
     */
    std::string workerPath;
};

} // namespace dist
} // namespace oscar

#endif // OSCAR_DIST_OPTIONS_H
