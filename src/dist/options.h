/**
 * @file
 * Configuration of the distributed execution subsystem.
 *
 * Kept free of other project includes so the backend layer
 * (backend/engine.h) and the core pipelines (core/oscar.h) can embed
 * these options by value without depending on the process pool itself.
 */

#ifndef OSCAR_DIST_OPTIONS_H
#define OSCAR_DIST_OPTIONS_H

#include <cstddef>
#include <string>

namespace oscar {
namespace dist {

/**
 * Multi-process landscape sharding configuration.
 *
 * With numWorkers > 0 the ExecutionEngine forks worker processes (the
 * `oscar-worker` entry point of the same build) and routes large
 * batches of distributable cost functions to them as parameter-point
 * shards over a fault-tolerant task queue. Ordinals are reserved at
 * submission, so results are bit-identical to in-process execution
 * (for a fixed kernel ISA) regardless of worker count, completion
 * order, or crash-triggered requeues.
 */
struct DistOptions
{
    /**
     * Worker processes. 0 = disabled unless the OSCAR_DIST_WORKERS
     * environment variable names a count; negative = force-disabled
     * (ignore the environment too).
     */
    int numWorkers = 0;

    /**
     * Evaluation threads inside each worker process (the worker's own
     * ExecutionEngine pool; hybrid process x thread execution).
     * -1 = consult the OSCAR_DIST_THREADS environment variable, and
     * when that is unset too, run single-threaded workers (the
     * pre-hybrid default). 0 = the worker host's hardware concurrency,
     * resolved worker-side and advertised back in its Hello frame.
     * >= 1 = exactly that many threads. Thread count never changes
     * values (the engine's determinism contract); it changes how much
     * capacity the worker advertises and how the coordinator sizes
     * shards.
     */
    int threadsPerWorker = -1;

    /**
     * Points per task shard. 0 = auto: roughly four shards per unit of
     * advertised capacity per batch (a single-threaded worker counts
     * 1, a T-thread worker T), so a crashed worker forfeits at most a
     * small slice of the batch and stragglers rebalance, while shards
     * stay long enough to keep each worker's prefix cache hot and wide
     * enough to feed its thread pool. Purely a performance knob:
     * sharding never changes values.
     */
    std::size_t shardSize = 0;

    /**
     * Batches smaller than this run in-process (threaded): a process
     * round-trip costs more than it saves on tiny batches.
     */
    std::size_t minPointsToDistribute = 16;

    /** Worker heartbeat period, milliseconds. */
    int heartbeatIntervalMs = 100;

    /**
     * A worker silent for this long (no heartbeat, result, or hello)
     * is declared dead: it is killed, and its in-flight shard is
     * requeued onto the surviving workers. Crashes are additionally
     * detected immediately via pipe EOF; the timeout catches hung
     * (not crashed) workers.
     */
    int heartbeatTimeoutMs = 3000;

    /**
     * Worker executable. Empty = resolve automatically: the
     * OSCAR_WORKER_BIN environment variable, then the build
     * directory's `oscar-worker`, then an `oscar-worker` next to the
     * current executable.
     */
    std::string workerPath;

    /**
     * TCP listen address, "host:port" (port 0 = kernel-assigned,
     * readable back via ProcessPool::listenPort()). Non-empty turns
     * the pool into an elastic TCP fleet coordinator: local workers
     * connect over loopback instead of socketpairs, and remote
     * `oscar-worker --connect host:port` processes may join or leave
     * at any time -- mid-batch included. Empty = consult the
     * OSCAR_DIST_LISTEN environment variable (resolveDistListen); the
     * literal "none" forces socketpair transport even when the
     * environment names a listener. With a listener, numWorkers may
     * be 0: a coordinator that serves only remote joiners.
     */
    std::string listen;

    /**
     * Shared fleet secret for the authenticated Hello handshake on
     * TCP accepts (an HMAC-style challenge tag; see
     * dist::helloAuthTag). Empty = consult OSCAR_DIST_SECRET
     * (resolveDistSecret); when that is unset too, the fleet runs
     * unauthenticated (the challenge is still issued, with an
     * empty-secret key). Every member must agree on the secret.
     */
    std::string secret;

    /**
     * Per-point work stealing: when the queue drains and a worker
     * goes idle, the coordinator asks the worker holding the largest
     * in-flight shard to yield its unrun tail (StealRequest /
     * StealGrant) and re-dispatches that tail to the idle worker.
     * Ordinals are reserved at submission, so stealing never changes
     * values; it only shortens the straggler tail. On by default;
     * off is mainly for benchmarking the unstolen baseline.
     */
    bool steal = true;
};

/**
 * Resolve DistOptions::threadsPerWorker: a non-negative value is
 * returned as-is; -1 consults the OSCAR_DIST_THREADS environment
 * variable (unset = 1, the pre-hybrid single-threaded worker). Like
 * OSCAR_DIST_WORKERS, a malformed or out-of-range value (valid range
 * 0..256, 0 = worker-host hardware concurrency) throws
 * std::runtime_error instead of silently running without the
 * parallelism the user asked for. Defined in process_pool.cpp.
 */
int resolveThreadsPerWorker(int configured);

/**
 * Resolve DistOptions::listen: a non-empty configured value wins
 * (validated); empty consults OSCAR_DIST_LISTEN (unset = "", no
 * listener). The literal "none" -- configured or in the environment --
 * resolves to "" (socketpair transport), so callers can pin the
 * transport against an inherited environment. Anything else must be
 * "host:port" with a numeric port 0..65535 (0 = kernel-assigned);
 * malformed input throws std::runtime_error naming the valid form.
 * Defined in process_pool.cpp.
 */
std::string resolveDistListen(const std::string& configured);

/**
 * Resolve a worker's connect address: a non-empty configured value
 * wins (validated); empty consults OSCAR_DIST_CONNECT (unset = "").
 * Must be "host:port" with a numeric port 1..65535 (a worker cannot
 * connect to port 0); malformed input throws std::runtime_error
 * naming the valid form. Defined in process_pool.cpp.
 */
std::string resolveDistConnect(const std::string& configured);

/**
 * Resolve DistOptions::secret: a non-empty configured value wins;
 * empty consults OSCAR_DIST_SECRET (unset = "", unauthenticated
 * fleet). A set-but-empty or over-long (> 256 bytes) secret throws
 * std::runtime_error naming the valid form -- an empty exported
 * secret is a misconfiguration, not a choice. Defined in
 * process_pool.cpp.
 */
std::string resolveDistSecret(const std::string& configured);

} // namespace dist
} // namespace oscar

#endif // OSCAR_DIST_OPTIONS_H
