/**
 * @file
 * Configuration of the distributed execution subsystem.
 *
 * Kept free of other project includes so the backend layer
 * (backend/engine.h) and the core pipelines (core/oscar.h) can embed
 * these options by value without depending on the process pool itself.
 */

#ifndef OSCAR_DIST_OPTIONS_H
#define OSCAR_DIST_OPTIONS_H

#include <cstddef>
#include <string>

namespace oscar {
namespace dist {

/**
 * Multi-process landscape sharding configuration.
 *
 * With numWorkers > 0 the ExecutionEngine forks worker processes (the
 * `oscar-worker` entry point of the same build) and routes large
 * batches of distributable cost functions to them as parameter-point
 * shards over a fault-tolerant task queue. Ordinals are reserved at
 * submission, so results are bit-identical to in-process execution
 * (for a fixed kernel ISA) regardless of worker count, completion
 * order, or crash-triggered requeues.
 */
struct DistOptions
{
    /**
     * Worker processes. 0 = disabled unless the OSCAR_DIST_WORKERS
     * environment variable names a count; negative = force-disabled
     * (ignore the environment too).
     */
    int numWorkers = 0;

    /**
     * Evaluation threads inside each worker process (the worker's own
     * ExecutionEngine pool; hybrid process x thread execution).
     * -1 = consult the OSCAR_DIST_THREADS environment variable, and
     * when that is unset too, run single-threaded workers (the
     * pre-hybrid default). 0 = the worker host's hardware concurrency,
     * resolved worker-side and advertised back in its Hello frame.
     * >= 1 = exactly that many threads. Thread count never changes
     * values (the engine's determinism contract); it changes how much
     * capacity the worker advertises and how the coordinator sizes
     * shards.
     */
    int threadsPerWorker = -1;

    /**
     * Points per task shard. 0 = auto: roughly four shards per unit of
     * advertised capacity per batch (a single-threaded worker counts
     * 1, a T-thread worker T), so a crashed worker forfeits at most a
     * small slice of the batch and stragglers rebalance, while shards
     * stay long enough to keep each worker's prefix cache hot and wide
     * enough to feed its thread pool. Purely a performance knob:
     * sharding never changes values.
     */
    std::size_t shardSize = 0;

    /**
     * Batches smaller than this run in-process (threaded): a process
     * round-trip costs more than it saves on tiny batches.
     */
    std::size_t minPointsToDistribute = 16;

    /** Worker heartbeat period, milliseconds. */
    int heartbeatIntervalMs = 100;

    /**
     * A worker silent for this long (no heartbeat, result, or hello)
     * is declared dead: it is killed, and its in-flight shard is
     * requeued onto the surviving workers. Crashes are additionally
     * detected immediately via pipe EOF; the timeout catches hung
     * (not crashed) workers.
     */
    int heartbeatTimeoutMs = 3000;

    /**
     * Worker executable. Empty = resolve automatically: the
     * OSCAR_WORKER_BIN environment variable, then the build
     * directory's `oscar-worker`, then an `oscar-worker` next to the
     * current executable.
     */
    std::string workerPath;
};

/**
 * Resolve DistOptions::threadsPerWorker: a non-negative value is
 * returned as-is; -1 consults the OSCAR_DIST_THREADS environment
 * variable (unset = 1, the pre-hybrid single-threaded worker). Like
 * OSCAR_DIST_WORKERS, a malformed or out-of-range value (valid range
 * 0..256, 0 = worker-host hardware concurrency) throws
 * std::runtime_error instead of silently running without the
 * parallelism the user asked for. Defined in process_pool.cpp.
 */
int resolveThreadsPerWorker(int configured);

} // namespace dist
} // namespace oscar

#endif // OSCAR_DIST_OPTIONS_H
