#include "src/dist/process_pool.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <optional>
#include <random>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/dist/wire.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

extern char** environ;

namespace oscar {
namespace dist {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Write the whole buffer to a non-blocking socket, polling for
 * writability up to `deadline`. Returns false on any failure (peer
 * gone, deadline passed); MSG_NOSIGNAL keeps a dead peer from raising
 * SIGPIPE.
 */
bool
sendAll(int fd, const std::uint8_t* data, std::size_t n,
        Clock::time_point deadline)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
        if (w > 0) {
            off += static_cast<std::size_t>(w);
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            const auto now = Clock::now();
            if (now >= deadline)
                return false;
            struct pollfd pfd{fd, POLLOUT, 0};
            const auto remain =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - now)
                    .count();
            ::poll(&pfd, 1, static_cast<int>(std::max<long long>(
                                1, std::min<long long>(remain, 100))));
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

/** "host:port" with a numeric port inside [min_port, max_port]? */
bool
parseHostPort(const std::string& spec, long min_port, long max_port)
{
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size())
        return false;
    const std::string port = spec.substr(colon + 1);
    char* end = nullptr;
    const long parsed = std::strtol(port.c_str(), &end, 10);
    return end != port.c_str() && *end == '\0' && parsed >= min_port &&
           parsed <= max_port;
}

} // namespace

// --------------------------------------------------------- resolvers

int
resolveThreadsPerWorker(int configured)
{
    if (configured >= 0)
        return configured;
    const char* env = std::getenv("OSCAR_DIST_THREADS");
    if (!env)
        return 1; // pre-hybrid default: single-threaded workers
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 0 || parsed > 256)
        throw std::runtime_error(
            "OSCAR_DIST_THREADS: expected a per-worker thread count "
            "(0..256, 0 = hardware), got \"" +
            std::string(env) + "\"");
    return static_cast<int>(parsed);
}

std::string
resolveDistListen(const std::string& configured)
{
    std::string value = configured;
    std::string source = "DistOptions::listen";
    if (value.empty()) {
        const char* env = std::getenv("OSCAR_DIST_LISTEN");
        if (!env)
            return "";
        value = env;
        source = "OSCAR_DIST_LISTEN";
    }
    if (value == "none")
        return "";
    if (!parseHostPort(value, 0, 65535))
        throw std::runtime_error(
            source +
            ": expected \"host:port\" (numeric port 0..65535, 0 = "
            "kernel-assigned) or \"none\", got \"" +
            value + "\"");
    return value;
}

std::string
resolveDistConnect(const std::string& configured)
{
    std::string value = configured;
    std::string source = "--connect";
    if (value.empty()) {
        const char* env = std::getenv("OSCAR_DIST_CONNECT");
        if (!env)
            return "";
        value = env;
        source = "OSCAR_DIST_CONNECT";
    }
    if (!parseHostPort(value, 1, 65535))
        throw std::runtime_error(
            source +
            ": expected \"host:port\" (numeric port 1..65535), got \"" +
            value + "\"");
    return value;
}

std::string
resolveDistSecret(const std::string& configured)
{
    constexpr std::size_t kMaxSecretBytes = 256;
    if (!configured.empty()) {
        if (configured.size() > kMaxSecretBytes)
            throw std::runtime_error(
                "DistOptions::secret: expected a shared secret of at "
                "most 256 bytes");
        return configured;
    }
    const char* env = std::getenv("OSCAR_DIST_SECRET");
    if (!env)
        return "";
    const std::string value(env);
    if (value.empty() || value.size() > kMaxSecretBytes)
        throw std::runtime_error(
            "OSCAR_DIST_SECRET: expected a non-empty shared secret of "
            "at most 256 bytes");
    return value;
}

// ------------------------------------------------------------- state

/** One shard of one batch on the shared task queue. */
struct Shard
{
    std::shared_ptr<RemoteBatch> batch;
    std::size_t lo = 0;
    std::size_t hi = 0;
    std::uint64_t taskId = 0;
    /** A StealRequest for this shard is on the wire, grant pending. */
    bool stealPending = false;
    /** When the shard (re)entered the queue; feeds the queue-wait
     *  histogram at dispatch time. */
    std::uint64_t enqueuedNs = 0;
};

/**
 * Outstanding shards per worker. Depth 2 pipelines the dispatch
 * round-trip: the next shard rides the wire (and sits in the worker's
 * socket buffer) while the current one computes, so a worker never
 * idles between shards. Deeper queues would only grow the amount of
 * work a crash requeues.
 */
constexpr std::size_t kPipelineDepth = 2;

/** One pool member: a forked local worker (socketpair or loopback
 *  TCP) or a remote TCP joiner. All fields monitor-owned; pid/alive
 *  also read by workerPids()/healthy() under the core mutex. */
struct WorkerProc
{
    int pid = -1;
    int fd = -1;
    bool alive = false;
    bool helloSeen = false;
    /** TCP member not (yet) bound to a pid this pool spawned. */
    bool remote = false;
    /** Challenge issued; the Hello must carry the matching auth tag. */
    bool needsAuth = false;
    std::uint64_t nonce = 0;
    /** Evaluation threads the worker advertised in its Hello (>= 1). */
    std::uint16_t capacity = 1;
    /** The pid the worker reported in its Hello -- the key its
     *  Telemetry frames use (equals `pid` for plain locals; set even
     *  for remote members, whose `pid` stays -1). */
    std::int32_t telemetryPid = 0;
    FrameDecoder decoder;
    Clock::time_point lastHeard;
    /** In dispatch order, at most kPipelineDepth deep. */
    std::vector<Shard> inflight;
    std::unordered_set<std::uint64_t> loadedCosts;
};

/** A pid this pool forked in TCP mode; bound once its Hello arrives. */
struct SpawnedPid
{
    int pid = -1;
    bool bound = false;
};

/**
 * Shared pool core. RemoteBatch handles keep it alive through a
 * weak_ptr upgrade in cancel(), so a handle outliving the pool never
 * dereferences freed state.
 *
 * Lock ordering: core.mutex may be held while taking a batch's mutex,
 * never the reverse.
 */
struct PoolCore
{
    DistOptions options;
    std::string workerPath;

    mutable std::mutex mutex;
    std::deque<Shard> pending;
    /** Deque: joiners push_back without invalidating member refs. */
    std::deque<WorkerProc> workers;
    bool stop = false;
    PoolStats stats;
    std::uint64_t nextTaskId = 1;
    /** Content-addressed cost specs (LoadCost payloads) by costId. */
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> costs;

    // Elastic TCP fleet state.
    bool listening = false;
    int listenFd = -1;
    std::uint16_t boundPort = 0;
    /** Locals forked in TCP mode, bound to members by Hello pid. */
    std::vector<SpawnedPid> spawned;
    /** Local membership progress; the constructor waits on these. */
    std::size_t localHelloCount = 0;
    std::size_t localDeadCount = 0;
    std::condition_variable membershipCv;
    /** Challenge nonces (membership gating, not cryptography). */
    std::mt19937_64 rng{std::random_device{}()};

    int wakeRead = -1;
    int wakeWrite = -1;

    Clock::time_point
    sendDeadline() const
    {
        return Clock::now() +
               std::chrono::milliseconds(options.heartbeatTimeoutMs);
    }
};

/** Remote-execution Control behind a BatchHandle. */
struct RemoteBatch final : BatchHandle::Control
{
    std::weak_ptr<PoolCore> core;
    std::vector<std::vector<double>> points;
    CostFunction* cost = nullptr;
    std::uint64_t costId = 0;
    std::uint64_t baseOrdinal = 0;
    SubmitOptions options;

    mutable std::mutex m;
    std::condition_variable cv;
    std::vector<double> out;
    BatchStats progress;
    std::exception_ptr error;
    std::size_t shardsTotal = 0;
    std::size_t shardsAccounted = 0;
    bool finished = false;

    /** Serializes onComplete invocations (never held with `m`). */
    std::mutex callbackMutex;

    bool
    done() const override
    {
        std::lock_guard<std::mutex> lock(m);
        return finished;
    }

    void
    wait() override
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return finished; });
    }

    std::vector<double>
    get() override
    {
        wait();
        std::lock_guard<std::mutex> lock(m);
        if (error)
            std::rethrow_exception(error);
        if (progress.pointsCancelled > 0)
            throw std::runtime_error(
                "BatchHandle::get: batch was cancelled");
        return out;
    }

    bool
    cancel() override
    {
        // Pull this batch's still-queued shards off the shared queue;
        // in-flight shards complete and are charged, like the engine.
        // After the pool died there is nothing left to skip (its
        // destructor already retired the queue).
        std::size_t skipped_points = 0;
        std::size_t skipped_shards = 0;
        if (const std::shared_ptr<PoolCore> c = core.lock()) {
            std::lock_guard<std::mutex> lock(c->mutex);
            auto it = c->pending.begin();
            while (it != c->pending.end()) {
                if (it->batch.get() == this) {
                    skipped_points += it->hi - it->lo;
                    ++skipped_shards;
                    it = c->pending.erase(it);
                } else {
                    ++it;
                }
            }
        }
        if (skipped_points == 0)
            return false;
        cost->refundQueries(skipped_points);
        std::lock_guard<std::mutex> lock(m);
        progress.pointsCancelled += skipped_points;
        accountShardsLocked(skipped_shards);
        return true;
    }

    BatchStats
    stats() const override
    {
        std::lock_guard<std::mutex> lock(m);
        return progress;
    }

    /** Call with `m` held. */
    void
    accountShardsLocked(std::size_t n)
    {
        shardsAccounted += n;
        if (shardsAccounted == shardsTotal) {
            finished = true;
            cv.notify_all();
        }
    }

    /** Fail the whole batch (first error wins). Call with `m` held. */
    void
    failShardLocked(const std::string& message, std::size_t shards)
    {
        if (!error)
            error = std::make_exception_ptr(std::runtime_error(message));
        accountShardsLocked(shards);
    }
};

// ----------------------------------------------------------- helpers

namespace {

/**
 * Encode-and-send one frame; false on failure. `wire_bytes_out`, when
 * given, reports the encoded (possibly compressed) on-wire size.
 */
bool
sendFrame(const PoolCore& core, WorkerProc& worker,
          FrameType type, std::span<const std::uint8_t> payload,
          std::size_t* wire_bytes_out = nullptr)
{
    const std::vector<std::uint8_t> bytes = encodeFrame(type, payload);
    if (wire_bytes_out)
        *wire_bytes_out = bytes.size();
    return sendAll(worker.fd, bytes.data(), bytes.size(),
                   core.sendDeadline());
}

} // namespace

// The monitor below needs these with the core lock held.
namespace {

void requeueNoSurvivorsLocked(PoolCore& core);

/** Points currently assigned to a worker (all pipelined shards). */
std::size_t
inflightPoints(const WorkerProc& worker)
{
    std::size_t points = 0;
    for (const Shard& shard : worker.inflight)
        points += shard.hi - shard.lo;
    return points;
}

/**
 * Declare a worker dead: close its socket, make sure any local
 * process is gone, and put ALL of its in-flight (pipelined) shards
 * back at the head of the queue -- in their original dispatch order --
 * so recovery preempts new work. Call with the core mutex held.
 */
void
markWorkerDeadLocked(PoolCore& core, WorkerProc& worker)
{
    if (!worker.alive)
        return;
    worker.alive = false;
    if (worker.fd >= 0) {
        ::close(worker.fd);
        worker.fd = -1;
    }
    if (worker.pid > 0) {
        ::kill(worker.pid, SIGKILL);
        ::waitpid(worker.pid, nullptr, 0);
        // Forget the pid once reaped: the OS may recycle it, and a
        // later cleanup pass must not SIGKILL an innocent process.
        worker.pid = -1;
    }
    // A TCP accept that never authenticated was not a member; don't
    // count it as a lost worker.
    if (worker.helloSeen || !worker.remote)
        core.stats.workersLost++;
    // Forget the dead worker's metrics contribution: its unfinished
    // shards requeue and re-execute elsewhere, so keeping its last
    // cumulative snapshot would double-count that work in merged().
    if (worker.telemetryPid != 0)
        obs::Registry::global().dropWorkerSnapshot(worker.telemetryPid);
    // A local worker that died before its Hello still settles the
    // constructor's membership wait.
    if (!worker.remote && !worker.helloSeen)
        core.localDeadCount++;
    while (!worker.inflight.empty()) {
        // Back to front, each pushed at the head: the queue ends up
        // [first dispatched, second dispatched, older pending...].
        Shard shard = std::move(worker.inflight.back());
        worker.inflight.pop_back();
        shard.stealPending = false; // any granted tail re-runs anyway
        core.stats.tasksRequeued++;
        {
            std::lock_guard<std::mutex> lock(shard.batch->m);
            shard.batch->progress.shardsRequeued++;
        }
        if (obs::tracingEnabled()) {
            const std::uint64_t now = obs::Tracer::nowNs();
            obs::Tracer::global().record(obs::SpanCategory::Dist,
                                         "requeue", now, now,
                                         shard.taskId,
                                         shard.hi - shard.lo);
        }
        shard.enqueuedNs = obs::Tracer::nowNs();
        core.pending.push_front(std::move(shard));
    }
    core.membershipCv.notify_all();
    requeueNoSurvivorsLocked(core);
}

/** Fail every queued shard's batch. Call with the core mutex held. */
void
failAllPendingLocked(PoolCore& core, const char* message)
{
    while (!core.pending.empty()) {
        Shard shard = std::move(core.pending.front());
        core.pending.pop_front();
        std::lock_guard<std::mutex> lock(shard.batch->m);
        shard.batch->failShardLocked(message, 1);
    }
}

/**
 * With no survivors the queue can never drain: fail every queued
 * shard's batch instead of hanging its waiters. A listening pool is
 * exempt while running -- a joiner may still arrive -- but not during
 * shutdown, when no new members are accepted. Call with the core
 * mutex held.
 */
void
requeueNoSurvivorsLocked(PoolCore& core)
{
    if (core.listening && !core.stop)
        return;
    for (const WorkerProc& w : core.workers) {
        if (w.alive)
            return;
    }
    failAllPendingLocked(
        core, "distributed execution: all worker processes died");
}

/**
 * Hand queued shards to fully-handshaken workers with pipeline room,
 * least-loaded (in-flight points per unit of advertised capacity)
 * first, so a 4-thread worker draws proportionally more of the queue
 * than a single-threaded one. Call with the core mutex held.
 */
void
dispatchLocked(PoolCore& core)
{
    while (!core.pending.empty()) {
        WorkerProc* best = nullptr;
        double best_load = 0.0;
        for (WorkerProc& worker : core.workers) {
            if (!worker.alive || !worker.helloSeen ||
                worker.inflight.size() >= kPipelineDepth)
                continue;
            const double load =
                static_cast<double>(inflightPoints(worker)) /
                static_cast<double>(worker.capacity);
            if (!best || load < best_load ||
                (load == best_load && worker.capacity > best->capacity)) {
                best = &worker;
                best_load = load;
            }
        }
        if (!best)
            return; // every live worker's pipeline is full
        WorkerProc& worker = *best;
        Shard shard = std::move(core.pending.front());
        core.pending.pop_front();

        obs::ScopedSpan dispatch_span(obs::SpanCategory::Dist,
                                      "dispatch", shard.taskId,
                                      shard.hi - shard.lo);
        if (obs::metricsEnabled()) {
            static obs::Histogram& queue_wait =
                obs::Registry::global().histogram(
                    "dist.queue.wait.ns");
            static obs::Histogram& shard_points =
                obs::Registry::global().histogram("dist.shard.points");
            if (shard.enqueuedNs != 0)
                queue_wait.observe(obs::Tracer::nowNs() -
                                   shard.enqueuedNs);
            shard_points.observe(shard.hi - shard.lo);
        }

        const std::uint64_t cost_id = shard.batch->costId;
        // Raw vs on-wire bytes for the frames this dispatch sends;
        // the delta is the framing compressor's saving.
        std::size_t sent_raw = 0;
        std::size_t sent_wire = 0;
        bool ok = true;
        try {
            if (!worker.loadedCosts.count(cost_id)) {
                const std::vector<std::uint8_t>& spec =
                    core.costs.at(cost_id);
                std::size_t wire = 0;
                ok = sendFrame(core, worker, FrameType::LoadCost, spec,
                               &wire);
                if (ok) {
                    worker.loadedCosts.insert(cost_id);
                    sent_raw += kFrameHeaderSize + spec.size() + 4;
                    sent_wire += wire;
                }
            }
            if (ok) {
                TaskMsg task;
                task.taskId = shard.taskId;
                task.costId = cost_id;
                task.baseOrdinal = shard.batch->baseOrdinal + shard.lo;
                task.points.assign(
                    shard.batch->points.begin() +
                        static_cast<std::ptrdiff_t>(shard.lo),
                    shard.batch->points.begin() +
                        static_cast<std::ptrdiff_t>(shard.hi));
                const std::vector<std::uint8_t> payload =
                    encodeTask(task);
                std::size_t wire = 0;
                ok = sendFrame(core, worker, FrameType::Task, payload,
                               &wire);
                if (ok) {
                    sent_raw += kFrameHeaderSize + payload.size() + 4;
                    sent_wire += wire;
                }
            }
        } catch (const WireError& e) {
            // Unencodable shard (e.g. a payload past the frame size
            // limit): deterministic, so requeueing would spin — fail
            // the batch and keep both the worker and the monitor
            // thread alive (an uncaught throw here would terminate
            // the process).
            std::lock_guard<std::mutex> lock(shard.batch->m);
            shard.batch->failShardLocked(
                std::string("distributed dispatch: ") + e.what(), 1);
            continue;
        }
        if (!ok) {
            // Put the shard back first so the death path cannot race
            // it away, then retire the worker (which also requeues
            // anything already pipelined to it).
            core.pending.push_front(std::move(shard));
            markWorkerDeadLocked(core, worker);
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(shard.batch->m);
            if (!worker.inflight.empty())
                shard.batch->progress.shardsPipelined++;
            shard.batch->progress.bytesOnWireRaw += sent_raw;
            shard.batch->progress.bytesOnWireCompressed += sent_wire;
        }
        if (worker.remote)
            core.stats.tasksToRemote++;
        worker.inflight.push_back(std::move(shard));
        core.stats.tasksDispatched++;
    }
}

/**
 * Per-point work stealing: with the queue drained and a handshaken
 * worker idle, ask the worker holding the largest in-flight shard to
 * yield its unrun tail. At most one steal is outstanding pool-wide --
 * the grant requeues the tail, and the regular dispatch pass moves it
 * to the idle worker. Call with the core mutex held.
 */
void
maybeStealLocked(PoolCore& core)
{
    if (!core.options.steal || core.stop || !core.pending.empty())
        return;
    bool idle = false;
    for (const WorkerProc& w : core.workers) {
        if (w.alive && w.helloSeen && w.inflight.empty()) {
            idle = true;
            break;
        }
    }
    if (!idle)
        return;
    WorkerProc* victim = nullptr;
    Shard* target = nullptr;
    for (WorkerProc& w : core.workers) {
        if (!w.alive || !w.helloSeen)
            continue;
        for (Shard& s : w.inflight) {
            if (s.stealPending)
                return; // a steal is already in flight; let it land
            // A 1-point shard has no tail to split.
            if (s.hi - s.lo < 2)
                continue;
            if (!target || s.hi - s.lo > target->hi - target->lo) {
                victim = &w;
                target = &s;
            }
        }
    }
    if (!target)
        return;
    StealRequestMsg msg;
    msg.taskId = target->taskId;
    WireWriter w;
    encodeStealRequest(w, msg);
    if (!sendFrame(core, *victim, FrameType::StealRequest, w.bytes())) {
        markWorkerDeadLocked(core, *victim);
        return;
    }
    target->stealPending = true;
}

/** One completed shard, carried out of the lock for callback work. */
struct Completion
{
    std::shared_ptr<RemoteBatch> batch;
    std::size_t lo = 0;
    std::vector<double> values;
    KernelStats kernel;
    /** Result frame size before/after wire compression. */
    std::size_t rawBytes = 0;
    std::size_t wireBytes = 0;
    /** Pool membership/routing counters at completion time, folded
     *  into BatchStats (max-aggregated) so handle holders see them. */
    std::size_t workersJoined = 0;
    std::size_t tasksToRemote = 0;
};

/**
 * Handle one decoded frame from a worker. Returns false when the
 * worker violated the protocol and must be retired. Call with the
 * core mutex held.
 */
bool
handleFrameLocked(PoolCore& core, WorkerProc& worker, Frame&& frame,
                  std::vector<Completion>& completed)
{
    worker.lastHeard = Clock::now();
    switch (frame.type) {
      case FrameType::Hello: {
        const HelloMsg hello = decodeHello(frame.payload);
        if (worker.helloSeen)
            return false; // one Hello per connection
        if (hello.wireVersion != kWireVersion)
            return false;
        if (worker.needsAuth &&
            hello.authTag !=
                helloAuthTag(core.options.secret, worker.nonce, hello))
            return false; // wrong fleet secret: drop before any work
        worker.helloSeen = true;
        worker.capacity = std::max<std::uint16_t>(1, hello.threads);
        worker.telemetryPid = hello.pid;
        if (worker.needsAuth) {
            core.stats.workersJoined++;
            // A TCP member whose Hello pid matches a pid this pool
            // forked is one of our own loopback locals: bind it so
            // workerPids() fault hooks and the membership wait see it.
            for (SpawnedPid& sp : core.spawned) {
                if (!sp.bound && sp.pid == hello.pid) {
                    sp.bound = true;
                    worker.pid = sp.pid;
                    worker.remote = false;
                    break;
                }
            }
        }
        if (!worker.remote)
            core.localHelloCount++;
        core.membershipCv.notify_all();
        return true;
      }
      case FrameType::Heartbeat:
        return true;
      case FrameType::Result: {
        ResultMsg msg = decodeResult(frame.payload);
        const auto it = std::find_if(
            worker.inflight.begin(), worker.inflight.end(),
            [&](const Shard& s) { return s.taskId == msg.taskId; });
        if (it == worker.inflight.end())
            return true; // stale result; ignore
        if (msg.values.size() != it->hi - it->lo)
            return false; // wrong shard size: retire + requeue inflight
        Shard shard = std::move(*it);
        worker.inflight.erase(it);
        Completion done;
        done.batch = std::move(shard.batch);
        done.lo = shard.lo;
        done.values = std::move(msg.values);
        done.kernel = msg.kernel;
        done.rawBytes = kFrameHeaderSize + frame.payload.size() + 4;
        done.wireBytes = frame.wireBytes;
        done.workersJoined = core.stats.workersJoined;
        done.tasksToRemote = core.stats.tasksToRemote;
        completed.push_back(std::move(done));
        return true;
      }
      case FrameType::StealGrant: {
        const StealGrantMsg msg = decodeStealGrant(frame.payload);
        const auto it = std::find_if(
            worker.inflight.begin(), worker.inflight.end(),
            [&](const Shard& s) { return s.taskId == msg.taskId; });
        if (it == worker.inflight.end())
            return true; // shard already completed or requeued
        Shard& shard = *it;
        shard.stealPending = false;
        const std::size_t size = shard.hi - shard.lo;
        const std::size_t keep = std::min<std::size_t>(
            static_cast<std::size_t>(msg.keep), size);
        if (keep == size)
            return true; // worker finished before the request landed
        // Split: the worker keeps [lo, lo+keep) -- its Result for
        // exactly those points is already ahead of this grant on the
        // wire (or never coming, when keep == 0) -- and the unrun
        // tail goes back on the queue under a fresh task id. Ordinals
        // were reserved at submission, so the stolen points evaluate
        // bit-identically wherever they land.
        Shard tail;
        tail.batch = shard.batch;
        tail.lo = shard.lo + keep;
        tail.hi = shard.hi;
        tail.taskId = core.nextTaskId++;
        shard.hi = shard.lo + keep;
        core.stats.tasksStolen++;
        {
            std::lock_guard<std::mutex> lock(tail.batch->m);
            tail.batch->progress.shardsStolen++;
            if (keep > 0)
                tail.batch->shardsTotal++;
        }
        if (obs::tracingEnabled()) {
            const std::uint64_t now = obs::Tracer::nowNs();
            obs::Tracer::global().record(obs::SpanCategory::Dist,
                                         "steal", now, now,
                                         tail.taskId, size - keep);
        }
        if (obs::metricsEnabled()) {
            static obs::Histogram& steal_tail =
                obs::Registry::global().histogram(
                    "dist.steal.tail.points");
            steal_tail.observe(size - keep);
        }
        if (keep == 0)
            worker.inflight.erase(it); // no Result follows
        tail.enqueuedNs = obs::Tracer::nowNs();
        core.pending.push_front(std::move(tail));
        return true;
      }
      case FrameType::Telemetry: {
        // Worker observability shipment: spans join the coordinator's
        // trace under the sender's pid; the cumulative metrics
        // snapshot *replaces* this worker's previous one (merged() is
        // therefore deterministic however often workers report).
        const TelemetryMsg msg = decodeTelemetry(frame.payload);
        if (!msg.spans.empty())
            obs::Tracer::global().addRemoteSpans(msg.pid, msg.spans);
        if (!msg.metrics.empty())
            obs::Registry::global().setWorkerSnapshot(msg.pid,
                                                      msg.metrics);
        return true;
      }
      case FrameType::TaskError: {
        const TaskErrorMsg msg = decodeTaskError(frame.payload);
        const auto it = std::find_if(
            worker.inflight.begin(), worker.inflight.end(),
            [&](const Shard& s) { return s.taskId == msg.taskId; });
        if (it == worker.inflight.end())
            return true;
        Shard shard = std::move(*it);
        worker.inflight.erase(it);
        if (msg.code == kTaskErrorUnknownCost) {
            // The worker's bounded spec cache evicted this cost:
            // forget that it was loaded (the next dispatch re-sends
            // the spec) and retry the shard. Self-healing, never a
            // batch failure.
            worker.loadedCosts.erase(shard.batch->costId);
            shard.stealPending = false;
            core.stats.tasksRequeued++;
            core.pending.push_front(std::move(shard));
            return true;
        }
        std::lock_guard<std::mutex> lock(shard.batch->m);
        shard.batch->failShardLocked(
            "distributed worker: " + msg.message, 1);
        return true; // evaluation error; the worker itself is fine
      }
      default:
        return false; // pool-bound frames only
    }
}

/**
 * Accept every pending TCP connection and challenge it: the joiner
 * may not receive work until its Hello answers the nonce with the
 * fleet-secret tag. Call with the core mutex held.
 */
void
acceptJoinersLocked(PoolCore& core)
{
    for (;;) {
        const int fd = ::accept4(core.listenFd, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            break;
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        WorkerProc w;
        w.fd = fd;
        w.alive = true;
        w.remote = true;
        w.needsAuth = true;
        w.nonce = core.rng();
        // The heartbeat timeout doubles as the handshake deadline: a
        // connection that never answers the challenge times out.
        w.lastHeard = Clock::now();
        ChallengeMsg challenge;
        challenge.nonce = w.nonce;
        WireWriter writer;
        encodeChallenge(writer, challenge);
        if (!sendFrame(core, w, FrameType::Challenge, writer.bytes())) {
            ::close(fd);
            continue;
        }
        core.workers.push_back(std::move(w));
    }
}

/**
 * Apply a completed shard outside the core lock: write the values,
 * stream callbacks, account progress.
 */
void
applyCompletion(Completion& done)
{
    const std::size_t n = done.values.size();
    std::memcpy(done.batch->out.data() + done.lo, done.values.data(),
                n * sizeof(double));

    std::exception_ptr callback_failure;
    if (done.batch->options.onComplete) {
        std::lock_guard<std::mutex> lock(done.batch->callbackMutex);
        try {
            for (std::size_t i = 0; i < n; ++i)
                done.batch->options.onComplete(done.lo + i,
                                               done.values[i]);
        } catch (...) {
            callback_failure = std::current_exception();
        }
    }

    std::lock_guard<std::mutex> lock(done.batch->m);
    done.batch->progress.pointsCompleted += n;
    done.batch->progress.pointsRemote += n;
    done.batch->progress.kernel += done.kernel;
    done.batch->progress.remoteKernel += done.kernel;
    done.batch->progress.bytesOnWireRaw += done.rawBytes;
    done.batch->progress.bytesOnWireCompressed += done.wireBytes;
    done.batch->progress.workersJoined = std::max(
        done.batch->progress.workersJoined, done.workersJoined);
    done.batch->progress.tasksToRemote = std::max(
        done.batch->progress.tasksToRemote, done.tasksToRemote);
    if (callback_failure && !done.batch->error)
        done.batch->error = callback_failure;
    done.batch->accountShardsLocked(1);
}

} // namespace

// ------------------------------------------------------------- spawn

std::string
ProcessPool::resolveWorkerPath(const std::string& override_path)
{
    // An explicit path (options, then environment) is authoritative:
    // a typo'd path should fail loudly, not silently fall back to a
    // stale build-tree worker.
    if (!override_path.empty()) {
        if (::access(override_path.c_str(), X_OK) != 0)
            throw std::runtime_error(
                "DistOptions::workerPath is not executable: " +
                override_path);
        return override_path;
    }
    if (const char* env = std::getenv("OSCAR_WORKER_BIN")) {
        if (::access(env, X_OK) != 0)
            throw std::runtime_error(
                "OSCAR_WORKER_BIN is not executable: " +
                std::string(env));
        return env;
    }

    std::vector<std::string> candidates;
#ifdef OSCAR_WORKER_DEFAULT_PATH
    candidates.push_back(OSCAR_WORKER_DEFAULT_PATH);
#endif
    // Next to the running executable (installed layouts).
    char exe[4096];
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
    if (n > 0) {
        exe[n] = '\0';
        std::string dir(exe);
        const std::size_t slash = dir.rfind('/');
        if (slash != std::string::npos)
            candidates.push_back(dir.substr(0, slash) + "/oscar-worker");
    }

    for (const std::string& path : candidates) {
        if (::access(path.c_str(), X_OK) == 0)
            return path;
    }
    std::string tried;
    for (const std::string& path : candidates)
        tried += (tried.empty() ? "" : ", ") + path;
    throw std::runtime_error(
        "oscar-worker executable not found (tried: " +
        (tried.empty() ? std::string("nothing") : tried) +
        "); set OSCAR_WORKER_BIN or DistOptions::workerPath");
}

namespace {

/** Fork + exec one socketpair worker; returns its parent-side fd. */
int
spawnWorker(const std::string& worker_path, int heartbeat_ms, int threads,
            int* pid_out)
{
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        throw std::runtime_error("ProcessPool: socketpair failed");
    // Parent end: close-on-exec (later workers must not inherit it)
    // and non-blocking (the monitor multiplexes all workers).
    ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(sv[0], F_SETFL, O_NONBLOCK);

    // Argument strings must exist before fork: the child may only use
    // async-signal-safe calls between fork and exec.
    const std::string fd_arg = std::to_string(sv[1]);
    const std::string hb_arg = std::to_string(heartbeat_ms);
    // 0 = hardware concurrency, resolved on the worker host (the
    // worker advertises the resolved count back in its Hello frame).
    const std::string threads_arg = std::to_string(threads);

    const int pid = ::fork();
    if (pid == 0) {
        ::close(sv[0]);
        ::execl(worker_path.c_str(), "oscar-worker", "--worker-fd",
                fd_arg.c_str(), "--heartbeat-ms", hb_arg.c_str(),
                "--threads", threads_arg.c_str(),
                static_cast<char*>(nullptr));
        ::_exit(127); // exec failed; parent sees EOF
    }
    ::close(sv[1]);
    if (pid < 0) {
        ::close(sv[0]);
        throw std::runtime_error("ProcessPool: fork failed");
    }
    *pid_out = pid;
    return sv[0];
}

/**
 * Fork + exec one local worker that joins back over loopback TCP,
 * exactly like a remote member would. The fleet secret travels via
 * the child's environment, never argv (ps would leak it).
 */
int
spawnConnectWorker(const std::string& worker_path,
                   const std::string& connect_to, int heartbeat_ms,
                   int threads, const std::string& secret)
{
    std::vector<std::string> env_store;
    for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
        const std::string entry(*e);
        if (entry.rfind("OSCAR_DIST_SECRET=", 0) == 0 ||
            entry.rfind("OSCAR_DIST_CONNECT=", 0) == 0 ||
            entry.rfind("OSCAR_DIST_LISTEN=", 0) == 0 ||
            entry.rfind("OSCAR_DIST_WORKERS=", 0) == 0)
            continue; // the child must not re-coordinate or re-listen
        env_store.push_back(entry);
    }
    if (!secret.empty())
        env_store.push_back("OSCAR_DIST_SECRET=" + secret);

    std::vector<std::string> arg_store = {
        "oscar-worker",   "--connect", connect_to,
        "--heartbeat-ms", std::to_string(heartbeat_ms),
        "--threads",      std::to_string(threads)};

    std::vector<char*> argv;
    argv.reserve(arg_store.size() + 1);
    for (std::string& s : arg_store)
        argv.push_back(s.data());
    argv.push_back(nullptr);
    std::vector<char*> envp;
    envp.reserve(env_store.size() + 1);
    for (std::string& s : env_store)
        envp.push_back(s.data());
    envp.push_back(nullptr);

    const int pid = ::fork();
    if (pid == 0) {
        ::execve(worker_path.c_str(), argv.data(), envp.data());
        ::_exit(127); // exec failed; the waitpid scan notices
    }
    if (pid < 0)
        throw std::runtime_error("ProcessPool: fork failed");
    return pid;
}

/**
 * Bind + listen on a validated "host:port" spec; reports the actual
 * bound port (for ":0" specs) through `port_out`.
 */
int
openListener(const std::string& spec, std::uint16_t* port_out)
{
    const std::size_t colon = spec.rfind(':');
    const std::string host = spec.substr(0, colon);
    const std::string port = spec.substr(colon + 1);

    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 ||
        res == nullptr)
        throw std::runtime_error(
            "ProcessPool: cannot resolve listen address " + spec);

    int fd = -1;
    for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family,
                      ai->ai_socktype | SOCK_CLOEXEC | SOCK_NONBLOCK,
                      ai->ai_protocol);
        if (fd < 0)
            continue;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 64) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0)
        throw std::runtime_error("ProcessPool: cannot listen on " +
                                 spec);

    struct sockaddr_storage ss;
    socklen_t slen = sizeof(ss);
    std::memset(&ss, 0, sizeof(ss));
    ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&ss), &slen);
    if (ss.ss_family == AF_INET6)
        *port_out = ntohs(
            reinterpret_cast<struct sockaddr_in6*>(&ss)->sin6_port);
    else
        *port_out =
            ntohs(reinterpret_cast<struct sockaddr_in*>(&ss)->sin_port);
    return fd;
}

/** Where the pool's own loopback locals should connect. */
std::string
connectAddressFor(const std::string& listen_spec, std::uint16_t port)
{
    std::string host = listen_spec.substr(0, listen_spec.rfind(':'));
    if (host == "0.0.0.0" || host == "::" || host == "*")
        host = "127.0.0.1"; // wildcard bind: dial loopback
    return host + ":" + std::to_string(port);
}

} // namespace

ProcessPool::ProcessPool(const DistOptions& options)
{
    core_ = std::make_shared<PoolCore>();
    core_->options = options;
    core_->options.heartbeatIntervalMs =
        std::max(10, options.heartbeatIntervalMs);
    core_->options.heartbeatTimeoutMs =
        std::max(3 * core_->options.heartbeatIntervalMs,
                 options.heartbeatTimeoutMs);
    core_->options.threadsPerWorker =
        resolveThreadsPerWorker(options.threadsPerWorker);
    core_->options.listen = resolveDistListen(options.listen);
    core_->options.secret = resolveDistSecret(options.secret);
    const bool tcp = !core_->options.listen.empty();
    if (core_->options.numWorkers < 0 ||
        (core_->options.numWorkers == 0 && !tcp))
        throw std::invalid_argument(
            "ProcessPool: numWorkers must be >= 1 (or >= 0 with "
            "DistOptions::listen set, for an elastic fleet)");
    if (core_->options.numWorkers > 0)
        core_->workerPath = resolveWorkerPath(options.workerPath);

    int wake[2];
    if (::pipe2(wake, O_CLOEXEC | O_NONBLOCK) != 0)
        throw std::runtime_error("ProcessPool: pipe2 failed");
    core_->wakeRead = wake[0];
    core_->wakeWrite = wake[1];

    auto cleanup = [&] {
        for (WorkerProc& w : core_->workers) {
            if (w.fd >= 0)
                ::close(w.fd);
            if (w.pid > 0) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, nullptr, 0);
            }
        }
        for (SpawnedPid& sp : core_->spawned) {
            if (!sp.bound && sp.pid > 0) {
                ::kill(sp.pid, SIGKILL);
                ::waitpid(sp.pid, nullptr, 0);
            }
        }
        if (core_->listenFd >= 0)
            ::close(core_->listenFd);
        ::close(core_->wakeRead);
        ::close(core_->wakeWrite);
    };

    try {
        if (tcp) {
            core_->listenFd =
                openListener(core_->options.listen, &core_->boundPort);
            core_->listening = true;
        }
        for (int i = 0; i < core_->options.numWorkers; ++i) {
            if (tcp) {
                // Local workers take the same authenticated loopback
                // path a remote joiner would -- one transport, one
                // handshake, one code path to trust.
                const int pid = spawnConnectWorker(
                    core_->workerPath,
                    connectAddressFor(core_->options.listen,
                                      core_->boundPort),
                    core_->options.heartbeatIntervalMs,
                    core_->options.threadsPerWorker,
                    core_->options.secret);
                core_->spawned.push_back({pid, false});
            } else {
                WorkerProc w;
                w.fd = spawnWorker(core_->workerPath,
                                   core_->options.heartbeatIntervalMs,
                                   core_->options.threadsPerWorker,
                                   &w.pid);
                w.alive = true;
                w.lastHeard = Clock::now();
                core_->workers.push_back(std::move(w));
            }
            core_->stats.workersSpawned++;
        }
    } catch (...) {
        cleanup();
        throw;
    }

    // The monitor owns accepts and handshakes from here on; wait for
    // the local membership to settle (every spawned worker has either
    // completed its Hello or died) so a broken worker setup surfaces
    // here -- where the engine can still fall back to in-process
    // execution -- instead of failing the first submitted batch.
    monitor_ = std::thread(&ProcessPool::monitorLoop, core_);
    {
        std::unique_lock<std::mutex> lock(core_->mutex);
        const auto deadline = Clock::now() + std::chrono::seconds(10);
        core_->membershipCv.wait_until(lock, deadline, [&] {
            return core_->localHelloCount + core_->localDeadCount >=
                   static_cast<std::size_t>(core_->options.numWorkers);
        });
    }
    bool up = false;
    {
        std::lock_guard<std::mutex> lock(core_->mutex);
        up = core_->listening;
        for (const WorkerProc& w : core_->workers)
            up = up || (w.alive && w.helloSeen);
    }
    if (!up) {
        {
            std::lock_guard<std::mutex> lock(core_->mutex);
            core_->stop = true;
        }
        const std::uint8_t wake_byte = 0;
        (void)!::write(core_->wakeWrite, &wake_byte, 1);
        monitor_.join();
        ::close(core_->wakeRead);
        ::close(core_->wakeWrite);
        throw std::runtime_error(
            "ProcessPool: no worker came up (path: " +
            core_->workerPath + ")");
    }
}

ProcessPool::~ProcessPool()
{
    {
        std::lock_guard<std::mutex> lock(core_->mutex);
        core_->stop = true;
        // Retire still-queued shards exactly like engine destruction:
        // refund their queries and mark them cancelled; in-flight
        // shards drain below.
        while (!core_->pending.empty()) {
            Shard shard = std::move(core_->pending.front());
            core_->pending.pop_front();
            const std::size_t n = shard.hi - shard.lo;
            shard.batch->cost->refundQueries(n);
            std::lock_guard<std::mutex> batch_lock(shard.batch->m);
            shard.batch->progress.pointsCancelled += n;
            shard.batch->accountShardsLocked(1);
        }
    }
    const std::uint8_t wake_byte = 0;
    (void)!::write(core_->wakeWrite, &wake_byte, 1);
    if (monitor_.joinable())
        monitor_.join();
    ::close(core_->wakeRead);
    ::close(core_->wakeWrite);
}

// ----------------------------------------------------------- monitor

void
ProcessPool::monitorLoop(const std::shared_ptr<PoolCore>& core_ptr)
{
    PoolCore& core = *core_ptr;
    std::unique_lock<std::mutex> lock(core.mutex);
    for (;;) {
        // Shutdown: queued shards are gone (the destructor retired
        // them; crash-requeues drain through the survivors), so once
        // nothing is in flight the workers can be released.
        if (core.stop) {
            bool any_alive = false;
            bool inflight = false;
            for (const WorkerProc& w : core.workers) {
                any_alive |= w.alive;
                inflight |= w.alive && !w.inflight.empty();
            }
            // No joiners are accepted during shutdown, so an empty
            // elastic pool can never drain crash-requeued shards:
            // fail them rather than hang the join below.
            if (!any_alive && !core.pending.empty())
                failAllPendingLocked(
                    core,
                    "distributed execution: all worker processes died");
            if (!inflight && core.pending.empty())
                break;
        }

        // Garbage-collect fully-retired members so a long-lived
        // elastic pool doesn't accumulate dead entries.
        core.workers.erase(
            std::remove_if(core.workers.begin(), core.workers.end(),
                           [](const WorkerProc& w) { return !w.alive; }),
            core.workers.end());

        // Reap TCP-mode locals that died before ever connecting
        // (e.g. exec failure): no socket exists to raise EOF, so the
        // constructor's membership wait settles through this scan.
        for (SpawnedPid& sp : core.spawned) {
            if (sp.bound || sp.pid <= 0)
                continue;
            if (::waitpid(sp.pid, nullptr, WNOHANG) != 0) {
                sp.pid = -1;
                core.localDeadCount++;
                core.stats.workersLost++;
                core.membershipCv.notify_all();
            }
        }

        dispatchLocked(core);
        maybeStealLocked(core);

        std::vector<struct pollfd> fds;
        std::vector<std::size_t> idx; // worker index per pollfd tail
        fds.push_back({core.wakeRead, POLLIN, 0});
        const bool accepting = core.listening && !core.stop;
        if (accepting)
            fds.push_back({core.listenFd, POLLIN, 0});
        const std::size_t head = fds.size();
        for (std::size_t i = 0; i < core.workers.size(); ++i) {
            if (core.workers[i].alive) {
                fds.push_back({core.workers[i].fd, POLLIN, 0});
                idx.push_back(i);
            }
        }

        lock.unlock();
        ::poll(fds.data(), fds.size(),
               std::max(10, core.options.heartbeatIntervalMs / 2));

        if (fds[0].revents & POLLIN) {
            std::uint8_t drain[64];
            while (::read(core.wakeRead, drain, sizeof(drain)) > 0) {
            }
        }

        std::vector<Completion> completed;
        lock.lock();
        if (accepting && (fds[1].revents & POLLIN))
            acceptJoinersLocked(core);
        for (std::size_t k = head; k < fds.size(); ++k) {
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            WorkerProc& w = core.workers[idx[k - head]];
            if (!w.alive)
                continue;
            bool dead = false;
            for (;;) {
                std::uint8_t buf[65536];
                const ssize_t r = ::recv(w.fd, buf, sizeof(buf), 0);
                if (r > 0) {
                    try {
                        w.decoder.feed(buf,
                                       static_cast<std::size_t>(r));
                        while (auto frame = w.decoder.next()) {
                            if (!handleFrameLocked(core, w,
                                                   std::move(*frame),
                                                   completed)) {
                                dead = true;
                                break;
                            }
                        }
                    } catch (const WireError&) {
                        dead = true;
                    }
                    if (dead)
                        break;
                    continue;
                }
                if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                    break;
                if (r < 0 && errno == EINTR)
                    continue;
                dead = true; // EOF or hard error: the worker is gone
                break;
            }
            if (dead)
                markWorkerDeadLocked(core, w);
        }

        // Liveness scan AFTER the reads: a dispatch send that blocked
        // on one stuck worker must not get healthy workers killed on
        // stale timestamps — their heartbeats were just drained, so
        // lastHeard is fresh here. Silent workers past the timeout
        // are dead (their shard requeues and re-dispatches next
        // iteration). The same timeout bounds how long an accepted
        // connection may dawdle before answering its challenge.
        const auto now = Clock::now();
        for (WorkerProc& w : core.workers) {
            if (w.alive &&
                now - w.lastHeard > std::chrono::milliseconds(
                                        core.options.heartbeatTimeoutMs))
                markWorkerDeadLocked(core, w);
        }
        lock.unlock();

        // Value writes, streaming callbacks, and progress accounting
        // happen outside the core lock: shards are disjoint, and
        // callbacks may take arbitrary user time.
        for (Completion& done : completed)
            applyCompletion(done);

        lock.lock();
    }

    // Stop accepting joiners, then release the members: a Shutdown
    // frame lets each exit cleanly and closing the socket backs it up
    // with EOF, but neither reaches a stopped/wedged process — after
    // a short grace period a local worker is SIGKILLed so the
    // blocking reap (and therefore ~ProcessPool's join) can never
    // hang. Remote members get the frame + EOF and are on their own.
    if (core.listenFd >= 0) {
        ::close(core.listenFd);
        core.listenFd = -1;
    }
    for (WorkerProc& w : core.workers) {
        if (!w.alive)
            continue;
        sendFrame(core, w, FrameType::Shutdown, {});
        ::close(w.fd);
        w.fd = -1;
        w.alive = false;
        if (w.pid <= 0)
            continue;
        bool reaped = false;
        for (int spin = 0; spin < 50 && !reaped; ++spin) {
            if (::waitpid(w.pid, nullptr, WNOHANG) != 0)
                reaped = true; // exited (or already gone)
            else
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
        }
        if (!reaped) {
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
        }
        w.pid = -1;
    }
    for (SpawnedPid& sp : core.spawned) {
        if (sp.bound || sp.pid <= 0)
            continue;
        ::kill(sp.pid, SIGKILL);
        ::waitpid(sp.pid, nullptr, 0);
        sp.pid = -1;
    }
}

// ------------------------------------------------------------ submit

BatchHandle
ProcessPool::submit(CostFunction& cost,
                    std::vector<std::vector<double>>&& points,
                    SubmitOptions options)
{
    const std::optional<DistPayload> payload = cost.distPayload();
    if (!payload)
        throw std::invalid_argument(
            "ProcessPool::submit: cost function is not distributable");
    for (const auto& p : points)
        cost.checkParams(p);

    // Pin the kernel ISA concretely: "auto" must not resolve
    // differently in a worker than it would here, or distributed
    // values could drift from in-process values by rounding.
    CostSpec spec;
    spec.circuit = *payload->circuit;
    spec.hamiltonian = *payload->hamiltonian;
    spec.kernel = payload->kernel;
    spec.kernel.isa = kernels::kernelTable(spec.kernel.isa).isa;
    std::vector<std::uint8_t> cost_payload = encodeCostSpec(spec);

    std::unique_lock<std::mutex> lock(core_->mutex);
    if (core_->stop)
        throw std::runtime_error(
            "ProcessPool::submit: pool is shutting down");
    std::size_t ready = 0;
    std::size_t total_capacity = 0;
    std::size_t max_capacity = 1;
    for (const WorkerProc& w : core_->workers) {
        if (!w.alive || !w.helloSeen)
            continue;
        ready++;
        total_capacity += w.capacity;
        max_capacity = std::max<std::size_t>(max_capacity, w.capacity);
    }
    // A listening pool accepts work while momentarily empty -- shards
    // queue until a member joins. Size them for a single-threaded
    // joiner; stealing rebalances if a wider fleet shows up.
    if (ready == 0 && !core_->listening)
        throw std::runtime_error(
            "ProcessPool::submit: no live workers");
    if (total_capacity == 0)
        total_capacity = 1;

    // Nothing below throws: commit the batch.
    auto batch = std::make_shared<RemoteBatch>();
    batch->core = core_;
    batch->points = std::move(points);
    batch->cost = &cost;
    batch->costId = spec.costId;
    batch->options = std::move(options);
    const std::size_t count = batch->points.size();
    batch->out.resize(count);
    batch->progress.pointsTotal = count;
    if (count == 0) {
        batch->finished = true;
        return BatchHandle(std::move(batch));
    }

    core_->costs.emplace(spec.costId, std::move(cost_payload));
    // Bound the spec map: retire payloads no outstanding shard
    // references (a resubmission of the same content re-encodes its
    // payload above, so eviction never loses information). Pending
    // and in-flight ids stay, because dispatch and unknown-cost
    // recovery both need their bytes.
    constexpr std::size_t kMaxCostSpecs = 32;
    if (core_->costs.size() > kMaxCostSpecs) {
        std::unordered_set<std::uint64_t> live;
        live.insert(spec.costId);
        for (const Shard& s : core_->pending)
            live.insert(s.batch->costId);
        for (const WorkerProc& w : core_->workers) {
            for (const Shard& s : w.inflight)
                live.insert(s.batch->costId);
        }
        for (auto it = core_->costs.begin();
             it != core_->costs.end();) {
            it = live.count(it->first) ? std::next(it)
                                       : core_->costs.erase(it);
        }
    }
    batch->baseOrdinal = cost.reserve(count);

    // Shards: contiguous slices, roughly four per unit of advertised
    // capacity by default (a T-thread worker counts T) -- small enough
    // that a crash forfeits little and stragglers rebalance, large
    // enough to amortize the frame round-trip, keep worker-side prefix
    // caches warm, and feed the widest worker's thread pool. With
    // homogeneous single-threaded workers this degenerates to the
    // pre-hybrid count / (4 * workers).
    std::size_t shard_size = core_->options.shardSize;
    if (shard_size == 0)
        shard_size = std::max<std::size_t>(
            1, count * max_capacity / (4 * total_capacity));
    const std::uint64_t enqueued_ns = obs::Tracer::nowNs();
    for (std::size_t lo = 0; lo < count; lo += shard_size) {
        Shard shard;
        shard.batch = batch;
        shard.lo = lo;
        shard.hi = std::min(count, lo + shard_size);
        shard.taskId = core_->nextTaskId++;
        shard.enqueuedNs = enqueued_ns;
        core_->pending.push_back(std::move(shard));
        batch->shardsTotal++;
    }
    lock.unlock();

    const std::uint8_t wake_byte = 0;
    (void)!::write(core_->wakeWrite, &wake_byte, 1);
    return BatchHandle(std::move(batch));
}

// ------------------------------------------------------------- misc

int
ProcessPool::numWorkers() const
{
    return core_->options.numWorkers;
}

bool
ProcessPool::healthy() const
{
    std::lock_guard<std::mutex> lock(core_->mutex);
    if (core_->listening && !core_->stop)
        return true;
    for (const WorkerProc& w : core_->workers) {
        if (w.alive && w.helloSeen)
            return true;
    }
    return false;
}

std::vector<int>
ProcessPool::workerPids() const
{
    std::lock_guard<std::mutex> lock(core_->mutex);
    std::vector<int> pids;
    for (const WorkerProc& w : core_->workers) {
        if (w.alive && w.pid > 0)
            pids.push_back(w.pid);
    }
    return pids;
}

std::uint16_t
ProcessPool::listenPort() const
{
    std::lock_guard<std::mutex> lock(core_->mutex);
    return core_->listening ? core_->boundPort : 0;
}

PoolStats
ProcessPool::stats() const
{
    std::lock_guard<std::mutex> lock(core_->mutex);
    return core_->stats;
}

} // namespace dist
} // namespace oscar
