/**
 * @file
 * The oscar-worker process loop.
 *
 * A worker is the child half of the distributed execution subsystem:
 * it reads LoadCost / Task frames from the pool -- over an inherited
 * socketpair fd, or over TCP after `--connect host:port` -- rebuilds
 * cost evaluators from their wire specs, evaluates parameter-point
 * shards at their reserved ordinals, and writes Result frames back. A
 * detached heartbeat thread keeps liveness flowing even while a long
 * shard is evaluating, so the pool can tell "busy" from "hung".
 *
 * Shards are evaluated in small sub-batches with a socket poll
 * between them, so a coordinator StealRequest is answered promptly:
 * the worker grants its unrun tail (StealGrant carrying how many
 * points it keeps), sends the Result for the points it already
 * evaluated, and the coordinator re-dispatches the tail elsewhere.
 * Ordinals were reserved at submission, so a stolen tail evaluates
 * bit-identically wherever it lands.
 *
 * On TCP transports the pool challenges every connection with a nonce
 * frame before accepting work from it; the worker answers inside its
 * Hello with an HMAC-style tag over the nonce keyed by the shared
 * fleet secret (OSCAR_DIST_SECRET).
 *
 * The loop exits on a Shutdown frame or EOF (the pool died); a wire
 * error is fatal by design -- the pool tears the connection down and
 * requeues, it never resynchronizes a corrupt stream.
 */

#ifndef OSCAR_DIST_WORKER_H
#define OSCAR_DIST_WORKER_H

#include <string>

namespace oscar {
namespace dist {

/**
 * Run the worker protocol on `fd` until shutdown/EOF, heartbeating
 * every `heartbeat_ms`. `threads` sizes the worker's own
 * ExecutionEngine pool for shard evaluation (hybrid process x thread
 * execution): 0 = this host's hardware concurrency, >= 1 = exactly
 * that many. The resolved count is advertised back to the pool in the
 * Hello frame as the worker's capacity. With `await_challenge` the
 * worker first blocks for the pool's Challenge frame and tags its
 * Hello with helloAuthTag(secret, nonce, hello) -- the TCP handshake;
 * socketpair workers greet untagged. Returns the process exit code
 * (0 on a clean shutdown, nonzero on a protocol error).
 */
int workerMain(int fd, int heartbeat_ms, int threads = 1,
               const std::string& secret = "",
               bool await_challenge = false);

/**
 * Entry point of the `oscar-worker` binary: parses
 * `--worker-fd N | --connect host:port [--heartbeat-ms M]
 * [--threads T]` and runs workerMain. Without --connect the
 * OSCAR_DIST_CONNECT environment variable is consulted
 * (resolveDistConnect); the fleet secret always comes from
 * OSCAR_DIST_SECRET, never argv (ps would leak it). A TCP connect is
 * retried for a few seconds, so a worker may be started slightly
 * before its coordinator.
 */
int workerEntry(int argc, char** argv);

} // namespace dist
} // namespace oscar

#endif // OSCAR_DIST_WORKER_H
