/**
 * @file
 * The oscar-worker process loop.
 *
 * A worker is the child half of the distributed execution subsystem:
 * it reads LoadCost / Task frames from the pool over an inherited
 * socketpair fd, rebuilds cost evaluators from their wire specs,
 * evaluates parameter-point shards at their reserved ordinals, and
 * writes Result frames back. A detached heartbeat thread keeps
 * liveness flowing even while a long shard is evaluating, so the pool
 * can tell "busy" from "hung".
 *
 * The loop exits on a Shutdown frame or pipe EOF (the pool died); a
 * wire error is fatal by design -- the pool tears the connection down
 * and requeues, it never resynchronizes a corrupt stream.
 */

#ifndef OSCAR_DIST_WORKER_H
#define OSCAR_DIST_WORKER_H

namespace oscar {
namespace dist {

/**
 * Run the worker protocol on `fd` until shutdown/EOF, heartbeating
 * every `heartbeat_ms`. `threads` sizes the worker's own
 * ExecutionEngine pool for shard evaluation (hybrid process x thread
 * execution): 0 = this host's hardware concurrency, >= 1 = exactly
 * that many. The resolved count is advertised back to the pool in the
 * Hello frame as the worker's capacity. Returns the process exit code
 * (0 on a clean shutdown, nonzero on a protocol error).
 */
int workerMain(int fd, int heartbeat_ms, int threads = 1);

/**
 * Entry point of the `oscar-worker` binary: parses
 * `--worker-fd N [--heartbeat-ms M] [--threads T]` and runs
 * workerMain.
 */
int workerEntry(int argc, char** argv);

} // namespace dist
} // namespace oscar

#endif // OSCAR_DIST_WORKER_H
