#include "src/dist/wire.h"

#include <bit>
#include <cstring>

#include "src/common/crc32.h"
#include "src/common/fnv1a.h"
#include "src/common/packbits.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oscar {
namespace dist {

std::uint32_t
crc32(std::span<const std::uint8_t> data)
{
    return ::oscar::crc32(data);
}

// ------------------------------------------------------------ writer

void
WireWriter::u16(std::uint16_t v)
{
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
WireWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
WireWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
WireWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
WireWriter::str(const std::string& s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

// ------------------------------------------------------------ reader

const std::uint8_t*
WireReader::need(std::size_t n)
{
    if (data_.size() - pos_ < n)
        throw WireError("payload truncated");
    const std::uint8_t* p = data_.data() + pos_;
    pos_ += n;
    return p;
}

std::uint8_t
WireReader::u8()
{
    return *need(1);
}

std::uint16_t
WireReader::u16()
{
    const std::uint8_t* p = need(2);
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
WireReader::u32()
{
    const std::uint8_t* p = need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
WireReader::u64()
{
    const std::uint8_t* p = need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

double
WireReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
WireReader::str()
{
    const std::uint32_t n = u32();
    if (remaining() < n)
        throw WireError("string runs past payload end");
    const std::uint8_t* p = need(n);
    return std::string(reinterpret_cast<const char*>(p), n);
}

void
WireReader::expectEnd() const
{
    if (!atEnd())
        throw WireError("trailing bytes after payload");
}

// ----------------------------------------------------------- framing

std::vector<std::uint8_t>
encodeFrame(FrameType type, std::span<const std::uint8_t> payload)
{
    if (payload.size() > kMaxFramePayload)
        throw WireError("payload exceeds frame size limit");
    obs::ScopedSpan span(obs::SpanCategory::Wire, "encode",
                         static_cast<std::uint64_t>(type));
    // Smallest-of codec selection (shared with the store's on-disk
    // archive): a compressed frame is always strictly smaller than
    // raw, so framing never expands a payload.
    const packbits::Encoded enc = packbits::pickSmallest(payload);
    const std::span<const std::uint8_t> stored =
        enc.codec == packbits::Codec::Raw ? payload
                                          : std::span(enc.bytes);
    WireWriter w;
    w.u32(kWireMagic);
    w.u16(kWireVersion);
    w.u16(static_cast<std::uint16_t>(type));
    w.u64(payload.size());
    w.u64(stored.size());
    w.u8(static_cast<std::uint8_t>(enc.codec));
    std::vector<std::uint8_t> out = w.take();
    // The trailer checks header + RAW payload: a bit flip anywhere in
    // the frame -- type, lengths, codec, or compressed bytes -- fails
    // either a structural check or this CRC, never decoding silently.
    const std::uint32_t crc = ::oscar::crc32(
        std::span<const std::uint8_t>(out.data(), out.size()), payload);
    out.insert(out.end(), stored.begin(), stored.end());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    span.setArgs(payload.size(), out.size());
    if (obs::metricsEnabled()) {
        static obs::Counter& raw_bytes =
            obs::Registry::global().counter("wire.bytes.raw");
        static obs::Counter& stored_bytes =
            obs::Registry::global().counter("wire.bytes.stored");
        static obs::Counter& frames =
            obs::Registry::global().counter("wire.frames.encoded");
        raw_bytes.add(kFrameHeaderSize + payload.size() + 4);
        stored_bytes.add(out.size());
        frames.add();
    }
    return out;
}

void
FrameDecoder::feed(const std::uint8_t* data, std::size_t n)
{
    // Compact lazily: once consumed bytes dominate, drop them so the
    // buffer tracks the unread tail instead of the whole stream.
    if (pos_ > 4096 && pos_ > buf_.size() / 2) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

std::optional<Frame>
FrameDecoder::next()
{
    const std::size_t avail = buf_.size() - pos_;
    if (avail < kFrameHeaderSize)
        return std::nullopt;
    WireReader header(std::span<const std::uint8_t>(buf_.data() + pos_,
                                                    kFrameHeaderSize));
    if (header.u32() != kWireMagic)
        throw WireError("bad frame magic");
    const std::uint16_t version = header.u16();
    if (version != kWireVersion)
        throw WireError("unsupported wire version " +
                        std::to_string(version));
    const std::uint16_t raw_type = header.u16();
    if (raw_type < static_cast<std::uint16_t>(FrameType::Hello) ||
        raw_type > static_cast<std::uint16_t>(FrameType::MetricsResponse))
        throw WireError("unknown frame type " + std::to_string(raw_type));
    const std::uint64_t raw_len = header.u64();
    if (raw_len > kMaxFramePayload)
        throw WireError("frame payload too large");
    const std::uint64_t stored_len = header.u64();
    const std::uint8_t codec = header.u8();
    if (codec > static_cast<std::uint8_t>(packbits::Codec::PlanePackBits))
        throw WireError("unknown frame codec " + std::to_string(codec));
    // The length pair must be self-consistent before any allocation:
    // a raw frame stores exactly its payload, a compressed frame is
    // strictly smaller (the encoder never picks a codec that fails to
    // shrink), and a plane split only exists for 8-byte records.
    if (codec == static_cast<std::uint8_t>(packbits::Codec::Raw)) {
        if (stored_len != raw_len)
            throw WireError("raw frame stored/raw length mismatch");
    } else {
        if (stored_len >= raw_len)
            throw WireError("compressed frame does not shrink");
        if (codec ==
                static_cast<std::uint8_t>(packbits::Codec::PlanePackBits) &&
            raw_len % 8 != 0)
            throw WireError("plane-split frame not a multiple of 8");
    }
    if (avail < kFrameHeaderSize + stored_len + 4)
        return std::nullopt; // truncated: wait for more bytes
    obs::ScopedSpan span(obs::SpanCategory::Wire, "decode", raw_type,
                         raw_len);
    const std::uint8_t* stored = buf_.data() + pos_ + kFrameHeaderSize;
    Frame frame;
    frame.type = static_cast<FrameType>(raw_type);
    if (codec == static_cast<std::uint8_t>(packbits::Codec::Raw)) {
        frame.payload.assign(stored, stored + raw_len);
    } else {
        try {
            frame.payload = packbits::decode(
                codec, {stored, static_cast<std::size_t>(stored_len)},
                static_cast<std::size_t>(raw_len));
        } catch (const packbits::CodecError& e) {
            throw WireError(e.what());
        }
    }
    std::uint32_t trailer = 0;
    for (int i = 0; i < 4; ++i)
        trailer |=
            static_cast<std::uint32_t>(stored[stored_len + i]) << (8 * i);
    if (::oscar::crc32(std::span<const std::uint8_t>(buf_.data() + pos_,
                                                     kFrameHeaderSize),
                       frame.payload) != trailer)
        throw WireError("frame CRC mismatch");
    frame.wireBytes = kFrameHeaderSize + stored_len + 4;
    pos_ += frame.wireBytes;
    return frame;
}

// ---------------------------------------------------------- messages

void
encodeHello(WireWriter& w, const HelloMsg& msg)
{
    w.i32(msg.pid);
    w.u16(msg.wireVersion);
    w.u8(static_cast<std::uint8_t>(msg.isa));
    w.u16(msg.threads);
    w.u64(msg.authTag);
}

HelloMsg
decodeHello(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    HelloMsg msg;
    msg.pid = r.i32();
    msg.wireVersion = r.u16();
    msg.isa = static_cast<kernels::KernelIsa>(r.u8());
    // The capacity field arrived in v3; a v2-shaped payload ends here
    // and decodes as a single-threaded worker.
    msg.threads = r.atEnd() ? 1 : r.u16();
    if (msg.threads == 0)
        throw WireError("hello advertises zero capacity");
    // The auth tag arrived in v5; a v3-shaped payload ends here and
    // decodes untagged (the pool rejects untagged Hellos on
    // challenged transports, so tolerance here costs nothing).
    msg.authTag = r.atEnd() ? 0 : r.u64();
    r.expectEnd();
    return msg;
}

std::uint64_t
helloAuthTag(const std::string& secret, std::uint64_t nonce,
             const HelloMsg& msg)
{
    // HMAC-style two-pass FNV-1a: tag = H(k^opad || H(k^ipad || body)),
    // body = nonce plus the Hello's identity fields, so a tag cannot
    // be replayed for a different nonce or a rewritten capacity. A
    // membership gate, not cryptographic security (see wire.h).
    constexpr std::uint64_t kIpad = 0x3636363636363636ull;
    constexpr std::uint64_t kOpad = 0x5c5c5c5c5c5c5c5cull;
    const std::uint64_t key = fnv1a(
        {reinterpret_cast<const std::uint8_t*>(secret.data()),
         secret.size()});
    std::uint64_t inner = kFnv1aOffsetBasis;
    inner = fnv1aAppendU64(inner, key ^ kIpad);
    inner = fnv1aAppendU64(inner, nonce);
    inner = fnv1aAppendU64(inner,
                           static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(msg.pid)));
    inner = fnv1aAppendU64(inner, msg.wireVersion);
    inner = fnv1aAppendU64(inner,
                           static_cast<std::uint64_t>(msg.isa));
    inner = fnv1aAppendU64(inner, msg.threads);
    std::uint64_t outer = kFnv1aOffsetBasis;
    outer = fnv1aAppendU64(outer, key ^ kOpad);
    outer = fnv1aAppendU64(outer, inner);
    return outer;
}

void
encodeChallenge(WireWriter& w, const ChallengeMsg& msg)
{
    w.u64(msg.nonce);
}

ChallengeMsg
decodeChallenge(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    ChallengeMsg msg;
    msg.nonce = r.u64();
    r.expectEnd();
    return msg;
}

void
encodeStealRequest(WireWriter& w, const StealRequestMsg& msg)
{
    w.u64(msg.taskId);
}

StealRequestMsg
decodeStealRequest(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    StealRequestMsg msg;
    msg.taskId = r.u64();
    r.expectEnd();
    return msg;
}

void
encodeStealGrant(WireWriter& w, const StealGrantMsg& msg)
{
    w.u64(msg.taskId);
    w.u64(msg.keep);
}

StealGrantMsg
decodeStealGrant(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    StealGrantMsg msg;
    msg.taskId = r.u64();
    msg.keep = r.u64();
    r.expectEnd();
    return msg;
}

void
encodeCircuit(WireWriter& w, const Circuit& circuit)
{
    w.i32(circuit.numQubits());
    w.i32(circuit.numParams());
    w.u32(static_cast<std::uint32_t>(circuit.numGates()));
    for (const Gate& g : circuit.gates()) {
        w.u8(static_cast<std::uint8_t>(g.kind));
        w.i32(g.qubits[0]);
        w.i32(g.qubits[1]);
        w.f64(g.angle);
        w.i32(g.paramIndex);
        w.f64(g.coeff);
    }
}

Circuit
decodeCircuit(WireReader& r)
{
    const std::int32_t num_qubits = r.i32();
    const std::int32_t num_params = r.i32();
    if (num_qubits < 1 || num_qubits > 64 || num_params < 0)
        throw WireError("circuit header out of range");
    Circuit circuit(num_qubits, num_params);
    const std::uint32_t num_gates = r.u32();
    for (std::uint32_t i = 0; i < num_gates; ++i) {
        Gate g;
        const std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(GateKind::RZZ))
            throw WireError("unknown gate kind");
        g.kind = static_cast<GateKind>(kind);
        g.qubits[0] = r.i32();
        g.qubits[1] = r.i32();
        g.angle = r.f64();
        g.paramIndex = r.i32();
        g.coeff = r.f64();
        if (g.paramIndex >= num_params)
            throw WireError("gate parameter index out of range");
        try {
            circuit.append(g); // validates qubit indices
        } catch (const std::exception& e) {
            throw WireError(std::string("invalid gate: ") + e.what());
        }
    }
    return circuit;
}

void
encodePauliSum(WireWriter& w, const PauliSum& sum)
{
    w.i32(sum.numQubits());
    w.u32(static_cast<std::uint32_t>(sum.numTerms()));
    for (const PauliTerm& t : sum.terms()) {
        w.f64(t.coeff);
        w.str(t.pauli.toLabel());
    }
}

PauliSum
decodePauliSum(WireReader& r)
{
    const std::int32_t num_qubits = r.i32();
    if (num_qubits < 1 || num_qubits > 64)
        throw WireError("pauli sum qubit count out of range");
    PauliSum sum(num_qubits);
    const std::uint32_t num_terms = r.u32();
    for (std::uint32_t i = 0; i < num_terms; ++i) {
        const double coeff = r.f64();
        const std::string label = r.str();
        try {
            sum.add(coeff, label);
        } catch (const std::exception& e) {
            throw WireError(std::string("invalid pauli term: ") + e.what());
        }
    }
    return sum;
}

void
encodeKernelOptions(WireWriter& w, const KernelOptions& options)
{
    w.u8(options.prefixCache ? 1 : 0);
    w.u64(options.prefixCacheBudgetBytes);
    w.u8(static_cast<std::uint8_t>(options.isa));
    w.i32(options.blockWindow);
    w.u8(options.batchedExpectation ? 1 : 0);
    w.i32(options.fuseWindow);
}

KernelOptions
decodeKernelOptions(WireReader& r)
{
    KernelOptions options;
    options.prefixCache = r.u8() != 0;
    options.prefixCacheBudgetBytes = r.u64();
    const std::uint8_t isa = r.u8();
    if (isa > static_cast<std::uint8_t>(kernels::KernelIsa::Avx512) &&
        isa != static_cast<std::uint8_t>(kernels::KernelIsa::Auto))
        throw WireError("unknown kernel ISA");
    options.isa = static_cast<kernels::KernelIsa>(isa);
    options.blockWindow = r.i32();
    options.batchedExpectation = r.u8() != 0;
    options.fuseWindow = r.i32();
    return options;
}

void
encodeKernelStats(WireWriter& w, const KernelStats& stats)
{
    w.u64(stats.cacheHits);
    w.u64(stats.cacheLookups);
    w.u64(stats.cacheEvictions);
    w.u8(static_cast<std::uint8_t>(stats.isa));
    w.u64(stats.blockedGroupRuns);
    w.u64(stats.blockedOpsApplied);
    w.u64(stats.batchedExpectationPoints);
    w.u64(stats.fusedSuperKernels);
    w.u64(stats.fusedOpsCollapsed);
    w.u64(stats.batchedPauliPoints);
}

KernelStats
decodeKernelStats(WireReader& r)
{
    KernelStats stats;
    stats.cacheHits = r.u64();
    stats.cacheLookups = r.u64();
    stats.cacheEvictions = r.u64();
    stats.isa = static_cast<kernels::KernelIsa>(r.u8());
    stats.blockedGroupRuns = r.u64();
    stats.blockedOpsApplied = r.u64();
    stats.batchedExpectationPoints = r.u64();
    stats.fusedSuperKernels = r.u64();
    stats.fusedOpsCollapsed = r.u64();
    stats.batchedPauliPoints = r.u64();
    return stats;
}

std::vector<std::uint8_t>
encodeCostSpec(CostSpec& spec)
{
    WireWriter w;
    encodeCircuit(w, spec.circuit);
    encodePauliSum(w, spec.hamiltonian);
    encodeKernelOptions(w, spec.kernel);
    const std::vector<std::uint8_t>& body = w.bytes();
    spec.costId = fnv1a(body);
    WireWriter framed;
    framed.u64(spec.costId);
    std::vector<std::uint8_t> out = framed.take();
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

CostSpec
decodeCostSpec(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    CostSpec spec;
    spec.costId = r.u64();
    spec.circuit = decodeCircuit(r);
    spec.hamiltonian = decodePauliSum(r);
    spec.kernel = decodeKernelOptions(r);
    r.expectEnd();
    if (fnv1a(payload.subspan(8)) != spec.costId)
        throw WireError("cost spec id does not match body hash");
    return spec;
}

std::vector<std::uint8_t>
encodeTask(const TaskMsg& msg)
{
    WireWriter w;
    w.u64(msg.taskId);
    w.u64(msg.costId);
    w.u64(msg.baseOrdinal);
    w.u32(static_cast<std::uint32_t>(msg.points.size()));
    const std::size_t dim = msg.points.empty() ? 0 : msg.points[0].size();
    w.u32(static_cast<std::uint32_t>(dim));
    for (const auto& p : msg.points) {
        if (p.size() != dim)
            throw WireError("ragged point list");
        for (double v : p)
            w.f64(v);
    }
    return w.take();
}

TaskMsg
decodeTask(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    TaskMsg msg;
    msg.taskId = r.u64();
    msg.costId = r.u64();
    msg.baseOrdinal = r.u64();
    const std::uint32_t count = r.u32();
    const std::uint32_t dim = r.u32();
    // dim 0 would defeat the size plausibility check below and let a
    // crafted count reach a huge allocation; the protocol never ships
    // zero-dimensional points. The division form cannot overflow the
    // way count * dim * 8 could, so a crafted (count, dim) pair is
    // always a clean WireError, never a giant reserve().
    if (dim == 0 && count != 0)
        throw WireError("task with zero-dimensional points");
    if (dim != 0 &&
        count > r.remaining() / (static_cast<std::uint64_t>(dim) * 8))
        throw WireError("task points run past payload end");
    msg.points.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        std::vector<double> p(dim);
        for (std::uint32_t d = 0; d < dim; ++d)
            p[d] = r.f64();
        msg.points.push_back(std::move(p));
    }
    r.expectEnd();
    return msg;
}

std::vector<std::uint8_t>
encodeResult(const ResultMsg& msg)
{
    WireWriter w;
    w.u64(msg.taskId);
    w.u32(static_cast<std::uint32_t>(msg.values.size()));
    for (double v : msg.values)
        w.f64(v);
    encodeKernelStats(w, msg.kernel);
    return w.take();
}

ResultMsg
decodeResult(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    ResultMsg msg;
    msg.taskId = r.u64();
    const std::uint32_t count = r.u32();
    if (static_cast<std::uint64_t>(count) * 8 > r.remaining())
        throw WireError("result values run past payload end");
    msg.values.resize(count);
    for (std::uint32_t i = 0; i < count; ++i)
        msg.values[i] = r.f64();
    msg.kernel = decodeKernelStats(r);
    r.expectEnd();
    return msg;
}

std::vector<std::uint8_t>
encodeTaskError(const TaskErrorMsg& msg)
{
    WireWriter w;
    w.u64(msg.taskId);
    w.u8(msg.code);
    w.str(msg.message);
    return w.take();
}

TaskErrorMsg
decodeTaskError(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    TaskErrorMsg msg;
    msg.taskId = r.u64();
    msg.code = r.u8();
    msg.message = r.str();
    r.expectEnd();
    return msg;
}

// --------------------------------------------------- v6 observability

void
encodeMetricsSnapshot(WireWriter& w, const obs::MetricsSnapshot& snapshot)
{
    w.u32(static_cast<std::uint32_t>(snapshot.counters.size()));
    for (const auto& [name, value] : snapshot.counters) {
        w.str(name);
        w.u64(value);
    }
    w.u32(static_cast<std::uint32_t>(snapshot.gauges.size()));
    for (const auto& [name, value] : snapshot.gauges) {
        w.str(name);
        w.u64(value);
    }
    w.u32(static_cast<std::uint32_t>(snapshot.histograms.size()));
    for (const auto& [name, hist] : snapshot.histograms) {
        w.str(name);
        // Sparse buckets: 65 log2 classes, few ever occupied.
        std::uint32_t occupied = 0;
        for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i)
            if (hist.buckets[i] != 0)
                ++occupied;
        w.u32(occupied);
        for (std::size_t i = 0; i < obs::kHistogramBuckets; ++i) {
            if (hist.buckets[i] == 0)
                continue;
            w.u8(static_cast<std::uint8_t>(i));
            w.u64(hist.buckets[i]);
        }
        w.u64(hist.count);
        w.u64(hist.sum);
    }
}

obs::MetricsSnapshot
decodeMetricsSnapshot(WireReader& r)
{
    obs::MetricsSnapshot snapshot;
    const std::uint32_t num_counters = r.u32();
    for (std::uint32_t i = 0; i < num_counters; ++i) {
        const std::string name = r.str();
        snapshot.counters[name] = r.u64();
    }
    const std::uint32_t num_gauges = r.u32();
    for (std::uint32_t i = 0; i < num_gauges; ++i) {
        const std::string name = r.str();
        snapshot.gauges[name] = r.u64();
    }
    const std::uint32_t num_histograms = r.u32();
    for (std::uint32_t i = 0; i < num_histograms; ++i) {
        const std::string name = r.str();
        obs::HistogramSnapshot hist;
        const std::uint32_t occupied = r.u32();
        if (occupied > obs::kHistogramBuckets)
            throw WireError("histogram bucket count out of range");
        for (std::uint32_t b = 0; b < occupied; ++b) {
            const std::uint8_t index = r.u8();
            if (index >= obs::kHistogramBuckets)
                throw WireError("histogram bucket index out of range");
            hist.buckets[index] = r.u64();
        }
        hist.count = r.u64();
        hist.sum = r.u64();
        snapshot.histograms[name] = hist;
    }
    return snapshot;
}

std::vector<std::uint8_t>
encodeTelemetry(const TelemetryMsg& msg)
{
    WireWriter w;
    w.i32(msg.pid);
    w.u32(static_cast<std::uint32_t>(msg.spans.size()));
    for (const obs::SpanRecord& span : msg.spans) {
        w.u64(span.t0Ns);
        w.u64(span.durNs);
        w.u8(static_cast<std::uint8_t>(span.category));
        w.str(span.name);
        w.u64(span.arg0);
        w.u64(span.arg1);
        w.u32(span.tid);
    }
    encodeMetricsSnapshot(w, msg.metrics);
    return w.take();
}

TelemetryMsg
decodeTelemetry(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    TelemetryMsg msg;
    msg.pid = r.i32();
    const std::uint32_t num_spans = r.u32();
    // Each span occupies at least 45 payload bytes; bound the reserve
    // from what is actually present, like decodeTask does.
    if (num_spans > r.remaining() / 45)
        throw WireError("telemetry spans run past payload end");
    msg.spans.reserve(num_spans);
    for (std::uint32_t i = 0; i < num_spans; ++i) {
        obs::SpanRecord span;
        span.t0Ns = r.u64();
        span.durNs = r.u64();
        const std::uint8_t cat = r.u8();
        if (cat > static_cast<std::uint8_t>(obs::SpanCategory::Serve))
            throw WireError("unknown span category");
        span.category = static_cast<obs::SpanCategory>(cat);
        const std::string name = r.str();
        if (name.size() > obs::kSpanNameChars)
            throw WireError("span name too long");
        std::memcpy(span.name, name.data(), name.size());
        span.arg0 = r.u64();
        span.arg1 = r.u64();
        span.tid = r.u32();
        // The sender's pid names the recording process fleet-wide.
        span.pid = msg.pid;
        msg.spans.push_back(span);
    }
    msg.metrics = decodeMetricsSnapshot(r);
    r.expectEnd();
    return msg;
}

std::vector<std::uint8_t>
encodeMetricsRequest(const MetricsRequestMsg& msg)
{
    WireWriter w;
    w.u64(msg.tag);
    return w.take();
}

MetricsRequestMsg
decodeMetricsRequest(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    MetricsRequestMsg msg;
    msg.tag = r.u64();
    r.expectEnd();
    return msg;
}

std::vector<std::uint8_t>
encodeMetricsResponse(const MetricsResponseMsg& msg)
{
    WireWriter w;
    w.u64(msg.tag);
    w.str(msg.text);
    return w.take();
}

MetricsResponseMsg
decodeMetricsResponse(std::span<const std::uint8_t> payload)
{
    WireReader r(payload);
    MetricsResponseMsg msg;
    msg.tag = r.u64();
    msg.text = r.str();
    r.expectEnd();
    return msg;
}

} // namespace dist
} // namespace oscar
