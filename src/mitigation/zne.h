/**
 * @file
 * Zero Noise Extrapolation (paper Section 6).
 *
 * ZNE evaluates the cost at several amplified noise levels and
 * extrapolates the readings back to the zero-noise limit. Supported
 * extrapolation models:
 *
 *  - Linear: least-squares line through (scale, value), evaluated at 0.
 *    With {1, 3} scaling this is the paper's "linear extrapolation".
 *  - Richardson: exact polynomial interpolation through all points
 *    evaluated at 0 (Lagrange form). With {1, 2, 3} scaling this is
 *    the paper's "Richardson extrapolation". Richardson's
 *    interpolation weights grow with the number of nodes, which
 *    amplifies shot noise -- the "salt-like" jaggedness of Fig. 9.
 *  - Quadratic: least-squares degree-2 fit (an extra configuration for
 *    the tuning use case).
 *
 * A ZneCost owns one CostFunction per scale factor; factory helpers
 * build the per-scale evaluators by circuit folding (density backend)
 * or by noise-parameter scaling (analytic backend).
 */

#ifndef OSCAR_MITIGATION_ZNE_H
#define OSCAR_MITIGATION_ZNE_H

#include <memory>
#include <vector>

#include "src/backend/executor.h"
#include "src/graph/graph.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/circuit.h"
#include "src/quantum/noise_model.h"

namespace oscar {

/** Extrapolation model for ZNE. */
enum class ZneExtrapolation
{
    Linear,
    Richardson,
    Quadratic,
};

/** Error-mitigated cost: extrapolates per-scale evaluators to zero. */
class ZneCost : public CostFunction
{
  public:
    /**
     * @param evaluators one evaluator per scale factor
     * @param scales     noise-scale factors (>= 1, at least 2 of them,
     *                   all distinct)
     */
    ZneCost(std::vector<std::shared_ptr<CostFunction>> evaluators,
            std::vector<double> scales, ZneExtrapolation extrapolation);

    int numParams() const override;

    const std::vector<double>& scales() const { return scales_; }

    /** Replicable iff every per-scale evaluator is replicable. */
    std::unique_ptr<CostFunction> clone() const override;

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    std::vector<std::shared_ptr<CostFunction>> evaluators_;
    std::vector<double> scales_;
    ZneExtrapolation extrapolation_;
};

/** Extrapolate (scale, value) readings to scale 0 (exposed for tests). */
double zneExtrapolate(const std::vector<double>& scales,
                      const std::vector<double>& values,
                      ZneExtrapolation extrapolation);

/**
 * ZNE over the exact density-matrix backend: per-scale evaluators are
 * folded copies of `circuit` run under `noise`, optionally wrapped
 * with finite-shot sampling noise (shots == 0 disables shot noise).
 */
std::shared_ptr<ZneCost> makeZneDensityCost(
    const Circuit& circuit, const PauliSum& hamiltonian,
    const NoiseModel& noise, const std::vector<double>& scales,
    ZneExtrapolation extrapolation, std::size_t shots = 0,
    double sigma_single_shot = 1.0, std::uint64_t seed = 1);

/**
 * ZNE over the analytic depth-1 QAOA backend: per-scale evaluators use
 * noise rates multiplied by the scale factor.
 */
std::shared_ptr<ZneCost> makeZneAnalyticCost(
    const Graph& graph, const NoiseModel& noise,
    const std::vector<double>& scales, ZneExtrapolation extrapolation,
    std::size_t shots = 0, double sigma_single_shot = 1.0,
    std::uint64_t seed = 1);

} // namespace oscar

#endif // OSCAR_MITIGATION_ZNE_H
