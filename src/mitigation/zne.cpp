#include "src/mitigation/zne.h"

#include <stdexcept>

#include "src/backend/analytic_qaoa.h"
#include "src/backend/density_backend.h"
#include "src/common/linear_regression.h"
#include "src/mitigation/folding.h"

namespace oscar {

ZneCost::ZneCost(std::vector<std::shared_ptr<CostFunction>> evaluators,
                 std::vector<double> scales,
                 ZneExtrapolation extrapolation)
    : evaluators_(std::move(evaluators)), scales_(std::move(scales)),
      extrapolation_(extrapolation)
{
    if (evaluators_.size() != scales_.size())
        throw std::invalid_argument("ZneCost: evaluator/scale mismatch");
    if (scales_.size() < 2)
        throw std::invalid_argument("ZneCost: need >= 2 scale factors");
    for (std::size_t i = 0; i < scales_.size(); ++i) {
        if (scales_[i] < 1.0)
            throw std::invalid_argument("ZneCost: scale < 1");
        for (std::size_t j = i + 1; j < scales_.size(); ++j) {
            if (scales_[i] == scales_[j])
                throw std::invalid_argument("ZneCost: duplicate scales");
        }
    }
}

int
ZneCost::numParams() const
{
    return evaluators_.front()->numParams();
}

std::unique_ptr<CostFunction>
ZneCost::clone() const
{
    std::vector<std::shared_ptr<CostFunction>> evaluators;
    evaluators.reserve(evaluators_.size());
    for (const auto& e : evaluators_) {
        std::unique_ptr<CostFunction> copy = e->clone();
        if (!copy)
            return nullptr;
        evaluators.push_back(std::shared_ptr<CostFunction>(std::move(copy)));
    }
    return std::make_unique<ZneCost>(std::move(evaluators), scales_,
                                     extrapolation_);
}

double
ZneCost::evaluateImpl(const std::vector<double>& params,
                      std::uint64_t ordinal)
{
    std::vector<double> values(scales_.size());
    for (std::size_t i = 0; i < scales_.size(); ++i)
        values[i] = invokeAt(*evaluators_[i], params, ordinal);
    return zneExtrapolate(scales_, values, extrapolation_);
}

double
zneExtrapolate(const std::vector<double>& scales,
               const std::vector<double>& values,
               ZneExtrapolation extrapolation)
{
    if (scales.size() != values.size() || scales.size() < 2)
        throw std::invalid_argument("zneExtrapolate: bad inputs");

    switch (extrapolation) {
      case ZneExtrapolation::Linear: {
        return fitLinear(scales, values).intercept;
      }
      case ZneExtrapolation::Richardson: {
        // Lagrange interpolation through every node, evaluated at 0.
        double acc = 0.0;
        for (std::size_t i = 0; i < scales.size(); ++i) {
            double weight = 1.0;
            for (std::size_t j = 0; j < scales.size(); ++j) {
                if (j == i)
                    continue;
                weight *= (0.0 - scales[j]) / (scales[i] - scales[j]);
            }
            acc += weight * values[i];
        }
        return acc;
      }
      case ZneExtrapolation::Quadratic: {
        if (scales.size() < 3)
            throw std::invalid_argument(
                "zneExtrapolate: quadratic needs >= 3 scales");
        return fitPolynomial(scales, values, 2)[0];
      }
    }
    throw std::logic_error("zneExtrapolate: unknown model");
}

std::shared_ptr<ZneCost>
makeZneDensityCost(const Circuit& circuit, const PauliSum& hamiltonian,
                   const NoiseModel& noise,
                   const std::vector<double>& scales,
                   ZneExtrapolation extrapolation, std::size_t shots,
                   double sigma_single_shot, std::uint64_t seed)
{
    std::vector<std::shared_ptr<CostFunction>> evaluators;
    evaluators.reserve(scales.size());
    for (std::size_t i = 0; i < scales.size(); ++i) {
        std::shared_ptr<CostFunction> eval = std::make_shared<DensityCost>(
            foldGlobal(circuit, scales[i]), hamiltonian, noise);
        if (shots > 0) {
            eval = std::make_shared<ShotNoiseCost>(
                std::move(eval), shots, sigma_single_shot, seed + i);
        }
        evaluators.push_back(std::move(eval));
    }
    return std::make_shared<ZneCost>(std::move(evaluators), scales,
                                     extrapolation);
}

std::shared_ptr<ZneCost>
makeZneAnalyticCost(const Graph& graph, const NoiseModel& noise,
                    const std::vector<double>& scales,
                    ZneExtrapolation extrapolation, std::size_t shots,
                    double sigma_single_shot, std::uint64_t seed)
{
    std::vector<std::shared_ptr<CostFunction>> evaluators;
    evaluators.reserve(scales.size());
    for (std::size_t i = 0; i < scales.size(); ++i) {
        std::shared_ptr<CostFunction> eval =
            std::make_shared<AnalyticQaoaCost>(graph,
                                               noise.scaled(scales[i]));
        if (shots > 0) {
            eval = std::make_shared<ShotNoiseCost>(
                std::move(eval), shots, sigma_single_shot, seed + i);
        }
        evaluators.push_back(std::move(eval));
    }
    return std::make_shared<ZneCost>(std::move(evaluators), scales,
                                     extrapolation);
}

} // namespace oscar
