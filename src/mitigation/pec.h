/**
 * @file
 * Probabilistic Error Cancellation (PEC).
 *
 * PEC (Temme et al., PRL 119, 180509 (2017); paper Section 2.3)
 * inverts a known noise channel in expectation by sampling from the
 * quasi-probability decomposition of its inverse. For the single-qubit
 * depolarizing channel with rate p, Pauli observables contract by
 * f = 1 - 4p/3; the inverse map
 *     D^{-1}(rho) = alpha rho + (beta/3) sum_P P rho P,
 *     alpha = (3g + 1)/4,  beta = (3 - 3g)/4,  g = 1/f > 1,
 * has beta < 0, so it is simulated by sampling identity/Pauli
 * insertions with probabilities |alpha|/gamma, |beta/3|/gamma and
 * weighting each trajectory by its sign times gamma = |alpha| + |beta|
 * (similarly for the 2-qubit channel with f2 = 1 - 16p/15). The
 * estimator is unbiased; its cost is the gamma^2-per-gate sampling
 * overhead -- the textbook PEC tradeoff.
 *
 * This implementation simulates the noisy device and the PEC
 * insertions together in one trajectory sampler: per gate it applies
 * the device's stochastic Pauli noise AND the sampled inverse-channel
 * operation.
 */

#ifndef OSCAR_MITIGATION_PEC_H
#define OSCAR_MITIGATION_PEC_H

#include "src/backend/executor.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/circuit.h"
#include "src/quantum/noise_model.h"
#include "src/quantum/statevector.h"

namespace oscar {

/** The per-gate quasi-probability decomposition of an inverse channel. */
struct PecChannelInverse
{
    double alpha = 1.0;  ///< identity weight (>= 1)
    double beta = 0.0;   ///< total Pauli weight (<= 0)
    double gamma = 1.0;  ///< sampling overhead |alpha| + |beta|

    /** Inverse of the 1-qubit depolarizing channel with rate p. */
    static PecChannelInverse depolarizing1(double p);

    /** Inverse of the 2-qubit depolarizing channel with rate p. */
    static PecChannelInverse depolarizing2(double p);
};

/** PEC configuration. */
struct PecOptions
{
    /** Monte-Carlo trajectories per evaluation. */
    std::size_t numSamples = 2000;

    std::uint64_t seed = 1;
};

/** PEC-mitigated noisy expectation (trajectory Monte Carlo). */
class PecCost : public CostFunction
{
  public:
    PecCost(Circuit circuit, PauliSum hamiltonian, NoiseModel noise,
            PecOptions options = {});

    int numParams() const override { return circuit_.numParams(); }

    /** Total sampling overhead prod_gates gamma_g. */
    double totalGamma() const { return totalGamma_; }

    /** Replicable: Monte-Carlo streams are keyed by ordinal. */
    std::unique_ptr<CostFunction> clone() const override;

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    double runTrajectory(const std::vector<double>& params, double& sign,
                         Rng& rng);

    Circuit circuit_;
    PauliSum hamiltonian_;
    NoiseModel noise_;
    PecOptions options_;
    PecChannelInverse inv1_;
    PecChannelInverse inv2_;
    double totalGamma_;
    std::vector<double> diagonal_;
    Statevector state_;
};

} // namespace oscar

#endif // OSCAR_MITIGATION_PEC_H
