/**
 * @file
 * Readout (measurement) error model and inversion-based mitigation.
 *
 * Readout errors are classical bit flips applied to measurement
 * outcomes: a qubit in state 0 reads 1 with probability e01 and a
 * qubit in 1 reads 0 with probability e10. For expectation values of
 * diagonal observables this is equivalent to replacing the observable
 * value table C(z) by its confusion-smeared version
 *     C~(z) = sum_z' P(read z' | prepared z) C(z'),
 * a tensor product of per-qubit 2x2 stochastic maps, applied here with
 * an in-place butterfly in O(n 2^n).
 *
 * Qubit Readout Mitigation (QRM, paper Section 2.3) inverts the same
 * per-qubit confusion matrices, which is exact when the calibrated
 * error rates match the device.
 */

#ifndef OSCAR_MITIGATION_READOUT_H
#define OSCAR_MITIGATION_READOUT_H

#include <vector>

namespace oscar {

/**
 * Smear a diagonal observable table by readout errors: returns the
 * effective table C~ such that E_noisy[C] = sum_z p(z) C~(z).
 */
std::vector<double> applyReadoutToDiagonal(std::vector<double> table,
                                           int num_qubits, double e01,
                                           double e10);

/**
 * Apply readout errors to a probability distribution over basis
 * states: p'(z') = sum_z T(z'|z) p(z).
 */
std::vector<double> applyReadoutToDistribution(std::vector<double> probs,
                                               int num_qubits, double e01,
                                               double e10);

/**
 * Readout mitigation by per-qubit confusion-matrix inversion: the
 * inverse map applied to a measured distribution. Calibration rates
 * must be the (estimated) physical error rates.
 */
std::vector<double> invertReadout(std::vector<double> probs,
                                  int num_qubits, double e01, double e10);

} // namespace oscar

#endif // OSCAR_MITIGATION_READOUT_H
