/**
 * @file
 * Clifford Data Regression (CDR) noise mitigation.
 *
 * CDR (Czarnik et al., Quantum 5, 592 (2021); paper Section 2.3)
 * learns the noise-inversion map from circuits that are classically
 * simulable: project the target circuit onto near-Clifford training
 * circuits (rotation angles snapped to multiples of pi/2), measure
 * each training circuit on the noisy device, compute its exact ideal
 * value with the stabilizer simulator, fit ideal ~ a * noisy + b, and
 * apply the fitted map to the target circuit's noisy reading.
 *
 * Like ZNE, CDR is a "mitigation with supplementary shots" method --
 * it costs numTrainingCircuits extra executions per query -- which is
 * exactly the kind of configuration-heavy mitigation OSCAR is built
 * to benchmark cheaply.
 */

#ifndef OSCAR_MITIGATION_CDR_H
#define OSCAR_MITIGATION_CDR_H

#include <cstdint>
#include <functional>
#include <memory>

#include "src/backend/executor.h"
#include "src/common/rng.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/circuit.h"

namespace oscar {

/** CDR configuration. */
struct CdrOptions
{
    /** Number of near-Clifford training circuits. */
    std::size_t numTrainingCircuits = 16;

    /**
     * Probability that a rotation angle is replaced by a random
     * Clifford angle rather than the nearest one (training-set
     * diversity).
     */
    double perturbProbability = 0.3;

    /** Seed for the projection randomness. */
    std::uint64_t seed = 1;
};

/** Evaluates the noisy expectation of an arbitrary bound circuit. */
using CircuitEvaluator = std::function<double(const Circuit&)>;

/**
 * Snap every rotation angle of a bound circuit to a Clifford angle:
 * the nearest multiple of pi/2, or (with probability
 * perturb_probability) a uniformly random multiple.
 */
Circuit projectToClifford(const Circuit& circuit,
                          double perturb_probability, Rng& rng);

/** Exact ideal expectation of a Clifford circuit via the tableau. */
double stabilizerExpectation(const Circuit& clifford,
                             const PauliSum& hamiltonian);

/** Outcome of one CDR-mitigated evaluation. */
struct CdrResult
{
    /** The mitigated expectation a * noisy(target) + b. */
    double mitigated = 0.0;

    /** The raw noisy expectation of the target circuit. */
    double raw = 0.0;

    /** Fitted regression coefficients. */
    double slope = 1.0;
    double intercept = 0.0;

    /** Training circuits actually used. */
    std::size_t trainingCircuits = 0;
};

/**
 * Run CDR for one target circuit.
 *
 * @param target      bound (parameter-free) circuit to mitigate
 * @param hamiltonian observable
 * @param noisy       noisy evaluator used for target and training runs
 */
CdrResult cdrMitigate(const Circuit& target, const PauliSum& hamiltonian,
                      const CircuitEvaluator& noisy,
                      const CdrOptions& options = {});

/**
 * CostFunction adapter: CDR-mitigated evaluation of a parameterized
 * circuit (one regression per query, as in per-point CDR).
 */
class CdrCost : public CostFunction
{
  public:
    CdrCost(Circuit circuit, PauliSum hamiltonian, CircuitEvaluator noisy,
            CdrOptions options = {});

    int numParams() const override { return circuit_.numParams(); }

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    Circuit circuit_;
    PauliSum hamiltonian_;
    CircuitEvaluator noisy_;
    CdrOptions options_;
};

} // namespace oscar

#endif // OSCAR_MITIGATION_CDR_H
