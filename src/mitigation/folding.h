/**
 * @file
 * Unitary (circuit) folding for noise scaling.
 *
 * ZNE needs circuit variants that are logically identical but noisier.
 * Global folding replaces the circuit C by C (C^dag C)^k, multiplying
 * the gate count -- and hence the accumulated depolarizing noise -- by
 * the odd factor 2k+1; partial folding appends a folded suffix to hit
 * non-odd scale factors (the standard Mitiq construction, matching the
 * paper's U -> U U^-1 U example).
 *
 * Folding a parameterized circuit yields a parameterized circuit: gate
 * inverses negate angles and parameter coefficients, so one folded
 * template serves a whole landscape sweep.
 */

#ifndef OSCAR_MITIGATION_FOLDING_H
#define OSCAR_MITIGATION_FOLDING_H

#include "src/quantum/circuit.h"

namespace oscar {

/**
 * Globally fold a circuit to a noise-scale factor >= 1. The realized
 * gate-count ratio is the closest value of the form
 * (2k+1 + 2 * suffix/G) to `scale`.
 */
Circuit foldGlobal(const Circuit& circuit, double scale);

/** The exact gate-count ratio foldGlobal(c, scale) will realize. */
double realizedFoldScale(std::size_t num_gates, double scale);

} // namespace oscar

#endif // OSCAR_MITIGATION_FOLDING_H
