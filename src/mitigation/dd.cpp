#include "src/mitigation/dd.h"

#include <stdexcept>

#include "src/quantum/density_matrix.h"

namespace oscar {

std::size_t
LayeredCircuit::numGates() const
{
    std::size_t total = 0;
    for (const auto& layer : layers)
        total += layer.size();
    return total;
}

Circuit
LayeredCircuit::flatten() const
{
    Circuit circuit(numQubits, 0);
    for (const auto& layer : layers) {
        for (const Gate& g : layer)
            circuit.append(g);
    }
    return circuit;
}

LayeredCircuit
layerize(const Circuit& bound)
{
    if (bound.numParams() != 0)
        throw std::invalid_argument("layerize: circuit must be bound");

    LayeredCircuit out;
    out.numQubits = bound.numQubits();
    // busyUntil[q] = first layer index where qubit q is free.
    std::vector<std::size_t> busy_until(
        static_cast<std::size_t>(bound.numQubits()), 0);
    for (const Gate& g : bound.gates()) {
        std::size_t layer = busy_until[g.qubits[0]];
        if (gateArity(g.kind) == 2)
            layer = std::max(layer, busy_until[g.qubits[1]]);
        if (layer >= out.layers.size())
            out.layers.resize(layer + 1);
        out.layers[layer].push_back(g);
        busy_until[g.qubits[0]] = layer + 1;
        if (gateArity(g.kind) == 2)
            busy_until[g.qubits[1]] = layer + 1;
    }
    return out;
}

namespace {

/** Occupancy map: occupied[t][q] == 1 iff qubit q has a gate at t. */
std::vector<std::vector<char>>
occupancy(const LayeredCircuit& layered)
{
    std::vector<std::vector<char>> occupied(
        layered.layers.size(),
        std::vector<char>(static_cast<std::size_t>(layered.numQubits),
                          0));
    for (std::size_t t = 0; t < layered.layers.size(); ++t) {
        for (const Gate& g : layered.layers[t]) {
            occupied[t][g.qubits[0]] = 1;
            if (gateArity(g.kind) == 2)
                occupied[t][g.qubits[1]] = 1;
        }
    }
    return occupied;
}

} // namespace

LayeredCircuit
insertDynamicalDecoupling(const LayeredCircuit& layered)
{
    LayeredCircuit out = layered;
    auto occupied = occupancy(layered);
    const int n = layered.numQubits;
    const std::size_t depth = layered.layers.size();

    for (int q = 0; q < n; ++q) {
        std::size_t t = 0;
        while (t < depth) {
            if (occupied[t][q]) {
                ++t;
                continue;
            }
            // Maximal idle window [t, end).
            std::size_t end = t;
            while (end < depth && !occupied[end][q])
                ++end;
            if (end - t >= 2) {
                // First pulse at the window start, second at the
                // midpoint: the dephasing accumulated between the
                // pulses is sign-flipped and cancels the dephasing
                // accumulated after the second pulse (odd windows
                // leave one uncancelled slot).
                out.layers[t].push_back(Gate::x(q));
                out.layers[(t + end) / 2].push_back(Gate::x(q));
            }
            t = end;
        }
    }
    return out;
}

LayeredDensityCost::LayeredDensityCost(Circuit circuit,
                                       PauliSum hamiltonian,
                                       NoiseModel noise,
                                       double idle_phase, bool use_dd)
    : circuit_(std::move(circuit)), hamiltonian_(std::move(hamiltonian)),
      noise_(noise), idlePhase_(idle_phase), useDd_(use_dd)
{
    if (hamiltonian_.numQubits() != circuit_.numQubits())
        throw std::invalid_argument(
            "LayeredDensityCost: circuit/Hamiltonian qubit mismatch");
}

std::unique_ptr<CostFunction>
LayeredDensityCost::clone() const
{
    return std::make_unique<LayeredDensityCost>(*this);
}

double
LayeredDensityCost::evaluateImpl(const std::vector<double>& params,
                                 std::uint64_t /*ordinal*/)
{
    LayeredCircuit layered = layerize(circuit_.bind(params));
    if (useDd_)
        layered = insertDynamicalDecoupling(layered);
    const auto occupied = occupancy(layered);

    DensityMatrix rho(circuit_.numQubits());
    for (std::size_t t = 0; t < layered.layers.size(); ++t) {
        for (const Gate& g : layered.layers[t]) {
            rho.applyGate(g);
            if (gateArity(g.kind) == 2)
                rho.applyDepolarizing2(g.qubits[0], g.qubits[1],
                                       noise_.p2);
            else
                rho.applyDepolarizing1(g.qubits[0], noise_.p1);
        }
        // Coherent dephasing on idle qubits.
        if (idlePhase_ != 0.0) {
            for (int q = 0; q < circuit_.numQubits(); ++q) {
                if (!occupied[t][q])
                    rho.applyGate(Gate::rz(q, idlePhase_));
            }
        }
    }
    return hamiltonian_.expectation(rho);
}

} // namespace oscar
