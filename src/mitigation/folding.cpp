#include "src/mitigation/folding.h"

#include <cmath>
#include <stdexcept>

namespace oscar {

namespace {

/** Number of suffix gates to fold for the fractional part. */
std::size_t
suffixGates(std::size_t num_gates, double scale)
{
    const double k = std::floor((scale - 1.0) / 2.0);
    const double frac = (scale - (2.0 * k + 1.0)) / 2.0; // in [0, 1)
    return static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(num_gates)));
}

} // namespace

double
realizedFoldScale(std::size_t num_gates, double scale)
{
    if (num_gates == 0)
        return 1.0;
    const double k = std::floor((scale - 1.0) / 2.0);
    const std::size_t suffix = suffixGates(num_gates, scale);
    return 2.0 * k + 1.0 +
           2.0 * static_cast<double>(suffix) /
               static_cast<double>(num_gates);
}

Circuit
foldGlobal(const Circuit& circuit, double scale)
{
    if (scale < 1.0)
        throw std::invalid_argument("foldGlobal: scale must be >= 1");

    const std::size_t full_folds =
        static_cast<std::size_t>(std::floor((scale - 1.0) / 2.0));

    Circuit folded(circuit.numQubits(), circuit.numParams());
    folded.append(circuit);
    const Circuit inverse = circuit.inverse();
    for (std::size_t f = 0; f < full_folds; ++f) {
        folded.append(inverse);
        folded.append(circuit);
    }

    // Partial fold: take the last `suffix` gates S and append S^dag S.
    const std::size_t suffix = suffixGates(circuit.numGates(), scale);
    if (suffix > 0) {
        const auto& gates = circuit.gates();
        Circuit tail(circuit.numQubits(), circuit.numParams());
        for (std::size_t i = gates.size() - suffix; i < gates.size(); ++i)
            tail.append(gates[i]);
        folded.append(tail.inverse());
        folded.append(tail);
    }
    return folded;
}

} // namespace oscar
