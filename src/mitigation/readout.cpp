#include "src/mitigation/readout.h"

#include <cassert>
#include <stdexcept>

namespace oscar {

namespace {

/**
 * Apply the per-qubit 2x2 map M (row-major: m00 m01 / m10 m11) to a
 * length-2^n table along every qubit axis. For distributions M is the
 * column-stochastic confusion matrix; for observables we apply the
 * transpose (see callers).
 */
std::vector<double>
applyKronecker2(std::vector<double> v, int num_qubits, double m00,
                double m01, double m10, double m11)
{
    assert(v.size() == (std::size_t{1} << num_qubits));
    for (int q = 0; q < num_qubits; ++q) {
        const std::size_t stride = std::size_t{1} << q;
        for (std::size_t base = 0; base < v.size(); base += 2 * stride) {
            for (std::size_t off = 0; off < stride; ++off) {
                const std::size_t i0 = base + off;
                const std::size_t i1 = i0 + stride;
                const double a0 = v[i0];
                const double a1 = v[i1];
                v[i0] = m00 * a0 + m01 * a1;
                v[i1] = m10 * a0 + m11 * a1;
            }
        }
    }
    return v;
}

} // namespace

std::vector<double>
applyReadoutToDiagonal(std::vector<double> table, int num_qubits,
                       double e01, double e10)
{
    // Confusion matrix T(read|true), columns indexed by true value:
    //   T = [[1-e01, e10], [e01, 1-e10]].
    // C~(z) = sum_z' T(z'|z) C(z')  ==>  C~ = T^T C per qubit.
    return applyKronecker2(std::move(table), num_qubits,
                           1.0 - e01, e01, e10, 1.0 - e10);
}

std::vector<double>
applyReadoutToDistribution(std::vector<double> probs, int num_qubits,
                           double e01, double e10)
{
    // p' = T p per qubit.
    return applyKronecker2(std::move(probs), num_qubits,
                           1.0 - e01, e10, e01, 1.0 - e10);
}

std::vector<double>
invertReadout(std::vector<double> probs, int num_qubits, double e01,
              double e10)
{
    const double det = 1.0 - e01 - e10;
    if (det <= 0.0)
        throw std::invalid_argument("invertReadout: confusion not invertible");
    // Inverse of [[1-e01, e10], [e01, 1-e10]] / det.
    const double m00 = (1.0 - e10) / det;
    const double m01 = -e10 / det;
    const double m10 = -e01 / det;
    const double m11 = (1.0 - e01) / det;
    return applyKronecker2(std::move(probs), num_qubits, m00, m01, m10,
                           m11);
}

} // namespace oscar
