#include "src/mitigation/cdr.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "src/common/linear_regression.h"
#include "src/common/stats.h"
#include "src/quantum/stabilizer.h"

namespace oscar {

Circuit
projectToClifford(const Circuit& circuit, double perturb_probability,
                  Rng& rng)
{
    if (circuit.numParams() != 0)
        throw std::invalid_argument(
            "projectToClifford: circuit must be bound");
    const double quarter = std::numbers::pi / 2.0;
    Circuit projected(circuit.numQubits(), 0);
    for (const Gate& g : circuit.gates()) {
        Gate out = g;
        if (gateIsParameterized(g.kind)) {
            if (rng.bernoulli(perturb_probability)) {
                out.angle =
                    quarter * static_cast<double>(rng.uniformInt(4));
            } else {
                out.angle = quarter * std::round(g.angle / quarter);
            }
        }
        projected.append(out);
    }
    return projected;
}

double
stabilizerExpectation(const Circuit& clifford, const PauliSum& hamiltonian)
{
    StabilizerState state(clifford.numQubits());
    state.run(clifford);
    double acc = 0.0;
    for (const PauliTerm& term : hamiltonian.terms()) {
        if (term.pauli.isIdentity())
            acc += term.coeff;
        else
            acc += term.coeff * state.expectation(term.pauli);
    }
    return acc;
}

CdrResult
cdrMitigate(const Circuit& target, const PauliSum& hamiltonian,
            const CircuitEvaluator& noisy, const CdrOptions& options)
{
    if (options.numTrainingCircuits < 2)
        throw std::invalid_argument("cdrMitigate: need >= 2 training "
                                    "circuits");
    Rng rng(options.seed);

    std::vector<double> ideal_values, noisy_values;
    ideal_values.reserve(options.numTrainingCircuits);
    noisy_values.reserve(options.numTrainingCircuits);
    for (std::size_t t = 0; t < options.numTrainingCircuits; ++t) {
        // The first training circuit is the plain nearest-Clifford
        // projection; later ones add random perturbations.
        const double perturb =
            t == 0 ? 0.0 : options.perturbProbability;
        const Circuit training = projectToClifford(target, perturb, rng);
        ideal_values.push_back(
            stabilizerExpectation(training, hamiltonian));
        noisy_values.push_back(noisy(training));
    }

    CdrResult result;
    result.raw = noisy(target);
    result.trainingCircuits = options.numTrainingCircuits;

    // Degenerate training set (all readings equal): fall back to the
    // raw value rather than fitting through a single point.
    if (stats::stddev(noisy_values) < 1e-12) {
        result.mitigated = result.raw;
        return result;
    }
    const LinearFit fit = fitLinear(noisy_values, ideal_values);
    result.slope = fit.slope;
    result.intercept = fit.intercept;
    result.mitigated = fit(result.raw);
    return result;
}

CdrCost::CdrCost(Circuit circuit, PauliSum hamiltonian,
                 CircuitEvaluator noisy, CdrOptions options)
    : circuit_(std::move(circuit)), hamiltonian_(std::move(hamiltonian)),
      noisy_(std::move(noisy)), options_(options)
{
    if (hamiltonian_.numQubits() != circuit_.numQubits())
        throw std::invalid_argument(
            "CdrCost: circuit/Hamiltonian qubit mismatch");
}

double
CdrCost::evaluateImpl(const std::vector<double>& params,
                      std::uint64_t ordinal)
{
    CdrOptions options = options_;
    options.seed = mixSeed(options_.seed, ordinal);
    const CdrResult result =
        cdrMitigate(circuit_.bind(params), hamiltonian_, noisy_, options);
    return result.mitigated;
}

} // namespace oscar
