/**
 * @file
 * Dynamical Decoupling (DD) -- the paper's shot-frugal mitigation
 * example (Section 2.3): insert X-X pairs into idle windows so that
 * coherent dephasing accumulated while a qubit waits (ZZ-crosstalk,
 * static frequency offsets) refocuses, at the price of two extra
 * 1-qubit gates per window.
 *
 * Substrate: an ASAP-layered circuit representation plus an evaluator
 * that models idle error as a deterministic RZ(idle_phase) on every
 * qubit that sits out a layer (the coherent component DD can echo),
 * alongside the usual gate-level depolarizing (which DD cannot).
 * The DD tradeoff is then real: X-X insertion cancels the RZ phases
 * between the pulses but pays 2 * p1 depolarizing -- exactly the
 * "configure it carefully or it does more harm than good" situation
 * OSCAR is designed to expose.
 */

#ifndef OSCAR_MITIGATION_DD_H
#define OSCAR_MITIGATION_DD_H

#include "src/backend/executor.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/circuit.h"
#include "src/quantum/noise_model.h"

namespace oscar {

/** A circuit scheduled into layers of disjoint-qubit gates. */
struct LayeredCircuit
{
    int numQubits = 0;
    std::vector<std::vector<Gate>> layers;

    /** Total number of gates across layers. */
    std::size_t numGates() const;

    /** Flatten back to a Circuit (layer order preserved). */
    Circuit flatten() const;
};

/**
 * ASAP (as-soon-as-possible) scheduling of a bound circuit: each gate
 * goes to the earliest layer after the last use of any of its qubits.
 */
LayeredCircuit layerize(const Circuit& bound);

/**
 * Insert an X-X decoupling pair into every maximal idle window of
 * length >= 2: one X at the window's first slot and one at its last.
 * Logically the identity; under coherent idle dephasing the first X
 * reverses the phase the second half of the window accumulates.
 */
LayeredCircuit insertDynamicalDecoupling(const LayeredCircuit& layered);

/**
 * Exact noisy evaluation of a layered circuit via the density matrix:
 * per layer, gates apply with their depolarizing channels, then every
 * idle qubit receives RZ(idle_phase) followed by depolarizing at
 * `noise.p1 * idleDepolarizingFraction`.
 */
class LayeredDensityCost : public CostFunction
{
  public:
    /**
     * @param circuit     parameterized circuit (layerized per query)
     * @param hamiltonian observable
     * @param noise       gate-level depolarizing rates
     * @param idle_phase  coherent RZ angle per idle layer slot
     * @param use_dd      whether to insert X-X pairs before executing
     */
    LayeredDensityCost(Circuit circuit, PauliSum hamiltonian,
                       NoiseModel noise, double idle_phase, bool use_dd);

    int numParams() const override { return circuit_.numParams(); }

    /** Replicable: allocates its density matrix per evaluation. */
    std::unique_ptr<CostFunction> clone() const override;

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    Circuit circuit_;
    PauliSum hamiltonian_;
    NoiseModel noise_;
    double idlePhase_;
    bool useDd_;
};

} // namespace oscar

#endif // OSCAR_MITIGATION_DD_H
