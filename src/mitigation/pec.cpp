#include "src/mitigation/pec.h"

#include <cmath>
#include <stdexcept>

#include "src/mitigation/readout.h"

namespace oscar {

PecChannelInverse
PecChannelInverse::depolarizing1(double p)
{
    if (p < 0.0 || p >= 0.75)
        throw std::invalid_argument(
            "PecChannelInverse: 1q rate out of [0, 0.75)");
    PecChannelInverse inv;
    const double g = 1.0 / (1.0 - 4.0 * p / 3.0);
    inv.alpha = (3.0 * g + 1.0) / 4.0;
    inv.beta = 1.0 - inv.alpha;
    inv.gamma = std::abs(inv.alpha) + std::abs(inv.beta);
    return inv;
}

PecChannelInverse
PecChannelInverse::depolarizing2(double p)
{
    if (p < 0.0 || p >= 15.0 / 16.0)
        throw std::invalid_argument(
            "PecChannelInverse: 2q rate out of [0, 15/16)");
    PecChannelInverse inv;
    const double g = 1.0 / (1.0 - 16.0 * p / 15.0);
    inv.alpha = (15.0 * g + 1.0) / 16.0;
    inv.beta = 1.0 - inv.alpha;
    inv.gamma = std::abs(inv.alpha) + std::abs(inv.beta);
    return inv;
}

PecCost::PecCost(Circuit circuit, PauliSum hamiltonian, NoiseModel noise,
                 PecOptions options)
    : circuit_(std::move(circuit)), hamiltonian_(std::move(hamiltonian)),
      noise_(noise), options_(options),
      inv1_(PecChannelInverse::depolarizing1(noise.p1)),
      inv2_(PecChannelInverse::depolarizing2(noise.p2)),
      state_(circuit_.numQubits())
{
    if (hamiltonian_.numQubits() != circuit_.numQubits())
        throw std::invalid_argument(
            "PecCost: circuit/Hamiltonian qubit mismatch");
    if (options_.numSamples == 0)
        throw std::invalid_argument("PecCost: need >= 1 sample");
    if (hamiltonian_.isDiagonal())
        diagonal_ = hamiltonian_.diagonalTable();

    totalGamma_ = 1.0;
    for (const Gate& g : circuit_.gates())
        totalGamma_ *= gateArity(g.kind) == 2 ? inv2_.gamma : inv1_.gamma;
}

std::unique_ptr<CostFunction>
PecCost::clone() const
{
    return std::make_unique<PecCost>(*this);
}

double
PecCost::runTrajectory(const std::vector<double>& params, double& sign,
                       Rng& rng)
{
    static const GateKind paulis[] = {GateKind::X, GateKind::Y,
                                      GateKind::Z};
    sign = 1.0;
    state_.reset();
    for (const Gate& g : circuit_.gates()) {
        Gate resolved = g;
        resolved.angle = g.resolvedAngle(params);
        resolved.paramIndex = -1;
        state_.applyGate(resolved);

        const bool two_qubit = gateArity(g.kind) == 2;

        // Device noise: stochastic Pauli unraveling of depolarizing.
        if (two_qubit) {
            if (noise_.p2 > 0.0 && rng.bernoulli(noise_.p2)) {
                const std::uint64_t pick = rng.uniformInt(15) + 1;
                const int pa = static_cast<int>(pick & 3);
                const int pb = static_cast<int>(pick >> 2);
                if (pa != 0) {
                    Gate e;
                    e.kind = paulis[pa - 1];
                    e.qubits = {g.qubits[0], -1};
                    state_.applyGate(e);
                }
                if (pb != 0) {
                    Gate e;
                    e.kind = paulis[pb - 1];
                    e.qubits = {g.qubits[1], -1};
                    state_.applyGate(e);
                }
            }
        } else if (noise_.p1 > 0.0 && rng.bernoulli(noise_.p1)) {
            Gate e;
            e.kind = paulis[rng.uniformInt(3)];
            e.qubits = {g.qubits[0], -1};
            state_.applyGate(e);
        }

        // PEC insertion: sample from the inverse channel's
        // quasi-probability decomposition.
        const PecChannelInverse& inv = two_qubit ? inv2_ : inv1_;
        if (!rng.bernoulli(inv.alpha / inv.gamma)) {
            sign = -sign; // every Pauli branch carries beta < 0
            if (two_qubit) {
                const std::uint64_t pick = rng.uniformInt(15) + 1;
                const int pa = static_cast<int>(pick & 3);
                const int pb = static_cast<int>(pick >> 2);
                if (pa != 0) {
                    Gate e;
                    e.kind = paulis[pa - 1];
                    e.qubits = {g.qubits[0], -1};
                    state_.applyGate(e);
                }
                if (pb != 0) {
                    Gate e;
                    e.kind = paulis[pb - 1];
                    e.qubits = {g.qubits[1], -1};
                    state_.applyGate(e);
                }
            } else {
                Gate e;
                e.kind = paulis[rng.uniformInt(3)];
                e.qubits = {g.qubits[0], -1};
                state_.applyGate(e);
            }
        }
    }
    if (!diagonal_.empty())
        return state_.expectationDiagonal(diagonal_);
    return hamiltonian_.expectation(state_);
}

double
PecCost::evaluateImpl(const std::vector<double>& params,
                      std::uint64_t ordinal)
{
    Rng rng(mixSeed(options_.seed, ordinal));
    double acc = 0.0;
    for (std::size_t s = 0; s < options_.numSamples; ++s) {
        double sign = 1.0;
        const double value = runTrajectory(params, sign, rng);
        acc += sign * value;
    }
    return totalGamma_ * acc / static_cast<double>(options_.numSamples);
}

} // namespace oscar
