#include "src/backend/engine.h"

#include <algorithm>
#include <stdexcept>

namespace oscar {

namespace {

int
resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

} // namespace

ExecutionEngine::ExecutionEngine()
    : ExecutionEngine(EngineOptions{1, 4})
{
}

ExecutionEngine::ExecutionEngine(int num_threads)
    : ExecutionEngine(EngineOptions{num_threads, 4})
{
}

ExecutionEngine::ExecutionEngine(const EngineOptions& options)
    : minPointsPerThread_(std::max<std::size_t>(1,
                                                options.minPointsPerThread))
{
    const int threads = resolveThreads(options.numThreads);
    // The calling thread participates in every job, so spawn one fewer
    // worker than the requested parallelism.
    for (int t = 1; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ExecutionEngine::~ExecutionEngine()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

int
ExecutionEngine::numThreads() const
{
    return static_cast<int>(workers_.size()) + 1;
}

ExecutionEngine&
ExecutionEngine::serial()
{
    static ExecutionEngine engine;
    return engine;
}

std::vector<ExecutionEngine::Chunk>
ExecutionEngine::planChunks(std::size_t count) const
{
    const std::size_t threads = workers_.size() + 1;
    if (threads <= 1 || count < 2 * minPointsPerThread_)
        return {};
    const std::size_t max_chunks =
        std::max<std::size_t>(1, count / minPointsPerThread_);
    const std::size_t n = std::min(threads, max_chunks);
    if (n <= 1)
        return {};
    std::vector<Chunk> chunks;
    chunks.reserve(n);
    const std::size_t base = count / n;
    const std::size_t rem = count % n;
    std::size_t lo = 0;
    for (std::size_t c = 0; c < n; ++c) {
        const std::size_t size = base + (c < rem ? 1 : 0);
        chunks.push_back({lo, lo + size});
        lo += size;
    }
    return chunks;
}

void
ExecutionEngine::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::uint64_t seen_generation = 0;
    for (;;) {
        wake_.wait(lock, [&] {
            return stop_ ||
                   (jobGeneration_ != seen_generation &&
                    jobNext_ < jobCount_);
        });
        if (stop_)
            return;
        const std::uint64_t generation = jobGeneration_;
        const std::function<void(std::size_t)> fn = job_;
        while (jobGeneration_ == generation && jobNext_ < jobCount_) {
            const std::size_t chunk = jobNext_++;
            lock.unlock();
            fn(chunk);
            lock.lock();
            if (--jobPending_ == 0)
                done_.notify_all();
        }
        seen_generation = generation;
    }
}

void
ExecutionEngine::runOnPool(std::size_t num_chunks,
                           const std::function<void(std::size_t)>& fn)
{
    std::lock_guard<std::mutex> submit_lock(submitMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = fn;
        jobCount_ = num_chunks;
        jobNext_ = 0;
        jobPending_ = num_chunks;
        ++jobGeneration_;
    }
    wake_.notify_all();

    // The calling thread claims chunks too.
    std::unique_lock<std::mutex> lock(mutex_);
    while (jobNext_ < jobCount_) {
        const std::size_t chunk = jobNext_++;
        lock.unlock();
        fn(chunk);
        lock.lock();
        if (--jobPending_ == 0)
            done_.notify_all();
    }
    done_.wait(lock, [&] { return jobPending_ == 0; });
    job_ = nullptr;
}

std::vector<double>
ExecutionEngine::evaluate(CostFunction& cost,
                          const std::vector<std::vector<double>>& points)
{
    if (points.empty())
        return {};

    const std::vector<Chunk> chunks = planChunks(points.size());
    std::unique_ptr<CostFunction> proto;
    if (!chunks.empty())
        proto = cost.clone();

    // Serial fallback, still through the virtual batch hook so
    // backend-specific batching applies.
    if (chunks.empty() || !proto)
        return cost.evaluateBatch(points);

    // Validate every point before counting anything, exactly like the
    // serial path, so query/ordinal accounting cannot diverge by
    // thread count.
    for (const auto& p : points)
        cost.checkParams(p);
    return evaluateParallel(cost, points, chunks, std::move(proto));
}

std::vector<double>
ExecutionEngine::evaluateGenerated(CostFunction& cost, std::size_t count,
                                   const PointFn& point_at)
{
    std::vector<std::vector<double>> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        points.push_back(point_at(i));
    return evaluate(cost, points);
}

std::vector<double>
ExecutionEngine::evaluateParallel(CostFunction& cost,
                                  std::span<const std::vector<double>> points,
                                  const std::vector<Chunk>& chunks,
                                  std::unique_ptr<CostFunction> proto)
{
    // One replica per chunk; chunk 0 reuses the probe clone.
    std::vector<std::unique_ptr<CostFunction>> replicas;
    replicas.reserve(chunks.size());
    replicas.push_back(std::move(proto));
    for (std::size_t c = 1; c < chunks.size(); ++c) {
        auto replica = cost.clone();
        if (!replica)
            throw std::runtime_error(
                "ExecutionEngine: clone() became unavailable mid-batch");
        replicas.push_back(std::move(replica));
    }

    std::vector<double> out(points.size());
    const std::uint64_t base = cost.reserve(points.size());
    std::exception_ptr failure;
    std::mutex failure_mutex;

    runOnPool(chunks.size(), [&](std::size_t c) {
        try {
            const Chunk chunk = chunks[c];
            replicas[c]->evaluateBatchImpl(
                points.subspan(chunk.lo, chunk.hi - chunk.lo),
                base + chunk.lo, out.data() + chunk.lo);
        } catch (...) {
            std::lock_guard<std::mutex> lock(failure_mutex);
            if (!failure)
                failure = std::current_exception();
        }
    });

    if (failure)
        std::rethrow_exception(failure);
    return out;
}

std::vector<double>
ExecutionEngine::map(std::size_t count,
                     const std::function<double(std::size_t)>& fn)
{
    std::vector<double> out(count);
    if (count == 0)
        return out;

    const std::vector<Chunk> chunks = planChunks(count);
    if (chunks.empty()) {
        for (std::size_t i = 0; i < count; ++i)
            out[i] = fn(i);
        return out;
    }

    std::exception_ptr failure;
    std::mutex failure_mutex;
    runOnPool(chunks.size(), [&](std::size_t c) {
        try {
            for (std::size_t i = chunks[c].lo; i < chunks[c].hi; ++i)
                out[i] = fn(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(failure_mutex);
            if (!failure)
                failure = std::current_exception();
        }
    });
    if (failure)
        std::rethrow_exception(failure);
    return out;
}

} // namespace oscar
