#include "src/backend/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/dist/process_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace oscar {

/**
 * Shared state of one submitted batch. Handles, queued workers, and
 * waiting threads all hold shared_ptrs, so the state outlives the
 * engine and any of its consumers individually.
 *
 * Chunk claiming linearizes on the atomic `nextChunk`: workers and
 * waiting threads fetch_add to claim, cancel() exchanges the counter
 * to the end to claim (and skip) everything unstarted. Claimed chunk
 * indices are therefore disjoint across all participants, which is
 * what makes results, query counts, and callbacks race-free.
 */
struct EngineBatch final : BatchHandle::Control
{
    // -- immutable after submit -------------------------------------
    std::vector<std::vector<double>> points;
    std::function<double(std::size_t)> mapFn; ///< map mode when set
    CostFunction* cost = nullptr;             ///< null in map mode
    /** Per-chunk replicas; empty = evaluate `cost` itself. */
    std::vector<std::unique_ptr<CostFunction>> replicas;
    std::vector<ExecutionEngine::Chunk> chunks;
    std::uint64_t baseOrdinal = 0;
    /** submitAt batch: ordinals are external, never refund queries. */
    bool pinnedOrdinals = false;
    SubmitOptions options;
    /** Submission timestamp; feeds the batch-latency histogram when
     *  the last chunk accounts. 0 when metrics are off. */
    std::uint64_t submittedNs = 0;

    /** Next chunk index to claim (may overshoot chunks.size()). */
    std::atomic<std::size_t> nextChunk{0};

    mutable std::mutex m; ///< guards the progress state below
    std::condition_variable cv;
    std::size_t chunksAccounted = 0; ///< executed or skipped
    bool finished = false;
    std::exception_ptr error;
    std::vector<double> out;
    BatchStats progress;

    /** Serializes onComplete invocations (never held with `m`). */
    std::mutex callbackMutex;

    // -- Control ----------------------------------------------------

    bool
    done() const override
    {
        std::lock_guard<std::mutex> lock(m);
        return finished;
    }

    void
    wait() override
    {
        // Help: claim and execute chunks this thread can take. This
        // is also the only execution path for inline batches (serial
        // engine, non-replicable cost), which are never enqueued.
        const std::size_t total = chunks.size();
        for (;;) {
            const std::size_t c = nextChunk.fetch_add(1);
            if (c >= total)
                break;
            runChunk(c);
        }
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return finished; });
    }

    std::vector<double>
    get() override
    {
        wait();
        std::lock_guard<std::mutex> lock(m);
        if (error)
            std::rethrow_exception(error);
        if (progress.pointsCancelled > 0)
            throw std::runtime_error(
                "BatchHandle::get: batch was cancelled");
        return out;
    }

    bool
    cancel() override
    {
        const std::size_t total = chunks.size();
        // Claim everything unstarted in one shot; claims already
        // handed to workers (indices < claimed) still run to
        // completion.
        std::size_t claimed = nextChunk.exchange(total);
        claimed = std::min(claimed, total);
        if (claimed >= total)
            return false;
        std::size_t skipped = 0;
        for (std::size_t c = claimed; c < total; ++c)
            skipped += chunks[c].hi - chunks[c].lo;
        if (cost && !pinnedOrdinals)
            cost->refundQueries(skipped);
        std::lock_guard<std::mutex> lock(m);
        progress.pointsCancelled += skipped;
        chunksAccounted += total - claimed;
        if (chunksAccounted == total) {
            finished = true;
            cv.notify_all();
        }
        return true;
    }

    BatchStats
    stats() const override
    {
        std::lock_guard<std::mutex> lock(m);
        return progress;
    }

    /** Execute chunk c (worker or waiting thread). */
    void
    runChunk(std::size_t c)
    {
        const ExecutionEngine::Chunk chunk = chunks[c];
        const std::size_t n = chunk.hi - chunk.lo;
        obs::ScopedSpan span(obs::SpanCategory::Engine, "chunk", c, n);
        std::exception_ptr failure;
        KernelStats delta;
        try {
            if (mapFn) {
                for (std::size_t i = chunk.lo; i < chunk.hi; ++i)
                    out[i] = mapFn(i);
            } else {
                CostFunction* evaluator =
                    replicas.empty() ? cost : replicas[c].get();
                const KernelStats before = evaluator->kernelStats();
                evaluator->evaluateBatchImpl(
                    std::span<const std::vector<double>>(points).subspan(
                        chunk.lo, n),
                    baseOrdinal + chunk.lo, out.data() + chunk.lo);
                delta = evaluator->kernelStats() - before;
            }
        } catch (...) {
            failure = std::current_exception();
        }

        // Stream completions before accounting, so that once done()
        // flips every callback has already returned. A throwing
        // callback must not escape (it would terminate a worker
        // thread, or leave the batch unfinished on the waiter-help
        // path); it fails the batch like an evaluation error, though
        // the values themselves stand.
        std::exception_ptr callback_failure;
        if (!failure && options.onComplete) {
            std::lock_guard<std::mutex> lock(callbackMutex);
            try {
                for (std::size_t i = chunk.lo; i < chunk.hi; ++i)
                    options.onComplete(i, out[i]);
            } catch (...) {
                callback_failure = std::current_exception();
            }
        }

        if (obs::metricsEnabled()) {
            static obs::Counter& points_done =
                obs::Registry::global().counter(
                    "engine.points.completed");
            static obs::Counter& cache_hits =
                obs::Registry::global().counter("engine.cache.hits");
            static obs::Counter& cache_lookups =
                obs::Registry::global().counter(
                    "engine.cache.lookups");
            if (!failure) {
                points_done.add(n);
                cache_hits.add(delta.cacheHits);
                cache_lookups.add(delta.cacheLookups);
            }
        }

        std::lock_guard<std::mutex> lock(m);
        if (failure) {
            if (!error)
                error = failure;
        } else {
            progress.pointsCompleted += n;
            progress.kernel += delta;
            if (callback_failure && !error)
                error = callback_failure;
        }
        if (++chunksAccounted == chunks.size()) {
            finished = true;
            cv.notify_all();
            if (submittedNs != 0 && obs::metricsEnabled()) {
                static obs::Histogram& latency =
                    obs::Registry::global().histogram(
                        "engine.batch.latency.ns");
                latency.observe(obs::Tracer::nowNs() - submittedNs);
            }
        }
    }
};

// ------------------------------------------------------------ handle

bool
BatchHandle::done() const
{
    return state_->done();
}

void
BatchHandle::wait()
{
    state_->wait();
}

std::vector<double>
BatchHandle::get()
{
    return state_->get();
}

bool
BatchHandle::cancel()
{
    return state_->cancel();
}

BatchStats
BatchHandle::stats() const
{
    return state_->stats();
}

// ------------------------------------------------------------ engine

int
ExecutionEngine::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ExecutionEngine::ExecutionEngine()
    : ExecutionEngine(EngineOptions{})
{
}

ExecutionEngine::ExecutionEngine(int num_threads)
    : ExecutionEngine(EngineOptions{num_threads, 4, {}})
{
}

ExecutionEngine::ExecutionEngine(const EngineOptions& options)
    : minPointsPerThread_(std::max<std::size_t>(1,
                                                options.minPointsPerThread)),
      dist_(options.dist)
{
    // Resolve OSCAR_TRACE / OSCAR_METRICS / OSCAR_TRACE_BUFFER_KB
    // once, fail-fast like the distribution knobs below (a malformed
    // toggle throws here, not on the first recorded span).
    obs::applyEnv();
    // Distribution is opt-in per engine (EngineOptions::dist) or
    // process-wide via OSCAR_DIST_WORKERS; a negative worker count
    // pins it off regardless of the environment. Like
    // OSCAR_KERNEL_ISA, a malformed value throws instead of silently
    // running without the distribution the user asked for. The pool
    // itself is spawned lazily on the first distributable submission,
    // so engines that never ship a batch never fork.
    if (dist_.numWorkers == 0) {
        if (const char* env = std::getenv("OSCAR_DIST_WORKERS")) {
            char* end = nullptr;
            const long parsed = std::strtol(env, &end, 10);
            if (end == env || *end != '\0' || parsed > 1024 ||
                parsed < -1)
                throw std::runtime_error(
                    "OSCAR_DIST_WORKERS: expected a worker count "
                    "(-1..1024), got \"" +
                    std::string(env) + "\"");
            dist_.numWorkers = static_cast<int>(parsed);
        }
    }
    // Resolve the per-worker thread count and the TCP fleet knobs
    // eagerly for the same fail-fast reason: a malformed
    // OSCAR_DIST_THREADS / OSCAR_DIST_LISTEN / OSCAR_DIST_SECRET
    // throws here, at engine construction, not on the first
    // distributed batch.
    dist_.threadsPerWorker =
        dist::resolveThreadsPerWorker(dist_.threadsPerWorker);
    dist_.listen = dist::resolveDistListen(dist_.listen);
    // Pin the resolved transport: the pool re-runs the resolver, and
    // an empty listen would make it consult OSCAR_DIST_LISTEN again --
    // overriding a configured "none".
    if (dist_.listen.empty())
        dist_.listen = "none";
    dist_.secret = dist::resolveDistSecret(dist_.secret);
    // A listener alone (numWorkers == 0) is a valid fleet: the
    // coordinator serves whoever connects. A negative worker count
    // still pins distribution off entirely.
    distEnabled_ = dist_.numWorkers > 0 ||
                   (dist_.numWorkers == 0 && dist_.listen != "none");

    // Threads spawn last: everything above may throw, and unwinding
    // with joinable workers would terminate. The submitting thread
    // participates in every wait, so spawn one fewer worker than the
    // requested parallelism.
    const int threads = resolveThreads(options.numThreads);
    for (int t = 1; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ExecutionEngine::~ExecutionEngine()
{
    std::deque<std::shared_ptr<EngineBatch>> leftover;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        leftover.swap(queue_);
    }
    wake_.notify_all();
    for (std::thread& w : workers_)
        w.join();
    // Retire whatever the workers had not claimed: outstanding handles
    // see a finished (cancelled) batch instead of hanging forever.
    for (const auto& batch : leftover)
        batch->cancel();
    // pool_ (if spawned) is destroyed next: it cancels queued shards,
    // drains in-flight ones, and reaps the worker processes.
}

int
ExecutionEngine::numThreads() const
{
    return static_cast<int>(workers_.size()) + 1;
}

ExecutionEngine&
ExecutionEngine::serial()
{
    static ExecutionEngine engine(1);
    return engine;
}

std::vector<ExecutionEngine::Chunk>
ExecutionEngine::planChunks(std::size_t count) const
{
    const std::size_t threads = workers_.size() + 1;
    if (threads <= 1 || count < 2 * minPointsPerThread_)
        return {};
    const std::size_t max_chunks =
        std::max<std::size_t>(1, count / minPointsPerThread_);
    const std::size_t n = std::min(threads, max_chunks);
    if (n <= 1)
        return {};
    std::vector<Chunk> chunks;
    chunks.reserve(n);
    const std::size_t base = count / n;
    const std::size_t rem = count % n;
    std::size_t lo = 0;
    for (std::size_t c = 0; c < n; ++c) {
        const std::size_t size = base + (c < rem ? 1 : 0);
        chunks.push_back({lo, lo + size});
        lo += size;
    }
    return chunks;
}

void
ExecutionEngine::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (stop_)
            return;
        std::shared_ptr<EngineBatch> batch = queue_.front();
        const std::size_t total = batch->chunks.size();
        const std::size_t c = batch->nextChunk.fetch_add(1);
        if (c >= total) {
            // Fully claimed (possibly by a helping waiter or cancel):
            // retire it from the queue and look at the next batch.
            queue_.pop_front();
            continue;
        }
        if (c + 1 == total)
            queue_.pop_front(); // nothing left for anyone else to claim
        lock.unlock();
        batch->runChunk(c);
        batch.reset();
        lock.lock();
    }
}

BatchHandle
ExecutionEngine::tryDistribute(CostFunction& cost,
                               std::vector<std::vector<double>>& points,
                               const SubmitOptions& options)
{
    if (!distEnabled_ || points.size() < dist_.minPointsToDistribute)
        return {};
    if (!cost.distPayload())
        return {};
    std::call_once(poolOnce_, [&] {
        try {
            pool_ = std::make_unique<dist::ProcessPool>(dist_);
        } catch (const std::exception& e) {
            std::fprintf(stderr,
                         "oscar: distributed execution disabled: %s\n",
                         e.what());
        }
    });
    if (!pool_ || !pool_->healthy())
        return {};
    try {
        return pool_->submit(cost, std::move(points), options);
    } catch (const std::exception& e) {
        // Pool refused (e.g. every worker died between the health
        // check and the submit): fall back to the thread pool. The
        // points vector is only moved on success.
        std::fprintf(stderr,
                     "oscar: distributed submit failed (%s); "
                     "running in-process\n",
                     e.what());
        return {};
    }
}

BatchHandle
ExecutionEngine::submitBatch(CostFunction* cost,
                             std::vector<std::vector<double>> points,
                             std::function<double(std::size_t)> map_fn,
                             std::size_t count, SubmitOptions options,
                             const std::uint64_t* pinned_base)
{
    if (cost && count > 0) {
        // Validate every point before counting anything, exactly like
        // the scalar path, so query/ordinal accounting cannot diverge
        // by thread count or batch outcome. Distribution is tried
        // before the local batch state exists, so a remote submission
        // never pays for a count-sized output buffer it will discard.
        // Pinned batches are already a distributed shard -- they must
        // execute here, under the coordinator's ordinals.
        for (const auto& p : points)
            cost->checkParams(p);
        if (!pinned_base) {
            BatchHandle remote = tryDistribute(*cost, points, options);
            if (remote.valid())
                return remote;
        }
    }

    auto batch = std::make_shared<EngineBatch>();
    batch->points = std::move(points);
    batch->mapFn = std::move(map_fn);
    batch->cost = cost;
    batch->pinnedOrdinals = pinned_base != nullptr;
    batch->options = std::move(options);
    if (obs::metricsEnabled())
        batch->submittedNs = obs::Tracer::nowNs();
    batch->out.resize(count);
    batch->progress.pointsTotal = count;

    if (count == 0) {
        batch->finished = true;
        return BatchHandle(std::move(batch));
    }

    std::vector<Chunk> chunks = planChunks(count);
    if (chunks.empty() && batch->options.eager && !workers_.empty())
        chunks = {Chunk{0, count}};
    bool enqueue = !workers_.empty() && !chunks.empty();
    if (cost) {
        if (enqueue) {
            // One replica per chunk; a non-replicable cost degrades to
            // deferred inline execution on the waiting thread.
            std::unique_ptr<CostFunction> proto = cost->clone();
            if (!proto) {
                enqueue = false;
            } else {
                batch->replicas.reserve(chunks.size());
                batch->replicas.push_back(std::move(proto));
                for (std::size_t c = 1; c < chunks.size(); ++c) {
                    auto replica = cost->clone();
                    if (!replica)
                        throw std::runtime_error(
                            "ExecutionEngine: clone() became unavailable "
                            "mid-batch");
                    batch->replicas.push_back(std::move(replica));
                }
            }
        }
        batch->baseOrdinal =
            pinned_base ? *pinned_base : cost->reserve(count);
    }

    if (enqueue)
        batch->chunks = std::move(chunks);
    else
        batch->chunks = {Chunk{0, count}};

    BatchHandle handle(batch);
    if (enqueue) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.push_back(std::move(batch));
        }
        wake_.notify_all();
    }
    return handle;
}

BatchHandle
ExecutionEngine::submit(CostFunction& cost,
                        std::vector<std::vector<double>> points,
                        SubmitOptions options)
{
    const std::size_t count = points.size();
    return submitBatch(&cost, std::move(points), nullptr, count,
                       std::move(options));
}

BatchHandle
ExecutionEngine::submitAt(CostFunction& cost,
                          std::vector<std::vector<double>> points,
                          std::uint64_t base_ordinal,
                          SubmitOptions options)
{
    const std::size_t count = points.size();
    return submitBatch(&cost, std::move(points), nullptr, count,
                       std::move(options), &base_ordinal);
}

BatchHandle
ExecutionEngine::submitGenerated(CostFunction& cost, std::size_t count,
                                 const PointFn& point_at,
                                 SubmitOptions options)
{
    std::vector<std::vector<double>> points;
    points.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        points.push_back(point_at(i));
    return submit(cost, std::move(points), std::move(options));
}

std::vector<double>
ExecutionEngine::evaluate(CostFunction& cost,
                          const std::vector<std::vector<double>>& points)
{
    if (points.empty())
        return {};
    return submit(cost, points).get();
}

std::vector<double>
ExecutionEngine::evaluateGenerated(CostFunction& cost, std::size_t count,
                                   const PointFn& point_at)
{
    return submitGenerated(cost, count, point_at).get();
}

std::vector<double>
ExecutionEngine::map(std::size_t count,
                     const std::function<double(std::size_t)>& fn)
{
    if (count == 0)
        return {};
    return submitBatch(nullptr, {}, fn, count, {}).get();
}

} // namespace oscar
