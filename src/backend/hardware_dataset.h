/**
 * @file
 * Synthetic "hardware dataset" landscapes.
 *
 * The paper's Section 4.3 evaluates OSCAR on QAOA landscapes measured
 * on Google's 53-qubit Sycamore chip [Harrigan et al., Nat. Phys.
 * 2021]: 50 x 50 grids for MaxCut on hardware-grid (mesh) graphs,
 * MaxCut on 3-regular graphs, and the SK model. That dataset is not
 * redistributable, so this module generates the closest synthetic
 * equivalent (DESIGN.md substitution #2): the ideal closed-form QAOA
 * landscape, contracted by a fidelity damping factor, plus a smooth
 * spatially-correlated drift field (calibration drift across the
 * parameter sweep) plus white noise (finite-shot estimation error).
 * What the reconstruction experiments need -- a sparse periodic signal
 * observed through hardware-grade noise on a sparse 50 x 50 grid -- is
 * exactly preserved.
 */

#ifndef OSCAR_BACKEND_HARDWARE_DATASET_H
#define OSCAR_BACKEND_HARDWARE_DATASET_H

#include <cstdint>

#include "src/graph/graph.h"
#include "src/landscape/landscape.h"

namespace oscar {

/** Noise configuration of a synthetic hardware landscape. */
struct HardwareDatasetOptions
{
    /** Contraction of the ideal signal toward the mixed value. */
    double damping = 0.45;

    /**
     * Std of the smooth correlated drift field, relative to the ideal
     * landscape's std.
     */
    double correlatedNoise = 0.15;

    /**
     * Std of iid per-point noise, relative to the ideal landscape's
     * std (shot noise on ~25k shots plus readout fluctuations).
     */
    double whiteNoise = 0.10;

    /** Seed for the noise fields. */
    std::uint64_t seed = 1;
};

/**
 * Generate a hardware-like depth-1 QAOA landscape for `graph` on
 * `grid` (rank-2). The returned landscape plays the role of the
 * Google-dataset ground truth in the Fig. 5/6 experiments.
 */
Landscape syntheticHardwareLandscape(const Graph& graph,
                                     const GridSpec& grid,
                                     const HardwareDatasetOptions& options);

} // namespace oscar

#endif // OSCAR_BACKEND_HARDWARE_DATASET_H
