/**
 * @file
 * Ideal (noise-free) cost evaluation via dense state-vector simulation.
 *
 * The circuit is lowered once into a compiled kernel schedule
 * (quantum/compiled_circuit.h); every evaluation replays that schedule
 * instead of re-resolving the gate list. Three layers of the kernel
 * architecture meet here:
 *
 *  - ISA dispatch: replay and expectation go through a KernelTable
 *    selected once at startup (CPUID) or forced via
 *    KernelOptions::isa;
 *  - cache blocking: the compiled schedule's blocking plan streams
 *    runs of compatible ops over L1-sized amplitude blocks;
 *  - super-kernel fusion: KernelOptions::fuseWindow collapses eligible
 *    op runs of the blocking plan into dense matvec / diagonal-table
 *    super-kernels replayed once per block (compiled_circuit.h);
 *  - batched expectation: consecutive batch points that share the full
 *    simulation prefix up to the deepest checkpoint level are simulated
 *    into scratch states and folded with one fused pass over the
 *    observable (kernels::expectationDiagonalBatch for diagonal
 *    Hamiltonians, kernels::expectationPauliBatch per term otherwise).
 *
 * Batches of nearby grid points additionally share simulation work
 * through a prefix cache: the schedule's parameter frontier marks the
 * depths at which a statevector snapshot only depends on the
 * parameters bound so far, so a point whose leading parameters match a
 * cached checkpoint replays only the invalidated suffix.
 *
 * Determinism: a checkpoint at depth L keyed by the prefix parameter
 * bits is the exact state a from-scratch run of ops [0, L) produces
 * under those values, and replaying the suffix executes the identical
 * kernel sequence. Cache state, blocking, expectation batching, batch
 * order, and thread count can change performance but never values —
 * for a fixed kernel ISA the batched path is bit-identical to the
 * scalar path, which tests/test_engine.cpp and tests/test_kernels.cpp
 * assert. Different ISAs round differently; pin KernelOptions::isa
 * when comparing against externally computed references.
 */

#ifndef OSCAR_BACKEND_STATEVECTOR_BACKEND_H
#define OSCAR_BACKEND_STATEVECTOR_BACKEND_H

#include <memory>

#include "src/backend/executor.h"
#include "src/backend/prefix_cache.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/circuit.h"
#include "src/quantum/compiled_circuit.h"
#include "src/quantum/statevector.h"

namespace oscar {

/**
 * Exact expectation <psi(theta)|H|psi(theta)> where |psi(theta)> is
 * the ansatz circuit run on |0...0>. Diagonal Hamiltonians use a
 * precomputed per-basis-state value table.
 */
class StatevectorCost : public CostFunction
{
  public:
    StatevectorCost(Circuit circuit, PauliSum hamiltonian);

    /**
     * Copies share the checkpoint cache: the lock-free PrefixCache
     * (prefix_cache.h) is safe under concurrent find/insert, and
     * checkpoints are bit-exact, so engine replicas cloned from one
     * evaluator pool their prefix work. Per-instance cache counters
     * (kernelStats) start at zero in the copy.
     */
    StatevectorCost(const StatevectorCost& other);
    StatevectorCost& operator=(const StatevectorCost& other);

    int numParams() const override { return compiled_.numParams(); }

    /** Replicable: the simulation scratch is per-instance. */
    std::unique_ptr<CostFunction> clone() const override;

    void configureKernel(const KernelOptions& options) override;

    /** Parameters ordered by first use in the compiled schedule. */
    std::vector<int> batchOrderHint() const override;

    /**
     * Distributable: the evaluator is exactly (circuit, Hamiltonian,
     * kernel options), and evaluation is deterministic per kernel ISA,
     * so a worker-process replica built from this payload produces
     * bit-identical values.
     */
    std::optional<DistPayload> distPayload() const override;

    /**
     * Checkpoint cache counters (benchmark instrumentation),
     * cumulative over every evaluator sharing this cache.
     */
    const PrefixCache& prefixCache() const { return *cache_; }

    /** The kernel table this evaluator dispatches through. */
    const kernels::KernelTable& kernelTable() const { return *table_; }

    /**
     * Kernel-layer counters for BatchHandle::stats: prefix-cache
     * traffic, the selected ISA, blocked-pass activity, and the number
     * of points folded into batched expectation passes.
     */
    KernelStats kernelStats() const override;

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

    void evaluateBatchImpl(std::span<const std::vector<double>> points,
                           std::uint64_t base_ordinal,
                           double* out) override;

  private:
    /** Hard fan-in limit of one fused expectation pass. */
    static constexpr std::size_t kMaxExpectationGroup = 8;

    /**
     * Prefix-cached replay of `params` into `amps` (reset + checkpoint
     * resume + suffix replay). The values written are independent of
     * cache state and of which buffer is used.
     */
    void simulate(const std::vector<double>& params,
                  AlignedVector<cplx>& amps);

    /** Shared scalar kernel: simulate + expectation on state_. */
    double evaluatePoint(const std::vector<double>& params);

    /**
     * Largest shared-prefix group folded into one fused expectation
     * pass (bounded by scratch-memory budget; < 2 disables grouping).
     */
    std::size_t maxExpectationGroup() const;

    /**
     * Cache key of frontier level `level_index` under `params`,
     * filled into the reusable scratch key (no allocation on the hot
     * path once its capacity settles).
     */
    const PrefixKey& keyFor(std::size_t level_index,
                            const std::vector<double>& params);

    /** Widest prefix-parameter set across frontier levels (in words). */
    std::size_t maxKeyWords() const;

    /** Size the shared cache for this evaluator's checkpoint shape. */
    void shapeCache();

    Circuit circuit_;
    CompiledCircuit compiled_;
    /** Params used before each frontier level (precomputed). */
    std::vector<std::vector<int>> levelParams_;
    PauliSum hamiltonian_;
    std::vector<double> diagonal_; // non-empty iff hamiltonian diagonal
    Statevector state_;
    KernelOptions kernel_;
    const kernels::KernelTable* table_;
    /** Shared with copies/clones; never null. */
    std::shared_ptr<PrefixCache> cache_;
    PrefixKey scratchKey_;

    ReplayCounters replay_;
    /**
     * This instance's own cache traffic (the shared cache's counters
     * aggregate every sharer, so per-replica stats deltas come from
     * these instead).
     */
    std::size_t cacheHits_ = 0;
    std::size_t cacheLookups_ = 0;
    std::size_t cacheEvictions_ = 0;
    std::size_t batchedPoints_ = 0;
    std::size_t batchedPauliPoints_ = 0;
    /** Per-point final states of a fused expectation group. */
    std::vector<AlignedVector<cplx>> groupScratch_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_STATEVECTOR_BACKEND_H
