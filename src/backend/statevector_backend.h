/**
 * @file
 * Ideal (noise-free) cost evaluation via dense state-vector simulation.
 */

#ifndef OSCAR_BACKEND_STATEVECTOR_BACKEND_H
#define OSCAR_BACKEND_STATEVECTOR_BACKEND_H

#include "src/backend/executor.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/circuit.h"
#include "src/quantum/statevector.h"

namespace oscar {

/**
 * Exact expectation <psi(theta)|H|psi(theta)> where |psi(theta)> is
 * the ansatz circuit run on |0...0>. Diagonal Hamiltonians use a
 * precomputed per-basis-state value table.
 */
class StatevectorCost : public CostFunction
{
  public:
    StatevectorCost(Circuit circuit, PauliSum hamiltonian);

    int numParams() const override { return circuit_.numParams(); }

    /** Replicable: the simulation scratch is per-instance. */
    std::unique_ptr<CostFunction> clone() const override;

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    Circuit circuit_;
    PauliSum hamiltonian_;
    std::vector<double> diagonal_; // non-empty iff hamiltonian diagonal
    Statevector state_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_STATEVECTOR_BACKEND_H
