#include "src/backend/executor.h"

#include <cmath>
#include <stdexcept>

namespace oscar {

double
CostFunction::evaluate(const std::vector<double>& params)
{
    if (static_cast<int>(params.size()) != numParams())
        throw std::invalid_argument(
            "CostFunction::evaluate: wrong parameter count");
    ++queries_;
    return evaluateImpl(params);
}

ShotNoiseCost::ShotNoiseCost(std::shared_ptr<CostFunction> inner,
                             std::size_t shots, double sigma_single_shot,
                             std::uint64_t seed)
    : inner_(std::move(inner)), shots_(shots), sigma1_(sigma_single_shot),
      rng_(seed)
{
    if (shots_ == 0)
        throw std::invalid_argument("ShotNoiseCost: shots must be > 0");
}

double
ShotNoiseCost::evaluateImpl(const std::vector<double>& params)
{
    const double exact = inner_->evaluate(params);
    const double sigma = sigma1_ / std::sqrt(static_cast<double>(shots_));
    return exact + rng_.normal(0.0, sigma);
}

} // namespace oscar
