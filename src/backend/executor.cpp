#include "src/backend/executor.h"

#include <cmath>
#include <stdexcept>

namespace oscar {

void
CostFunction::checkParams(const std::vector<double>& params) const
{
    if (static_cast<int>(params.size()) != numParams())
        throw std::invalid_argument(
            "CostFunction::evaluate: wrong parameter count");
}

double
CostFunction::evaluate(const std::vector<double>& params)
{
    checkParams(params);
    const std::uint64_t ordinal = reserve(1);
    return evaluateImpl(params, ordinal);
}

std::vector<double>
CostFunction::evaluateBatch(const std::vector<std::vector<double>>& points)
{
    for (const auto& p : points)
        checkParams(p);
    std::vector<double> out(points.size());
    if (points.empty())
        return out;
    const std::uint64_t base = reserve(points.size());
    evaluateBatchImpl(points, base, out.data());
    return out;
}

void
CostFunction::evaluateBatchAt(std::span<const std::vector<double>> points,
                              std::uint64_t base_ordinal, double* out)
{
    for (const auto& p : points)
        checkParams(p);
    evaluateBatchImpl(points, base_ordinal, out);
}

void
CostFunction::evaluateBatchImpl(std::span<const std::vector<double>> points,
                                std::uint64_t base_ordinal, double* out)
{
    for (std::size_t i = 0; i < points.size(); ++i)
        out[i] = evaluateImpl(points[i], base_ordinal + i);
}

double
CostFunction::invokeAt(CostFunction& f, const std::vector<double>& params,
                       std::uint64_t ordinal)
{
    f.checkParams(params);
    f.queries_.fetch_add(1, std::memory_order_relaxed);
    return f.evaluateImpl(params, ordinal);
}

ShotNoiseCost::ShotNoiseCost(std::shared_ptr<CostFunction> inner,
                             std::size_t shots, double sigma_single_shot,
                             std::uint64_t seed)
    : inner_(std::move(inner)), shots_(shots), sigma1_(sigma_single_shot),
      seed_(seed)
{
    if (shots_ == 0)
        throw std::invalid_argument("ShotNoiseCost: shots must be > 0");
}

std::unique_ptr<CostFunction>
ShotNoiseCost::clone() const
{
    std::unique_ptr<CostFunction> inner = inner_->clone();
    if (!inner)
        return nullptr;
    auto copy = std::make_unique<ShotNoiseCost>(*this);
    copy->inner_ = std::shared_ptr<CostFunction>(std::move(inner));
    return copy;
}

double
ShotNoiseCost::evaluateImpl(const std::vector<double>& params,
                            std::uint64_t ordinal)
{
    const double exact = invokeAt(*inner_, params, ordinal);
    const double sigma = sigma1_ / std::sqrt(static_cast<double>(shots_));
    Rng rng(mixSeed(seed_, ordinal));
    return exact + rng.normal(0.0, sigma);
}

} // namespace oscar
