#include "src/backend/sampled_backend.h"

#include <stdexcept>

namespace oscar {

SampledCost::SampledCost(Circuit circuit, PauliSum hamiltonian,
                         std::size_t shots, NoiseModel noise,
                         std::uint64_t seed)
    : circuit_(std::move(circuit)), compiled_(circuit_), shots_(shots),
      noise_(noise), state_(circuit_.numQubits()), seed_(seed)
{
    if (hamiltonian.numQubits() != circuit_.numQubits())
        throw std::invalid_argument(
            "SampledCost: circuit/Hamiltonian qubit mismatch");
    if (!hamiltonian.isDiagonal())
        throw std::invalid_argument(
            "SampledCost: requires a diagonal Hamiltonian");
    if (shots_ == 0)
        throw std::invalid_argument("SampledCost: shots must be > 0");
    diagonal_ = hamiltonian.diagonalTable();
}

std::unique_ptr<CostFunction>
SampledCost::clone() const
{
    return std::make_unique<SampledCost>(*this);
}

double
SampledCost::evaluateImpl(const std::vector<double>& params,
                          std::uint64_t ordinal)
{
    Rng rng(mixSeed(seed_, ordinal));
    state_.reset();
    compiled_.run(state_, params);
    const auto outcomes = state_.sample(shots_, rng);

    const bool readout =
        noise_.readout01 > 0.0 || noise_.readout10 > 0.0;
    double acc = 0.0;
    for (std::uint64_t z : outcomes) {
        if (readout) {
            for (int q = 0; q < circuit_.numQubits(); ++q) {
                const bool bit = (z >> q) & 1ULL;
                const double flip_prob =
                    bit ? noise_.readout10 : noise_.readout01;
                if (flip_prob > 0.0 && rng.bernoulli(flip_prob))
                    z ^= std::uint64_t{1} << q;
            }
        }
        acc += diagonal_[z];
    }
    return acc / static_cast<double>(shots_);
}

} // namespace oscar
