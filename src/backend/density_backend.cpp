#include "src/backend/density_backend.h"

#include <stdexcept>

#include "src/mitigation/readout.h"

namespace oscar {

DensityCost::DensityCost(Circuit circuit, PauliSum hamiltonian,
                         NoiseModel noise)
    : circuit_(std::move(circuit)),
      compiled_(circuit_, CompileOptions{.fuse1q = false}),
      hamiltonian_(std::move(hamiltonian)), noise_(noise),
      rho_(circuit_.numQubits())
{
    if (hamiltonian_.numQubits() != circuit_.numQubits())
        throw std::invalid_argument(
            "DensityCost: circuit/Hamiltonian qubit mismatch");
    if (hamiltonian_.isDiagonal()) {
        diagonal_ = hamiltonian_.diagonalTable();
        if (noise_.readout01 > 0.0 || noise_.readout10 > 0.0) {
            diagonal_ = applyReadoutToDiagonal(std::move(diagonal_),
                                               circuit_.numQubits(),
                                               noise_.readout01,
                                               noise_.readout10);
        }
    } else if (noise_.readout01 > 0.0 || noise_.readout10 > 0.0) {
        throw std::invalid_argument(
            "DensityCost: readout noise requires a diagonal Hamiltonian");
    }
}

std::unique_ptr<CostFunction>
DensityCost::clone() const
{
    return std::make_unique<DensityCost>(*this);
}

double
DensityCost::evaluateImpl(const std::vector<double>& params,
                          std::uint64_t /*ordinal*/)
{
    rho_.reset();
    rho_.run(compiled_, params, noise_);
    if (!diagonal_.empty()) {
        const auto probs = rho_.probabilities();
        double acc = 0.0;
        for (std::size_t z = 0; z < probs.size(); ++z)
            acc += probs[z] * diagonal_[z];
        return acc;
    }
    return hamiltonian_.expectation(rho_);
}

} // namespace oscar
