#include "src/backend/global_damping.h"

#include <cmath>

namespace oscar {

GlobalDampingCost::GlobalDampingCost(Circuit circuit, PauliSum hamiltonian,
                                     NoiseModel noise)
    : ideal_(circuit, hamiltonian)
{
    const std::size_t g2 = circuit.countTwoQubitGates();
    const std::size_t g1 = circuit.numGates() - g2;
    damping_ = std::pow(1.0 - noise.p1, static_cast<double>(g1)) *
               std::pow(1.0 - noise.p2, static_cast<double>(g2));

    // Tr(H)/2^n: only identity strings contribute.
    mixed_ = 0.0;
    for (const PauliTerm& t : hamiltonian.terms()) {
        if (t.pauli.isIdentity())
            mixed_ += t.coeff;
    }
}

std::unique_ptr<CostFunction>
GlobalDampingCost::clone() const
{
    return std::make_unique<GlobalDampingCost>(*this);
}

double
GlobalDampingCost::evaluateImpl(const std::vector<double>& params,
                                std::uint64_t ordinal)
{
    const double ideal = invokeAt(ideal_, params, ordinal);
    return damping_ * (ideal - mixed_) + mixed_;
}

} // namespace oscar
