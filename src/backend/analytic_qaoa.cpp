#include "src/backend/analytic_qaoa.h"

#include <bit>
#include <cmath>
#include <set>

namespace oscar {

AnalyticQaoaCost::AnalyticQaoaCost(const Graph& graph)
    : AnalyticQaoaCost(graph, NoiseModel::idealModel())
{
}

AnalyticQaoaCost::AnalyticQaoaCost(const Graph& graph,
                                   const NoiseModel& noise)
    : graph_(graph)
{
    computeDamping(noise);
}

void
AnalyticQaoaCost::computeDamping(const NoiseModel& noise)
{
    damping_.assign(graph_.numEdges(), 1.0);
    if (noise.ideal())
        return;
    for (std::size_t e = 0; e < graph_.numEdges(); ++e) {
        const Edge& edge = graph_.edges()[e];
        // Backward light cone of observable Z_u Z_v for the p=1
        // circuit H^n -> RZZ(edges) -> RX(all):
        //  - RX on u and v (2 one-qubit gates),
        //  - RZZ on every edge incident to u or v,
        //  - H on u, v, and every neighbor of u or v.
        std::set<int> cone_vertices = {edge.u, edge.v};
        int rzz_count = 0;
        for (const Edge& other : graph_.edges()) {
            if (other.u == edge.u || other.u == edge.v ||
                other.v == edge.u || other.v == edge.v) {
                ++rzz_count;
                cone_vertices.insert(other.u);
                cone_vertices.insert(other.v);
            }
        }
        const int h_count = static_cast<int>(cone_vertices.size());
        const int rx_count = 2;
        damping_[e] = std::pow(1.0 - noise.p1, h_count + rx_count) *
                      std::pow(1.0 - noise.p2, rzz_count);
    }
}

AnalyticQaoaCost::EdgeGammaFactors
AnalyticQaoaCost::edgeGammaFactors(std::size_t edge_index,
                                   double gamma) const
{
    const Edge& edge = graph_.edges()[edge_index];
    const int u = edge.u;
    const int v = edge.v;

    auto weight_to = [&](int from, int k) {
        for (const Edge& e : graph_.edges()) {
            if ((e.u == from && e.v == k) || (e.v == from && e.u == k))
                return e.weight;
        }
        return 0.0;
    };

    double prod_u = 1.0, prod_v = 1.0, prod_plus = 1.0, prod_minus = 1.0;
    for (int k = 0; k < graph_.numVertices(); ++k) {
        if (k == u || k == v)
            continue;
        // Vertices not adjacent to either endpoint contribute 1.
        const bool near_u = graph_.hasEdge(u, k);
        const bool near_v = graph_.hasEdge(v, k);
        if (!near_u && !near_v)
            continue;
        const double wu = near_u ? weight_to(u, k) : 0.0;
        const double wv = near_v ? weight_to(v, k) : 0.0;
        prod_u *= std::cos(gamma * wu);
        prod_v *= std::cos(gamma * wv);
        prod_plus *= std::cos(gamma * (wu + wv));
        prod_minus *= std::cos(gamma * (wu - wv));
    }

    EdgeGammaFactors f;
    f.sumUV = prod_u + prod_v;
    f.diff = prod_plus - prod_minus;
    f.sinGW = std::sin(gamma * edge.weight);
    return f;
}

void
AnalyticQaoaCost::computeGammaFactors(
    double gamma, std::vector<EdgeGammaFactors>& out) const
{
    out.resize(graph_.numEdges());
    for (std::size_t e = 0; e < graph_.numEdges(); ++e)
        out[e] = edgeGammaFactors(e, gamma);
}

void
AnalyticQaoaCost::energiesFromFactorsBatch(
    const double* betas, std::size_t count,
    const std::vector<EdgeGammaFactors>& factors, double* out) const
{
    constexpr std::size_t kStack = 16;
    double s4b_stack[kStack], s2b_stack[kStack], acc_stack[kStack];
    std::vector<double> heap;
    double* s4b = s4b_stack;
    double* s2b = s2b_stack;
    double* acc = acc_stack;
    if (count > kStack) {
        heap.assign(3 * count, 0.0);
        s4b = heap.data();
        s2b = heap.data() + count;
        acc = heap.data() + 2 * count;
    }
    for (std::size_t b = 0; b < count; ++b) {
        s4b[b] = std::sin(4.0 * betas[b]);
        s2b[b] = std::sin(2.0 * betas[b]);
        acc[b] = 0.0;
    }
    for (std::size_t e = 0; e < graph_.numEdges(); ++e) {
        const double w = graph_.edges()[e].weight;
        for (std::size_t b = 0; b < count; ++b) {
            const double zz = -(s4b[b] * factors[e].sinGW / 2.0) *
                                  factors[e].sumUV -
                              (s2b[b] * s2b[b] / 2.0) * factors[e].diff;
            acc[b] += (w / 2.0) * (damping_[e] * zz - 1.0);
        }
    }
    for (std::size_t b = 0; b < count; ++b)
        out[b] = acc[b];
}

double
AnalyticQaoaCost::energyFromFactors(
    double beta, const std::vector<EdgeGammaFactors>& factors) const
{
    const double s4b = std::sin(4.0 * beta);
    const double s2b = std::sin(2.0 * beta);
    double energy = 0.0;
    for (std::size_t e = 0; e < graph_.numEdges(); ++e) {
        const double w = graph_.edges()[e].weight;
        const double zz = -(s4b * factors[e].sinGW / 2.0) *
                              factors[e].sumUV -
                          (s2b * s2b / 2.0) * factors[e].diff;
        energy += (w / 2.0) * (damping_[e] * zz - 1.0);
    }
    return energy;
}

const std::vector<AnalyticQaoaCost::EdgeGammaFactors>&
AnalyticQaoaCost::factorsFor(double gamma)
{
    const bool memoize = kernel_.prefixCache;
    if (memoize)
        ++memoLookups_; // counters only track real memo traffic
    if (!memoize || !memoValid_ ||
        std::bit_cast<std::uint64_t>(memoGamma_) !=
            std::bit_cast<std::uint64_t>(gamma)) {
        computeGammaFactors(gamma, memo_);
        memoGamma_ = gamma;
        memoValid_ = memoize;
    } else {
        ++memoHits_;
    }
    return memo_;
}

double
AnalyticQaoaCost::edgeExpectation(std::size_t edge_index, double beta,
                                  double gamma) const
{
    const EdgeGammaFactors f = edgeGammaFactors(edge_index, gamma);
    const double s4b = std::sin(4.0 * beta);
    const double s2b = std::sin(2.0 * beta);
    const double zz = -(s4b * f.sinGW / 2.0) * f.sumUV -
                      (s2b * s2b / 2.0) * f.diff;
    return damping_[edge_index] * zz;
}

std::unique_ptr<CostFunction>
AnalyticQaoaCost::clone() const
{
    return std::make_unique<AnalyticQaoaCost>(*this);
}

void
AnalyticQaoaCost::configureKernel(const KernelOptions& options)
{
    kernel_ = options;
    memoValid_ = false;
}

double
AnalyticQaoaCost::evaluateImpl(const std::vector<double>& params,
                               std::uint64_t /*ordinal*/)
{
    return energyFromFactors(params[0], factorsFor(params[1]));
}

void
AnalyticQaoaCost::evaluateBatchImpl(
    std::span<const std::vector<double>> points,
    std::uint64_t /*base_ordinal*/, double* out)
{
    // Deterministic closed form; the gamma factor table is the only
    // shared work. Axis-major batches (gamma slowest) recompute it
    // once per gamma run — including across batch boundaries, since
    // the memo lives on the instance. Runs of bitwise-equal gammas
    // additionally fold their betas into one pass over the factor
    // table (bit-identical to point-by-point evaluation).
    if (!kernel_.batchedExpectation) {
        for (std::size_t i = 0; i < points.size(); ++i)
            out[i] =
                energyFromFactors(points[i][0], factorsFor(points[i][1]));
        return;
    }
    constexpr std::size_t kMaxRun = 64;
    double betas[kMaxRun];
    std::size_t i = 0;
    while (i < points.size()) {
        const double gamma = points[i][1];
        std::size_t j = i;
        while (j < points.size() && j - i < kMaxRun &&
               std::bit_cast<std::uint64_t>(points[j][1]) ==
                   std::bit_cast<std::uint64_t>(gamma)) {
            betas[j - i] = points[j][0];
            ++j;
        }
        if (j - i < 2) {
            out[i] = energyFromFactors(points[i][0], factorsFor(gamma));
            i = i + 1;
            continue;
        }
        energiesFromFactorsBatch(betas, j - i, factorsFor(gamma),
                                 out + i);
        batchedPoints_ += j - i;
        i = j;
    }
}

} // namespace oscar
