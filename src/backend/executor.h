/**
 * @file
 * The cost-function abstraction shared by every execution substrate.
 *
 * In the paper's workflow a "circuit execution" turns circuit
 * parameters into an expected cost value; everything downstream
 * (grid search, OSCAR sampling, optimizers) only consumes this
 * interface. Each evaluation is counted, because query counts are
 * themselves a headline metric (Table 6).
 *
 * Evaluations are submitted either one point at a time (`evaluate`) or
 * as a batch (`evaluateBatch`); the ExecutionEngine (engine.h) fans
 * batches out across worker threads. Two invariants make that safe and
 * reproducible:
 *
 *  - Query counting is atomic and batch-aware: a batch of n points
 *    counts n queries with a single atomic add.
 *  - Every evaluation carries an *ordinal*: its 0-based position in
 *    submission order. Stochastic backends derive all randomness from
 *    (seed, ordinal) via mixSeed, so a batch produces bit-identical
 *    values no matter how many threads execute it, and matches the
 *    scalar path point for point.
 */

#ifndef OSCAR_BACKEND_EXECUTOR_H
#define OSCAR_BACKEND_EXECUTOR_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/quantum/kernels.h"

namespace oscar {

class ExecutionEngine;
struct EngineBatch;
class Circuit;
class PauliSum;

namespace dist {
class ProcessPool;
struct RemoteBatch;
}

/**
 * Tuning knobs for the compiled-circuit kernel layer of the batched
 * backends (statevector_backend.h, analytic_qaoa.h). Plumbed through
 * the Oscar pipelines via OscarOptions::kernel.
 */
struct KernelOptions
{
    /**
     * Reuse shared-prefix checkpoints across evaluations of nearby
     * grid points. Bit-exact: toggling this changes performance, never
     * values.
     */
    bool prefixCache = true;

    /**
     * Checkpoint memory budget in bytes, per evaluator replica (a
     * checkpoint is one 2^n-amplitude statevector).
     */
    std::size_t prefixCacheBudgetBytes = std::size_t{256} << 20;

    /**
     * Kernel instruction set. Auto resolves once at startup via CPUID
     * (AVX2+FMA when available); force Scalar in determinism-sensitive
     * comparisons against reference values computed with the portable
     * kernels. Results are bit-identical across batching/threading for
     * any fixed ISA, but differ between ISAs by rounding.
     */
    kernels::KernelIsa isa = kernels::KernelIsa::Auto;

    /**
     * Cache-blocking window of the compiled-circuit replay, in qubits:
     * runs of ops confined to (or diagonal above) the low `blockWindow`
     * qubits execute block-by-block over 2^blockWindow-amplitude
     * chunks, streaming the statevector once per run instead of once
     * per gate. -1 = keep the compile-time default, 0 = disable.
     * Value-neutral for a fixed ISA: blocking reorders whole-block
     * passes, never the per-amplitude operation sequence.
     */
    int blockWindow = -1;

    /**
     * Evaluate shared-prefix groups of batched points with one fused
     * pass over the observable (kernels::expectationDiagonalBatch for
     * diagonal Hamiltonians, kernels::expectationPauliBatch per term
     * otherwise). Bit-identical to per-point evaluation; costs a few
     * scratch statevectors per replica.
     */
    bool batchedExpectation = true;

    /**
     * Super-kernel fusion window of the compiled-circuit replay, in
     * qubits: 0 (default) = off, > 0 collapses eligible in-window op
     * runs at compile time into dense matvec / diagonal-table
     * super-kernels and lowers RX/RY payloads onto the specialized
     * rotation kernels. Part of the fusion plan: results are
     * bit-identical across batching, segmentation, and checkpoint
     * resume for a fixed (ISA, fuseWindow), but a given ISA's fused
     * and unfused replays differ by rounding (fewer, reassociated
     * arithmetic ops), so change this knob only between runs you
     * compare bitwise.
     */
    int fuseWindow = 0;
};

/**
 * Kernel-layer effectiveness counters: prefix-checkpoint (or memo)
 * cache traffic of one evaluator. Aggregated per batch by the
 * ExecutionEngine (BatchHandle::stats) and per pipeline run in
 * OscarResult, so cache behaviour is observable without a debugger.
 */
struct KernelStats
{
    std::size_t cacheHits = 0;
    std::size_t cacheLookups = 0;
    std::size_t cacheEvictions = 0;

    /**
     * Widest kernel ISA that executed (Scalar for backends without a
     * kernel layer). Aggregation keeps the maximum, so a mixed fleet
     * reports the widest ISA that participated.
     */
    kernels::KernelIsa isa = kernels::KernelIsa::Scalar;

    /** Cache-blocked replay passes (one per fused op run executed). */
    std::size_t blockedGroupRuns = 0;

    /** Ops that executed inside a blocked pass. */
    std::size_t blockedOpsApplied = 0;

    /** Points whose expectation came from a fused batched pass. */
    std::size_t batchedExpectationPoints = 0;

    /** Fused super-kernel applications (one per unit per block run). */
    std::size_t fusedSuperKernels = 0;

    /** Ops whose individual replay was collapsed into a super-kernel. */
    std::size_t fusedOpsCollapsed = 0;

    /** Points whose non-diagonal (Pauli) expectation was batched. */
    std::size_t batchedPauliPoints = 0;

    KernelStats&
    operator+=(const KernelStats& other)
    {
        cacheHits += other.cacheHits;
        cacheLookups += other.cacheLookups;
        cacheEvictions += other.cacheEvictions;
        isa = std::max(isa, other.isa);
        blockedGroupRuns += other.blockedGroupRuns;
        blockedOpsApplied += other.blockedOpsApplied;
        batchedExpectationPoints += other.batchedExpectationPoints;
        fusedSuperKernels += other.fusedSuperKernels;
        fusedOpsCollapsed += other.fusedOpsCollapsed;
        batchedPauliPoints += other.batchedPauliPoints;
        return *this;
    }

    /** Counter delta (used to attribute one batch's traffic). */
    friend KernelStats
    operator-(KernelStats a, const KernelStats& b)
    {
        a.cacheHits -= b.cacheHits;
        a.cacheLookups -= b.cacheLookups;
        a.cacheEvictions -= b.cacheEvictions;
        a.blockedGroupRuns -= b.blockedGroupRuns;
        a.blockedOpsApplied -= b.blockedOpsApplied;
        a.batchedExpectationPoints -= b.batchedExpectationPoints;
        a.fusedSuperKernels -= b.fusedSuperKernels;
        a.fusedOpsCollapsed -= b.fusedOpsCollapsed;
        a.batchedPauliPoints -= b.batchedPauliPoints;
        return a;
    }
};

/**
 * Everything a worker process needs to rebuild a cost evaluator:
 * ansatz circuit, Hamiltonian, and kernel tuning. Deterministic
 * evaluators whose state is exactly (circuit, Hamiltonian) can expose
 * this through CostFunction::distPayload to become eligible for
 * multi-process sharding (src/dist); the pointers borrow from the cost
 * function and stay valid while it lives.
 */
struct DistPayload
{
    const Circuit* circuit = nullptr;
    const PauliSum* hamiltonian = nullptr;
    KernelOptions kernel;
};

/** Abstract VQA cost evaluator: circuit parameters -> expected cost. */
class CostFunction
{
  public:
    virtual ~CostFunction() = default;

    /** Dimension of the parameter vector. */
    virtual int numParams() const = 0;

    /** Evaluate the expected cost; increments the query counter. */
    double evaluate(const std::vector<double>& params);

    /**
     * Evaluate a batch of points; counts points.size() queries.
     *
     * The default implementation loops over evaluateImpl with
     * consecutive ordinals; backends may override evaluateBatchImpl
     * with backend-specific batching. Results are positional:
     * result[i] corresponds to points[i].
     */
    std::vector<double>
    evaluateBatch(const std::vector<std::vector<double>>& points);

    /**
     * Independent copy for a worker thread, or nullptr if this
     * evaluator cannot be replicated (the engine then falls back to
     * serial batch execution). Clones share no mutable state; the
     * engine drives them with explicit ordinals so stochastic clones
     * reproduce the parent's streams.
     */
    virtual std::unique_ptr<CostFunction>
    clone() const
    {
        return nullptr;
    }

    /**
     * Apply kernel-layer tuning (prefix cache on/off, checkpoint
     * budget). Backends without a kernel layer ignore it; wrappers
     * should forward to their inner evaluator.
     */
    virtual void
    configureKernel(const KernelOptions& /*options*/)
    {
    }

    /**
     * Cumulative kernel-layer cache counters since construction.
     * Backends without a kernel cache report zeros; the engine
     * publishes per-batch deltas through BatchHandle::stats().
     */
    virtual KernelStats
    kernelStats() const
    {
        return {};
    }

    /**
     * Distributed-execution payload, or nullopt when this evaluator
     * cannot be shipped to a worker process (stochastic wrappers,
     * lambdas, dataset replays). Exposing a payload asserts that
     * evaluating (points, ordinals) from the payload-built replica in
     * another process of the same build yields bit-identical values
     * per kernel ISA -- the distributed determinism contract.
     */
    virtual std::optional<DistPayload>
    distPayload() const
    {
        return std::nullopt;
    }

    /**
     * Evaluate points[i] with ordinal base_ordinal + i into out[i],
     * WITHOUT counting queries: the coordinating process reserved
     * queries and ordinals at submission. This is the execution entry
     * point of distributed workers (src/dist/worker.cpp); regular
     * callers use evaluate()/evaluateBatch().
     */
    void evaluateBatchAt(std::span<const std::vector<double>> points,
                         std::uint64_t base_ordinal, double* out);

    /**
     * Preferred batch ordering: parameter indices from slowest- to
     * fastest-varying, or empty for no preference. Backends with a
     * compiled-circuit prefix cache return their parameters ordered by
     * first use in the schedule; samplers sort grid batches
     * accordingly (axis-major) so nearby points share the longest
     * possible simulation prefix.
     */
    virtual std::vector<int>
    batchOrderHint() const
    {
        return {};
    }

    /** Number of evaluations since construction / reset. */
    std::size_t
    numQueries() const
    {
        return queries_.load(std::memory_order_relaxed);
    }

    /** Reset the query counter and the ordinal stream. */
    void
    resetQueries()
    {
        queries_.store(0, std::memory_order_relaxed);
        ordinal_.store(0, std::memory_order_relaxed);
    }

  protected:
    CostFunction() = default;

    /** Copies counter snapshots; clones get independent counters. */
    CostFunction(const CostFunction& other)
        : queries_(other.numQueries()),
          ordinal_(other.ordinal_.load(std::memory_order_relaxed))
    {
    }

    CostFunction&
    operator=(const CostFunction& other)
    {
        queries_.store(other.numQueries(), std::memory_order_relaxed);
        ordinal_.store(other.ordinal_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        return *this;
    }

    /**
     * Scalar evaluation. `ordinal` is the deterministic stream key of
     * this evaluation (0-based submission order). Deterministic
     * backends ignore it; stochastic backends must derive all their
     * randomness from it (typically `Rng(mixSeed(seed, ordinal))`) so
     * that results do not depend on threading or batching.
     */
    virtual double evaluateImpl(const std::vector<double>& params,
                                std::uint64_t ordinal) = 0;

    /**
     * Batch hook: evaluate points[i] with ordinal base_ordinal + i and
     * write to out[i]. Default loops over evaluateImpl; backends with a
     * cheaper batched path override this. Parameter sizes are already
     * validated. Taking a span lets the engine hand replicas
     * zero-copy slices of one materialized batch.
     */
    virtual void
    evaluateBatchImpl(std::span<const std::vector<double>> points,
                      std::uint64_t base_ordinal, double* out);

    /**
     * Keyed evaluation of *another* cost function, for wrappers (ZNE,
     * shot noise, damping, ...): validates, counts one query on `f`,
     * and runs f.evaluateImpl with the given ordinal. Wrappers must
     * route inner calls through this (with an ordinal derived from
     * their own) instead of f.evaluate(), otherwise inner streams
     * would depend on execution order.
     */
    static double invokeAt(CostFunction& f,
                           const std::vector<double>& params,
                           std::uint64_t ordinal);

    /** Throw unless params.size() == numParams(). */
    void checkParams(const std::vector<double>& params) const;

  private:
    friend class ExecutionEngine;
    friend struct EngineBatch;
    friend class dist::ProcessPool;
    friend struct dist::RemoteBatch;

    /** Count n queries and reserve n consecutive ordinals. */
    std::uint64_t
    reserve(std::size_t n)
    {
        queries_.fetch_add(n, std::memory_order_relaxed);
        return ordinal_.fetch_add(n, std::memory_order_relaxed);
    }

    /**
     * Un-count queries for reserved points that were cancelled before
     * execution. Ordinals are deliberately NOT returned: the cancelled
     * points' stream keys stay consumed, so every later evaluation's
     * randomness is independent of when (or whether) a cancel landed.
     */
    void
    refundQueries(std::size_t n)
    {
        queries_.fetch_sub(n, std::memory_order_relaxed);
    }

    std::atomic<std::size_t> queries_{0};
    std::atomic<std::uint64_t> ordinal_{0};
};

/** Wrap a plain callable as a CostFunction (used by tests/optimizers). */
class LambdaCost : public CostFunction
{
  public:
    using Fn = std::function<double(const std::vector<double>&)>;

    /**
     * @param thread_safe pass true when `fn` is pure / re-entrant;
     *        enables clone() and therefore engine parallelism.
     */
    LambdaCost(int num_params, Fn fn, bool thread_safe = false)
        : numParams_(num_params), fn_(std::move(fn)),
          threadSafe_(thread_safe)
    {
    }

    int numParams() const override { return numParams_; }

    std::unique_ptr<CostFunction>
    clone() const override
    {
        if (!threadSafe_)
            return nullptr;
        return std::make_unique<LambdaCost>(*this);
    }

  protected:
    double
    evaluateImpl(const std::vector<double>& params, std::uint64_t) override
    {
        return fn_(params);
    }

  private:
    int numParams_;
    Fn fn_;
    bool threadSafe_;
};

/**
 * Decorator adding finite-shot sampling noise to an exact evaluator.
 *
 * The estimator of an expected cost from S shots is unbiased with
 * standard deviation sigma_1 / sqrt(S), where sigma_1 is the
 * single-shot cost standard deviation. We model the estimator as
 * exact + Gaussian(0, sigma_1/sqrt(S)); sigma_1 is configurable (the
 * true value depends on the observable's spectral range). The noise
 * draw is keyed by evaluation ordinal, so batched and threaded runs
 * reproduce the scalar stream.
 */
class ShotNoiseCost : public CostFunction
{
  public:
    ShotNoiseCost(std::shared_ptr<CostFunction> inner, std::size_t shots,
                  double sigma_single_shot, std::uint64_t seed);

    int numParams() const override { return inner_->numParams(); }

    std::unique_ptr<CostFunction> clone() const override;

    /**
     * Forward kernel tuning to the wrapped evaluator. The batch order
     * hint is deliberately NOT forwarded: reordering would re-key the
     * ordinal-derived noise stream, so the wrapper keeps the caller's
     * submission order stable instead.
     */
    void
    configureKernel(const KernelOptions& options) override
    {
        inner_->configureKernel(options);
    }

    /** Cache observability passes through to the wrapped evaluator. */
    KernelStats
    kernelStats() const override
    {
        return inner_->kernelStats();
    }

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    std::shared_ptr<CostFunction> inner_;
    std::size_t shots_;
    double sigma1_;
    std::uint64_t seed_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_EXECUTOR_H
