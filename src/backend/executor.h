/**
 * @file
 * The cost-function abstraction shared by every execution substrate.
 *
 * In the paper's workflow a "circuit execution" turns circuit
 * parameters into an expected cost value; everything downstream
 * (grid search, OSCAR sampling, optimizers) only consumes this
 * interface. Each evaluation is counted, because query counts are
 * themselves a headline metric (Table 6).
 */

#ifndef OSCAR_BACKEND_EXECUTOR_H
#define OSCAR_BACKEND_EXECUTOR_H

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"

namespace oscar {

/** Abstract VQA cost evaluator: circuit parameters -> expected cost. */
class CostFunction
{
  public:
    virtual ~CostFunction() = default;

    /** Dimension of the parameter vector. */
    virtual int numParams() const = 0;

    /** Evaluate the expected cost; increments the query counter. */
    double evaluate(const std::vector<double>& params);

    /** Number of evaluate() calls since construction / reset. */
    std::size_t numQueries() const { return queries_; }

    /** Reset the query counter. */
    void resetQueries() { queries_ = 0; }

  protected:
    virtual double evaluateImpl(const std::vector<double>& params) = 0;

  private:
    std::size_t queries_ = 0;
};

/** Wrap a plain callable as a CostFunction (used by tests/optimizers). */
class LambdaCost : public CostFunction
{
  public:
    using Fn = std::function<double(const std::vector<double>&)>;

    LambdaCost(int num_params, Fn fn)
        : numParams_(num_params), fn_(std::move(fn))
    {
    }

    int numParams() const override { return numParams_; }

  protected:
    double
    evaluateImpl(const std::vector<double>& params) override
    {
        return fn_(params);
    }

  private:
    int numParams_;
    Fn fn_;
};

/**
 * Decorator adding finite-shot sampling noise to an exact evaluator.
 *
 * The estimator of an expected cost from S shots is unbiased with
 * standard deviation sigma_1 / sqrt(S), where sigma_1 is the
 * single-shot cost standard deviation. We model the estimator as
 * exact + Gaussian(0, sigma_1/sqrt(S)); sigma_1 is configurable (the
 * true value depends on the observable's spectral range).
 */
class ShotNoiseCost : public CostFunction
{
  public:
    ShotNoiseCost(std::shared_ptr<CostFunction> inner, std::size_t shots,
                  double sigma_single_shot, std::uint64_t seed);

    int numParams() const override { return inner_->numParams(); }

  protected:
    double evaluateImpl(const std::vector<double>& params) override;

  private:
    std::shared_ptr<CostFunction> inner_;
    std::size_t shots_;
    double sigma1_;
    Rng rng_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_EXECUTOR_H
