#include "src/backend/prefix_cache.h"

namespace oscar {

PrefixCache::PrefixCache(std::size_t budget_bytes)
    : budgetBytes_(budget_bytes)
{
}

void
PrefixCache::setBudget(std::size_t budget_bytes)
{
    clear();
    budgetBytes_ = budget_bytes;
}

std::size_t
PrefixCache::entryBytes(const Entry& entry)
{
    return sizeof(Entry) + entry.amps.capacity() * sizeof(cplx) +
           entry.key.paramBits.capacity() * sizeof(std::uint64_t);
}

const AlignedVector<cplx>*
PrefixCache::find(const PrefixKey& key)
{
    ++lookups_;
    const auto it = index_.find(key);
    if (it == index_.end())
        return nullptr;
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->amps;
}

void
PrefixCache::insert(const PrefixKey& key, const AlignedVector<cplx>& amps)
{
    if (index_.count(key))
        return;
    const std::size_t bytes =
        sizeof(Entry) + amps.size() * sizeof(cplx) +
        key.paramBits.size() * sizeof(std::uint64_t);
    if (bytes > budgetBytes_)
        return;
    while (sizeBytes_ + bytes > budgetBytes_ && !lru_.empty()) {
        sizeBytes_ -= entryBytes(lru_.back());
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.push_front(Entry{key, amps});
    lru_.front().amps.shrink_to_fit();
    index_.emplace(key, lru_.begin());
    sizeBytes_ += entryBytes(lru_.front());
}

void
PrefixCache::clear()
{
    lru_.clear();
    index_.clear();
    sizeBytes_ = 0;
}

} // namespace oscar
