#include "src/backend/prefix_cache.h"

#include <new>

namespace oscar {

namespace {

/**
 * Ceiling on the slot table: below this the budget alone sizes the
 * table; above it extra budget buys nothing (a sweep's distinct
 * prefixes number in the hundreds, and header memory is eager even
 * though payloads are allocated on demand).
 */
constexpr std::size_t kMaxSlots = 65536;

/** Relaxed atomic load of one shared 64-bit key word. */
inline std::uint64_t
loadWord(const std::uint64_t& word)
{
    return std::atomic_ref<const std::uint64_t>(word).load(
        std::memory_order_relaxed);
}

/** Relaxed atomic store of one shared 64-bit key word. */
inline void
storeWord(std::uint64_t& word, std::uint64_t value)
{
    std::atomic_ref<std::uint64_t>(word).store(value,
                                               std::memory_order_relaxed);
}

} // namespace

PrefixCache::PrefixCache(std::size_t budget_bytes)
    : budgetBytes_(budget_bytes)
{
}

PrefixCache::~PrefixCache()
{
    releaseTable();
}

void
PrefixCache::releaseTable()
{
    for (Slot& slot : slots_) {
        double* buf = slot.payload.load(std::memory_order_relaxed);
        if (buf != nullptr)
            ::operator delete(buf, std::align_val_t{64});
    }
    slots_.clear();
    keyWords_.clear();
    numSlots_ = 0;
    ampCount_ = 0;
    keyStride_ = 0;
    payloadDoubles_ = 0;
    occupied_.store(0, std::memory_order_relaxed);
    clockHand_.store(0, std::memory_order_relaxed);
}

void
PrefixCache::configure(std::size_t amp_count, std::size_t max_key_words)
{
    const std::size_t key_stride = 2 + max_key_words; // depth, len, bits
    if (ampCount_ == amp_count && keyStride_ == key_stride)
        return;
    releaseTable();
    if (amp_count == 0)
        return;
    // Budget accounting charges each slot its full checkpoint weight
    // up front, so the table can never hold more live bytes than the
    // budget even when every slot is occupied.
    const std::size_t slot_bytes = sizeof(Slot) +
                                   key_stride * sizeof(std::uint64_t) +
                                   amp_count * sizeof(cplx);
    const std::size_t slots = budgetBytes_ / slot_bytes;
    if (slots == 0)
        return; // one checkpoint alone busts the budget: cache stays off
    ampCount_ = amp_count;
    keyStride_ = key_stride;
    payloadDoubles_ = 2 * amp_count;
    numSlots_ = slots < kMaxSlots ? slots : kMaxSlots;
    slots_ = std::vector<Slot>(numSlots_);
    keyWords_.assign(numSlots_ * keyStride_, 0);
}

void
PrefixCache::setBudget(std::size_t budget_bytes)
{
    releaseTable();
    budgetBytes_ = budget_bytes;
}

std::size_t
PrefixCache::sizeBytes() const
{
    return numSlots_ * (sizeof(Slot) + keyStride_ * sizeof(std::uint64_t) +
                        ampCount_ * sizeof(cplx));
}

std::uint64_t
PrefixCache::fingerprint(const PrefixKey& key)
{
    std::uint64_t h = 14695981039346656037ULL; // FNV-1a offset basis
    const auto mix = [&h](std::uint64_t word) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= (word >> (8 * byte)) & 0xffULL;
            h *= 1099511628211ULL; // FNV prime
        }
    };
    mix(static_cast<std::uint64_t>(key.depth));
    mix(static_cast<std::uint64_t>(key.paramBits.size()));
    for (std::uint64_t bits : key.paramBits)
        mix(bits);
    return h == 0 ? 1 : h; // 0 is the empty-slot sentinel
}

bool
PrefixCache::keyMatches(std::size_t s, const PrefixKey& key)
{
    const std::uint64_t* kw = keyWordsAt(s);
    if (loadWord(kw[0]) != static_cast<std::uint64_t>(key.depth))
        return false;
    if (loadWord(kw[1]) != static_cast<std::uint64_t>(key.paramBits.size()))
        return false;
    for (std::size_t j = 0; j < key.paramBits.size(); ++j)
        if (loadWord(kw[2 + j]) != key.paramBits[j])
            return false;
    return true;
}

bool
PrefixCache::find(const PrefixKey& key, AlignedVector<cplx>& out)
{
    lookups_.fetch_add(1, std::memory_order_relaxed);
    if (numSlots_ == 0 || key.paramBits.size() + 2 > keyStride_)
        return false;
    const std::uint64_t tag = fingerprint(key);
    const std::size_t probes =
        kProbeWindow < numSlots_ ? kProbeWindow : numSlots_;
    const std::size_t home = static_cast<std::size_t>(tag % numSlots_);
    for (std::size_t i = 0; i < probes; ++i) {
        const std::size_t s = (home + i) % numSlots_;
        Slot& slot = slots_[s];
        if (slot.tag.load(std::memory_order_relaxed) != tag)
            continue;
        // Seqlock read: snapshot an even sequence, copy everything
        // out, and accept the copy only if the sequence is unchanged.
        const std::uint32_t seq1 = slot.seq.load(std::memory_order_acquire);
        if (seq1 & 1u)
            continue;
        if (!keyMatches(s, key))
            continue;
        const double* src = slot.payload.load(std::memory_order_relaxed);
        if (src == nullptr)
            continue;
        out.resize(ampCount_);
        double* dst = reinterpret_cast<double*>(out.data());
        for (std::size_t j = 0; j < payloadDoubles_; ++j)
            dst[j] = std::atomic_ref<const double>(src[j]).load(
                std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (slot.seq.load(std::memory_order_relaxed) == seq1) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        // Torn by a concurrent reclaim: a miss, never a wrong value.
    }
    return false;
}

void
PrefixCache::publishLocked(std::size_t s, std::uint32_t locked_seq,
                           std::uint64_t tag, const PrefixKey& key,
                           const AlignedVector<cplx>& amps)
{
    Slot& slot = slots_[s];
    double* buf = slot.payload.load(std::memory_order_relaxed);
    if (buf == nullptr) {
        buf = static_cast<double*>(::operator new(
            payloadDoubles_ * sizeof(double), std::align_val_t{64}));
        slot.payload.store(buf, std::memory_order_relaxed);
    }
    slot.tag.store(tag, std::memory_order_relaxed);
    std::uint64_t* kw = keyWordsAt(s);
    storeWord(kw[0], static_cast<std::uint64_t>(key.depth));
    storeWord(kw[1], static_cast<std::uint64_t>(key.paramBits.size()));
    for (std::size_t j = 0; j < key.paramBits.size(); ++j)
        storeWord(kw[2 + j], key.paramBits[j]);
    const double* src = reinterpret_cast<const double*>(amps.data());
    for (std::size_t j = 0; j < payloadDoubles_; ++j)
        std::atomic_ref<double>(buf[j]).store(src[j],
                                              std::memory_order_relaxed);
    slot.seq.store(locked_seq + 1, std::memory_order_release);
}

PrefixInsertResult
PrefixCache::insert(const PrefixKey& key, const AlignedVector<cplx>& amps)
{
    PrefixInsertResult result;
    if (numSlots_ == 0 || key.paramBits.size() + 2 > keyStride_ ||
        amps.size() != ampCount_)
        return result;
    const std::uint64_t tag = fingerprint(key);
    const std::size_t probes =
        kProbeWindow < numSlots_ ? kProbeWindow : numSlots_;
    const std::size_t home = static_cast<std::size_t>(tag % numSlots_);

    // Pass 1 over the probe window: bail on a duplicate, or claim the
    // first empty slot by CAS-locking its sequence.
    for (std::size_t i = 0; i < probes; ++i) {
        const std::size_t s = (home + i) % numSlots_;
        Slot& slot = slots_[s];
        const std::uint64_t seen = slot.tag.load(std::memory_order_relaxed);
        if (seen == tag) {
            const std::uint32_t seq1 =
                slot.seq.load(std::memory_order_acquire);
            if (!(seq1 & 1u) && keyMatches(s, key) &&
                slot.seq.load(std::memory_order_relaxed) == seq1)
                return result; // already published (racy-OK: dup is benign)
        }
        if (seen != 0)
            continue;
        std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
        if (seq & 1u)
            continue; // writer inside
        if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed))
            continue; // lost the race for this slot
        // We own the slot; re-read the tag now that no writer can be
        // inside. Another insert may have filled it before our CAS.
        const std::uint64_t now = slot.tag.load(std::memory_order_relaxed);
        if (now != 0) {
            slot.seq.store(seq + 2, std::memory_order_release);
            if (now == tag && keyMatches(s, key))
                return result; // our key won the race elsewhere
            continue;          // someone else's entry landed here
        }
        publishLocked(s, seq + 1, tag, key, amps);
        occupied_.fetch_add(1, std::memory_order_relaxed);
        result.inserted = true;
        return result;
    }

    // Probe window full of live entries: reclaim a victim *within the
    // window* (anywhere else and find(), which probes only the window,
    // could never see the entry again). The shared clock hand rotates
    // which window position gets displaced, so a hot window ages out
    // round-robin instead of thrashing one slot.
    for (std::size_t attempt = 0; attempt < kProbeWindow; ++attempt) {
        const std::size_t v =
            (home +
             clockHand_.fetch_add(1, std::memory_order_relaxed) % probes) %
            numSlots_;
        Slot& slot = slots_[v];
        std::uint32_t seq = slot.seq.load(std::memory_order_relaxed);
        if (seq & 1u)
            continue;
        if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed))
            continue;
        const std::uint64_t old = slot.tag.load(std::memory_order_relaxed);
        if (old == tag && keyMatches(v, key)) {
            // The hand landed on our own key: nothing to do.
            slot.seq.store(seq + 2, std::memory_order_release);
            return result;
        }
        publishLocked(v, seq + 1, tag, key, amps);
        if (old == 0) {
            occupied_.fetch_add(1, std::memory_order_relaxed);
        } else {
            evictions_.fetch_add(1, std::memory_order_relaxed);
            result.reclaimed = true;
        }
        result.inserted = true;
        return result;
    }
    return result; // every candidate writer-locked: drop the insert
}

void
PrefixCache::clear()
{
    // Non-concurrent by contract: plain sequential resets, payload
    // buffers retained for reuse.
    for (Slot& slot : slots_)
        slot.tag.store(0, std::memory_order_relaxed);
    for (std::uint64_t& word : keyWords_)
        word = 0;
    occupied_.store(0, std::memory_order_relaxed);
    clockHand_.store(0, std::memory_order_relaxed);
}

} // namespace oscar
