#include "src/backend/trajectory_backend.h"

#include <stdexcept>

#include "src/mitigation/readout.h"

namespace oscar {

TrajectoryCost::TrajectoryCost(Circuit circuit, PauliSum hamiltonian,
                               NoiseModel noise,
                               std::size_t num_trajectories,
                               std::uint64_t seed)
    : circuit_(std::move(circuit)), hamiltonian_(std::move(hamiltonian)),
      noise_(noise), numTrajectories_(num_trajectories),
      state_(circuit_.numQubits()), seed_(seed)
{
    if (num_trajectories == 0)
        throw std::invalid_argument("TrajectoryCost: need >= 1 trajectory");
    if (hamiltonian_.numQubits() != circuit_.numQubits())
        throw std::invalid_argument(
            "TrajectoryCost: circuit/Hamiltonian qubit mismatch");
    if (hamiltonian_.isDiagonal()) {
        diagonal_ = hamiltonian_.diagonalTable();
        if (noise_.readout01 > 0.0 || noise_.readout10 > 0.0) {
            diagonal_ = applyReadoutToDiagonal(std::move(diagonal_),
                                               circuit_.numQubits(),
                                               noise_.readout01,
                                               noise_.readout10);
        }
    } else if (noise_.readout01 > 0.0 || noise_.readout10 > 0.0) {
        throw std::invalid_argument(
            "TrajectoryCost: readout noise requires diagonal Hamiltonian");
    }
}

std::unique_ptr<CostFunction>
TrajectoryCost::clone() const
{
    return std::make_unique<TrajectoryCost>(*this);
}

double
TrajectoryCost::runTrajectory(const std::vector<double>& params, Rng& rng)
{
    state_.reset();
    for (const Gate& g : circuit_.gates()) {
        Gate resolved = g;
        resolved.angle = g.resolvedAngle(params);
        resolved.paramIndex = -1;
        state_.applyGate(resolved);

        if (gateArity(g.kind) == 2) {
            if (noise_.p2 > 0.0 && rng.bernoulli(noise_.p2)) {
                // Uniform over the 15 non-identity 2-qubit Paulis:
                // pick (pa, pb) != (I, I).
                const std::uint64_t pick = rng.uniformInt(15) + 1;
                const int pa = static_cast<int>(pick & 3);
                const int pb = static_cast<int>(pick >> 2);
                static const GateKind paulis[] = {GateKind::X, GateKind::X,
                                                  GateKind::Y, GateKind::Z};
                if (pa != 0) {
                    Gate e;
                    e.kind = paulis[pa];
                    e.qubits = {g.qubits[0], -1};
                    state_.applyGate(e);
                }
                if (pb != 0) {
                    Gate e;
                    e.kind = paulis[pb];
                    e.qubits = {g.qubits[1], -1};
                    state_.applyGate(e);
                }
            }
        } else if (noise_.p1 > 0.0 && rng.bernoulli(noise_.p1)) {
            static const GateKind paulis[] = {GateKind::X, GateKind::Y,
                                              GateKind::Z};
            Gate e;
            e.kind = paulis[rng.uniformInt(3)];
            e.qubits = {g.qubits[0], -1};
            state_.applyGate(e);
        }
    }
    if (!diagonal_.empty())
        return state_.expectationDiagonal(diagonal_);
    return hamiltonian_.expectation(state_);
}

double
TrajectoryCost::evaluateImpl(const std::vector<double>& params,
                             std::uint64_t ordinal)
{
    Rng rng(mixSeed(seed_, ordinal));
    double acc = 0.0;
    for (std::size_t t = 0; t < numTrajectories_; ++t)
        acc += runTrajectory(params, rng);
    return acc / static_cast<double>(numTrajectories_);
}

} // namespace oscar
