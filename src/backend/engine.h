/**
 * @file
 * Asynchronous, thread-parallel execution of cost-function batches.
 *
 * OSCAR's samples are independent by construction (paper Fig. 7A), so
 * the hottest path of the whole system -- turning a list of parameter
 * points into a list of cost values -- is embarrassingly parallel.
 * The ExecutionEngine owns a pool of worker threads and a FIFO task
 * queue of submitted batches; workers fan each batch out in contiguous
 * chunks.
 *
 * The submission API is asynchronous: submit() returns a BatchHandle
 * immediately, so callers can keep several batches in flight and do
 * other work (CS reconstruction iterations, NCM fitting, scheduling)
 * while circuits execute -- the pipeline-overlap the ROADMAP calls
 * for. The synchronous evaluate() is submit(...).get().
 *
 * Determinism contract (unchanged from the synchronous engine):
 * evaluation i of a batch always runs with ordinal base + i, where
 * base is reserved at *submission* time in submission order (see
 * executor.h). Which worker executes a chunk, when it executes, and
 * how many batches are in flight can therefore never change a value:
 * results are bit-identical for 1 or N threads and for any completion
 * order. Cancellation skips not-yet-started work but never returns
 * ordinals, so later evaluations are also independent of cancel
 * timing.
 *
 * Parallel execution requires the cost function to be replicable
 * (CostFunction::clone() != nullptr); otherwise the batch degrades
 * gracefully to deferred inline execution on the waiting thread. The
 * inline path still goes through CostFunction::evaluateBatchImpl, so
 * backend-specific batch overrides apply either way.
 */

#ifndef OSCAR_BACKEND_ENGINE_H
#define OSCAR_BACKEND_ENGINE_H

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/backend/executor.h"
#include "src/dist/options.h"

namespace oscar {

namespace dist {
class ProcessPool;
}

struct EngineBatch; // the engine's thread-pooled Control (engine.cpp)

/**
 * ExecutionEngine configuration.
 *
 * Thread-count convention (shared with OscarOptions::numThreads):
 * 0 = hardware concurrency, 1 = serial, k > 1 = exactly k threads
 * (the submitting thread counts as one and participates in waits).
 * The default everywhere is 0 -- use what the hardware offers; ask for
 * 1 explicitly when serial execution is wanted. Results are
 * bit-identical for every value by the determinism contract above.
 */
struct EngineOptions
{
    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    int numThreads = 0;

    /**
     * Below this many points per would-be worker the batch runs
     * inline on the waiting thread (thread hand-off costs more than
     * it saves).
     */
    std::size_t minPointsPerThread = 4;

    /**
     * Multi-process sharding (src/dist). With numWorkers > 0 (or the
     * OSCAR_DIST_WORKERS environment variable set), large batches of
     * distributable cost functions are sharded across forked
     * oscar-worker processes behind a fault-tolerant task queue;
     * everything else keeps using the in-process thread pool. Values
     * are bit-identical either way for a fixed kernel ISA.
     */
    dist::DistOptions dist;
};

/** Progress / effectiveness counters of one submitted batch. */
struct BatchStats
{
    /** Points in the batch as submitted. */
    std::size_t pointsTotal = 0;

    /** Points whose values were produced. */
    std::size_t pointsCompleted = 0;

    /** Points skipped by cancel() (queries refunded). */
    std::size_t pointsCancelled = 0;

    /** Points evaluated by remote worker processes (src/dist). */
    std::size_t pointsRemote = 0;

    /**
     * Distributed shards requeued onto surviving workers after their
     * assigned worker died mid-flight. Nonzero requeues never change
     * values (ordinals were reserved at submission); the counter makes
     * fault recovery observable.
     */
    std::size_t shardsRequeued = 0;

    /**
     * Distributed shards dispatched to a worker that already had one
     * in flight (depth-2 pipelining: the next shard rides the wire
     * while the current one computes, hiding the dispatch round-trip).
     */
    std::size_t shardsPipelined = 0;

    /**
     * Kernel-layer (prefix cache) traffic attributed to this batch,
     * local and remote combined: remote shards fold the per-shard
     * KernelStats delta from each worker's Result frame in here too.
     */
    KernelStats kernel;

    /**
     * The remote-only portion of `kernel`: counters aggregated from
     * worker Result frames alone, so per-worker PrefixCache behavior
     * is observable even when local and remote execution mix.
     */
    KernelStats remoteKernel;

    /**
     * Distributed shards whose unrun tail was stolen from a busy
     * worker and re-dispatched to an idle one (StealRequest /
     * StealGrant). Ordinals are reserved at submission, so stealing
     * never changes values; the counter makes straggler recovery
     * observable.
     */
    std::size_t shardsStolen = 0;

    /**
     * Bytes this batch's frames would have occupied on the wire
     * uncompressed (frame header + raw payload + CRC), coordinator
     * side: LoadCost/Task sends plus Result receipts.
     */
    std::size_t bytesOnWireRaw = 0;

    /**
     * Bytes those same frames actually occupied after the per-frame
     * smallest-of codec selection. Never exceeds bytesOnWireRaw; the
     * gap is the framing layer's compression saving.
     */
    std::size_t bytesOnWireCompressed = 0;

    /**
     * Pool-lifetime membership/routing counters, snapshotted from
     * PoolStats as this batch's shards complete (so callers holding
     * only a BatchHandle can observe fleet behavior): TCP members that
     * had passed the authenticated handshake, and dispatches that went
     * to members this pool did not spawn. Both are cumulative pool
     * counters, not per-batch deltas -- aggregation takes the max,
     * like KernelStats::isa, never the sum.
     */
    std::size_t workersJoined = 0;
    std::size_t tasksToRemote = 0;

    BatchStats&
    operator+=(const BatchStats& other)
    {
        pointsTotal += other.pointsTotal;
        pointsCompleted += other.pointsCompleted;
        pointsCancelled += other.pointsCancelled;
        pointsRemote += other.pointsRemote;
        shardsRequeued += other.shardsRequeued;
        shardsPipelined += other.shardsPipelined;
        shardsStolen += other.shardsStolen;
        bytesOnWireRaw += other.bytesOnWireRaw;
        bytesOnWireCompressed += other.bytesOnWireCompressed;
        workersJoined = std::max(workersJoined, other.workersJoined);
        tasksToRemote = std::max(tasksToRemote, other.tasksToRemote);
        kernel += other.kernel;
        remoteKernel += other.remoteKernel;
        return *this;
    }
};

/** Per-submission options. */
struct SubmitOptions
{
    /**
     * Streaming completion callback: invoked once per completed point
     * with (index within the batch, value), as each worker chunk
     * finishes. Calls are serialized (never concurrent) but may come
     * from any worker thread and in any chunk order; within a chunk,
     * points are reported in submission order. The callback must not
     * block on the batch's own handle. A throwing callback fails the
     * batch -- get() rethrows the exception -- but never takes down a
     * worker or leaves the handle unfinished; the chunk's values are
     * still computed and charged.
     */
    std::function<void(std::size_t index, double value)> onComplete;

    /**
     * Hand even small batches to the worker pool instead of deferring
     * them to the waiting thread. Used by speculative submitters (the
     * optimizer's reflection/expansion/contraction probes): the batch
     * starts executing before anyone waits on it, at the price of a
     * replica clone and a thread hand-off. Requires a replicable cost;
     * ignored on serial engines.
     */
    bool eager = false;
};

class ExecutionEngine;

/**
 * Future-like handle to a submitted batch.
 *
 * Handles share state with the engine and stay valid after the engine
 * is destroyed (destruction cancels still-queued work first). The cost
 * function, by contrast, must outlive the batch: it is evaluated from
 * worker threads until wait()/get() returns or the engine dies.
 *
 * The handle itself is execution-substrate-agnostic: it forwards to a
 * Control implemented by the engine's thread-pooled batch or by the
 * distributed process pool's remote batch (src/dist/process_pool.h),
 * so every submission surface in the system -- samplers, gridSearch,
 * Oscar pipelines, the multi-QPU scheduler -- consumes one handle
 * type regardless of where the work runs.
 */
class BatchHandle
{
  public:
    /**
     * Execution-substrate interface behind a handle. Implementations
     * must keep every method safe to call from any thread, allow
     * repeated get(), and guarantee that after wait() returns all
     * streaming callbacks have completed.
     */
    class Control
    {
      public:
        virtual ~Control() = default;
        virtual bool done() const = 0;
        virtual void wait() = 0;
        virtual std::vector<double> get() = 0;
        virtual bool cancel() = 0;
        virtual BatchStats stats() const = 0;
    };

    /** Invalid handle; every accessor below requires valid(). */
    BatchHandle() = default;

    bool valid() const { return state_ != nullptr; }

    /** True once every point is either completed or cancelled. */
    bool done() const;

    /**
     * Block until done(). The waiting thread helps: it executes
     * not-yet-claimed chunks of this batch itself (this is also how
     * serial engines and non-replicable cost functions execute at
     * all). Never throws batch errors -- see get().
     */
    void wait();

    /**
     * wait(), then return the values (result[i] corresponds to
     * points[i]). Rethrows the first worker exception if any chunk
     * failed; throws std::runtime_error if points were cancelled.
     * May be called repeatedly.
     */
    std::vector<double> get();

    /**
     * Best-effort cancel: chunks not yet claimed by a worker are
     * skipped and their queries refunded to the cost function
     * (ordinals stay consumed -- see CostFunction::refundQueries).
     * In-flight chunks still complete and are charged. Returns true
     * if any point was skipped.
     */
    bool cancel();

    /** Progress and kernel-cache counters (safe to poll anytime). */
    BatchStats stats() const;

  private:
    friend class ExecutionEngine;
    friend class dist::ProcessPool;

    explicit BatchHandle(std::shared_ptr<Control> state)
        : state_(std::move(state))
    {
    }

    std::shared_ptr<Control> state_;
};

/** Thread-pooled asynchronous batch evaluator for CostFunctions. */
class ExecutionEngine
{
  public:
    /** Engine with the default options (hardware concurrency). */
    ExecutionEngine();

    explicit ExecutionEngine(const EngineOptions& options);

    /** Convenience: engine with `num_threads` workers (0 = hardware). */
    explicit ExecutionEngine(int num_threads);

    /**
     * Cancels still-queued batches (refunding their queries), lets
     * in-flight chunks finish, and joins the workers. Outstanding
     * handles remain valid: wait() returns, get() reports the
     * cancellation. Never blocks on external waiters.
     */
    ~ExecutionEngine();

    ExecutionEngine(const ExecutionEngine&) = delete;
    ExecutionEngine& operator=(const ExecutionEngine&) = delete;

    /** Worker threads available (1 when serial). */
    int numThreads() const;

    /** The thread count `requested` resolves to (0 -> hardware). */
    static int resolveThreads(int requested);

    /**
     * Submit a batch for asynchronous execution; result[i] of
     * BatchHandle::get() corresponds to points[i]. Queries and
     * ordinals are reserved here, in submission order, which is what
     * keeps concurrent batches deterministic. Throws on malformed
     * points before anything is counted.
     */
    BatchHandle submit(CostFunction& cost,
                       std::vector<std::vector<double>> points,
                       SubmitOptions options = {});

    /**
     * Submit a batch whose ordinals are pinned externally: evaluation
     * i runs with ordinal base_ordinal + i exactly, no queries are
     * reserved or refunded, and the batch is never routed to the
     * process pool. This is how a distributed worker replays a shard
     * across its own thread pool: the coordinator reserved the
     * ordinals at submission, so the shard must execute under them
     * verbatim for distributed results to stay bit-identical to
     * in-process execution.
     */
    BatchHandle submitAt(CostFunction& cost,
                         std::vector<std::vector<double>> points,
                         std::uint64_t base_ordinal,
                         SubmitOptions options = {});

    /** Produces the i-th parameter point of a generated batch. */
    using PointFn = std::function<std::vector<double>(std::size_t)>;

    /** submit() over points materialized from `point_at(i)`. */
    BatchHandle submitGenerated(CostFunction& cost, std::size_t count,
                                const PointFn& point_at,
                                SubmitOptions options = {});

    /**
     * Evaluate a batch of parameter points synchronously:
     * submit(...).get(). Queries are credited to `cost` exactly once
     * per point.
     */
    std::vector<double>
    evaluate(CostFunction& cost,
             const std::vector<std::vector<double>>& points);

    /** Synchronous submitGenerated. */
    std::vector<double> evaluateGenerated(CostFunction& cost,
                                          std::size_t count,
                                          const PointFn& point_at);

    /**
     * Parallel map without a cost function: out[i] = fn(i). Used for
     * batched landscape lookups (dataset replay) and other per-index
     * work. `fn` must be safe to call concurrently.
     */
    std::vector<double>
    map(std::size_t count,
        const std::function<double(std::size_t)>& fn);

    /**
     * A process-wide serial engine, for call sites that accept an
     * optional engine: `engineOr(ptr)` never returns null.
     */
    static ExecutionEngine& serial();

    static ExecutionEngine&
    engineOr(ExecutionEngine* engine)
    {
        return engine ? *engine : serial();
    }

    /**
     * The distributed process pool behind this engine, or nullptr
     * when distribution is off, not yet started (the pool spawns
     * lazily on the first distributable submission), or failed to
     * start. Exposed for tests and fault-injection (worker pids).
     */
    dist::ProcessPool* processPool() const { return pool_.get(); }

  private:
    friend class BatchHandle;
    friend struct EngineBatch; ///< chunk layout + worker bridges

    struct Chunk
    {
        std::size_t lo;
        std::size_t hi;
    };

    /** Split [0, count) into per-worker chunks; empty = run inline. */
    std::vector<Chunk> planChunks(std::size_t count) const;

    /**
     * Build the shared batch state; enqueue unless inline-only. A
     * non-null `pinned_base` pins ordinals (submitAt): no query
     * reservation, no refunds, no distribution.
     */
    BatchHandle submitBatch(CostFunction* cost,
                            std::vector<std::vector<double>> points,
                            std::function<double(std::size_t)> map_fn,
                            std::size_t count, SubmitOptions options,
                            const std::uint64_t* pinned_base = nullptr);

    /**
     * Route a batch to the process pool when distribution is enabled,
     * the cost is distributable, and the batch is worth a process
     * round-trip. Returns an invalid handle to mean "run in-process".
     */
    BatchHandle tryDistribute(CostFunction& cost,
                              std::vector<std::vector<double>>& points,
                              const SubmitOptions& options);

    // -- worker pool -------------------------------------------------
    void workerLoop();

    std::size_t minPointsPerThread_;
    std::vector<std::thread> workers_;

    std::mutex mutex_; ///< guards queue_ and stop_
    std::condition_variable wake_;
    std::deque<std::shared_ptr<EngineBatch>> queue_;
    bool stop_ = false;

    // -- distributed routing -----------------------------------------
    dist::DistOptions dist_;
    bool distEnabled_ = false;    ///< resolved from options + env
    std::once_flag poolOnce_;     ///< lazy pool spawn
    std::unique_ptr<dist::ProcessPool> pool_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_ENGINE_H
