/**
 * @file
 * Batched, thread-parallel execution of cost-function evaluations.
 *
 * OSCAR's samples are independent by construction (paper Fig. 7A), so
 * the hottest path of the whole system -- turning a list of parameter
 * points into a list of cost values -- is embarrassingly parallel.
 * The ExecutionEngine owns a pool of worker threads and fans a batch
 * out across them in contiguous chunks.
 *
 * Determinism contract: evaluation i of a batch always runs with
 * ordinal base + i (see executor.h), regardless of which worker
 * executes it, so results are bit-identical for 1 or N threads. This
 * is what makes the N-thread reconstruction pipelines reproduce the
 * serial ones exactly.
 *
 * Parallel execution requires the cost function to be replicable
 * (CostFunction::clone() != nullptr); otherwise the engine degrades
 * gracefully to the serial batched path. The serial path still goes
 * through CostFunction::evaluateBatch, so backend-specific batch
 * overrides apply either way.
 */

#ifndef OSCAR_BACKEND_ENGINE_H
#define OSCAR_BACKEND_ENGINE_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "src/backend/executor.h"

namespace oscar {

/** ExecutionEngine configuration. */
struct EngineOptions
{
    /** Worker threads; 0 = hardware concurrency, 1 = serial. */
    int numThreads = 0;

    /**
     * Below this many points per would-be worker the batch runs
     * serially (thread hand-off costs more than it saves).
     */
    std::size_t minPointsPerThread = 4;
};

/** Thread-pooled batch evaluator for CostFunctions. */
class ExecutionEngine
{
  public:
    /** Serial engine (no worker threads). */
    ExecutionEngine();

    explicit ExecutionEngine(const EngineOptions& options);

    /** Convenience: engine with `num_threads` workers (0 = hardware). */
    explicit ExecutionEngine(int num_threads);

    ~ExecutionEngine();

    ExecutionEngine(const ExecutionEngine&) = delete;
    ExecutionEngine& operator=(const ExecutionEngine&) = delete;

    /** Worker threads available (1 when serial). */
    int numThreads() const;

    /**
     * Evaluate a batch of parameter points; result[i] corresponds to
     * points[i]. Queries are credited to `cost` exactly once per point.
     */
    std::vector<double>
    evaluate(CostFunction& cost,
             const std::vector<std::vector<double>>& points);

    /** Produces the i-th parameter point of a generated batch. */
    using PointFn = std::function<std::vector<double>(std::size_t)>;

    /**
     * Evaluate `count` points produced by `point_at(i)` without
     * materializing the whole batch up front. `point_at` must be safe
     * to call concurrently (grid lookups are).
     */
    std::vector<double> evaluateGenerated(CostFunction& cost,
                                          std::size_t count,
                                          const PointFn& point_at);

    /**
     * Parallel map without a cost function: out[i] = fn(i). Used for
     * batched landscape lookups (dataset replay) and other per-index
     * work. `fn` must be safe to call concurrently.
     */
    std::vector<double>
    map(std::size_t count,
        const std::function<double(std::size_t)>& fn);

    /**
     * A process-wide serial engine, for call sites that accept an
     * optional engine: `engineOr(ptr)` never returns null.
     */
    static ExecutionEngine& serial();

    static ExecutionEngine&
    engineOr(ExecutionEngine* engine)
    {
        return engine ? *engine : serial();
    }

  private:
    struct Chunk
    {
        std::size_t lo;
        std::size_t hi;
    };

    /** Split [0, count) into per-worker chunks; empty = run serial. */
    std::vector<Chunk> planChunks(std::size_t count) const;

    /** Fan a validated batch out across replica clones of `cost`. */
    std::vector<double>
    evaluateParallel(CostFunction& cost,
                     std::span<const std::vector<double>> points,
                     const std::vector<Chunk>& chunks,
                     std::unique_ptr<CostFunction> proto);

    /** Run fn(c) for every chunk index on the pool + calling thread. */
    void runOnPool(std::size_t num_chunks,
                   const std::function<void(std::size_t)>& fn);

    // -- worker pool -------------------------------------------------
    void workerLoop();

    std::size_t minPointsPerThread_;
    std::vector<std::thread> workers_;

    /** Serializes whole jobs when callers share one engine. */
    std::mutex submitMutex_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::function<void(std::size_t)> job_;
    std::size_t jobCount_ = 0;   ///< chunks in the current job
    std::size_t jobNext_ = 0;    ///< next chunk index to claim
    std::size_t jobPending_ = 0; ///< chunks not yet finished
    std::uint64_t jobGeneration_ = 0;
    bool stop_ = false;
};

} // namespace oscar

#endif // OSCAR_BACKEND_ENGINE_H
