/**
 * @file
 * Global-depolarizing noisy cost evaluation.
 *
 * The cheapest noisy backend: model the accumulated gate-level
 * depolarizing noise as a single global depolarizing channel,
 *     E_noisy(theta) = lambda (E_ideal(theta) - E_mixed) + E_mixed,
 *     lambda = (1 - p1)^{G1} (1 - p2)^{G2},
 * where G1/G2 are the circuit's 1q/2q gate counts and E_mixed is the
 * observable's maximally-mixed expectation Tr(H)/2^n. This "white
 * noise" approximation is standard for QAOA-type circuits and is what
 * lets the p=2 noisy sweeps of Fig. 4 run on a single core: one ideal
 * state-vector evaluation per point instead of a density matrix.
 * Accuracy vs. the exact channel is bounded in tests.
 */

#ifndef OSCAR_BACKEND_GLOBAL_DAMPING_H
#define OSCAR_BACKEND_GLOBAL_DAMPING_H

#include "src/backend/executor.h"
#include "src/backend/statevector_backend.h"
#include "src/quantum/noise_model.h"

namespace oscar {

/** Ideal evaluation followed by a global depolarizing contraction. */
class GlobalDampingCost : public CostFunction
{
  public:
    GlobalDampingCost(Circuit circuit, PauliSum hamiltonian,
                      NoiseModel noise);

    int numParams() const override { return ideal_.numParams(); }

    /** The contraction factor lambda applied to centered values. */
    double damping() const { return damping_; }

    /** The maximally-mixed expectation Tr(H)/2^n. */
    double mixedExpectation() const { return mixed_; }

    /** Replicable: wraps a replicable statevector evaluation. */
    std::unique_ptr<CostFunction> clone() const override;

    /** Forward kernel tuning to the inner statevector evaluation. */
    void
    configureKernel(const KernelOptions& options) override
    {
        ideal_.configureKernel(options);
    }

    std::vector<int>
    batchOrderHint() const override
    {
        return ideal_.batchOrderHint();
    }

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    StatevectorCost ideal_;
    double damping_;
    double mixed_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_GLOBAL_DAMPING_H
