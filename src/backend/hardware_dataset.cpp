#include "src/backend/hardware_dataset.h"

#include <cmath>
#include <stdexcept>

#include "src/backend/analytic_qaoa.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/cs/dct.h"

namespace oscar {

Landscape
syntheticHardwareLandscape(const Graph& graph, const GridSpec& grid,
                           const HardwareDatasetOptions& options)
{
    if (grid.rank() != 2)
        throw std::invalid_argument(
            "syntheticHardwareLandscape: need a rank-2 grid");

    AnalyticQaoaCost ideal(graph);
    NdArray values(grid.shape());
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = ideal.evaluate(grid.pointAt(i));

    // Contract toward the maximally-mixed energy.
    double mixed = 0.0;
    for (const Edge& e : graph.edges())
        mixed -= e.weight / 2.0;
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = options.damping * (values[i] - mixed) + mixed;

    const double scale =
        stats::stddev(values.flat()) > 0.0 ? stats::stddev(values.flat())
                                           : 1.0;
    Rng rng(options.seed);

    // Smooth drift: random energy in the lowest 4x4 DCT modes.
    if (options.correlatedNoise > 0.0) {
        const std::size_t nr = grid.shape()[0];
        const std::size_t nc = grid.shape()[1];
        Dct2d dct(nr, nc);
        NdArray coeffs({nr, nc});
        for (std::size_t kr = 0; kr < 4 && kr < nr; ++kr) {
            for (std::size_t kc = 0; kc < 4 && kc < nc; ++kc)
                coeffs[kr * nc + kc] = rng.normal();
        }
        NdArray drift = dct.inverse(coeffs);
        const double drift_std = stats::stddev(drift.flat());
        const double target = options.correlatedNoise * scale;
        if (drift_std > 0.0) {
            drift *= target / drift_std;
            values += drift;
        }
    }

    // White per-point noise.
    if (options.whiteNoise > 0.0) {
        for (std::size_t i = 0; i < values.size(); ++i)
            values[i] += rng.normal(0.0, options.whiteNoise * scale);
    }
    return Landscape(grid, std::move(values));
}

} // namespace oscar
