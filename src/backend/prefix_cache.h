/**
 * @file
 * LRU store of statevector checkpoints keyed by resolved prefix angles.
 *
 * A checkpoint is the exact amplitude vector produced by replaying a
 * compiled schedule's ops [0, depth) under some parameter binding. The
 * key is (depth, bit patterns of the parameter values the prefix
 * depends on), so two bindings that agree bitwise on the prefix
 * parameters share the checkpoint — the axis-major sweeps emitted by
 * the landscape sampler then hit the cache both within a batch and
 * across batches of the same sweep.
 *
 * Checkpoints are bit-exact, never approximate: replaying from a
 * checkpoint executes the identical kernel sequence a from-scratch run
 * would, so cache state can change performance but never values (the
 * determinism argument of the batched backends rests on this).
 *
 * Eviction is least-recently-used under a caller-set byte budget. The
 * cache is per evaluator replica and not thread-safe; engine clones
 * each start with an empty cache.
 */

#ifndef OSCAR_BACKEND_PREFIX_CACHE_H
#define OSCAR_BACKEND_PREFIX_CACHE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/common/aligned.h"
#include "src/quantum/gate.h"

namespace oscar {

/** Identifies a checkpoint: prefix depth + prefix parameter bits. */
struct PrefixKey
{
    std::size_t depth = 0;
    std::vector<std::uint64_t> paramBits;

    bool operator==(const PrefixKey& other) const
    {
        return depth == other.depth && paramBits == other.paramBits;
    }
};

/** LRU checkpoint store under a byte budget. */
class PrefixCache
{
  public:
    explicit PrefixCache(std::size_t budget_bytes);

    /** Drop everything and set a new budget. */
    void setBudget(std::size_t budget_bytes);

    std::size_t budgetBytes() const { return budgetBytes_; }
    std::size_t sizeBytes() const { return sizeBytes_; }
    std::size_t numEntries() const { return index_.size(); }

    /**
     * Cache effectiveness counters, cumulative since construction
     * (clear() drops entries, not counters). Surfaced through
     * CostFunction::kernelStats -> BatchHandle::stats -> OscarResult.
     */
    std::size_t hits() const { return hits_; }
    std::size_t lookups() const { return lookups_; }
    std::size_t evictions() const { return evictions_; }

    /**
     * Look up a checkpoint; returns nullptr on miss. The returned
     * pointer is valid until the next insert/clear.
     */
    const AlignedVector<cplx>* find(const PrefixKey& key);

    /**
     * Store a checkpoint (no-op if the key is present or one entry
     * exceeds the whole budget). Evicts LRU entries to fit.
     */
    void insert(const PrefixKey& key, const AlignedVector<cplx>& amps);

    void clear();

  private:
    struct Entry
    {
        PrefixKey key;
        AlignedVector<cplx> amps;
    };

    struct KeyHash
    {
        std::size_t operator()(const PrefixKey& key) const
        {
            // FNV-1a over depth and parameter bit patterns.
            std::uint64_t h = 1469598103934665603ULL;
            auto mix = [&h](std::uint64_t v) {
                h = (h ^ v) * 1099511628211ULL;
            };
            mix(key.depth);
            for (std::uint64_t bits : key.paramBits)
                mix(bits);
            return static_cast<std::size_t>(h);
        }
    };

    static std::size_t entryBytes(const Entry& entry);

    std::size_t budgetBytes_;
    std::size_t sizeBytes_ = 0;
    std::size_t hits_ = 0;
    std::size_t lookups_ = 0;
    std::size_t evictions_ = 0;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<PrefixKey, std::list<Entry>::iterator, KeyHash>
        index_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_PREFIX_CACHE_H
