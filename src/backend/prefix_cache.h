/**
 * @file
 * Lock-free fixed-slot store of statevector checkpoints keyed by
 * resolved prefix angles.
 *
 * A checkpoint is the exact amplitude vector produced by replaying a
 * compiled schedule's ops [0, depth) under some parameter binding. The
 * key is (depth, bit patterns of the parameter values the prefix
 * depends on), so two bindings that agree bitwise on the prefix
 * parameters share the checkpoint — the axis-major sweeps emitted by
 * the landscape sampler then hit the cache both within a batch and
 * across batches of the same sweep.
 *
 * Checkpoints are bit-exact, never approximate: replaying from a
 * checkpoint executes the identical kernel sequence a from-scratch run
 * would, so cache state can change performance but never values (the
 * determinism argument of the batched — and now hybrid
 * process × thread — backends rests on this).
 *
 * Concurrency model (in the style of LTSmin's lock-free state storage,
 * dbs-ll.c): the cache is one fixed array of slots sized from the byte
 * budget at configure() time, and the hot path takes no mutex.
 *
 *  - A slot is claimed or reclaimed by CAS-locking its *sequence
 *    counter* (even = stable, odd = writer inside). Exactly one writer
 *    can own a slot at a time; losers move on (dropping an insert is
 *    always safe — a checkpoint is a pure accelerator).
 *  - Payloads are published seqlock-style: the writer bumps the
 *    sequence odd, fills tag + key + amplitudes with relaxed atomic
 *    stores, then bumps it even with a release store. A reader snapshots
 *    the sequence, copies the payload out, and accepts the copy only if
 *    the sequence is unchanged and even — a torn read is a miss, never
 *    a wrong value. All shared words are accessed through atomics
 *    (std::atomic_ref), so the scheme is clean under ThreadSanitizer.
 *  - When the probe window holds no empty slot, a clock hand picks the
 *    victim within that window (where lookups can still reach it):
 *    reclamation overwrites in place, so the table never grows past
 *    the slot count implied by the byte budget.
 *
 * Because a lookup verifies the *full* key (depth + every parameter
 * bit pattern) under the sequence check, a hit always returns the
 * bit-exact checkpoint for exactly that prefix: hash collisions and
 * races degrade hit rate, never values. Clones of an evaluator share
 * one cache through a shared_ptr (statevector_backend.h), which is
 * what makes a multi-threaded worker's checkpoint reuse compose across
 * its evaluator replicas.
 *
 * find()/insert() are safe to call concurrently with each other;
 * configure()/setBudget()/clear() are not — callers reconfigure only
 * while no evaluation is in flight (the engine configures evaluators
 * before submitting batches).
 */

#ifndef OSCAR_BACKEND_PREFIX_CACHE_H
#define OSCAR_BACKEND_PREFIX_CACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/aligned.h"
#include "src/quantum/gate.h"

namespace oscar {

/** Identifies a checkpoint: prefix depth + prefix parameter bits. */
struct PrefixKey
{
    std::size_t depth = 0;
    std::vector<std::uint64_t> paramBits;

    bool operator==(const PrefixKey& other) const
    {
        return depth == other.depth && paramBits == other.paramBits;
    }
};

/** Outcome of one PrefixCache::insert (per-evaluator accounting). */
struct PrefixInsertResult
{
    bool inserted = false;   ///< a new checkpoint was published
    bool reclaimed = false;  ///< it displaced a live checkpoint
};

/** Lock-free fixed-slot checkpoint store under a byte budget. */
class PrefixCache
{
  public:
    explicit PrefixCache(std::size_t budget_bytes);
    ~PrefixCache();

    PrefixCache(const PrefixCache&) = delete;
    PrefixCache& operator=(const PrefixCache&) = delete;

    /**
     * Size the slot table for checkpoints of `amp_count` amplitudes
     * whose keys hold at most `max_key_words` parameter-bit words.
     * Idempotent for unchanged shape; a shape change drops all
     * entries. NOT safe concurrently with find/insert.
     */
    void configure(std::size_t amp_count, std::size_t max_key_words);

    /** Drop everything and set a new budget. */
    void setBudget(std::size_t budget_bytes);

    std::size_t budgetBytes() const { return budgetBytes_; }

    /** Bytes the slot table occupies (0 until configured). */
    std::size_t sizeBytes() const;

    /** Slots in the table (0 until configured). */
    std::size_t numSlots() const { return numSlots_; }

    /** Occupied slots (approximate under concurrency). */
    std::size_t numEntries() const
    {
        return occupied_.load(std::memory_order_relaxed);
    }

    /**
     * Cache effectiveness counters, cumulative over every sharer since
     * construction (clear() drops entries, not counters). Per-evaluator
     * attribution lives in the evaluator itself (the return values of
     * find/insert), so per-replica deltas never double-count shared
     * traffic.
     */
    std::size_t hits() const
    {
        return hits_.load(std::memory_order_relaxed);
    }
    std::size_t lookups() const
    {
        return lookups_.load(std::memory_order_relaxed);
    }
    std::size_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    /**
     * Look up a checkpoint; on a hit copies the amplitudes into `out`
     * (resized to the configured amplitude count) and returns true.
     * On a miss returns false; `out` may then hold garbage from a
     * torn copy and must not be interpreted. Lock-free.
     */
    bool find(const PrefixKey& key, AlignedVector<cplx>& out);

    /**
     * Publish a checkpoint (dropped when the key is already present,
     * the table is unconfigured, the key exceeds the configured word
     * count, or every candidate slot is writer-locked). Reclaims a
     * clock-hand victim when the probe window is full. Lock-free.
     */
    PrefixInsertResult insert(const PrefixKey& key,
                              const AlignedVector<cplx>& amps);

    /** Drop all entries. NOT safe concurrently with find/insert. */
    void clear();

  private:
    /** Slots probed around the hash before falling back to the hand. */
    static constexpr std::size_t kProbeWindow = 8;

    /** Per-slot header; key words live in the flat keyWords_ array. */
    struct Slot
    {
        /** Seqlock word: even = stable, odd = writer inside. */
        std::atomic<std::uint32_t> seq{0};
        /** Key fingerprint; 0 = empty (fingerprints are forced != 0). */
        std::atomic<std::uint64_t> tag{0};
        /**
         * Checkpoint amplitudes (2*ampCount_ doubles, 64-byte
         * aligned), allocated the first time the slot is claimed and
         * reused across reclamations, so resident bytes track slots
         * *used* rather than the full budget. Install-once: set under
         * the slot's seq lock, freed only by non-concurrent ops.
         */
        std::atomic<double*> payload{nullptr};
    };

    static std::uint64_t fingerprint(const PrefixKey& key);

    std::uint64_t* keyWordsAt(std::size_t slot)
    {
        return keyWords_.data() + slot * keyStride_;
    }

    /**
     * Verify slot `s` holds exactly `key` (relaxed atomic reads; only
     * meaningful under a seq validation or the slot's seq lock).
     */
    bool keyMatches(std::size_t s, const PrefixKey& key);

    /**
     * Fill slot `s` (whose seq the caller CAS-locked to the odd value
     * `locked_seq`) with (tag, key, amps) and release it. Relaxed
     * atomic stores made visible by the final release store of the
     * sequence. Allocates the slot's payload buffer on first use.
     */
    void publishLocked(std::size_t s, std::uint32_t locked_seq,
                       std::uint64_t tag, const PrefixKey& key,
                       const AlignedVector<cplx>& amps);

    void releaseTable();

    std::size_t budgetBytes_;
    std::size_t ampCount_ = 0;      ///< amplitudes per checkpoint
    std::size_t keyStride_ = 0;     ///< u64 words per slot key region
    std::size_t payloadDoubles_ = 0; ///< doubles per slot payload
    std::size_t numSlots_ = 0;

    std::vector<Slot> slots_;
    std::vector<std::uint64_t> keyWords_; ///< [depth, len, bits...]/slot

    std::atomic<std::size_t> clockHand_{0};
    std::atomic<std::size_t> occupied_{0};
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> lookups_{0};
    std::atomic<std::size_t> evictions_{0};
};

} // namespace oscar

#endif // OSCAR_BACKEND_PREFIX_CACHE_H
