#include "src/backend/statevector_backend.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace oscar {

StatevectorCost::StatevectorCost(Circuit circuit, PauliSum hamiltonian)
    : circuit_(std::move(circuit)), compiled_(circuit_),
      hamiltonian_(std::move(hamiltonian)), state_(circuit_.numQubits()),
      cache_(kernel_.prefixCacheBudgetBytes)
{
    if (hamiltonian_.numQubits() != circuit_.numQubits())
        throw std::invalid_argument(
            "StatevectorCost: circuit/Hamiltonian qubit mismatch");
    if (hamiltonian_.isDiagonal())
        diagonal_ = hamiltonian_.diagonalTable();
    for (std::size_t level : compiled_.frontierLevels())
        levelParams_.push_back(compiled_.paramsUsedBefore(level));
}

StatevectorCost::StatevectorCost(const StatevectorCost& other)
    : CostFunction(other), circuit_(other.circuit_),
      compiled_(other.compiled_), levelParams_(other.levelParams_),
      hamiltonian_(other.hamiltonian_), diagonal_(other.diagonal_),
      state_(other.circuit_.numQubits()), kernel_(other.kernel_),
      cache_(other.kernel_.prefixCacheBudgetBytes)
{
}

StatevectorCost&
StatevectorCost::operator=(const StatevectorCost& other)
{
    CostFunction::operator=(other);
    circuit_ = other.circuit_;
    compiled_ = other.compiled_;
    levelParams_ = other.levelParams_;
    hamiltonian_ = other.hamiltonian_;
    diagonal_ = other.diagonal_;
    state_ = Statevector(other.circuit_.numQubits());
    kernel_ = other.kernel_;
    cache_.setBudget(other.kernel_.prefixCacheBudgetBytes);
    return *this;
}

std::unique_ptr<CostFunction>
StatevectorCost::clone() const
{
    return std::make_unique<StatevectorCost>(*this);
}

void
StatevectorCost::configureKernel(const KernelOptions& options)
{
    kernel_ = options;
    cache_.setBudget(options.prefixCacheBudgetBytes);
}

std::vector<int>
StatevectorCost::batchOrderHint() const
{
    return compiled_.parameterOrder();
}

const PrefixKey&
StatevectorCost::keyFor(std::size_t level_index,
                        const std::vector<double>& params)
{
    scratchKey_.depth = compiled_.frontierLevels()[level_index];
    scratchKey_.paramBits.clear();
    for (int j : levelParams_[level_index])
        scratchKey_.paramBits.push_back(
            std::bit_cast<std::uint64_t>(params[j]));
    return scratchKey_;
}

double
StatevectorCost::evaluatePoint(const std::vector<double>& params)
{
    const auto& levels = compiled_.frontierLevels();
    std::size_t pos = 0;

    if (!kernel_.prefixCache || levels.empty()) {
        state_.reset();
        compiled_.runRange(state_.amps().data(), state_.dim(), 0,
                           compiled_.numOps(), params.data());
    } else {
        // Resume from the deepest cached checkpoint whose prefix
        // parameters match this point bitwise.
        std::size_t start_level = levels.size();
        const std::vector<cplx>* checkpoint = nullptr;
        for (std::size_t l = levels.size(); l-- > 0;) {
            checkpoint = cache_.find(keyFor(l, params));
            if (checkpoint) {
                start_level = l;
                break;
            }
        }
        if (checkpoint) {
            state_.amps() = *checkpoint;
            pos = levels[start_level];
        } else {
            state_.reset();
            start_level = static_cast<std::size_t>(-1);
        }
        // Replay the remaining frontier segments, dropping a checkpoint
        // at each crossed level so later points (and later batches of
        // the same sweep) can resume there.
        for (std::size_t l = start_level + 1; l < levels.size(); ++l) {
            compiled_.runRange(state_.amps().data(), state_.dim(), pos,
                               levels[l], params.data());
            pos = levels[l];
            cache_.insert(keyFor(l, params), state_.amps());
        }
        compiled_.runRange(state_.amps().data(), state_.dim(), pos,
                           compiled_.numOps(), params.data());
    }

    if (!diagonal_.empty())
        return state_.expectationDiagonal(diagonal_);
    return hamiltonian_.expectation(state_);
}

double
StatevectorCost::evaluateImpl(const std::vector<double>& params,
                              std::uint64_t /*ordinal*/)
{
    return evaluatePoint(params);
}

void
StatevectorCost::evaluateBatchImpl(
    std::span<const std::vector<double>> points,
    std::uint64_t /*base_ordinal*/, double* out)
{
    // Deterministic backend: ordinals are irrelevant, and evaluatePoint
    // is cache-state-independent in value, so the batch is trivially
    // bit-identical to the scalar path. Consecutive points of an
    // axis-major batch resume from each other's checkpoints.
    for (std::size_t i = 0; i < points.size(); ++i)
        out[i] = evaluatePoint(points[i]);
}

} // namespace oscar
