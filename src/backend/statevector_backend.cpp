#include "src/backend/statevector_backend.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "src/obs/trace.h"

namespace oscar {

namespace {

/** Effective blocking window for a KernelOptions setting. */
int
resolvedBlockWindow(const KernelOptions& options, int num_qubits)
{
    const int window = options.blockWindow < 0 ? kDefaultBlockWindow
                                               : options.blockWindow;
    return window <= 0 ? 0 : std::min(window, num_qubits);
}

/** Effective super-kernel fusion window (0 = off, clamped). */
int
resolvedFuseWindow(const KernelOptions& options, int num_qubits)
{
    return options.fuseWindow <= 0
               ? 0
               : std::min(options.fuseWindow, num_qubits);
}

} // namespace

StatevectorCost::StatevectorCost(Circuit circuit, PauliSum hamiltonian)
    : circuit_(std::move(circuit)), compiled_(circuit_),
      hamiltonian_(std::move(hamiltonian)), state_(circuit_.numQubits()),
      table_(&kernels::kernelTable(kernel_.isa)),
      cache_(std::make_shared<PrefixCache>(kernel_.prefixCacheBudgetBytes))
{
    if (hamiltonian_.numQubits() != circuit_.numQubits())
        throw std::invalid_argument(
            "StatevectorCost: circuit/Hamiltonian qubit mismatch");
    if (hamiltonian_.isDiagonal())
        diagonal_ = hamiltonian_.diagonalTable();
    for (std::size_t level : compiled_.frontierLevels())
        levelParams_.push_back(compiled_.paramsUsedBefore(level));
    shapeCache();
}

StatevectorCost::StatevectorCost(const StatevectorCost& other)
    : CostFunction(other), circuit_(other.circuit_),
      compiled_(other.compiled_), levelParams_(other.levelParams_),
      hamiltonian_(other.hamiltonian_), diagonal_(other.diagonal_),
      state_(other.circuit_.numQubits()), kernel_(other.kernel_),
      table_(&kernels::kernelTable(other.kernel_.isa)),
      cache_(other.cache_)
{
}

StatevectorCost&
StatevectorCost::operator=(const StatevectorCost& other)
{
    CostFunction::operator=(other);
    circuit_ = other.circuit_;
    compiled_ = other.compiled_;
    levelParams_ = other.levelParams_;
    hamiltonian_ = other.hamiltonian_;
    diagonal_ = other.diagonal_;
    state_ = Statevector(other.circuit_.numQubits());
    kernel_ = other.kernel_;
    table_ = &kernels::kernelTable(other.kernel_.isa);
    cache_ = other.cache_;
    replay_ = {};
    cacheHits_ = 0;
    cacheLookups_ = 0;
    cacheEvictions_ = 0;
    batchedPoints_ = 0;
    batchedPauliPoints_ = 0;
    groupScratch_.clear();
    return *this;
}

std::size_t
StatevectorCost::maxKeyWords() const
{
    std::size_t words = 0;
    for (const auto& level : levelParams_)
        words = std::max(words, level.size());
    return words;
}

void
StatevectorCost::shapeCache()
{
    cache_->configure(state_.dim(), maxKeyWords());
}

std::unique_ptr<CostFunction>
StatevectorCost::clone() const
{
    return std::make_unique<StatevectorCost>(*this);
}

void
StatevectorCost::configureKernel(const KernelOptions& options)
{
    kernel_ = options;
    // The cache is shared with clones, so only a genuine budget change
    // drops it (setBudget clears); reconfiguring replicas with the
    // same options must not wipe each other's checkpoints.
    if (cache_->budgetBytes() != options.prefixCacheBudgetBytes)
        cache_->setBudget(options.prefixCacheBudgetBytes);
    shapeCache();
    table_ = &kernels::kernelTable(options.isa);
    const int window = resolvedBlockWindow(options, compiled_.numQubits());
    if (window != compiled_.blockWindow())
        compiled_.setBlockWindow(window);
    const int fuse = resolvedFuseWindow(options, compiled_.numQubits());
    if (fuse != compiled_.fuseWindow())
        compiled_.setFuseWindow(fuse);
}

std::vector<int>
StatevectorCost::batchOrderHint() const
{
    return compiled_.parameterOrder();
}

std::optional<DistPayload>
StatevectorCost::distPayload() const
{
    DistPayload payload;
    payload.circuit = &circuit_;
    payload.hamiltonian = &hamiltonian_;
    payload.kernel = kernel_;
    return payload;
}

KernelStats
StatevectorCost::kernelStats() const
{
    KernelStats stats;
    stats.cacheHits = cacheHits_;
    stats.cacheLookups = cacheLookups_;
    stats.cacheEvictions = cacheEvictions_;
    stats.isa = table_->isa;
    stats.blockedGroupRuns = replay_.blockedGroupRuns;
    stats.blockedOpsApplied = replay_.blockedOpsApplied;
    stats.batchedExpectationPoints = batchedPoints_;
    stats.fusedSuperKernels = replay_.fusedSuperKernels;
    stats.fusedOpsCollapsed = replay_.fusedOpsCollapsed;
    stats.batchedPauliPoints = batchedPauliPoints_;
    return stats;
}

const PrefixKey&
StatevectorCost::keyFor(std::size_t level_index,
                        const std::vector<double>& params)
{
    scratchKey_.depth = compiled_.frontierLevels()[level_index];
    scratchKey_.paramBits.clear();
    for (int j : levelParams_[level_index])
        scratchKey_.paramBits.push_back(
            std::bit_cast<std::uint64_t>(params[j]));
    return scratchKey_;
}

void
StatevectorCost::simulate(const std::vector<double>& params,
                          AlignedVector<cplx>& amps)
{
    const std::size_t dim = state_.dim();
    const auto& levels = compiled_.frontierLevels();
    std::size_t pos = 0;

    auto reset = [&] {
        amps.assign(dim, cplx(0.0, 0.0));
        amps[0] = 1.0;
    };

    if (!kernel_.prefixCache || levels.empty()) {
        reset();
        obs::ScopedSpan span(obs::SpanCategory::Replay, "replay", 0,
                             compiled_.numOps());
        compiled_.runRange(amps.data(), dim, 0, compiled_.numOps(),
                           params.data(), *table_, &replay_);
        return;
    }
    // Resume from the deepest cached checkpoint whose prefix
    // parameters match this point bitwise; find() copies the
    // checkpoint straight into `amps` (seqlock-validated, so a copy
    // torn by a concurrent reclaim reads as a miss, never as values).
    std::size_t start_level = static_cast<std::size_t>(-1);
    bool resumed = false;
    for (std::size_t l = levels.size(); l-- > 0;) {
        ++cacheLookups_;
        if (cache_->find(keyFor(l, params), amps)) {
            ++cacheHits_;
            start_level = l;
            resumed = true;
            break;
        }
    }
    if (obs::tracingEnabled()) {
        const std::uint64_t now = obs::Tracer::nowNs();
        obs::Tracer::global().record(
            obs::SpanCategory::Cache, resumed ? "hit" : "miss", now,
            now, resumed ? start_level : levels.size(), dim);
    }
    if (resumed)
        pos = levels[start_level];
    else
        reset();
    // Replay the remaining frontier segments, dropping a checkpoint
    // at each crossed level so later points (and later batches of
    // the same sweep) can resume there.
    for (std::size_t l = start_level + 1; l < levels.size(); ++l) {
        {
            obs::ScopedSpan span(obs::SpanCategory::Replay, "segment",
                                 pos, levels[l]);
            compiled_.runRange(amps.data(), dim, pos, levels[l],
                               params.data(), *table_, &replay_);
        }
        pos = levels[l];
        if (cache_->insert(keyFor(l, params), amps).reclaimed)
            ++cacheEvictions_;
    }
    obs::ScopedSpan span(obs::SpanCategory::Replay, "tail", pos,
                         compiled_.numOps());
    compiled_.runRange(amps.data(), dim, pos, compiled_.numOps(),
                       params.data(), *table_, &replay_);
}

double
StatevectorCost::evaluatePoint(const std::vector<double>& params)
{
    simulate(params, state_.amps());
    if (!diagonal_.empty())
        return table_->expectationDiagonal(
            state_.amps().data(), diagonal_.data(), state_.dim());
    // Non-diagonal Hamiltonians contract term by term through the
    // same pinned kernel table as the simulation itself.
    return hamiltonian_.expectation(state_, *table_);
}

std::size_t
StatevectorCost::maxExpectationGroup() const
{
    // A group holds one scratch statevector per point; cap the
    // footprint at 64 MiB per replica on top of the hard fan-in limit
    // of the fused kernel pass.
    constexpr std::size_t kScratchBudget = std::size_t{64} << 20;
    const std::size_t per_state = state_.dim() * sizeof(cplx);
    return std::min(kMaxExpectationGroup,
                    std::max<std::size_t>(std::size_t{1},
                                          kScratchBudget / per_state));
}

double
StatevectorCost::evaluateImpl(const std::vector<double>& params,
                              std::uint64_t /*ordinal*/)
{
    return evaluatePoint(params);
}

void
StatevectorCost::evaluateBatchImpl(
    std::span<const std::vector<double>> points,
    std::uint64_t /*base_ordinal*/, double* out)
{
    // Deterministic backend: ordinals are irrelevant, and simulation
    // is cache-state-independent in value, so the batch is trivially
    // bit-identical to the scalar path. Consecutive points of an
    // axis-major batch resume from each other's checkpoints; runs of
    // points that differ only past the deepest checkpoint level are
    // additionally folded into one fused expectation pass — the
    // diagonal-table kernel for diagonal Hamiltonians, the batched
    // Pauli kernel per term otherwise (both value-neutral: the
    // per-point accumulation is unchanged).
    const std::size_t max_group = maxExpectationGroup();
    if (!kernel_.batchedExpectation || max_group < 2) {
        for (std::size_t i = 0; i < points.size(); ++i)
            out[i] = evaluatePoint(points[i]);
        return;
    }
    const auto& levels = compiled_.frontierLevels();
    const std::size_t suffix_level =
        levels.empty() ? compiled_.numOps() : levels.back();
    const cplx* group[kMaxExpectationGroup];
    std::size_t i = 0;
    while (i < points.size()) {
        std::size_t j = i + 1;
        while (j < points.size() && j - i < max_group &&
               compiled_.sharedPrefixLength(points[i], points[j]) >=
                   suffix_level)
            ++j;
        if (j - i < 2) {
            out[i] = evaluatePoint(points[i]);
            i = j;
            continue;
        }
        if (groupScratch_.size() < j - i)
            groupScratch_.resize(j - i);
        for (std::size_t m = i; m < j; ++m) {
            simulate(points[m], groupScratch_[m - i]);
            group[m - i] = groupScratch_[m - i].data();
        }
        if (!diagonal_.empty()) {
            table_->expectationDiagonalBatch(
                group, j - i, diagonal_.data(), state_.dim(), out + i);
            batchedPoints_ += j - i;
        } else {
            hamiltonian_.expectationBatch(group, j - i, state_.dim(),
                                          *table_, out + i);
            batchedPauliPoints_ += j - i;
        }
        i = j;
    }
}

} // namespace oscar
