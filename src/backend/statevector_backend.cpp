#include "src/backend/statevector_backend.h"

#include <stdexcept>

namespace oscar {

StatevectorCost::StatevectorCost(Circuit circuit, PauliSum hamiltonian)
    : circuit_(std::move(circuit)), hamiltonian_(std::move(hamiltonian)),
      state_(circuit_.numQubits())
{
    if (hamiltonian_.numQubits() != circuit_.numQubits())
        throw std::invalid_argument(
            "StatevectorCost: circuit/Hamiltonian qubit mismatch");
    if (hamiltonian_.isDiagonal())
        diagonal_ = hamiltonian_.diagonalTable();
}

std::unique_ptr<CostFunction>
StatevectorCost::clone() const
{
    return std::make_unique<StatevectorCost>(*this);
}

double
StatevectorCost::evaluateImpl(const std::vector<double>& params,
                              std::uint64_t /*ordinal*/)
{
    state_.reset();
    state_.run(circuit_, params);
    if (!diagonal_.empty())
        return state_.expectationDiagonal(diagonal_);
    return hamiltonian_.expectation(state_);
}

} // namespace oscar
