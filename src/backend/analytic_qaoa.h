/**
 * @file
 * Closed-form depth-1 QAOA-MaxCut cost evaluation.
 *
 * For p=1 QAOA on an Ising cost function the edge expectations have a
 * classical closed form (Wang et al., PRA 97, 022304 (2018); Ozaeta et
 * al. (2020) for the weighted case). With our conventions
 * (see ansatz/qaoa.h: U_C = exp(-i gamma C), C = sum w (1 - ZZ) / 2,
 * U_B = exp(-i beta sum X)):
 *
 *   <Z_u Z_v> = -(sin 4b sin(g w_uv) / 2) (P_u + P_v)
 *               -(sin^2 2b / 2) (P_plus - P_minus)
 *   P_u     = prod_{k != u,v} cos(g w_uk)
 *   P_plus  = prod_{k != u,v} cos(g (w_uk + w_vk))
 *   P_minus = prod_{k != u,v} cos(g (w_uk - w_vk))
 *
 * where w_xk = 0 for non-edges. The evaluator returns the energy
 * <H_C> = sum (w/2)(<ZZ> - 1), i.e. minus the expected cut.
 *
 * Depolarizing noise is modeled with the standard Pauli-twirl
 * light-cone damping: each edge expectation is multiplied by
 * (1-p1)^{g1} (1-p2)^{g2} with g1/g2 the 1q/2q gate counts in the
 * observable's backward causal cone. This is what lets the library
 * reproduce the paper's 16-30 qubit noisy sweeps (Fig. 4) without a
 * 2^30 state vector; accuracy vs. the exact density-matrix simulation
 * is established in tests/test_analytic_qaoa.cpp.
 */

#ifndef OSCAR_BACKEND_ANALYTIC_QAOA_H
#define OSCAR_BACKEND_ANALYTIC_QAOA_H

#include "src/backend/executor.h"
#include "src/graph/graph.h"
#include "src/quantum/noise_model.h"

namespace oscar {

/** Closed-form depth-1 QAOA MaxCut cost (params = [beta, gamma]). */
class AnalyticQaoaCost : public CostFunction
{
  public:
    /** Ideal evaluator. */
    explicit AnalyticQaoaCost(const Graph& graph);

    /** Evaluator with light-cone depolarizing damping. */
    AnalyticQaoaCost(const Graph& graph, const NoiseModel& noise);

    int numParams() const override { return 2; }

    /** <Z_u Z_v> for edge index e at (beta, gamma), noise included. */
    double edgeExpectation(std::size_t edge_index, double beta,
                           double gamma) const;

    /** Replicable: evaluation is a pure closed-form function. */
    std::unique_ptr<CostFunction> clone() const override;

    void configureKernel(const KernelOptions& options) override;

    /**
     * The per-edge neighborhood products depend only on gamma, so
     * batches should hold gamma fixed as long as possible: gamma
     * (param 1) slowest, beta (param 0) fastest.
     */
    std::vector<int> batchOrderHint() const override { return {1, 0}; }

    /**
     * Gamma-memo hit counters, reported in prefix-cache terms (the
     * memo is the closed form's one-entry analogue of a checkpoint
     * cache; it is never evicted, only replaced), plus the number of
     * points folded into batched same-gamma energy passes.
     */
    KernelStats
    kernelStats() const override
    {
        KernelStats stats;
        stats.cacheHits = memoHits_;
        stats.cacheLookups = memoLookups_;
        stats.batchedExpectationPoints = batchedPoints_;
        return stats;
    }

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

    void evaluateBatchImpl(std::span<const std::vector<double>> points,
                           std::uint64_t base_ordinal,
                           double* out) override;

  private:
    /**
     * Gamma-only factors of one edge expectation: the neighborhood
     * cosine products and sin(gamma w) of the closed form above.
     */
    struct EdgeGammaFactors
    {
        double sumUV;  ///< P_u + P_v
        double diff;   ///< P_plus - P_minus
        double sinGW;  ///< sin(gamma w_uv)
    };

    void computeDamping(const NoiseModel& noise);

    /** Gamma-only factors of one edge. */
    EdgeGammaFactors edgeGammaFactors(std::size_t edge_index,
                                      double gamma) const;

    /** Fill `out` with every edge's gamma-only factors. */
    void computeGammaFactors(double gamma,
                             std::vector<EdgeGammaFactors>& out) const;

    /** Energy at (beta, gamma) given that gamma's factor table. */
    double energyFromFactors(double beta,
                             const std::vector<EdgeGammaFactors>& factors)
        const;

    /**
     * Batched analogue of energyFromFactors: one pass over the edge
     * factor table evaluating every beta of a same-gamma run,
     * out[b] = energyFromFactors(betas[b], factors) bit for bit (the
     * per-beta accumulation order over edges is unchanged; batching
     * only shares the factor-table traffic — the closed form's
     * equivalent of kernels::expectationDiagonalBatch).
     */
    void energiesFromFactorsBatch(
        const double* betas, std::size_t count,
        const std::vector<EdgeGammaFactors>& factors, double* out) const;

    /**
     * Factor table for `gamma`, memoized on the last distinct gamma
     * (the shared-prefix analogue for the closed form: an axis-major
     * sweep recomputes the table once per gamma row). Value-neutral:
     * the table holds exactly what a fresh computation produces.
     */
    const std::vector<EdgeGammaFactors>& factorsFor(double gamma);

    Graph graph_;
    /** Per-edge noise damping factor for <Z_u Z_v>. */
    std::vector<double> damping_;

    KernelOptions kernel_;
    bool memoValid_ = false;
    double memoGamma_ = 0.0;
    std::vector<EdgeGammaFactors> memo_;
    std::size_t memoHits_ = 0;
    std::size_t memoLookups_ = 0;
    std::size_t batchedPoints_ = 0;
};

} // namespace oscar

#endif // OSCAR_BACKEND_ANALYTIC_QAOA_H
