/**
 * @file
 * Monte-Carlo (quantum trajectory) noisy cost evaluation.
 *
 * Depolarizing noise is unraveled into stochastic Pauli insertions:
 * after every 1-qubit gate, with probability p1 a uniformly random
 * X/Y/Z is applied to its qubit; after every 2-qubit gate, with
 * probability p2 a uniformly random non-identity 2-qubit Pauli is
 * applied. Averaging over trajectories converges to the exact
 * depolarizing channel (validated against DensityCost in tests).
 *
 * Memory scales like the state vector, so this is the noisy backend
 * for qubit counts beyond the density matrix's reach.
 */

#ifndef OSCAR_BACKEND_TRAJECTORY_BACKEND_H
#define OSCAR_BACKEND_TRAJECTORY_BACKEND_H

#include "src/backend/executor.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/circuit.h"
#include "src/quantum/noise_model.h"
#include "src/quantum/statevector.h"

namespace oscar {

/** Trajectory-averaged noisy expectation value. */
class TrajectoryCost : public CostFunction
{
  public:
    TrajectoryCost(Circuit circuit, PauliSum hamiltonian, NoiseModel noise,
                   std::size_t num_trajectories, std::uint64_t seed);

    int numParams() const override { return circuit_.numParams(); }

    /**
     * Replicable: trajectory randomness is keyed by evaluation ordinal
     * so replicas reproduce the parent's streams.
     */
    std::unique_ptr<CostFunction> clone() const override;

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    /** Run one noisy trajectory and return its expectation value. */
    double runTrajectory(const std::vector<double>& params, Rng& rng);

    Circuit circuit_;
    PauliSum hamiltonian_;
    NoiseModel noise_;
    std::size_t numTrajectories_;
    std::vector<double> diagonal_;
    Statevector state_;
    std::uint64_t seed_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_TRAJECTORY_BACKEND_H
