/**
 * @file
 * Exact noisy cost evaluation via density-matrix simulation.
 *
 * Models gate-level depolarizing noise exactly (channel after every
 * gate) plus optional readout errors for diagonal Hamiltonians. This
 * backend is the ground truth the trajectory and analytic backends are
 * validated against; practical up to ~10 qubits.
 */

#ifndef OSCAR_BACKEND_DENSITY_BACKEND_H
#define OSCAR_BACKEND_DENSITY_BACKEND_H

#include "src/backend/executor.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/circuit.h"
#include "src/quantum/density_matrix.h"
#include "src/quantum/noise_model.h"

namespace oscar {

/** Tr(rho(theta) H) with exact depolarizing + readout noise. */
class DensityCost : public CostFunction
{
  public:
    DensityCost(Circuit circuit, PauliSum hamiltonian, NoiseModel noise);

    int numParams() const override { return circuit_.numParams(); }

    const NoiseModel& noise() const { return noise_; }

    /** Replicable: the density-matrix scratch is per-instance. */
    std::unique_ptr<CostFunction> clone() const override;

    /**
     * Forward the kernel ISA to the density-matrix simulator (the
     * cache/blocking knobs have no density-path equivalent: noise
     * channels interleave per gate, so there is nothing to checkpoint
     * or block across).
     */
    void
    configureKernel(const KernelOptions& options) override
    {
        rho_.setKernelIsa(options.isa);
    }

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    Circuit circuit_;
    /** Unfused schedule: ops map 1:1 onto noisy source gates. */
    CompiledCircuit compiled_;
    PauliSum hamiltonian_;
    NoiseModel noise_;
    std::vector<double> diagonal_; // readout-smeared when applicable
    DensityMatrix rho_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_DENSITY_BACKEND_H
