/**
 * @file
 * Finite-shot cost evaluation with true multinomial sampling.
 *
 * ShotNoiseCost (executor.h) models shot noise as Gaussian around the
 * exact expectation; this backend performs the actual experiment the
 * paper describes ("for each point on the landscape, we derive it by
 * running the quantum circuit number-of-shots many times and
 * measuring"): run the state vector, draw `shots` basis-state samples,
 * optionally flip each measured bit through the readout-error channel,
 * and average the diagonal observable over the outcomes. Requires a
 * diagonal Hamiltonian (as for QAOA/SK; Pauli grouping for general
 * observables is out of scope).
 */

#ifndef OSCAR_BACKEND_SAMPLED_BACKEND_H
#define OSCAR_BACKEND_SAMPLED_BACKEND_H

#include "src/backend/executor.h"
#include "src/hamiltonian/pauli_sum.h"
#include "src/quantum/circuit.h"
#include "src/quantum/compiled_circuit.h"
#include "src/quantum/noise_model.h"
#include "src/quantum/statevector.h"

namespace oscar {

/** Empirical expectation from sampled measurement outcomes. */
class SampledCost : public CostFunction
{
  public:
    /**
     * @param circuit     ansatz circuit (ideal execution)
     * @param hamiltonian diagonal observable
     * @param shots       measurement shots per evaluation
     * @param noise       readout error rates (gate errors ignored here;
     *                    compose with noisy backends for those)
     * @param seed        sampling seed
     */
    SampledCost(Circuit circuit, PauliSum hamiltonian, std::size_t shots,
                NoiseModel noise, std::uint64_t seed);

    int numParams() const override { return circuit_.numParams(); }

    std::size_t shots() const { return shots_; }

    /**
     * Replicable: sampling randomness is keyed by evaluation ordinal
     * (Rng(mixSeed(seed, ordinal))), not by a rolling generator, so
     * replicas reproduce the parent's streams.
     */
    std::unique_ptr<CostFunction> clone() const override;

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    Circuit circuit_;
    CompiledCircuit compiled_; ///< circuit lowered once, bound per point
    std::vector<double> diagonal_;
    std::size_t shots_;
    NoiseModel noise_;
    Statevector state_;
    std::uint64_t seed_;
};

} // namespace oscar

#endif // OSCAR_BACKEND_SAMPLED_BACKEND_H
