/**
 * @file
 * A minimal dense N-dimensional array of doubles.
 *
 * NdArray is the common currency for landscapes, DCT coefficient
 * tensors, and sampled grids. It stores data in row-major
 * (C-contiguous) order, mirroring the layout assumed by the separable
 * DCT, the reshape-based dimensionality reduction of Section 4.2.4,
 * and the flattening conventions of the NRMSE metric.
 */

#ifndef OSCAR_COMMON_NDARRAY_H
#define OSCAR_COMMON_NDARRAY_H

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace oscar {

/** Dense row-major N-dimensional array of doubles. */
class NdArray
{
  public:
    /** Empty (rank-0, size-0) array. */
    NdArray() = default;

    /** Zero-initialized array with the given shape. */
    explicit NdArray(std::vector<std::size_t> shape);

    /** Array with the given shape wrapping existing flat data. */
    NdArray(std::vector<std::size_t> shape, std::vector<double> data);

    /** Total number of elements. */
    std::size_t size() const { return data_.size(); }

    /** Number of dimensions. */
    std::size_t rank() const { return shape_.size(); }

    const std::vector<std::size_t>& shape() const { return shape_; }

    /** Extent of dimension d. */
    std::size_t dim(std::size_t d) const { return shape_[d]; }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    std::vector<double>& flat() { return data_; }
    const std::vector<double>& flat() const { return data_; }

    double& operator[](std::size_t i) { return data_[i]; }
    double operator[](std::size_t i) const { return data_[i]; }

    /** Element access by multi-index. */
    double& at(std::initializer_list<std::size_t> idx);
    double at(std::initializer_list<std::size_t> idx) const;

    /** Row-major flat offset of a multi-index. */
    std::size_t offset(const std::vector<std::size_t>& idx) const;

    /** Inverse of offset(): unravel a flat index into a multi-index. */
    std::vector<std::size_t> unravel(std::size_t flat_index) const;

    /**
     * Reinterpret the data with a new shape (same total size). This is
     * the "concatenation" operation of Section 4.2.4: a (a,b,c,d)
     * landscape reshaped to (a*b, c*d) for 2-D compressed sensing.
     */
    NdArray reshape(std::vector<std::size_t> new_shape) const;

    /** Elementwise in-place addition; shapes must match. */
    NdArray& operator+=(const NdArray& other);

    /** Elementwise in-place subtraction; shapes must match. */
    NdArray& operator-=(const NdArray& other);

    /** Multiply every element by a scalar. */
    NdArray& operator*=(double scale);

    /** Fill with a constant. */
    void fill(double value);

    /** Minimum element (requires non-empty). */
    double min() const;

    /** Maximum element (requires non-empty). */
    double max() const;

  private:
    std::vector<std::size_t> shape_;
    std::vector<double> data_;
};

} // namespace oscar

#endif // OSCAR_COMMON_NDARRAY_H
