#include "src/common/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace oscar {

namespace {

std::uint64_t
splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_)
        s = splitmix64(sm);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t x;
    do {
        x = (*this)();
    } while (x >= limit);
    return x % n;
}

double
Rng::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    hasSpare_ = true;
    return u * factor;
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::vector<std::size_t>
Rng::sampleWithoutReplacement(std::size_t n, std::size_t k)
{
    assert(k <= n);
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = i + uniformInt(n - i);
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

Rng
Rng::split()
{
    return Rng((*this)());
}

std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b)
{
    std::uint64_t state = a + 0x9e3779b97f4a7c15ULL * (b + 1);
    std::uint64_t z = splitmix64(state);
    return z ^ splitmix64(state);
}

} // namespace oscar
