#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace oscar {
namespace stats {

double
mean(const std::vector<double>& v)
{
    assert(!v.empty());
    return std::accumulate(v.begin(), v.end(), 0.0) / v.size();
}

double
variance(const std::vector<double>& v)
{
    assert(!v.empty());
    const double m = mean(v);
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return acc / v.size();
}

double
stddev(const std::vector<double>& v)
{
    return std::sqrt(variance(v));
}

double
quantile(std::vector<double> v, double q)
{
    assert(!v.empty());
    assert(q >= 0.0 && q <= 1.0);
    std::sort(v.begin(), v.end());
    const double pos = q * (v.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - lo;
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double
median(const std::vector<double>& v)
{
    return quantile(v, 0.5);
}

double
iqr(const std::vector<double>& v)
{
    return quantile(v, 0.75) - quantile(v, 0.25);
}

double
rmse(const std::vector<double>& a, const std::vector<double>& b)
{
    assert(a.size() == b.size());
    assert(!a.empty());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc / a.size());
}

double
pearson(const std::vector<double>& a, const std::vector<double>& b)
{
    assert(a.size() == b.size());
    assert(a.size() >= 2);
    const double ma = mean(a);
    const double mb = mean(b);
    double num = 0.0, da = 0.0, db = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        num += (a[i] - ma) * (b[i] - mb);
        da += (a[i] - ma) * (a[i] - ma);
        db += (b[i] - mb) * (b[i] - mb);
    }
    const double denom = std::sqrt(da * db);
    return denom == 0.0 ? 0.0 : num / denom;
}

} // namespace stats
} // namespace oscar
