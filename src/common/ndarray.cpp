#include "src/common/ndarray.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace oscar {

namespace {

std::size_t
shapeSize(const std::vector<std::size_t>& shape)
{
    return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                           std::multiplies<>());
}

} // namespace

NdArray::NdArray(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shapeSize(shape_), 0.0)
{
}

NdArray::NdArray(std::vector<std::size_t> shape, std::vector<double> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    if (shapeSize(shape_) != data_.size())
        throw std::invalid_argument("NdArray: shape does not match data size");
}

std::size_t
NdArray::offset(const std::vector<std::size_t>& idx) const
{
    assert(idx.size() == shape_.size());
    std::size_t off = 0;
    for (std::size_t d = 0; d < shape_.size(); ++d) {
        assert(idx[d] < shape_[d]);
        off = off * shape_[d] + idx[d];
    }
    return off;
}

std::vector<std::size_t>
NdArray::unravel(std::size_t flat_index) const
{
    assert(flat_index < size());
    std::vector<std::size_t> idx(shape_.size());
    for (std::size_t d = shape_.size(); d-- > 0;) {
        idx[d] = flat_index % shape_[d];
        flat_index /= shape_[d];
    }
    return idx;
}

double&
NdArray::at(std::initializer_list<std::size_t> idx)
{
    return data_[offset(std::vector<std::size_t>(idx))];
}

double
NdArray::at(std::initializer_list<std::size_t> idx) const
{
    return data_[offset(std::vector<std::size_t>(idx))];
}

NdArray
NdArray::reshape(std::vector<std::size_t> new_shape) const
{
    if (shapeSize(new_shape) != size())
        throw std::invalid_argument("NdArray::reshape: size mismatch");
    return NdArray(std::move(new_shape), data_);
}

NdArray&
NdArray::operator+=(const NdArray& other)
{
    assert(shape_ == other.shape_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

NdArray&
NdArray::operator-=(const NdArray& other)
{
    assert(shape_ == other.shape_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

NdArray&
NdArray::operator*=(double scale)
{
    for (auto& x : data_)
        x *= scale;
    return *this;
}

void
NdArray::fill(double value)
{
    std::fill(data_.begin(), data_.end(), value);
}

double
NdArray::min() const
{
    assert(!data_.empty());
    return *std::min_element(data_.begin(), data_.end());
}

double
NdArray::max() const
{
    assert(!data_.empty());
    return *std::max_element(data_.begin(), data_.end());
}

} // namespace oscar
