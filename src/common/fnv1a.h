/**
 * @file
 * FNV-1a 64-bit hashing, the system's content address.
 *
 * The distributed wire format stamps every CostSpec with the FNV-1a
 * hash of its canonical encoding (src/dist/wire.cpp), the landscape
 * store keys containers by that same hash plus a canonical GridSpec
 * hash (src/store/landscape_store.cpp), and the serve daemon folds
 * both into its request-dedupe key (src/serve/server.cpp). One
 * implementation keeps every layer's addresses mutually comparable.
 */

#ifndef OSCAR_COMMON_FNV1A_H
#define OSCAR_COMMON_FNV1A_H

#include <cstdint>
#include <span>

namespace oscar {

constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

/** Fold more bytes into a running FNV-1a hash. */
inline std::uint64_t
fnv1aAppend(std::uint64_t h, std::span<const std::uint8_t> data)
{
    for (std::uint8_t b : data) {
        h ^= b;
        h *= kFnv1aPrime;
    }
    return h;
}

/** FNV-1a over a byte span. */
inline std::uint64_t
fnv1a(std::span<const std::uint8_t> data)
{
    return fnv1aAppend(kFnv1aOffsetBasis, data);
}

/** Mix one 64-bit word into a running FNV-1a hash (little-endian). */
inline std::uint64_t
fnv1aAppendU64(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= static_cast<std::uint8_t>(v >> (8 * i));
        h *= kFnv1aPrime;
    }
    return h;
}

} // namespace oscar

#endif // OSCAR_COMMON_FNV1A_H
