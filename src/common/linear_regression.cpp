#include "src/common/linear_regression.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace oscar {

LinearFit
fitLinear(const std::vector<double>& x, const std::vector<double>& y)
{
    assert(x.size() == y.size());
    assert(x.size() >= 2);
    const double n = static_cast<double>(x.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        sx += x[i];
        sy += y[i];
        sxx += x[i] * x[i];
        sxy += x[i] * y[i];
    }
    const double denom = n * sxx - sx * sx;
    if (std::abs(denom) < 1e-300)
        throw std::invalid_argument("fitLinear: constant x values");
    LinearFit fit;
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
    return fit;
}

std::vector<double>
fitPolynomial(const std::vector<double>& x, const std::vector<double>& y,
              std::size_t degree)
{
    assert(x.size() == y.size());
    const std::size_t n = degree + 1;
    assert(x.size() >= n);

    // Normal equations: (V^T V) c = V^T y with Vandermonde V.
    std::vector<double> ata(n * n, 0.0);
    std::vector<double> aty(n, 0.0);
    for (std::size_t k = 0; k < x.size(); ++k) {
        std::vector<double> pow(n);
        pow[0] = 1.0;
        for (std::size_t j = 1; j < n; ++j)
            pow[j] = pow[j - 1] * x[k];
        for (std::size_t i = 0; i < n; ++i) {
            aty[i] += pow[i] * y[k];
            for (std::size_t j = 0; j < n; ++j)
                ata[i * n + j] += pow[i] * pow[j];
        }
    }
    return solveDense(std::move(ata), std::move(aty), n);
}

double
evalPolynomial(const std::vector<double>& coeffs, double x)
{
    double result = 0.0;
    for (std::size_t i = coeffs.size(); i-- > 0;)
        result = result * x + coeffs[i];
    return result;
}

std::vector<double>
solveDense(std::vector<double> a, std::vector<double> b, std::size_t n)
{
    assert(a.size() == n * n);
    assert(b.size() == n);
    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r) {
            if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col]))
                pivot = r;
        }
        if (std::abs(a[pivot * n + col]) < 1e-12)
            throw std::runtime_error("solveDense: singular system");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a[col * n + c], a[pivot * n + c]);
            std::swap(b[col], b[pivot]);
        }
        // Eliminate below.
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a[r * n + col] / a[col * n + col];
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r * n + c] -= factor * a[col * n + c];
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    std::vector<double> x(n, 0.0);
    for (std::size_t r = n; r-- > 0;) {
        double acc = b[r];
        for (std::size_t c = r + 1; c < n; ++c)
            acc -= a[r * n + c] * x[c];
        x[r] = acc / a[r * n + r];
    }
    return x;
}

} // namespace oscar
