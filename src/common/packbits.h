/**
 * @file
 * Shared PackBits / byte-plane compression codec.
 *
 * Hoisted from the landscape store's archive container (src/store)
 * so the distributed wire layer (src/dist) can reuse the exact same
 * bit-exact, size-bounded compression for frame payloads — one codec,
 * two containers, like the CRC-32 hoist in src/common/crc32.h.
 *
 * PackBits is classic run-length coding: a control byte c in 0..127
 * announces c+1 literal bytes, c in 129..255 announces 257-c repeats
 * of the next byte, and 128 is unused. Repeat runs only pay off from
 * length 3. The byte-plane split reorders an 8-byte-record array
 * (f64 values, u64 ordinals) so plane j holds byte j of every record:
 * the slowly-varying high exponent bytes of smooth landscape data
 * become long runs PackBits can collapse.
 *
 * Compression is always optional and bounded: pickSmallest() returns
 * Raw whenever neither codec strictly shrinks the input, so callers
 * never pay for incompressible data, and decoding is bit-exact by
 * construction (round-trip tested against random and structured
 * vectors in both the store and wire suites).
 */

#ifndef OSCAR_COMMON_PACKBITS_H
#define OSCAR_COMMON_PACKBITS_H

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace oscar {
namespace packbits {

/** Malformed compressed data (truncated run, size mismatch, ...). */
class CodecError : public std::runtime_error
{
  public:
    explicit CodecError(const std::string& what)
        : std::runtime_error("packbits: " + what)
    {
    }
};

/**
 * Storage codec identifier, shared by every container that embeds a
 * codec byte (the store's archive streams, the wire's frame header).
 */
enum class Codec : std::uint8_t
{
    Raw = 0,           ///< stored bytes == raw bytes
    PackBits = 1,      ///< PackBits run-length coding
    PlanePackBits = 2, ///< byte-plane split, then PackBits (f64 arrays)
};

/** PackBits-compress a byte span (always decodable, may expand). */
std::vector<std::uint8_t> pack(std::span<const std::uint8_t> raw);

/**
 * Inverse of pack(); `raw_size` is the expected output size.
 * @throws CodecError on malformed input or a size mismatch
 */
std::vector<std::uint8_t> unpack(std::span<const std::uint8_t> packed,
                                 std::size_t raw_size);

/**
 * Byte-plane split of an 8-byte-record array: plane j holds byte j of
 * every record.
 * @throws CodecError unless raw.size() is a multiple of 8
 */
std::vector<std::uint8_t> planeSplit(std::span<const std::uint8_t> raw);

/**
 * Inverse of planeSplit().
 * @throws CodecError unless planes.size() is a multiple of 8
 */
std::vector<std::uint8_t> planeJoin(std::span<const std::uint8_t> planes);

/** Result of pickSmallest(): which codec won, and its stored bytes. */
struct Encoded
{
    Codec codec = Codec::Raw;
    /**
     * The stored form under `codec`. Empty when codec == Raw: the raw
     * input IS the stored form, and callers avoid a pointless copy.
     */
    std::vector<std::uint8_t> bytes;
};

/**
 * Pick the smallest of {raw, PackBits, plane-split PackBits} for a
 * byte span; ties keep the simpler codec, and the plane split is only
 * attempted on non-empty multiples of 8 bytes. A compressed choice is
 * always strictly smaller than the input.
 */
Encoded pickSmallest(std::span<const std::uint8_t> raw);

/**
 * Decode `stored` back to `raw_size` raw bytes under `codec`.
 * @throws CodecError on an unknown codec byte, malformed stored
 *         bytes, or a size mismatch (Raw requires
 *         stored.size() == raw_size; PlanePackBits requires
 *         raw_size % 8 == 0)
 */
std::vector<std::uint8_t> decode(std::uint8_t codec,
                                 std::span<const std::uint8_t> stored,
                                 std::size_t raw_size);

} // namespace packbits
} // namespace oscar

#endif // OSCAR_COMMON_PACKBITS_H
