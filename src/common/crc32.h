/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, reflected), shared by the distributed
 * wire framing (src/dist/wire.cpp) and the on-disk landscape archive
 * (src/store/archive.cpp).
 *
 * One implementation on purpose: a frame CRC computed here and an
 * archive stream CRC computed here are directly comparable, and the
 * check vector ("123456789" -> 0xCBF43926, asserted in
 * tests/test_wire.cpp) pins both users to the standard polynomial at
 * once.
 */

#ifndef OSCAR_COMMON_CRC32_H
#define OSCAR_COMMON_CRC32_H

#include <array>
#include <cstdint>
#include <span>

namespace oscar {

namespace detail {

inline const std::array<std::uint32_t, 256>&
crc32Table()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

} // namespace detail

/** CRC-32 (IEEE 802.3 polynomial) of a byte span. */
inline std::uint32_t
crc32(std::span<const std::uint8_t> data)
{
    const auto& table = detail::crc32Table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::uint8_t b : data)
        c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

/**
 * CRC-32 of two spans as if concatenated (the wire framing checks
 * header + raw payload in one pass without copying them together).
 */
inline std::uint32_t
crc32(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b)
{
    const auto& table = detail::crc32Table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::uint8_t x : a)
        c = table[(c ^ x) & 0xFFu] ^ (c >> 8);
    for (std::uint8_t x : b)
        c = table[(c ^ x) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace oscar

#endif // OSCAR_COMMON_CRC32_H
