/**
 * @file
 * Ordinary least squares, used by two independent consumers:
 *
 *  1. The Noise Compensation Model (Section 5.1), which fits a 1-D
 *     affine map from QPU-2 expectation values to QPU-1 values.
 *  2. Zero Noise Extrapolation (Section 6), which fits polynomial
 *     models of cost vs. noise-scale and evaluates them at scale 0.
 */

#ifndef OSCAR_COMMON_LINEAR_REGRESSION_H
#define OSCAR_COMMON_LINEAR_REGRESSION_H

#include <vector>

namespace oscar {

/** Result of a simple (1-D) least squares fit y = slope * x + intercept. */
struct LinearFit
{
    double slope = 0.0;
    double intercept = 0.0;

    /** Evaluate the fitted line at x. */
    double operator()(double x) const { return slope * x + intercept; }
};

/**
 * Fit y = slope * x + intercept by least squares.
 * Requires x.size() == y.size() >= 2 and non-constant x.
 */
LinearFit fitLinear(const std::vector<double>& x,
                    const std::vector<double>& y);

/**
 * Fit a degree-d polynomial c0 + c1 x + ... + cd x^d by least squares
 * via normal equations with Gaussian elimination (sizes here are tiny:
 * ZNE uses 2-4 scale factors). Returns coefficients lowest order first.
 * Requires x.size() == y.size() >= degree + 1.
 */
std::vector<double> fitPolynomial(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  std::size_t degree);

/** Evaluate a polynomial (coefficients lowest order first) at x. */
double evalPolynomial(const std::vector<double>& coeffs, double x);

/**
 * Solve a dense linear system A x = b in place via Gaussian elimination
 * with partial pivoting. A is row-major n x n. Throws on (numerically)
 * singular systems.
 */
std::vector<double> solveDense(std::vector<double> a,
                               std::vector<double> b,
                               std::size_t n);

} // namespace oscar

#endif // OSCAR_COMMON_LINEAR_REGRESSION_H
