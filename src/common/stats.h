/**
 * @file
 * Descriptive statistics shared across metrics and benchmarks.
 *
 * These helpers implement exactly the statistical primitives the paper
 * relies on: quartiles (for the IQR-normalized NRMSE of Eq. 1),
 * variance (Eqs. 3-4), and medians (Fig. 4 reports per-instance
 * medians and quartile bands).
 */

#ifndef OSCAR_COMMON_STATS_H
#define OSCAR_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace oscar {
namespace stats {

/** Arithmetic mean. Requires non-empty input. */
double mean(const std::vector<double>& v);

/** Population variance (divides by N). Requires non-empty input. */
double variance(const std::vector<double>& v);

/** Population standard deviation. */
double stddev(const std::vector<double>& v);

/**
 * Linear-interpolated quantile, q in [0, 1], matching numpy's default
 * "linear" method. Requires non-empty input.
 */
double quantile(std::vector<double> v, double q);

/** Median (quantile 0.5). */
double median(const std::vector<double>& v);

/** Interquartile range Q3 - Q1. */
double iqr(const std::vector<double>& v);

/** Root mean squared difference between two equal-length vectors. */
double rmse(const std::vector<double>& a, const std::vector<double>& b);

/** Pearson correlation coefficient. Requires length >= 2. */
double pearson(const std::vector<double>& a, const std::vector<double>& b);

} // namespace stats
} // namespace oscar

#endif // OSCAR_COMMON_STATS_H
