#include "src/common/packbits.h"

namespace oscar {
namespace packbits {

std::vector<std::uint8_t>
pack(std::span<const std::uint8_t> raw)
{
    // Classic PackBits: control byte c in 0..127 announces c+1 literal
    // bytes; c in 129..255 announces 257-c repeats of the next byte;
    // 128 is unused. Repeat runs only pay off from length 3.
    std::vector<std::uint8_t> out;
    out.reserve(raw.size() / 2 + 16);
    std::size_t i = 0;
    while (i < raw.size()) {
        // Measure the run starting at i.
        std::size_t run = 1;
        while (i + run < raw.size() && run < 128 &&
               raw[i + run] == raw[i])
            ++run;
        if (run >= 3) {
            out.push_back(static_cast<std::uint8_t>(257 - run));
            out.push_back(raw[i]);
            i += run;
            continue;
        }
        // Literal run: until the next >=3 repeat or 128 bytes.
        std::size_t lit = 0;
        while (i + lit < raw.size() && lit < 128) {
            const std::size_t at = i + lit;
            if (at + 2 < raw.size() && raw[at] == raw[at + 1] &&
                raw[at] == raw[at + 2])
                break;
            ++lit;
        }
        out.push_back(static_cast<std::uint8_t>(lit - 1));
        out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(i),
                   raw.begin() + static_cast<std::ptrdiff_t>(i + lit));
        i += lit;
    }
    return out;
}

std::vector<std::uint8_t>
unpack(std::span<const std::uint8_t> packed, std::size_t raw_size)
{
    std::vector<std::uint8_t> out;
    out.reserve(raw_size);
    std::size_t i = 0;
    while (i < packed.size()) {
        const std::uint8_t c = packed[i++];
        if (c < 128) {
            const std::size_t lit = static_cast<std::size_t>(c) + 1;
            if (i + lit > packed.size())
                throw CodecError("literal run truncated");
            out.insert(out.end(),
                       packed.begin() + static_cast<std::ptrdiff_t>(i),
                       packed.begin() +
                           static_cast<std::ptrdiff_t>(i + lit));
            i += lit;
        } else if (c > 128) {
            if (i >= packed.size())
                throw CodecError("repeat run truncated");
            out.insert(out.end(), 257 - static_cast<std::size_t>(c),
                       packed[i++]);
        } else {
            throw CodecError("control byte 128 is invalid");
        }
        if (out.size() > raw_size)
            throw CodecError("output exceeds declared size");
    }
    if (out.size() != raw_size)
        throw CodecError("output shorter than declared size");
    return out;
}

std::vector<std::uint8_t>
planeSplit(std::span<const std::uint8_t> raw)
{
    if (raw.size() % 8 != 0)
        throw CodecError("plane split input not a multiple of 8");
    const std::size_t n = raw.size() / 8;
    std::vector<std::uint8_t> out(raw.size());
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            out[j * n + i] = raw[i * 8 + j];
    return out;
}

std::vector<std::uint8_t>
planeJoin(std::span<const std::uint8_t> planes)
{
    if (planes.size() % 8 != 0)
        throw CodecError("plane join input not a multiple of 8");
    const std::size_t n = planes.size() / 8;
    std::vector<std::uint8_t> out(planes.size());
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            out[i * 8 + j] = planes[j * n + i];
    return out;
}

Encoded
pickSmallest(std::span<const std::uint8_t> raw)
{
    // Pick the smallest encoding; ties keep the simpler codec.
    Encoded best;
    std::size_t best_size = raw.size();
    std::vector<std::uint8_t> packed = pack(raw);
    if (packed.size() < best_size) {
        best_size = packed.size();
        best.codec = Codec::PackBits;
        best.bytes = std::move(packed);
    }
    if (!raw.empty() && raw.size() % 8 == 0) {
        std::vector<std::uint8_t> planar = pack(planeSplit(raw));
        if (planar.size() < best_size) {
            best.codec = Codec::PlanePackBits;
            best.bytes = std::move(planar);
        }
    }
    if (best.codec == Codec::Raw)
        best.bytes.clear();
    return best;
}

std::vector<std::uint8_t>
decode(std::uint8_t codec, std::span<const std::uint8_t> stored,
       std::size_t raw_size)
{
    switch (codec) {
      case static_cast<std::uint8_t>(Codec::Raw):
        if (stored.size() != raw_size)
            throw CodecError("raw stored size mismatch");
        return std::vector<std::uint8_t>(stored.begin(), stored.end());
      case static_cast<std::uint8_t>(Codec::PackBits):
        return unpack(stored, raw_size);
      case static_cast<std::uint8_t>(Codec::PlanePackBits):
        if (raw_size % 8 != 0)
            throw CodecError(
                "plane-split stream size not a multiple of 8");
        return planeJoin(unpack(stored, raw_size));
      default:
        throw CodecError("unknown codec byte " + std::to_string(codec));
    }
}

} // namespace packbits
} // namespace oscar
