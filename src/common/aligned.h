/**
 * @file
 * Cache-line-aligned storage for hot numeric arrays.
 *
 * The SIMD kernel layer (quantum/kernels.h) streams amplitude arrays
 * with 256-bit loads; when the base pointer is 64-byte aligned, no
 * vector load ever splits a cache line and the hardware prefetcher
 * sees clean sequential lines. `std::vector`'s default allocator only
 * guarantees alignof(std::max_align_t) (16 on x86-64), so the dense
 * simulators store their amplitudes in an AlignedVector instead.
 *
 * The allocator is a drop-in standard allocator (C++17 aligned
 * operator new); AlignedVector<T> behaves exactly like std::vector<T>
 * except for the stronger base-pointer alignment, and vectors of the
 * same element type and alignment are assignable / swappable as usual.
 */

#ifndef OSCAR_COMMON_ALIGNED_H
#define OSCAR_COMMON_ALIGNED_H

#include <cstddef>
#include <new>
#include <vector>

namespace oscar {

/** Minimal standard allocator with a fixed over-alignment. */
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator
{
    static_assert((Alignment & (Alignment - 1)) == 0,
                  "Alignment must be a power of two");
    static_assert(Alignment >= alignof(T),
                  "Alignment must not weaken the natural alignment");

    using value_type = T;

    AlignedAllocator() = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Alignment>;
    };

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t{Alignment}));
    }

    void
    deallocate(T* p, std::size_t /*n*/) noexcept
    {
        ::operator delete(p, std::align_val_t{Alignment});
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U, Alignment>&) const noexcept
    {
        return true;
    }

    template <typename U>
    bool
    operator!=(const AlignedAllocator<U, Alignment>&) const noexcept
    {
        return false;
    }
};

/** std::vector whose data() is 64-byte (cache-line) aligned. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

} // namespace oscar

#endif // OSCAR_COMMON_ALIGNED_H
