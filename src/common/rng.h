/**
 * @file
 * Deterministic random number generation for the OSCAR library.
 *
 * All stochastic components in the library (graph generation, parameter
 * sampling, shot noise, trajectory noise, latency models) draw from an
 * explicitly seeded Rng so that every experiment is reproducible bit for
 * bit across runs. The core generator is xoshiro256++, seeded through
 * splitmix64 so that nearby integer seeds produce unrelated streams.
 */

#ifndef OSCAR_COMMON_RNG_H
#define OSCAR_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace oscar {

/**
 * xoshiro256++ pseudo-random generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator concept, so it can also be
 * handed to standard-library distributions if needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller (cached spare). */
    double normal();

    /** Normal with given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Lognormal: exp(normal(mu, sigma)). */
    double lognormal(double mu, double sigma);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Sample k distinct indices uniformly from [0, n) without
     * replacement (partial Fisher-Yates). Result is in random order.
     */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t k);

    /** In-place Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an unrelated child generator (for parallel streams). */
    Rng split();

  private:
    std::uint64_t s_[4];
    double spare_ = 0.0;
    bool hasSpare_ = false;
};

/**
 * Avalanche two 64-bit values into one seed (splitmix64 finalizer over
 * the combination). This is how per-evaluation RNG streams are keyed:
 * `Rng(mixSeed(backend_seed, evaluation_ordinal))` yields a stream that
 * depends only on the pair, so batched / multi-threaded execution
 * reproduces scalar execution bit for bit.
 */
std::uint64_t mixSeed(std::uint64_t a, std::uint64_t b);

} // namespace oscar

#endif // OSCAR_COMMON_RNG_H
