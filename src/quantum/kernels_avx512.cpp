/**
 * @file
 * AVX-512 kernel specializations (F + DQ).
 *
 * This translation unit is compiled with -mavx512f -mavx512dq (see
 * CMakeLists.txt) and must never be entered on a CPU without both
 * feature bits: dispatch goes through kernels::kernelTable, which
 * checks CPUID before handing out this table. When the build disables
 * the tier (OSCAR_ENABLE_AVX512=OFF, the default for portability, or
 * a compiler without the flags), the file compiles to a stub that
 * reports "no table" and dispatch tops out at AVX2.
 *
 * Layout reminder: a __m512d holds four complex<double> amplitudes as
 * [re0 im0 re1 im1 re2 im2 re3 im3]. The complex product fuses with
 * _mm512_fmaddsub_pd, so results differ from the scalar and AVX2
 * tiers by rounding (never more); within this ISA every kernel is a
 * pure function of its arguments, preserving the engine's
 * "bit-identical for a fixed (ISA, fusion plan)" contract.
 *
 * Tail policy: state dimensions are powers of two, so the only shapes
 * below the 4-complex vector width are dim == 2 (and fdim == 2 for
 * the dense super-kernel). Those run through masked loads and stores
 * (_mm512_maskz_loadu_pd / _mm512_mask_storeu_pd with an 8-bit double
 * mask) rather than the scalar remainder loops the AVX2 tier uses —
 * zeroed inactive lanes flow through the same arithmetic and the
 * masked store discards them.
 *
 * swapQubits stays on the scalar implementation: it is an exact
 * permutation (no rounding, so reuse cannot change results) and does
 * not appear on the hot QAOA path.
 */

#include "src/quantum/kernels.h"

#ifdef OSCAR_HAVE_AVX512

#include <immintrin.h>

#include <algorithm>

namespace oscar {
namespace kernels {
namespace {

inline __m512d
ld8(const cplx* p)
{
    return _mm512_loadu_pd(reinterpret_cast<const double*>(p));
}

inline void
st8(cplx* p, __m512d v)
{
    _mm512_storeu_pd(reinterpret_cast<double*>(p), v);
}

inline __m512d
ldm(const cplx* p, __mmask8 k)
{
    return _mm512_maskz_loadu_pd(k, reinterpret_cast<const double*>(p));
}

inline void
stm(cplx* p, __mmask8 k, __m512d v)
{
    _mm512_mask_storeu_pd(reinterpret_cast<double*>(p), k, v);
}

/** One complex constant in all four lanes. */
inline __m512d
bcast8(cplx c)
{
    return _mm512_broadcast_f64x4(
        _mm256_setr_pd(c.real(), c.imag(), c.real(), c.imag()));
}

/** Two complex constants, pair-repeated: [a a b b]. */
inline __m512d
pairs8(cplx a, cplx b)
{
    return _mm512_setr_pd(a.real(), a.imag(), a.real(), a.imag(),
                          b.real(), b.imag(), b.real(), b.imag());
}

/** Two complex constants, interleaved: [a b a b]. */
inline __m512d
alt8(cplx a, cplx b)
{
    return _mm512_setr_pd(a.real(), a.imag(), b.real(), b.imag(),
                          a.real(), a.imag(), b.real(), b.imag());
}

/** Elementwise complex product of two amplitude quads. */
inline __m512d
cmul8(__m512d a, __m512d b)
{
    const __m512d br = _mm512_movedup_pd(b);
    const __m512d bi = _mm512_permute_pd(b, 0xFF);
    const __m512d as = _mm512_permute_pd(a, 0x55);
    return _mm512_fmaddsub_pd(a, br, _mm512_mul_pd(as, bi));
}

/** Fixed-order horizontal sum: halves first, then the AVX2 order. */
inline double
hsum8(__m512d v)
{
    const __m256d lo = _mm512_castpd512_pd256(v);
    const __m256d hi = _mm512_extractf64x4_pd(v, 1);
    const __m256d s4 = _mm256_add_pd(lo, hi);
    const __m128d l2 = _mm256_castpd256_pd128(s4);
    const __m128d h2 = _mm256_extractf128_pd(s4, 1);
    const __m128d s2 = _mm_add_pd(l2, h2);
    return _mm_cvtsd_f64(s2) + _mm_cvtsd_f64(_mm_unpackhi_pd(s2, s2));
}

/** Fixed-order complex horizontal sum of four lanes. */
inline cplx
chsum8(__m512d v)
{
    const __m256d lo = _mm512_castpd512_pd256(v);
    const __m256d hi = _mm512_extractf64x4_pd(v, 1);
    const __m256d s4 = _mm256_add_pd(lo, hi);
    const __m128d l2 = _mm256_castpd256_pd128(s4);
    const __m128d h2 = _mm256_extractf128_pd(s4, 1);
    const __m128d s2 = _mm_add_pd(l2, h2);
    return cplx(_mm_cvtsd_f64(s2),
                _mm_cvtsd_f64(_mm_unpackhi_pd(s2, s2)));
}

/**
 * In-vector pair replication for low-qubit 1q gates. For stride 1 the
 * vector holds [a0 a1 a0' a1'] (two pairs); for stride 2 it holds
 * [a0 a0' a1 a1'] grouped as [pair0 | pair1].
 *
 * These index vectors are built inside (inlined) functions, NOT as
 * namespace-scope constants: a global __m512i would run its AVX-512
 * initializer at program load, before any CPUID gate, and SIGILL on
 * hardware without the tier. Function-local construction folds to a
 * constant-pool load executed only after dispatch admitted us here.
 */
inline __m512i
rep0Lo() { return _mm512_setr_epi64(0, 1, 0, 1, 4, 5, 4, 5); }
inline __m512i
rep0Hi() { return _mm512_setr_epi64(2, 3, 2, 3, 6, 7, 6, 7); }
inline __m512i
rep1Lo() { return _mm512_setr_epi64(0, 1, 2, 3, 0, 1, 2, 3); }
inline __m512i
rep1Hi() { return _mm512_setr_epi64(4, 5, 6, 7, 4, 5, 6, 7); }

/** Complex-lane swaps (partner at l^1 / l^2), optional re/im swap. */
inline __m512i
swapC1() { return _mm512_setr_epi64(2, 3, 0, 1, 6, 7, 4, 5); }
inline __m512i
swapC2() { return _mm512_setr_epi64(4, 5, 6, 7, 0, 1, 2, 3); }
inline __m512i
swapC1Rot() { return _mm512_setr_epi64(3, 2, 1, 0, 7, 6, 5, 4); }
inline __m512i
swapC2Rot() { return _mm512_setr_epi64(5, 4, 7, 6, 1, 0, 3, 2); }

void
matrix1qAvx512(cplx* amps, std::size_t dim, int qubit,
               const std::array<cplx, 4>& m)
{
    const std::size_t stride = std::size_t{1} << qubit;
    if (stride >= 4) {
        const __m512d m00 = bcast8(m[0]);
        const __m512d m01 = bcast8(m[1]);
        const __m512d m10 = bcast8(m[2]);
        const __m512d m11 = bcast8(m[3]);
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 4) {
                cplx* p0 = amps + base + off;
                cplx* p1 = p0 + stride;
                const __m512d a0 = ld8(p0);
                const __m512d a1 = ld8(p1);
                st8(p0, _mm512_add_pd(cmul8(a0, m00), cmul8(a1, m01)));
                st8(p1, _mm512_add_pd(cmul8(a0, m10), cmul8(a1, m11)));
            }
        }
        return;
    }
    // Low-qubit paths keep both pair members inside one vector: the
    // a0/a1 operands are replicated in place and the matrix constants
    // are laid out to match, so one add of two cmuls produces the
    // full in-memory-order result.
    const bool q0 = stride == 1;
    const __m512i ilo = q0 ? rep0Lo() : rep1Lo();
    const __m512i ihi = q0 ? rep0Hi() : rep1Hi();
    const __m512d mA = q0 ? alt8(m[0], m[2]) : pairs8(m[0], m[2]);
    const __m512d mB = q0 ? alt8(m[1], m[3]) : pairs8(m[1], m[3]);
    if (dim < 4) {
        // dim == 2: one pair through the masked tail path.
        const __m512d v = ldm(amps, 0x0F);
        const __m512d a0 = _mm512_permutexvar_pd(ilo, v);
        const __m512d a1 = _mm512_permutexvar_pd(ihi, v);
        stm(amps, 0x0F,
            _mm512_add_pd(cmul8(a0, mA), cmul8(a1, mB)));
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4) {
        const __m512d v = ld8(amps + i);
        const __m512d a0 = _mm512_permutexvar_pd(ilo, v);
        const __m512d a1 = _mm512_permutexvar_pd(ihi, v);
        st8(amps + i, _mm512_add_pd(cmul8(a0, mA), cmul8(a1, mB)));
    }
}

void
diag1qAvx512(cplx* amps, std::size_t dim, int qubit, cplx phase0,
             cplx phase1)
{
    const std::size_t stride = std::size_t{1} << qubit;
    if (stride >= 4) {
        const __m512d p0 = bcast8(phase0);
        const __m512d p1 = bcast8(phase1);
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 4) {
                cplx* lo = amps + base + off;
                cplx* hi = lo + stride;
                st8(lo, cmul8(ld8(lo), p0));
                st8(hi, cmul8(ld8(hi), p1));
            }
        }
        return;
    }
    const __m512d pv = stride == 1 ? alt8(phase0, phase1)
                                   : pairs8(phase0, phase1);
    if (dim < 4) {
        stm(amps, 0x0F, cmul8(ldm(amps, 0x0F), pv));
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4)
        st8(amps + i, cmul8(ld8(amps + i), pv));
}

void
rotXAvx512(cplx* amps, std::size_t dim, int qubit, double c, double s)
{
    // See rotXAvx2: a0' = c a0 + s rot(a1), rot(x + i y) = y - i x.
    const std::size_t stride = std::size_t{1} << qubit;
    const __m512d cv = _mm512_set1_pd(c);
    const __m512d sx = _mm512_setr_pd(s, -s, s, -s, s, -s, s, -s);
    if (stride >= 4) {
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 4) {
                cplx* p0 = amps + base + off;
                cplx* p1 = p0 + stride;
                const __m512d a0 = ld8(p0);
                const __m512d a1 = ld8(p1);
                const __m512d r1 = _mm512_permute_pd(a1, 0x55);
                const __m512d r0 = _mm512_permute_pd(a0, 0x55);
                st8(p0, _mm512_fmadd_pd(cv, a0, _mm512_mul_pd(sx, r1)));
                st8(p1, _mm512_fmadd_pd(cv, a1, _mm512_mul_pd(sx, r0)));
            }
        }
        return;
    }
    // In-vector: the partner lane arrives already re/im-swapped via a
    // single combined permute.
    const __m512i rot = stride == 1 ? swapC1Rot() : swapC2Rot();
    if (dim < 4) {
        const __m512d v = ldm(amps, 0x0F);
        const __m512d pr = _mm512_permutexvar_pd(rot, v);
        stm(amps, 0x0F,
            _mm512_fmadd_pd(cv, v, _mm512_mul_pd(sx, pr)));
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4) {
        const __m512d v = ld8(amps + i);
        const __m512d pr = _mm512_permutexvar_pd(rot, v);
        st8(amps + i, _mm512_fmadd_pd(cv, v, _mm512_mul_pd(sx, pr)));
    }
}

void
rotYAvx512(cplx* amps, std::size_t dim, int qubit, double c, double s)
{
    // See rotYAvx2: all-real matrix [[c, -s], [s, c]]. In the
    // in-vector form the sign of s depends on whether the lane holds
    // an a0 (gets -s a1) or an a1 (gets +s a0).
    const std::size_t stride = std::size_t{1} << qubit;
    const __m512d cv = _mm512_set1_pd(c);
    if (stride >= 4) {
        const __m512d sv = _mm512_set1_pd(s);
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 4) {
                cplx* p0 = amps + base + off;
                cplx* p1 = p0 + stride;
                const __m512d a0 = ld8(p0);
                const __m512d a1 = ld8(p1);
                st8(p0, _mm512_fnmadd_pd(sv, a1, _mm512_mul_pd(cv, a0)));
                st8(p1, _mm512_fmadd_pd(sv, a0, _mm512_mul_pd(cv, a1)));
            }
        }
        return;
    }
    const __m512i swp = stride == 1 ? swapC1() : swapC2();
    const __m512d sp =
        stride == 1
            ? _mm512_setr_pd(-s, -s, s, s, -s, -s, s, s)
            : _mm512_setr_pd(-s, -s, -s, -s, s, s, s, s);
    if (dim < 4) {
        const __m512d v = ldm(amps, 0x0F);
        const __m512d pr = _mm512_permutexvar_pd(swp, v);
        stm(amps, 0x0F,
            _mm512_fmadd_pd(sp, pr, _mm512_mul_pd(cv, v)));
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4) {
        const __m512d v = ld8(amps + i);
        const __m512d pr = _mm512_permutexvar_pd(swp, v);
        st8(amps + i, _mm512_fmadd_pd(sp, pr, _mm512_mul_pd(cv, v)));
    }
}

/**
 * Pair-fused RX, bit-identical to rotXAvx512(qa) then rotXAvx512(qb):
 * the quartet {base, +2^qa, +2^qb, +2^qa+2^qb} stays in registers
 * across both steps, halving load/store traffic. In-vector qubits
 * (< 2) would need the permutexvar path, so those pairs fall back to
 * the two single calls.
 */
void
rotX2Avx512(cplx* amps, std::size_t dim, int qa, int qb, double ca,
            double sa, double cb, double sb)
{
    if (qa < 2 || qb < 2 || dim < 16) {
        rotXAvx512(amps, dim, qa, ca, sa);
        rotXAvx512(amps, dim, qb, cb, sb);
        return;
    }
    const std::size_t stra = std::size_t{1} << qa;
    const std::size_t strb = std::size_t{1} << qb;
    const std::size_t slo = stra < strb ? stra : strb;
    const std::size_t shi = stra < strb ? strb : stra;
    const __m512d cva = _mm512_set1_pd(ca);
    const __m512d sxa = _mm512_setr_pd(sa, -sa, sa, -sa, sa, -sa, sa, -sa);
    const __m512d cvb = _mm512_set1_pd(cb);
    const __m512d sxb = _mm512_setr_pd(sb, -sb, sb, -sb, sb, -sb, sb, -sb);
    for (std::size_t hi = 0; hi < dim; hi += 2 * shi)
        for (std::size_t mid = 0; mid < shi; mid += 2 * slo)
            for (std::size_t off = 0; off < slo; off += 4) {
                cplx* p00 = amps + hi + mid + off;
                cplx* pa = p00 + stra;
                cplx* pb = p00 + strb;
                cplx* pab = p00 + stra + strb;
                const __m512d a00 = ld8(p00), aa = ld8(pa),
                              ab = ld8(pb), aab = ld8(pab);
                const __m512d n00 = _mm512_fmadd_pd(
                    cva, a00,
                    _mm512_mul_pd(sxa, _mm512_permute_pd(aa, 0x55)));
                const __m512d na = _mm512_fmadd_pd(
                    cva, aa,
                    _mm512_mul_pd(sxa, _mm512_permute_pd(a00, 0x55)));
                const __m512d nb = _mm512_fmadd_pd(
                    cva, ab,
                    _mm512_mul_pd(sxa, _mm512_permute_pd(aab, 0x55)));
                const __m512d nab = _mm512_fmadd_pd(
                    cva, aab,
                    _mm512_mul_pd(sxa, _mm512_permute_pd(ab, 0x55)));
                st8(p00, _mm512_fmadd_pd(
                             cvb, n00,
                             _mm512_mul_pd(
                                 sxb, _mm512_permute_pd(nb, 0x55))));
                st8(pb, _mm512_fmadd_pd(
                            cvb, nb,
                            _mm512_mul_pd(
                                sxb, _mm512_permute_pd(n00, 0x55))));
                st8(pa, _mm512_fmadd_pd(
                            cvb, na,
                            _mm512_mul_pd(
                                sxb, _mm512_permute_pd(nab, 0x55))));
                st8(pab, _mm512_fmadd_pd(
                             cvb, nab,
                             _mm512_mul_pd(
                                 sxb, _mm512_permute_pd(na, 0x55))));
            }
}

/** Pair-fused RY; same structure and contract as rotX2Avx512. */
void
rotY2Avx512(cplx* amps, std::size_t dim, int qa, int qb, double ca,
            double sa, double cb, double sb)
{
    if (qa < 2 || qb < 2 || dim < 16) {
        rotYAvx512(amps, dim, qa, ca, sa);
        rotYAvx512(amps, dim, qb, cb, sb);
        return;
    }
    const std::size_t stra = std::size_t{1} << qa;
    const std::size_t strb = std::size_t{1} << qb;
    const std::size_t slo = stra < strb ? stra : strb;
    const std::size_t shi = stra < strb ? strb : stra;
    const __m512d cva = _mm512_set1_pd(ca);
    const __m512d sva = _mm512_set1_pd(sa);
    const __m512d cvb = _mm512_set1_pd(cb);
    const __m512d svb = _mm512_set1_pd(sb);
    for (std::size_t hi = 0; hi < dim; hi += 2 * shi)
        for (std::size_t mid = 0; mid < shi; mid += 2 * slo)
            for (std::size_t off = 0; off < slo; off += 4) {
                cplx* p00 = amps + hi + mid + off;
                cplx* pa = p00 + stra;
                cplx* pb = p00 + strb;
                cplx* pab = p00 + stra + strb;
                const __m512d a00 = ld8(p00), aa = ld8(pa),
                              ab = ld8(pb), aab = ld8(pab);
                const __m512d n00 =
                    _mm512_fnmadd_pd(sva, aa, _mm512_mul_pd(cva, a00));
                const __m512d na =
                    _mm512_fmadd_pd(sva, a00, _mm512_mul_pd(cva, aa));
                const __m512d nb =
                    _mm512_fnmadd_pd(sva, aab, _mm512_mul_pd(cva, ab));
                const __m512d nab =
                    _mm512_fmadd_pd(sva, ab, _mm512_mul_pd(cva, aab));
                st8(p00,
                    _mm512_fnmadd_pd(svb, nb, _mm512_mul_pd(cvb, n00)));
                st8(pb,
                    _mm512_fmadd_pd(svb, n00, _mm512_mul_pd(cvb, nb)));
                st8(pa,
                    _mm512_fnmadd_pd(svb, nab, _mm512_mul_pd(cvb, na)));
                st8(pab,
                    _mm512_fmadd_pd(svb, na, _mm512_mul_pd(cvb, nab)));
            }
}

void
scaleAvx512(cplx* amps, std::size_t dim, cplx factor)
{
    const __m512d f = bcast8(factor);
    if (dim < 4) {
        stm(amps, 0x0F, cmul8(ldm(amps, 0x0F), f));
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4)
        st8(amps + i, cmul8(ld8(amps + i), f));
}

void
phaseZZAvx512(cplx* amps, std::size_t dim, int a, int b, cplx same,
              cplx diff)
{
    // Same decomposition as the AVX2 tier: split on the higher qubit,
    // then each half is a diagonal 1q pass on the lower one.
    const int lo = std::min(a, b);
    const int hi = std::max(a, b);
    const std::size_t hs = std::size_t{1} << hi;
    for (std::size_t base = 0; base < dim; base += 2 * hs) {
        diag1qAvx512(amps + base, hs, lo, same, diff);
        diag1qAvx512(amps + base + hs, hs, lo, diff, same);
    }
}

/**
 * Spread a 4-bit per-complex mask to the 8-bit per-double mask the
 * masked ops want (bit l -> bits 2l, 2l+1).
 */
constexpr __mmask8 kSpread[16] = {
    0x00, 0x03, 0x0C, 0x0F, 0x30, 0x33, 0x3C, 0x3F,
    0xC0, 0xC3, 0xCC, 0xCF, 0xF0, 0xF3, 0xFC, 0xFF,
};

void
negateMaskedAvx512(cplx* amps, std::size_t dim, std::size_t mask)
{
    // Bits 0-1 of the mask select a fixed lane pattern inside each
    // 4-complex vector; the remaining bits gate whole vectors.
    const std::size_t low = mask & 3;
    const std::size_t high = mask & ~std::size_t{3};
    unsigned cm = 0;
    for (unsigned l = 0; l < 4; ++l)
        if ((l & low) == low)
            cm |= 1u << l;
    const __mmask8 dmask = kSpread[cm];
    const __m512d sign = _mm512_set1_pd(-0.0);
    if (dim < 4) {
        if ((0 & high) == high)
            stm(amps, dmask & 0x0F,
                _mm512_xor_pd(ldm(amps, 0x0F), sign));
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4) {
        if ((i & high) != high)
            continue;
        // Masked store writes only the negated lanes back.
        stm(amps + i, dmask, _mm512_xor_pd(ld8(amps + i), sign));
    }
}

void
czAvx512(cplx* amps, std::size_t dim, int a, int b)
{
    negateMaskedAvx512(amps, dim,
                       (std::size_t{1} << a) | (std::size_t{1} << b));
}

/**
 * Per-complex control pattern inside a 4-complex vector for a control
 * qubit below 2, spread to a double mask. Index by control qubit.
 */
constexpr __mmask8 kCtrlPattern[2] = {0xCC, 0xF0};

void
cxAvx512(cplx* amps, std::size_t dim, int control, int target)
{
    const std::size_t cmask = std::size_t{1} << control;
    if (target >= 2) {
        // Pair members live in different vectors; swap whole vectors
        // (or masked lanes when the control sits below the vector).
        const std::size_t tstride = std::size_t{1} << target;
        const bool ctrl_low = control < 2;
        const __mmask8 km =
            ctrl_low ? kCtrlPattern[control] : __mmask8{0xFF};
        for (std::size_t base = 0; base < dim; base += 2 * tstride) {
            for (std::size_t off = 0; off < tstride; off += 4) {
                const std::size_t i = base + off;
                if (!ctrl_low && !(i & cmask))
                    continue;
                cplx* p0 = amps + i;
                cplx* p1 = p0 + tstride;
                const __m512d v0 = ld8(p0);
                const __m512d v1 = ld8(p1);
                stm(p0, km, v1);
                stm(p1, km, v0);
            }
        }
        return;
    }
    // Target below the vector width: the swap is an in-register
    // complex permute, applied to controlled lanes only.
    const __m512i swp = target == 0 ? swapC1() : swapC2();
    const bool ctrl_low = control < 2;
    const __mmask8 km = ctrl_low ? kCtrlPattern[control] : __mmask8{0xFF};
    if (dim < 4) {
        // dim == 2 implies a single qubit; cx needs two, so this is
        // unreachable — kept as a masked no-op-safe guard.
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4) {
        if (!ctrl_low && !(i & cmask))
            continue;
        const __m512d v = ld8(amps + i);
        stm(amps + i, km, _mm512_permutexvar_pd(swp, v));
    }
}

void
flipBitAvx512(cplx* amps, std::size_t dim, int target)
{
    if (target >= 2) {
        const std::size_t tstride = std::size_t{1} << target;
        for (std::size_t base = 0; base < dim; base += 2 * tstride) {
            for (std::size_t off = 0; off < tstride; off += 4) {
                cplx* p0 = amps + base + off;
                cplx* p1 = p0 + tstride;
                const __m512d v0 = ld8(p0);
                st8(p0, ld8(p1));
                st8(p1, v0);
            }
        }
        return;
    }
    const __m512i swp = target == 0 ? swapC1() : swapC2();
    if (dim < 4) {
        stm(amps, 0x0F,
            _mm512_permutexvar_pd(swp, ldm(amps, 0x0F)));
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4)
        st8(amps + i, _mm512_permutexvar_pd(swp, ld8(amps + i)));
}

void
applyDiagTableAvx512(cplx* amps, std::size_t dim, const cplx* table)
{
    if (dim < 4) {
        stm(amps, 0x0F, cmul8(ldm(amps, 0x0F), ldm(table, 0x0F)));
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4)
        st8(amps + i, cmul8(ld8(amps + i), ld8(table + i)));
}

void
matvecDenseAvx512(cplx* amps, std::size_t dim, int fbits,
                  const cplx* matrix, cplx* scratch)
{
    const std::size_t fdim = std::size_t{1} << fbits;
    if (fdim < 4) {
        // fdim == 2: the whole 2x2 block fits one masked vector.
        for (std::size_t base = 0; base < dim; base += 2) {
            cplx* blk = amps + base;
            const __m512d acc0 = cmul8(ldm(matrix, 0x0F), bcast8(blk[0]));
            const __m512d acc =
                _mm512_add_pd(acc0, cmul8(ldm(matrix + fdim, 0x0F),
                                          bcast8(blk[1])));
            stm(blk, 0x0F, acc);
        }
        return;
    }
    for (std::size_t base = 0; base < dim; base += fdim) {
        cplx* blk = amps + base;
        const __m512d in0 = bcast8(blk[0]);
        for (std::size_t r = 0; r < fdim; r += 4)
            st8(scratch + r, cmul8(ld8(matrix + r), in0));
        for (std::size_t col = 1; col < fdim; ++col) {
            const __m512d in = bcast8(blk[col]);
            const cplx* m = matrix + col * fdim;
            for (std::size_t r = 0; r < fdim; r += 4)
                st8(scratch + r,
                    _mm512_add_pd(ld8(scratch + r),
                                  cmul8(ld8(m + r), in)));
        }
        for (std::size_t r = 0; r < fdim; r += 4)
            st8(blk + r, ld8(scratch + r));
    }
}

/** Even/odd double lanes across two vectors, for |amp|^2 gathering
 * (functions, not globals — see the initializer note above). */
inline __m512i
evenIdx() { return _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14); }
inline __m512i
oddIdx() { return _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15); }

void
expectationDiagonalBatchAvx512(const cplx* const* states,
                               std::size_t count, const double* diag,
                               std::size_t dim, double* out)
{
    if (count == 0)
        return;
    // Eight norms per step: squares from two amplitude vectors are
    // regathered into natural complex order (re^2 lanes + im^2 lanes)
    // so the diagonal loads stay contiguous and unpermuted. Per-state
    // fmadd order is independent of count and chunking, so a batch of
    // one is bit-identical to the same state inside any group.
    constexpr std::size_t kChunk = 8;
    const std::size_t dim8 = dim & ~std::size_t{7};
    const std::size_t rem = dim - dim8; // 0, 2, or 4 complexes
    const __mmask8 amask =
        static_cast<__mmask8>((1u << (2 * rem)) - 1u);
    const __mmask8 dmaskr = static_cast<__mmask8>((1u << rem) - 1u);
    for (std::size_t s0 = 0; s0 < count; s0 += kChunk) {
        const std::size_t nc = std::min(kChunk, count - s0);
        __m512d acc[kChunk];
        std::fill(acc, acc + nc, _mm512_setzero_pd());
        for (std::size_t i = 0; i < dim8; i += 8) {
            const __m512d d = _mm512_loadu_pd(diag + i);
            for (std::size_t c = 0; c < nc; ++c) {
                const cplx* p = states[s0 + c] + i;
                const __m512d v0 = ld8(p);
                const __m512d v1 = ld8(p + 4);
                const __m512d q0 = _mm512_mul_pd(v0, v0);
                const __m512d q1 = _mm512_mul_pd(v1, v1);
                const __m512d re =
                    _mm512_permutex2var_pd(q0, evenIdx(), q1);
                const __m512d im =
                    _mm512_permutex2var_pd(q0, oddIdx(), q1);
                acc[c] = _mm512_fmadd_pd(_mm512_add_pd(re, im), d,
                                         acc[c]);
            }
        }
        if (rem) {
            const __m512d d =
                _mm512_maskz_loadu_pd(dmaskr, diag + dim8);
            for (std::size_t c = 0; c < nc; ++c) {
                const __m512d v0 =
                    ldm(states[s0 + c] + dim8, amask);
                const __m512d q0 = _mm512_mul_pd(v0, v0);
                const __m512d z = _mm512_setzero_pd();
                const __m512d re =
                    _mm512_permutex2var_pd(q0, evenIdx(), z);
                const __m512d im =
                    _mm512_permutex2var_pd(q0, oddIdx(), z);
                acc[c] = _mm512_fmadd_pd(_mm512_add_pd(re, im), d,
                                         acc[c]);
            }
        }
        for (std::size_t c = 0; c < nc; ++c)
            out[s0 + c] = hsum8(acc[c]);
    }
}

/**
 * Pauli-string machinery shared by the single and batched kernels.
 * One step handles the aligned 4-complex group at i: the partners of
 * lanes i..i+3 all live in the group at (i ^ flip) & ~3, permuted by
 * the low two flip bits, and the per-lane sign splits into a per-group
 * scalar (high sign bits) times a fixed lane pattern (low sign bits).
 */
struct PauliCtx {
    std::size_t flip;
    std::uint64_t sign;
    __m512i perm;       // lane permutation for flip & 3
    __m512d pattern;    // ±1 lane pattern for (l ^ flip) & sign & 3
    __m512d conj_mask;  // flips imaginary signs
};

inline PauliCtx
makePauliCtx(std::uint64_t flip_mask, std::uint64_t sign_mask)
{
    PauliCtx ctx;
    ctx.flip = static_cast<std::size_t>(flip_mask);
    ctx.sign = sign_mask;
    const unsigned f3 = static_cast<unsigned>(flip_mask & 3);
    std::int64_t idx[8];
    double pat[8];
    for (unsigned l = 0; l < 4; ++l) {
        const unsigned src = l ^ f3;
        idx[2 * l] = static_cast<std::int64_t>(2 * src);
        idx[2 * l + 1] = static_cast<std::int64_t>(2 * src + 1);
        const double s =
            (__builtin_popcountll(src & sign_mask & 3) & 1) ? -1.0
                                                            : 1.0;
        pat[2 * l] = s;
        pat[2 * l + 1] = s;
    }
    ctx.perm = _mm512_setr_epi64(idx[0], idx[1], idx[2], idx[3],
                                 idx[4], idx[5], idx[6], idx[7]);
    ctx.pattern = _mm512_setr_pd(pat[0], pat[1], pat[2], pat[3],
                                 pat[4], pat[5], pat[6], pat[7]);
    ctx.conj_mask = _mm512_setr_pd(0.0, -0.0, 0.0, -0.0,
                                   0.0, -0.0, 0.0, -0.0);
    return ctx;
}

/** Group sign vector for the aligned group at i. */
inline __m512d
pauliGroupSign(const PauliCtx& ctx, std::size_t i)
{
    const std::size_t jhi = (i ^ ctx.flip) & ~std::size_t{3};
    const bool neg =
        (__builtin_popcountll(jhi & ctx.sign & ~std::uint64_t{3}) & 1)
        != 0;
    return neg ? _mm512_sub_pd(_mm512_setzero_pd(), ctx.pattern)
               : ctx.pattern;
}

/** One accumulation step for one state's aligned group at i. */
inline __m512d
pauliStep(const PauliCtx& ctx, const cplx* amps, std::size_t i,
          __m512d sv, __m512d acc, __mmask8 lanes)
{
    const __m512d vi = _mm512_xor_pd(ldm(amps + i, lanes),
                                     ctx.conj_mask);
    const std::size_t jb = (i ^ ctx.flip) & ~std::size_t{3};
    const __m512d vjg = ldm(amps + jb, lanes);
    const __m512d vj = _mm512_permutexvar_pd(ctx.perm, vjg);
    return _mm512_add_pd(acc,
                         _mm512_mul_pd(cmul8(vi, vj), sv));
}

double
expectationPauliAvx512(const cplx* amps, std::size_t dim,
                       std::uint64_t flip_mask, std::uint64_t sign_mask,
                       cplx phase)
{
    const PauliCtx ctx = makePauliCtx(flip_mask, sign_mask);
    __m512d acc = _mm512_setzero_pd();
    if (dim < 4) {
        // dim == 2: the flip mask fits the low lanes, so the masked
        // group step covers it — inactive lanes stay zero.
        acc = pauliStep(ctx, amps, 0, pauliGroupSign(ctx, 0), acc,
                        0x0F);
        return (phase * chsum8(acc)).real();
    }
    for (std::size_t i = 0; i < dim; i += 4)
        acc = pauliStep(ctx, amps, i, pauliGroupSign(ctx, i), acc,
                        0xFF);
    return (phase * chsum8(acc)).real();
}

void
expectationPauliBatchAvx512(const cplx* const* states, std::size_t count,
                            std::size_t dim, std::uint64_t flip_mask,
                            std::uint64_t sign_mask, cplx phase,
                            double* out)
{
    if (count == 0)
        return;
    // The group permutation and sign are shared across states; each
    // state's accumulator sees exactly the op sequence of
    // expectationPauliAvx512, so out[s] is bit-identical to the
    // single-state kernel on states[s].
    const PauliCtx ctx = makePauliCtx(flip_mask, sign_mask);
    const __mmask8 lanes = dim < 4 ? __mmask8{0x0F} : __mmask8{0xFF};
    const std::size_t step = dim < 4 ? dim : 4;
    constexpr std::size_t kChunk = 8;
    for (std::size_t s0 = 0; s0 < count; s0 += kChunk) {
        const std::size_t nc = std::min(kChunk, count - s0);
        __m512d acc[kChunk];
        std::fill(acc, acc + nc, _mm512_setzero_pd());
        for (std::size_t i = 0; i < dim; i += step) {
            const __m512d sv = pauliGroupSign(ctx, i);
            for (std::size_t c = 0; c < nc; ++c)
                acc[c] = pauliStep(ctx, states[s0 + c], i, sv, acc[c],
                                   lanes);
        }
        for (std::size_t c = 0; c < nc; ++c)
            out[s0 + c] = (phase * chsum8(acc[c])).real();
    }
}

} // namespace

namespace detail {

const KernelTable*
avx512KernelTableOrNull()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.isa = KernelIsa::Avx512;
        t.matrix1q = &matrix1qAvx512;
        t.diag1q = &diag1qAvx512;
        t.cx = &cxAvx512;
        t.cz = &czAvx512;
        t.swapQubits = &swapQubits;
        t.phaseZZ = &phaseZZAvx512;
        t.scale = &scaleAvx512;
        t.negateMasked = &negateMaskedAvx512;
        t.flipBit = &flipBitAvx512;
        t.rotX = &rotXAvx512;
        t.rotY = &rotYAvx512;
        t.rotX2 = &rotX2Avx512;
        t.rotY2 = &rotY2Avx512;
        t.applyDiagTable = &applyDiagTableAvx512;
        t.matvecDense = &matvecDenseAvx512;
        t.expectationDiagonalBatch = &expectationDiagonalBatchAvx512;
        t.expectationPauli = &expectationPauliAvx512;
        t.expectationPauliBatch = &expectationPauliBatchAvx512;
        return t;
    }();
    return &table;
}

} // namespace detail
} // namespace kernels
} // namespace oscar

#else // !OSCAR_HAVE_AVX512

namespace oscar {
namespace kernels {
namespace detail {

const KernelTable*
avx512KernelTableOrNull()
{
    return nullptr;
}

} // namespace detail
} // namespace kernels
} // namespace oscar

#endif // OSCAR_HAVE_AVX512
