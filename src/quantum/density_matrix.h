/**
 * @file
 * Exact density-matrix simulator with depolarizing channels.
 *
 * The density matrix of an n-qubit system is stored as a 4^n-amplitude
 * vector: element rho(r, c) lives at index r + (c << n), i.e. the row
 * index occupies the low n "qubits" and the column index the high n.
 * A unitary U on qubit q is applied as U on qubit q (row side) and
 * conj(U) on qubit q + n (column side), which lets us reuse the
 * state-vector kernels unchanged.
 *
 * Depolarizing channels are applied exactly:
 *   D_p(rho) = (1 - 4p/3) rho + (4p/3) (I/2 (x) Tr_q rho)      [1-qubit]
 *   D_p(rho) = (1 - 16p/15) rho + (16p/15) (I/4 (x) Tr_qq rho) [2-qubit]
 *
 * This backend is the correctness oracle for the trajectory backend and
 * the analytic light-cone damping model; it is practical up to ~10
 * qubits on one core.
 */

#ifndef OSCAR_QUANTUM_DENSITY_MATRIX_H
#define OSCAR_QUANTUM_DENSITY_MATRIX_H

#include <complex>
#include <vector>

#include "src/common/aligned.h"
#include "src/quantum/circuit.h"
#include "src/quantum/compiled_circuit.h"
#include "src/quantum/noise_model.h"
#include "src/quantum/pauli.h"

namespace oscar {

/** Exact mixed-state simulator for small qubit counts. */
class DensityMatrix
{
  public:
    /** |0...0><0...0| on num_qubits qubits. */
    explicit DensityMatrix(int num_qubits);

    int numQubits() const { return numQubits_; }

    /** Hilbert space dimension 2^n (the matrix is dim x dim). */
    std::size_t dim() const { return std::size_t{1} << numQubits_; }

    /** Matrix element rho(row, col). */
    cplx element(std::size_t row, std::size_t col) const;

    /** Reset to |0...0><0...0|. */
    void reset();

    /** Apply a unitary gate (angle must be resolved). */
    void applyGate(const Gate& gate);

    /** Apply the 1-qubit depolarizing channel with probability p. */
    void applyDepolarizing1(int qubit, double p);

    /** Apply the 2-qubit depolarizing channel with probability p. */
    void applyDepolarizing2(int qubit_a, int qubit_b, double p);

    /**
     * Run a bound circuit, inserting a depolarizing channel after each
     * gate according to the noise model (on the gate's qubits).
     */
    void run(const Circuit& circuit, const NoiseModel& noise);

    /**
     * Run a parameterized circuit with noise. The angles are bound once
     * against a compiled (unfused) kernel schedule, without copying the
     * circuit per evaluation.
     */
    void run(const Circuit& circuit, const std::vector<double>& params,
             const NoiseModel& noise);

    /**
     * Run a pre-compiled schedule with noise. The schedule must have
     * been compiled with fuse1q off so each op maps onto one source
     * gate (noise channels are inserted per gate). Backends that
     * evaluate the same circuit at many parameter points should
     * compile once and call this.
     */
    void run(const CompiledCircuit& compiled,
             const std::vector<double>& params, const NoiseModel& noise);

    /** Tr(rho). Should be 1 up to rounding. */
    double trace() const;

    /** Tr(rho^2): purity, 1 for pure states. */
    double purity() const;

    /** Tr(rho P) for a Pauli string. */
    double expectation(const PauliString& pauli) const;

    /** Diagonal of rho: the measurement probability distribution. */
    std::vector<double> probabilities() const;

    /**
     * Force a kernel instruction set (Auto = re-resolve the process
     * default). The unitary halves of every channel application go
     * through the same ISA-dispatched kernel table the state-vector
     * path uses; depolarizing channels are exact averaging loops and
     * stay scalar.
     */
    void setKernelIsa(kernels::KernelIsa isa);

  private:
    void apply1qBoth(int qubit, const std::array<cplx, 4>& m);
    void applyOp(const CompiledOp& op, double resolved_angle);

    int numQubits_;
    const kernels::KernelTable* table_;
    AlignedVector<cplx> data_; // 4^n amplitudes, see file comment
};

} // namespace oscar

#endif // OSCAR_QUANTUM_DENSITY_MATRIX_H
