/**
 * @file
 * Compiled-circuit kernel schedule.
 *
 * A CompiledCircuit lowers a Circuit once into a flat list of kernel
 * operations that can be replayed against raw amplitude arrays without
 * per-gate virtual dispatch or per-gate `Gate` copies:
 *
 *  - adjacent constant 1-qubit gates on the same qubit are fused into
 *    one 2x2 matrix (optional; disabled for per-gate noise insertion),
 *  - diagonal gates (Z, S, Sdg, RZ, RZZ, CZ) take phase-multiply fast
 *    paths instead of the generic 2x2 kernel,
 *  - constant gates carry their resolved payload (matrix / phases);
 *    parameterized gates resolve angle = angle + coeff * p[paramIndex]
 *    at replay time into locals, never mutating the schedule, so one
 *    compiled circuit serves a whole landscape sweep concurrently.
 *
 * The compile pass also records the *parameter frontier*: for every
 * parameter, the first op whose payload depends on it. Replaying ops
 * [0, firstUse(j)) is independent of parameter j, which is what lets
 * the backends checkpoint a shared statevector prefix once and replay
 * only the invalidated suffix per grid point (see
 * backend/statevector_backend.h). Because replaying a checkpointed
 * prefix executes exactly the same kernel sequence as a from-scratch
 * run, checkpointing is bit-exact, not approximate.
 */

#ifndef OSCAR_QUANTUM_COMPILED_CIRCUIT_H
#define OSCAR_QUANTUM_COMPILED_CIRCUIT_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/aligned.h"
#include "src/quantum/circuit.h"
#include "src/quantum/gate.h"
#include "src/quantum/kernels.h"

namespace oscar {

class Statevector;

/**
 * Default cache-blocking window in qubits: 2^10 amplitudes = 16 KiB of
 * complex<double>, which leaves room in a 32-48 KiB L1d for the block
 * plus payloads while still amortizing the loop overhead.
 */
inline constexpr int kDefaultBlockWindow = 10;

/** Lowering options. */
struct CompileOptions
{
    /**
     * Fuse runs of constant 1-qubit gates on the same qubit into one
     * matrix. Must be off when ops need to map 1:1 onto source gates
     * (per-gate noise channels).
     */
    bool fuse1q = true;

    /**
     * Cache-blocking window in qubits (0 disables; clamped to the
     * circuit width). Runs of consecutive ops that are confined to the
     * low `blockWindow` qubits — or diagonal in every higher qubit
     * they touch — are replayed block-by-block over
     * 2^blockWindow-amplitude chunks, so a run streams the statevector
     * once instead of once per op. Value-neutral for a fixed kernel
     * ISA: per amplitude, the operation sequence is unchanged.
     */
    int blockWindow = kDefaultBlockWindow;

    /**
     * Super-kernel fusion window in qubits (0 disables). When > 0,
     * the compile pass collapses eligible op runs inside blocked
     * segments into fused super-kernels and lowers parameterized
     * RX/RY payloads onto the specialized rotation kernels:
     *
     *  - runs of >= 2 consecutive diagonal ops whose qubits all sit
     *    below the block window fold into one per-block diagonal
     *    table (kernels::applyDiagTable), with ops touching higher
     *    qubits kept as per-block context;
     *  - runs of >= 2 consecutive ops confined to the low
     *    min(fuseWindow, blockWindow, 6) qubits collapse into one
     *    dense 2^f x 2^f column-major matrix replayed as a single
     *    GEMM-like matvec per block (kernels::matvecDense).
     *
     * Both rewrites are compile-time decisions (recorded in the plan,
     * never dependent on runtime state) and carry profitability gates
     * so fusion never pessimizes. Unlike blocking, fusion reorders
     * and reassociates arithmetic: replay is bit-identical across
     * batching, checkpoint resume, and frontier-aligned segmentation
     * for a fixed (ISA, fusion plan), but fused and unfused replays
     * of the same circuit agree only to rounding.
     */
    int fuseWindow = 0;
};

/** Kernel selector for one compiled op (see quantum/kernels.h). */
enum class KernelOp : std::uint8_t
{
    Matrix1q, ///< generic 2x2 matrix
    Diag1q,   ///< diagonal 1q phases
    CX,
    CZ,
    Swap,
    PhaseZZ, ///< diagonal ZZ phases (RZZ)
};

/** One op of the compiled schedule. */
struct CompiledOp
{
    KernelOp op;
    GateKind kind;    ///< source gate kind (payload recipe when bound)
    std::int16_t q0 = -1;
    std::int16_t q1 = -1;
    std::int32_t paramIndex = -1; ///< -1: payload below is final
    double angle = 0.0;
    double coeff = 1.0;

    /** Constant payloads (valid when paramIndex < 0). */
    std::array<cplx, 4> matrix{}; ///< Matrix1q
    cplx phase0{};                ///< Diag1q: |0>, PhaseZZ: bits agree
    cplx phase1{};                ///< Diag1q: |1>, PhaseZZ: bits differ

    /** Qubits the op acts on (2 for CX/CZ/Swap/PhaseZZ). */
    int arity() const
    {
        return (op == KernelOp::Matrix1q || op == KernelOp::Diag1q) ? 1
                                                                    : 2;
    }

    /** Effective rotation angle under a parameter binding. */
    double resolvedAngle(const double* params) const
    {
        return paramIndex < 0 ? angle : angle + coeff * params[paramIndex];
    }
};

/**
 * Counters of one or more replay calls (blocked-pass activity).
 * Aggregated by the backends into CostFunction::kernelStats.
 */
struct ReplayCounters
{
    /** Blocked whole-run executions (one per fused pass). */
    std::size_t blockedGroupRuns = 0;

    /** Ops that executed inside a blocked pass. */
    std::size_t blockedOpsApplied = 0;

    /** Fused super-kernel executions (one per unit per replay). */
    std::size_t fusedSuperKernels = 0;

    /** Ops whose individual replay a super-kernel collapsed. */
    std::size_t fusedOpsCollapsed = 0;
};

/** A Circuit lowered to a flat kernel schedule. */
class CompiledCircuit
{
  public:
    CompiledCircuit() = default;

    explicit CompiledCircuit(const Circuit& circuit,
                             const CompileOptions& options = {});

    int numQubits() const { return numQubits_; }
    int numParams() const { return numParams_; }
    std::size_t numOps() const { return ops_.size(); }
    const std::vector<CompiledOp>& ops() const { return ops_; }

    /** Number of source gates merged away by 1q fusion. */
    std::size_t fusedGateCount() const { return fusedGates_; }

    /** Ops before the first parameterized op. */
    std::size_t constantPrefixLength() const { return constantPrefix_; }

    /**
     * First op whose payload depends on parameter j (== numOps() when
     * the circuit never uses j). Every op from that position on is
     * invalidated when p[j] changes.
     */
    std::size_t paramFirstUse(int j) const { return firstUse_[j]; }

    /**
     * The checkpointable depths of the schedule: the sorted distinct
     * first-use positions of all used parameters. A statevector
     * snapshot taken at depth L is fully determined by the parameters
     * with firstUse < L (see paramsUsedBefore).
     */
    const std::vector<std::size_t>& frontierLevels() const
    {
        return frontier_;
    }

    /** Parameter indices with firstUse < level, ascending. */
    std::vector<int> paramsUsedBefore(std::size_t level) const;

    /**
     * Parameter indices ordered by first use in the schedule (unused
     * parameters last). Batches sorted with the earliest-used
     * parameter varying slowest maximize shared prefixes.
     */
    std::vector<int> parameterOrder() const;

    /**
     * Length of the op prefix guaranteed identical under bindings `a`
     * and `b` (bitwise parameter comparison).
     */
    std::size_t sharedPrefixLength(const std::vector<double>& a,
                                   const std::vector<double>& b) const;

    /**
     * Rebuild the blocking plan for a new window (see
     * CompileOptions::blockWindow; 0 disables). Cheap — one linear
     * scan of the schedule — but not thread-safe against concurrent
     * replays of the same instance.
     */
    void setBlockWindow(int window);

    /** Effective blocking window in qubits (0 when disabled). */
    int blockWindow() const { return blockBits_; }

    /** Blocked runs in the plan (fused multi-op passes). */
    std::size_t numBlockedGroups() const { return blockedGroups_; }

    /** Ops covered by blocked runs. */
    std::size_t blockedOpCount() const { return blockedOps_; }

    /**
     * Rebuild the super-kernel fusion plan for a new window (see
     * CompileOptions::fuseWindow; 0 disables). Changing the window
     * changes the fusion plan and therefore the replay's rounding —
     * only replays under the same (ISA, fusion plan) compare bitwise.
     * Not thread-safe against concurrent replays of this instance.
     */
    void setFuseWindow(int window);

    /** Effective fusion window in qubits (0 when disabled). */
    int fuseWindow() const { return fuseBits_; }

    /** Fused super-kernel units in the current plan. */
    std::size_t numFusedUnits() const { return units_.size(); }

    /** Ops collapsed into super-kernels (per full replay). */
    std::size_t fusedOpCount() const { return fusedOps_; }

    /**
     * Replay ops [begin, end) onto a raw amplitude array of length
     * `dim` (2^numQubits for a statevector). `params` may be null for
     * a parameter-free schedule. Thread-safe and const: parameterized
     * payloads are resolved into locals.
     *
     * Kernels dispatch through `table` (the process default when
     * omitted); `counters`, when given, accumulates blocked-pass
     * activity. For any fixed table, the values written are
     * independent of the blocking plan and — with fusion off — of how
     * [begin, end) is segmented across calls. With fusion on, fused
     * units never straddle frontier levels, so any segmentation whose
     * cut points are frontier levels (checkpoint resume, batched
     * suffix replay) executes the identical unit sequence and stays
     * bit-exact; a cut in the middle of a unit makes that unit fall
     * back to per-op replay for that call, which is deterministic but
     * differs from the fused result by rounding.
     */
    void runRange(cplx* amps, std::size_t dim, std::size_t begin,
                  std::size_t end, const double* params,
                  const kernels::KernelTable& table,
                  ReplayCounters* counters = nullptr) const;

    /** runRange through the process-default kernel table. */
    void runRange(cplx* amps, std::size_t dim, std::size_t begin,
                  std::size_t end, const double* params) const;

    /** Replay the full schedule onto a Statevector (qubits checked). */
    void run(Statevector& state, const std::vector<double>& params) const;

    /** Replay a parameter-free schedule onto a Statevector. */
    void run(Statevector& state) const;

  private:
    /**
     * One entry of the blocking plan: a contiguous op range replayed
     * either op-by-op (blocked = false) or block-by-block as a fused
     * pass (blocked = true; every op in the range is block-local or
     * diagonal above the window).
     */
    struct PlanSegment
    {
        std::uint32_t begin;
        std::uint32_t end;
        bool blocked;
        std::uint32_t unitBegin = 0; ///< into units_, empty when unfused
        std::uint32_t unitEnd = 0;
    };

    enum class FuseKind : std::uint8_t
    {
        DiagTable, ///< per-block diagonal table over blockWindow qubits
        Dense,     ///< dense 2^fbits x 2^fbits matvec per sub-block
    };

    /**
     * One compile-time super-kernel: ops [begin, end) of a blocked
     * segment collapse into a single payload (diagonal table or dense
     * column-major matrix). Constant payloads are prebuilt into
     * constPayload_ at plan time; parameterized payloads rebuild per
     * replay call into 64-byte-aligned scratch at the same offset.
     * Units never straddle frontier levels, so frontier-aligned
     * segmentation (checkpointing) replays the identical sequence.
     */
    struct FusedUnit
    {
        std::uint32_t begin;
        std::uint32_t end;
        FuseKind kind;
        std::uint8_t fbits;          ///< payload dimension = 2^fbits
        bool constant;               ///< payload prebuilt at plan time
        std::uint32_t payloadOffset; ///< into constPayload_ or scratch
        std::uint32_t foldCount;     ///< ops collapsed into the payload
    };

    void finalizeFrontier();

    /** True when `op` can join a blocked run under window `k`. */
    static bool blockable(const CompiledOp& op, int k);

    /** Rebuild plan_ + units_ from blockBits_ / fuseBits_. */
    void rebuildPlan();

    /** Form the fused units of one blocked segment. */
    void formUnits(PlanSegment& seg);

    /**
     * Build a unit's diagonal table through the given kernel table.
     * Constant prebuilds pass the scalar table (ISA-independent);
     * parameterized replays pass the active one (per-ISA, but fixed
     * for a fixed (ISA, plan) pair, so replays stay bit-identical).
     */
    void buildDiagTable(const FusedUnit& unit, const double* params,
                        const kernels::KernelTable& t,
                        cplx* table) const;

    /** Build a unit's dense matrix (scalar math, ISA-independent). */
    void buildDenseMatrix(const FusedUnit& unit, const double* params,
                          cplx* matrix) const;

    /** Execute ops [begin, end) of a blocked run block-by-block. */
    void runBlocked(cplx* amps, std::size_t dim, const PlanSegment& seg,
                    std::size_t begin, std::size_t end,
                    const double* params,
                    const kernels::KernelTable& table,
                    ReplayCounters* counters) const;

    int numQubits_ = 0;
    int numParams_ = 0;
    std::size_t fusedGates_ = 0;
    std::size_t constantPrefix_ = 0;
    std::vector<CompiledOp> ops_;
    std::vector<std::size_t> firstUse_; ///< per param, numOps() if unused
    std::vector<std::size_t> frontier_;

    int blockBits_ = 0; ///< effective window, 0 = blocking off
    std::size_t blockedGroups_ = 0;
    std::size_t blockedOps_ = 0;
    std::vector<PlanSegment> plan_;

    int fuseBits_ = 0; ///< effective fusion window, 0 = fusion off
    std::size_t fusedOps_ = 0;
    std::vector<FusedUnit> units_;
    AlignedVector<cplx> constPayload_; ///< prebuilt unit payloads
    std::size_t paramScratchSize_ = 0; ///< per-call scratch (complexes)
    std::size_t matvecScratchSize_ = 0;
};

} // namespace oscar

#endif // OSCAR_QUANTUM_COMPILED_CIRCUIT_H
