/**
 * @file
 * Compiled-circuit kernel schedule.
 *
 * A CompiledCircuit lowers a Circuit once into a flat list of kernel
 * operations that can be replayed against raw amplitude arrays without
 * per-gate virtual dispatch or per-gate `Gate` copies:
 *
 *  - adjacent constant 1-qubit gates on the same qubit are fused into
 *    one 2x2 matrix (optional; disabled for per-gate noise insertion),
 *  - diagonal gates (Z, S, Sdg, RZ, RZZ, CZ) take phase-multiply fast
 *    paths instead of the generic 2x2 kernel,
 *  - constant gates carry their resolved payload (matrix / phases);
 *    parameterized gates resolve angle = angle + coeff * p[paramIndex]
 *    at replay time into locals, never mutating the schedule, so one
 *    compiled circuit serves a whole landscape sweep concurrently.
 *
 * The compile pass also records the *parameter frontier*: for every
 * parameter, the first op whose payload depends on it. Replaying ops
 * [0, firstUse(j)) is independent of parameter j, which is what lets
 * the backends checkpoint a shared statevector prefix once and replay
 * only the invalidated suffix per grid point (see
 * backend/statevector_backend.h). Because replaying a checkpointed
 * prefix executes exactly the same kernel sequence as a from-scratch
 * run, checkpointing is bit-exact, not approximate.
 */

#ifndef OSCAR_QUANTUM_COMPILED_CIRCUIT_H
#define OSCAR_QUANTUM_COMPILED_CIRCUIT_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/quantum/circuit.h"
#include "src/quantum/gate.h"
#include "src/quantum/kernels.h"

namespace oscar {

class Statevector;

/**
 * Default cache-blocking window in qubits: 2^10 amplitudes = 16 KiB of
 * complex<double>, which leaves room in a 32-48 KiB L1d for the block
 * plus payloads while still amortizing the loop overhead.
 */
inline constexpr int kDefaultBlockWindow = 10;

/** Lowering options. */
struct CompileOptions
{
    /**
     * Fuse runs of constant 1-qubit gates on the same qubit into one
     * matrix. Must be off when ops need to map 1:1 onto source gates
     * (per-gate noise channels).
     */
    bool fuse1q = true;

    /**
     * Cache-blocking window in qubits (0 disables; clamped to the
     * circuit width). Runs of consecutive ops that are confined to the
     * low `blockWindow` qubits — or diagonal in every higher qubit
     * they touch — are replayed block-by-block over
     * 2^blockWindow-amplitude chunks, so a run streams the statevector
     * once instead of once per op. Value-neutral for a fixed kernel
     * ISA: per amplitude, the operation sequence is unchanged.
     */
    int blockWindow = kDefaultBlockWindow;
};

/** Kernel selector for one compiled op (see quantum/kernels.h). */
enum class KernelOp : std::uint8_t
{
    Matrix1q, ///< generic 2x2 matrix
    Diag1q,   ///< diagonal 1q phases
    CX,
    CZ,
    Swap,
    PhaseZZ, ///< diagonal ZZ phases (RZZ)
};

/** One op of the compiled schedule. */
struct CompiledOp
{
    KernelOp op;
    GateKind kind;    ///< source gate kind (payload recipe when bound)
    std::int16_t q0 = -1;
    std::int16_t q1 = -1;
    std::int32_t paramIndex = -1; ///< -1: payload below is final
    double angle = 0.0;
    double coeff = 1.0;

    /** Constant payloads (valid when paramIndex < 0). */
    std::array<cplx, 4> matrix{}; ///< Matrix1q
    cplx phase0{};                ///< Diag1q: |0>, PhaseZZ: bits agree
    cplx phase1{};                ///< Diag1q: |1>, PhaseZZ: bits differ

    /** Qubits the op acts on (2 for CX/CZ/Swap/PhaseZZ). */
    int arity() const
    {
        return (op == KernelOp::Matrix1q || op == KernelOp::Diag1q) ? 1
                                                                    : 2;
    }

    /** Effective rotation angle under a parameter binding. */
    double resolvedAngle(const double* params) const
    {
        return paramIndex < 0 ? angle : angle + coeff * params[paramIndex];
    }
};

/**
 * Counters of one or more replay calls (blocked-pass activity).
 * Aggregated by the backends into CostFunction::kernelStats.
 */
struct ReplayCounters
{
    /** Blocked whole-run executions (one per fused pass). */
    std::size_t blockedGroupRuns = 0;

    /** Ops that executed inside a blocked pass. */
    std::size_t blockedOpsApplied = 0;
};

/** A Circuit lowered to a flat kernel schedule. */
class CompiledCircuit
{
  public:
    CompiledCircuit() = default;

    explicit CompiledCircuit(const Circuit& circuit,
                             const CompileOptions& options = {});

    int numQubits() const { return numQubits_; }
    int numParams() const { return numParams_; }
    std::size_t numOps() const { return ops_.size(); }
    const std::vector<CompiledOp>& ops() const { return ops_; }

    /** Number of source gates merged away by 1q fusion. */
    std::size_t fusedGateCount() const { return fusedGates_; }

    /** Ops before the first parameterized op. */
    std::size_t constantPrefixLength() const { return constantPrefix_; }

    /**
     * First op whose payload depends on parameter j (== numOps() when
     * the circuit never uses j). Every op from that position on is
     * invalidated when p[j] changes.
     */
    std::size_t paramFirstUse(int j) const { return firstUse_[j]; }

    /**
     * The checkpointable depths of the schedule: the sorted distinct
     * first-use positions of all used parameters. A statevector
     * snapshot taken at depth L is fully determined by the parameters
     * with firstUse < L (see paramsUsedBefore).
     */
    const std::vector<std::size_t>& frontierLevels() const
    {
        return frontier_;
    }

    /** Parameter indices with firstUse < level, ascending. */
    std::vector<int> paramsUsedBefore(std::size_t level) const;

    /**
     * Parameter indices ordered by first use in the schedule (unused
     * parameters last). Batches sorted with the earliest-used
     * parameter varying slowest maximize shared prefixes.
     */
    std::vector<int> parameterOrder() const;

    /**
     * Length of the op prefix guaranteed identical under bindings `a`
     * and `b` (bitwise parameter comparison).
     */
    std::size_t sharedPrefixLength(const std::vector<double>& a,
                                   const std::vector<double>& b) const;

    /**
     * Rebuild the blocking plan for a new window (see
     * CompileOptions::blockWindow; 0 disables). Cheap — one linear
     * scan of the schedule — but not thread-safe against concurrent
     * replays of the same instance.
     */
    void setBlockWindow(int window);

    /** Effective blocking window in qubits (0 when disabled). */
    int blockWindow() const { return blockBits_; }

    /** Blocked runs in the plan (fused multi-op passes). */
    std::size_t numBlockedGroups() const { return blockedGroups_; }

    /** Ops covered by blocked runs. */
    std::size_t blockedOpCount() const { return blockedOps_; }

    /**
     * Replay ops [begin, end) onto a raw amplitude array of length
     * `dim` (2^numQubits for a statevector). `params` may be null for
     * a parameter-free schedule. Thread-safe and const: parameterized
     * payloads are resolved into locals.
     *
     * Kernels dispatch through `table` (the process default when
     * omitted); `counters`, when given, accumulates blocked-pass
     * activity. For any fixed table, the values written are
     * independent of the blocking plan and of how [begin, end) is
     * segmented across calls — the per-amplitude operation sequence
     * never changes.
     */
    void runRange(cplx* amps, std::size_t dim, std::size_t begin,
                  std::size_t end, const double* params,
                  const kernels::KernelTable& table,
                  ReplayCounters* counters = nullptr) const;

    /** runRange through the process-default kernel table. */
    void runRange(cplx* amps, std::size_t dim, std::size_t begin,
                  std::size_t end, const double* params) const;

    /** Replay the full schedule onto a Statevector (qubits checked). */
    void run(Statevector& state, const std::vector<double>& params) const;

    /** Replay a parameter-free schedule onto a Statevector. */
    void run(Statevector& state) const;

  private:
    /**
     * One entry of the blocking plan: a contiguous op range replayed
     * either op-by-op (blocked = false) or block-by-block as a fused
     * pass (blocked = true; every op in the range is block-local or
     * diagonal above the window).
     */
    struct PlanSegment
    {
        std::uint32_t begin;
        std::uint32_t end;
        bool blocked;
    };

    void finalizeFrontier();

    /** True when `op` can join a blocked run under window `k`. */
    static bool blockable(const CompiledOp& op, int k);

    /** Execute ops [begin, end) of a blocked run block-by-block. */
    void runBlocked(cplx* amps, std::size_t dim, std::size_t begin,
                    std::size_t end, const double* params,
                    const kernels::KernelTable& table) const;

    int numQubits_ = 0;
    int numParams_ = 0;
    std::size_t fusedGates_ = 0;
    std::size_t constantPrefix_ = 0;
    std::vector<CompiledOp> ops_;
    std::vector<std::size_t> firstUse_; ///< per param, numOps() if unused
    std::vector<std::size_t> frontier_;

    int blockBits_ = 0; ///< effective window, 0 = blocking off
    std::size_t blockedGroups_ = 0;
    std::size_t blockedOps_ = 0;
    std::vector<PlanSegment> plan_;
};

} // namespace oscar

#endif // OSCAR_QUANTUM_COMPILED_CIRCUIT_H
