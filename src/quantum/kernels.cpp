#include "src/quantum/kernels.h"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace oscar {
namespace kernels {

void
matrix1q(cplx* amps, std::size_t dim, int qubit,
         const std::array<cplx, 4>& m)
{
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            const cplx a0 = amps[i0];
            const cplx a1 = amps[i1];
            amps[i0] = m[0] * a0 + m[1] * a1;
            amps[i1] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
diag1q(cplx* amps, std::size_t dim, int qubit, cplx phase0, cplx phase1)
{
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            amps[i0] *= phase0;
            amps[i1] *= phase1;
        }
    }
}

void
cx(cplx* amps, std::size_t dim, int control, int target)
{
    const std::size_t cmask = std::size_t{1} << control;
    const std::size_t tmask = std::size_t{1} << target;
    for (std::size_t i = 0; i < dim; ++i) {
        // Swap each pair once: visit the target=0 member only.
        if ((i & cmask) && !(i & tmask))
            std::swap(amps[i], amps[i | tmask]);
    }
}

void
cz(cplx* amps, std::size_t dim, int a, int b)
{
    const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
    for (std::size_t i = 0; i < dim; ++i) {
        if ((i & mask) == mask)
            amps[i] = -amps[i];
    }
}

void
swapQubits(cplx* amps, std::size_t dim, int a, int b)
{
    const std::size_t amask = std::size_t{1} << a;
    const std::size_t bmask = std::size_t{1} << b;
    for (std::size_t i = 0; i < dim; ++i) {
        if ((i & amask) && !(i & bmask))
            std::swap(amps[i], amps[(i & ~amask) | bmask]);
    }
}

void
phaseZZ(cplx* amps, std::size_t dim, int a, int b, cplx same, cplx diff)
{
    const std::size_t amask = std::size_t{1} << a;
    const std::size_t bmask = std::size_t{1} << b;
    for (std::size_t i = 0; i < dim; ++i) {
        const bool ba = i & amask;
        const bool bb = i & bmask;
        amps[i] *= (ba == bb) ? same : diff;
    }
}

void
scale(cplx* amps, std::size_t dim, cplx factor)
{
    for (std::size_t i = 0; i < dim; ++i)
        amps[i] *= factor;
}

void
negateMasked(cplx* amps, std::size_t dim, std::size_t mask)
{
    for (std::size_t i = 0; i < dim; ++i) {
        if ((i & mask) == mask)
            amps[i] = -amps[i];
    }
}

void
flipBit(cplx* amps, std::size_t dim, int target)
{
    const std::size_t tmask = std::size_t{1} << target;
    for (std::size_t i = 0; i < dim; ++i) {
        if (!(i & tmask))
            std::swap(amps[i], amps[i | tmask]);
    }
}

void
rotX(cplx* amps, std::size_t dim, int qubit, double c, double s)
{
    // [[c, -i s], [-i s, c]]: a0' = c a0 + s (-i a1) and symmetrically
    // for a1', where -i (x + i y) = y - i x.
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            const cplx a0 = amps[i0];
            const cplx a1 = amps[i1];
            amps[i0] = cplx(c * a0.real() + s * a1.imag(),
                            c * a0.imag() - s * a1.real());
            amps[i1] = cplx(c * a1.real() + s * a0.imag(),
                            c * a1.imag() - s * a0.real());
        }
    }
}

void
rotY(cplx* amps, std::size_t dim, int qubit, double c, double s)
{
    // [[c, -s], [s, c]]: all-real matrix, componentwise arithmetic.
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            const cplx a0 = amps[i0];
            const cplx a1 = amps[i1];
            amps[i0] = cplx(c * a0.real() - s * a1.real(),
                            c * a0.imag() - s * a1.imag());
            amps[i1] = cplx(s * a0.real() + c * a1.real(),
                            s * a0.imag() + c * a1.imag());
        }
    }
}

void
rotX2(cplx* amps, std::size_t dim, int qa, int qb, double ca, double sa,
      double cb, double sb)
{
    // The portable pair is literally the two single passes — the
    // bit-identity contract holds by construction, and the scalar
    // tier gains nothing from keeping intermediates in registers.
    rotX(amps, dim, qa, ca, sa);
    rotX(amps, dim, qb, cb, sb);
}

void
rotY2(cplx* amps, std::size_t dim, int qa, int qb, double ca, double sa,
      double cb, double sb)
{
    rotY(amps, dim, qa, ca, sa);
    rotY(amps, dim, qb, cb, sb);
}

void
applyDiagTable(cplx* amps, std::size_t dim, const cplx* table)
{
    for (std::size_t i = 0; i < dim; ++i)
        amps[i] *= table[i];
}

void
matvecDense(cplx* amps, std::size_t dim, int fbits, const cplx* matrix,
            cplx* scratch)
{
    const std::size_t fdim = std::size_t{1} << fbits;
    for (std::size_t base = 0; base < dim; base += fdim) {
        cplx* blk = amps + base;
        // Column-major accumulation in ascending column order: out
        // starts at column 0 scaled by in[0], then folds the rest.
        for (std::size_t r = 0; r < fdim; ++r)
            scratch[r] = matrix[r] * blk[0];
        for (std::size_t col = 1; col < fdim; ++col) {
            const cplx in = blk[col];
            const cplx* m = matrix + col * fdim;
            for (std::size_t r = 0; r < fdim; ++r)
                scratch[r] += m[r] * in;
        }
        for (std::size_t r = 0; r < fdim; ++r)
            blk[r] = scratch[r];
    }
}

double
expectationDiagonal(const cplx* amps, const double* diag, std::size_t dim)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i)
        acc += std::norm(amps[i]) * diag[i];
    return acc;
}

void
expectationDiagonalBatch(const cplx* const* states, std::size_t count,
                         const double* diag, std::size_t dim, double* out)
{
    if (count == 0)
        return;
    if (count == 1) {
        out[0] = expectationDiagonal(states[0], diag, dim);
        return;
    }
    // One pass over diag, but each state's accumulator adds terms in
    // the same index order as the single-state kernel above, so
    // out[s] is bit-identical to expectationDiagonal(states[s], ...).
    std::vector<double> acc(count, 0.0);
    for (std::size_t i = 0; i < dim; ++i) {
        const double d = diag[i];
        for (std::size_t s = 0; s < count; ++s)
            acc[s] += std::norm(states[s][i]) * d;
    }
    std::memcpy(out, acc.data(), count * sizeof(double));
}

double
expectationPauli(const cplx* amps, std::size_t dim,
                 std::uint64_t flip_mask, std::uint64_t sign_mask,
                 cplx phase)
{
    const std::size_t flip = static_cast<std::size_t>(flip_mask);
    cplx acc(0.0, 0.0);
    for (std::size_t i = 0; i < dim; ++i) {
        const std::size_t j = i ^ flip;
        const double s =
            (std::popcount(j & sign_mask) & 1) ? -1.0 : 1.0;
        acc += std::conj(amps[i]) * amps[j] * s;
    }
    return (phase * acc).real();
}

void
expectationPauliBatch(const cplx* const* states, std::size_t count,
                      std::size_t dim, std::uint64_t flip_mask,
                      std::uint64_t sign_mask, cplx phase, double* out)
{
    if (count == 0)
        return;
    if (count == 1) {
        out[0] = expectationPauli(states[0], dim, flip_mask, sign_mask,
                                  phase);
        return;
    }
    // Shares the index/sign computation across states, but each
    // state's accumulator adds terms in the same order as the
    // single-state kernel, so out[s] is bit-identical to
    // expectationPauli(states[s], ...).
    const std::size_t flip = static_cast<std::size_t>(flip_mask);
    std::vector<cplx> acc(count, cplx(0.0, 0.0));
    for (std::size_t i = 0; i < dim; ++i) {
        const std::size_t j = i ^ flip;
        const double s =
            (std::popcount(j & sign_mask) & 1) ? -1.0 : 1.0;
        for (std::size_t st = 0; st < count; ++st)
            acc[st] += std::conj(states[st][i]) * states[st][j] * s;
    }
    for (std::size_t st = 0; st < count; ++st)
        out[st] = (phase * acc[st]).real();
}

// ---------------------------------------------------------------------
// ISA dispatch
// ---------------------------------------------------------------------

namespace detail {

/**
 * Defined in kernels_avx2.cpp: the AVX2+FMA table when the build
 * enables it (OSCAR_HAVE_AVX2), nullptr otherwise.
 */
const KernelTable* avx2KernelTableOrNull();

/**
 * Defined in kernels_avx512.cpp: the AVX-512 table when the build
 * enables it (OSCAR_HAVE_AVX512), nullptr otherwise.
 */
const KernelTable* avx512KernelTableOrNull();

} // namespace detail

const char*
isaName(KernelIsa isa)
{
    switch (isa) {
      case KernelIsa::Scalar:
        return "scalar";
      case KernelIsa::Avx2:
        return "avx2";
      case KernelIsa::Avx512:
        return "avx512";
      case KernelIsa::Auto:
        return "auto";
    }
    return "unknown";
}

KernelIsa
parseIsaName(const char* name)
{
    if (name) {
        if (std::strcmp(name, "scalar") == 0)
            return KernelIsa::Scalar;
        if (std::strcmp(name, "avx2") == 0)
            return KernelIsa::Avx2;
        if (std::strcmp(name, "avx512") == 0)
            return KernelIsa::Avx512;
        if (std::strcmp(name, "auto") == 0)
            return KernelIsa::Auto;
    }
    throw std::invalid_argument(
        "unknown kernel ISA \"" + std::string(name ? name : "") +
        "\" (valid: scalar, avx2, avx512, auto)");
}

const KernelTable&
scalarKernelTable()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.isa = KernelIsa::Scalar;
        t.matrix1q = &matrix1q;
        t.diag1q = &diag1q;
        t.cx = &cx;
        t.cz = &cz;
        t.swapQubits = &swapQubits;
        t.phaseZZ = &phaseZZ;
        t.scale = &scale;
        t.negateMasked = &negateMasked;
        t.flipBit = &flipBit;
        t.rotX = &rotX;
        t.rotY = &rotY;
        t.rotX2 = &rotX2;
        t.rotY2 = &rotY2;
        t.applyDiagTable = &applyDiagTable;
        t.matvecDense = &matvecDense;
        t.expectationDiagonalBatch = &expectationDiagonalBatch;
        t.expectationPauli = &expectationPauli;
        t.expectationPauliBatch = &expectationPauliBatch;
        return t;
    }();
    return table;
}

namespace {

bool
cpuHasAvx2Fma()
{
#if defined(__x86_64__) || defined(_M_X64)
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

bool
cpuHasAvx512()
{
#if defined(__x86_64__) || defined(_M_X64)
    // The AVX-512 TU is compiled -mavx512f -mavx512dq; gate on both
    // feature bits so a CPU with F but not DQ never runs it.
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq");
#else
    return false;
#endif
}

std::string
availableIsaList()
{
    std::string s = "scalar";
    if (avx2Available())
        s += ", avx2";
    if (avx512Available())
        s += ", avx512";
    return s;
}

} // namespace

bool
avx2Available()
{
    static const bool available =
        detail::avx2KernelTableOrNull() != nullptr && cpuHasAvx2Fma();
    return available;
}

bool
avx512Available()
{
    static const bool available =
        detail::avx512KernelTableOrNull() != nullptr && cpuHasAvx512();
    return available;
}

const KernelTable&
kernelTable(KernelIsa isa)
{
    // Strict dispatch: a pinned ISA that cannot run here is an error,
    // never a silent downgrade. A pinned ISA silently degrading would
    // let distributed replicas drift from the coordinator by rounding.
    switch (isa) {
      case KernelIsa::Auto:
        return defaultKernelTable();
      case KernelIsa::Scalar:
        return scalarKernelTable();
      case KernelIsa::Avx2:
        if (avx2Available())
            return *detail::avx2KernelTableOrNull();
        break;
      case KernelIsa::Avx512:
        if (avx512Available())
            return *detail::avx512KernelTableOrNull();
        break;
    }
    throw std::runtime_error(
        std::string("kernel ISA \"") + isaName(isa) +
        "\" is not available on this machine (available: " +
        availableIsaList() + ")");
}

const KernelTable&
defaultKernelTable()
{
    // A malformed OSCAR_KERNEL_ISA throws (every call, until the
    // environment is fixed): a user pinning the ISA for a determinism
    // experiment must never silently run on a different one, and a
    // valid name the machine cannot execute throws too, via the
    // strict kernelTable() dispatch above. `auto` (and no env at all)
    // picks the widest tier the CPU and build both support.
    static const KernelTable& table = [&]() -> const KernelTable& {
        if (const char* env = std::getenv("OSCAR_KERNEL_ISA")) {
            KernelIsa isa;
            try {
                isa = parseIsaName(env);
            } catch (const std::invalid_argument& e) {
                throw std::runtime_error(
                    std::string("OSCAR_KERNEL_ISA: ") + e.what());
            }
            if (isa != KernelIsa::Auto)
                return kernelTable(isa);
        }
        if (avx512Available())
            return *detail::avx512KernelTableOrNull();
        if (avx2Available())
            return *detail::avx2KernelTableOrNull();
        return scalarKernelTable();
    }();
    return table;
}

} // namespace kernels
} // namespace oscar
