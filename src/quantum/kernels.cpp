#include "src/quantum/kernels.h"

#include <utility>

namespace oscar {
namespace kernels {

void
matrix1q(cplx* amps, std::size_t dim, int qubit,
         const std::array<cplx, 4>& m)
{
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            const cplx a0 = amps[i0];
            const cplx a1 = amps[i1];
            amps[i0] = m[0] * a0 + m[1] * a1;
            amps[i1] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
diag1q(cplx* amps, std::size_t dim, int qubit, cplx phase0, cplx phase1)
{
    const std::size_t stride = std::size_t{1} << qubit;
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            amps[i0] *= phase0;
            amps[i1] *= phase1;
        }
    }
}

void
cx(cplx* amps, std::size_t dim, int control, int target)
{
    const std::size_t cmask = std::size_t{1} << control;
    const std::size_t tmask = std::size_t{1} << target;
    for (std::size_t i = 0; i < dim; ++i) {
        // Swap each pair once: visit the target=0 member only.
        if ((i & cmask) && !(i & tmask))
            std::swap(amps[i], amps[i | tmask]);
    }
}

void
cz(cplx* amps, std::size_t dim, int a, int b)
{
    const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
    for (std::size_t i = 0; i < dim; ++i) {
        if ((i & mask) == mask)
            amps[i] = -amps[i];
    }
}

void
swapQubits(cplx* amps, std::size_t dim, int a, int b)
{
    const std::size_t amask = std::size_t{1} << a;
    const std::size_t bmask = std::size_t{1} << b;
    for (std::size_t i = 0; i < dim; ++i) {
        if ((i & amask) && !(i & bmask))
            std::swap(amps[i], amps[(i & ~amask) | bmask]);
    }
}

void
phaseZZ(cplx* amps, std::size_t dim, int a, int b, cplx same, cplx diff)
{
    const std::size_t amask = std::size_t{1} << a;
    const std::size_t bmask = std::size_t{1} << b;
    for (std::size_t i = 0; i < dim; ++i) {
        const bool ba = i & amask;
        const bool bb = i & bmask;
        amps[i] *= (ba == bb) ? same : diff;
    }
}

} // namespace kernels
} // namespace oscar
