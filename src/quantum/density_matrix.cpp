#include "src/quantum/density_matrix.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/quantum/compiled_circuit.h"
#include "src/quantum/kernels.h"

namespace oscar {

namespace {

std::array<cplx, 4>
conjugate(const std::array<cplx, 4>& m)
{
    return {std::conj(m[0]), std::conj(m[1]), std::conj(m[2]),
            std::conj(m[3])};
}

} // namespace

DensityMatrix::DensityMatrix(int num_qubits)
    : numQubits_(num_qubits), table_(&kernels::defaultKernelTable())
{
    if (num_qubits < 1 || num_qubits > 13)
        throw std::invalid_argument(
            "DensityMatrix: unsupported qubit count (max 13)");
    data_.assign(std::size_t{1} << (2 * num_qubits), cplx(0.0, 0.0));
    data_[0] = 1.0;
}

void
DensityMatrix::reset()
{
    std::fill(data_.begin(), data_.end(), cplx(0.0, 0.0));
    data_[0] = 1.0;
}

cplx
DensityMatrix::element(std::size_t row, std::size_t col) const
{
    assert(row < dim() && col < dim());
    return data_[row + (col << numQubits_)];
}

void
DensityMatrix::setKernelIsa(kernels::KernelIsa isa)
{
    table_ = &kernels::kernelTable(isa);
}

void
DensityMatrix::apply1qBoth(int qubit, const std::array<cplx, 4>& m)
{
    table_->matrix1q(data_.data(), data_.size(), qubit, m);
    table_->matrix1q(data_.data(), data_.size(), qubit + numQubits_,
                     conjugate(m));
}

void
DensityMatrix::applyGate(const Gate& gate)
{
    assert(gate.paramIndex < 0 && "gate angle must be resolved");
    const kernels::KernelTable& t = *table_;
    cplx* d = data_.data();
    const std::size_t dim = data_.size();
    const int n = numQubits_;
    switch (gate.kind) {
      case GateKind::CX:
        t.cx(d, dim, gate.qubits[0], gate.qubits[1]);
        t.cx(d, dim, gate.qubits[0] + n, gate.qubits[1] + n);
        return;
      case GateKind::CZ:
        t.cz(d, dim, gate.qubits[0], gate.qubits[1]);
        t.cz(d, dim, gate.qubits[0] + n, gate.qubits[1] + n);
        return;
      case GateKind::SWAP:
        t.swapQubits(d, dim, gate.qubits[0], gate.qubits[1]);
        t.swapQubits(d, dim, gate.qubits[0] + n, gate.qubits[1] + n);
        return;
      case GateKind::RZZ: {
        const cplx same = std::exp(cplx(0.0, -gate.angle / 2));
        const cplx diff = std::exp(cplx(0.0, gate.angle / 2));
        t.phaseZZ(d, dim, gate.qubits[0], gate.qubits[1], same, diff);
        // conj(RZZ(theta)) = RZZ(-theta)
        t.phaseZZ(d, dim, gate.qubits[0] + n, gate.qubits[1] + n,
                  std::conj(same), std::conj(diff));
        return;
      }
      default:
        apply1qBoth(gate.qubits[0], gate.matrix1q(gate.angle));
        return;
    }
}

void
DensityMatrix::applyOp(const CompiledOp& op, double resolved_angle)
{
    const kernels::KernelTable& t = *table_;
    cplx* d = data_.data();
    const std::size_t dim = data_.size();
    const int n = numQubits_;
    switch (op.op) {
      case KernelOp::Matrix1q: {
        const std::array<cplx, 4> m =
            op.paramIndex < 0 ? op.matrix
                              : gateMatrix1q(op.kind, resolved_angle);
        apply1qBoth(op.q0, m);
        return;
      }
      case KernelOp::Diag1q: {
        cplx p0 = op.phase0, p1 = op.phase1;
        if (op.paramIndex >= 0) {
            p0 = std::exp(cplx(0.0, -resolved_angle / 2));
            p1 = std::exp(cplx(0.0, resolved_angle / 2));
        }
        t.diag1q(d, dim, op.q0, p0, p1);
        t.diag1q(d, dim, op.q0 + n, std::conj(p0), std::conj(p1));
        return;
      }
      case KernelOp::CX:
        t.cx(d, dim, op.q0, op.q1);
        t.cx(d, dim, op.q0 + n, op.q1 + n);
        return;
      case KernelOp::CZ:
        t.cz(d, dim, op.q0, op.q1);
        t.cz(d, dim, op.q0 + n, op.q1 + n);
        return;
      case KernelOp::Swap:
        t.swapQubits(d, dim, op.q0, op.q1);
        t.swapQubits(d, dim, op.q0 + n, op.q1 + n);
        return;
      case KernelOp::PhaseZZ: {
        cplx same = op.phase0, diff = op.phase1;
        if (op.paramIndex >= 0) {
            same = std::exp(cplx(0.0, -resolved_angle / 2));
            diff = std::exp(cplx(0.0, resolved_angle / 2));
        }
        t.phaseZZ(d, dim, op.q0, op.q1, same, diff);
        t.phaseZZ(d, dim, op.q0 + n, op.q1 + n, std::conj(same),
                  std::conj(diff));
        return;
      }
    }
}

void
DensityMatrix::applyDepolarizing1(int qubit, double p)
{
    if (p <= 0.0)
        return;
    const double lambda = 4.0 * p / 3.0;
    const std::size_t rmask = std::size_t{1} << qubit;
    const std::size_t cmask = std::size_t{1} << (qubit + numQubits_);
    // Process each 2x2 block in the qubit subspace exactly once by
    // iterating over indices with both block bits clear.
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (i & (rmask | cmask))
            continue;
        const std::size_t i00 = i;
        const std::size_t i01 = i | cmask;
        const std::size_t i10 = i | rmask;
        const std::size_t i11 = i | rmask | cmask;
        const cplx d00 = data_[i00];
        const cplx d11 = data_[i11];
        const cplx avg = 0.5 * (d00 + d11);
        data_[i00] = (1.0 - lambda) * d00 + lambda * avg;
        data_[i11] = (1.0 - lambda) * d11 + lambda * avg;
        data_[i01] *= (1.0 - lambda);
        data_[i10] *= (1.0 - lambda);
    }
}

void
DensityMatrix::applyDepolarizing2(int qubit_a, int qubit_b, double p)
{
    if (p <= 0.0)
        return;
    const double lambda = 16.0 * p / 15.0;
    const int n = numQubits_;
    const std::size_t ra = std::size_t{1} << qubit_a;
    const std::size_t rb = std::size_t{1} << qubit_b;
    const std::size_t ca = std::size_t{1} << (qubit_a + n);
    const std::size_t cb = std::size_t{1} << (qubit_b + n);
    const std::size_t all = ra | rb | ca | cb;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        if (i & all)
            continue;
        // The 4x4 block in the (qubit_a, qubit_b) subspace. Row/col
        // sub-index s in {0..3}: bit0 -> qubit_a, bit1 -> qubit_b.
        auto idx = [&](int r, int c) {
            std::size_t j = i;
            if (r & 1) j |= ra;
            if (r & 2) j |= rb;
            if (c & 1) j |= ca;
            if (c & 2) j |= cb;
            return j;
        };
        cplx tr(0.0, 0.0);
        for (int s = 0; s < 4; ++s)
            tr += data_[idx(s, s)];
        const cplx avg = 0.25 * tr;
        for (int r = 0; r < 4; ++r) {
            for (int c = 0; c < 4; ++c) {
                cplx& e = data_[idx(r, c)];
                e *= (1.0 - lambda);
                if (r == c)
                    e += lambda * avg;
            }
        }
    }
}

void
DensityMatrix::run(const Circuit& circuit, const NoiseModel& noise)
{
    if (circuit.numParams() != 0)
        throw std::invalid_argument("DensityMatrix::run: unbound params");
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("DensityMatrix::run: qubit mismatch");
    for (const Gate& g : circuit.gates()) {
        applyGate(g);
        if (gateArity(g.kind) == 2)
            applyDepolarizing2(g.qubits[0], g.qubits[1], noise.p2);
        else
            applyDepolarizing1(g.qubits[0], noise.p1);
    }
}

void
DensityMatrix::run(const Circuit& circuit, const std::vector<double>& params,
                   const NoiseModel& noise)
{
    CompileOptions options;
    options.fuse1q = false; // noise channels attach per source gate
    run(CompiledCircuit(circuit, options), params, noise);
}

void
DensityMatrix::run(const CompiledCircuit& compiled,
                   const std::vector<double>& params,
                   const NoiseModel& noise)
{
    if (compiled.numQubits() != numQubits_)
        throw std::invalid_argument("DensityMatrix::run: qubit mismatch");
    if (static_cast<int>(params.size()) != compiled.numParams())
        throw std::invalid_argument(
            "DensityMatrix::run: wrong parameter count");
    if (compiled.fusedGateCount() != 0)
        throw std::invalid_argument(
            "DensityMatrix::run: schedule must be compiled with "
            "fuse1q off (ops map 1:1 onto noisy gates)");
    for (const CompiledOp& op : compiled.ops()) {
        applyOp(op, op.resolvedAngle(params.data()));
        if (op.arity() == 2)
            applyDepolarizing2(op.q0, op.q1, noise.p2);
        else
            applyDepolarizing1(op.q0, noise.p1);
    }
}

double
DensityMatrix::trace() const
{
    double acc = 0.0;
    for (std::size_t r = 0; r < dim(); ++r)
        acc += element(r, r).real();
    return acc;
}

double
DensityMatrix::purity() const
{
    // Tr(rho^2) = sum_{r,c} rho(r,c) rho(c,r) = sum |rho(r,c)|^2 for
    // Hermitian rho.
    double acc = 0.0;
    for (const cplx& e : data_)
        acc += std::norm(e);
    return acc;
}

double
DensityMatrix::expectation(const PauliString& pauli) const
{
    assert(pauli.numQubits() == numQubits_);
    // Tr(rho P) = sum_r (rho P)(r, r) = sum_r rho(r, s) P(s, r) where
    // s = r ^ flip_mask and P(s, r) is a phase.
    std::uint64_t flip_mask = 0;
    for (int q = 0; q < numQubits_; ++q) {
        const PauliOp op = pauli.op(q);
        if (op == PauliOp::X || op == PauliOp::Y)
            flip_mask |= std::uint64_t{1} << q;
    }
    const cplx im(0.0, 1.0);
    cplx acc(0.0, 0.0);
    for (std::size_t r = 0; r < dim(); ++r) {
        const std::size_t s = r ^ flip_mask;
        cplx elem(1.0, 0.0); // P(s, r) = <s|P|r>
        for (int q = 0; q < numQubits_; ++q) {
            const bool bit_r = (r >> q) & 1ULL;
            switch (pauli.op(q)) {
              case PauliOp::I:
              case PauliOp::X:
                break;
              case PauliOp::Y:
                elem *= bit_r ? -im : im;
                break;
              case PauliOp::Z:
                if (bit_r)
                    elem = -elem;
                break;
            }
        }
        acc += element(r, s) * elem;
    }
    return acc.real();
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> p(dim());
    for (std::size_t r = 0; r < dim(); ++r)
        p[r] = element(r, r).real();
    return p;
}

} // namespace oscar
