#include "src/quantum/circuit.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace oscar {

Circuit::Circuit(int num_qubits, int num_params)
    : numQubits_(num_qubits), numParams_(num_params)
{
    if (num_qubits < 1)
        throw std::invalid_argument("Circuit: need at least one qubit");
    if (num_params < 0)
        throw std::invalid_argument("Circuit: negative parameter count");
}

void
Circuit::append(const Gate& gate)
{
    const int arity = gateArity(gate.kind);
    for (int i = 0; i < arity; ++i) {
        if (gate.qubits[i] < 0 || gate.qubits[i] >= numQubits_)
            throw std::out_of_range("Circuit::append: qubit out of range");
    }
    if (arity == 2 && gate.qubits[0] == gate.qubits[1])
        throw std::invalid_argument("Circuit::append: duplicate qubit");
    if (gate.paramIndex >= numParams_)
        throw std::out_of_range("Circuit::append: parameter out of range");
    gates_.push_back(gate);
}

void
Circuit::append(const Circuit& other)
{
    if (other.numQubits_ != numQubits_)
        throw std::invalid_argument("Circuit::append: qubit count mismatch");
    if (other.numParams_ > numParams_)
        throw std::invalid_argument("Circuit::append: parameter mismatch");
    gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
}

std::size_t
Circuit::countTwoQubitGates() const
{
    return static_cast<std::size_t>(
        std::count_if(gates_.begin(), gates_.end(), [](const Gate& g) {
            return gateArity(g.kind) == 2;
        }));
}

Circuit
Circuit::bind(const std::vector<double>& params) const
{
    if (static_cast<int>(params.size()) != numParams_)
        throw std::invalid_argument("Circuit::bind: wrong parameter count");
    Circuit bound(numQubits_, 0);
    bound.gates_.reserve(gates_.size());
    for (const Gate& g : gates_) {
        Gate fixed = g;
        fixed.angle = g.resolvedAngle(params);
        fixed.paramIndex = -1;
        fixed.coeff = 1.0;
        bound.gates_.push_back(fixed);
    }
    return bound;
}

Circuit
Circuit::inverse() const
{
    Circuit inv(numQubits_, numParams_);
    inv.gates_.reserve(gates_.size());
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
        inv.gates_.push_back(it->inverse());
    return inv;
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os << "circuit(" << numQubits_ << " qubits, " << numParams_
       << " params)\n";
    for (const Gate& g : gates_) {
        os << "  " << gateName(g.kind) << " q" << g.qubits[0];
        if (gateArity(g.kind) == 2)
            os << ", q" << g.qubits[1];
        if (gateIsParameterized(g.kind)) {
            if (g.paramIndex >= 0)
                os << "  angle=" << g.angle << "+" << g.coeff << "*p["
                   << g.paramIndex << "]";
            else
                os << "  angle=" << g.angle;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace oscar
