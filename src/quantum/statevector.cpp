#include "src/quantum/statevector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace oscar {

Statevector::Statevector(int num_qubits)
    : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 28)
        throw std::invalid_argument("Statevector: unsupported qubit count");
    amps_.assign(std::size_t{1} << num_qubits, cplx(0.0, 0.0));
    amps_[0] = 1.0;
}

void
Statevector::reset()
{
    std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
    amps_[0] = 1.0;
}

void
Statevector::applyMatrix1q(int qubit, const std::array<cplx, 4>& m)
{
    assert(qubit >= 0 && qubit < numQubits_);
    const std::size_t stride = std::size_t{1} << qubit;
    const std::size_t n = amps_.size();
    for (std::size_t base = 0; base < n; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; ++off) {
            const std::size_t i0 = base + off;
            const std::size_t i1 = i0 + stride;
            const cplx a0 = amps_[i0];
            const cplx a1 = amps_[i1];
            amps_[i0] = m[0] * a0 + m[1] * a1;
            amps_[i1] = m[2] * a0 + m[3] * a1;
        }
    }
}

void
Statevector::applyCX(int control, int target)
{
    const std::size_t cmask = std::size_t{1} << control;
    const std::size_t tmask = std::size_t{1} << target;
    const std::size_t n = amps_.size();
    for (std::size_t i = 0; i < n; ++i) {
        // Swap each pair once: visit the target=0 member only.
        if ((i & cmask) && !(i & tmask))
            std::swap(amps_[i], amps_[i | tmask]);
    }
}

void
Statevector::applyCZ(int a, int b)
{
    const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
    const std::size_t n = amps_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if ((i & mask) == mask)
            amps_[i] = -amps_[i];
    }
}

void
Statevector::applySwap(int a, int b)
{
    const std::size_t amask = std::size_t{1} << a;
    const std::size_t bmask = std::size_t{1} << b;
    const std::size_t n = amps_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if ((i & amask) && !(i & bmask))
            std::swap(amps_[i], amps_[(i & ~amask) | bmask]);
    }
}

void
Statevector::applyRZZ(int a, int b, double angle)
{
    const std::size_t amask = std::size_t{1} << a;
    const std::size_t bmask = std::size_t{1} << b;
    const cplx phase_same = std::exp(cplx(0.0, -angle / 2));
    const cplx phase_diff = std::exp(cplx(0.0, angle / 2));
    const std::size_t n = amps_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const bool ba = i & amask;
        const bool bb = i & bmask;
        amps_[i] *= (ba == bb) ? phase_same : phase_diff;
    }
}

void
Statevector::applyGate(const Gate& gate)
{
    assert(gate.paramIndex < 0 && "gate angle must be resolved");
    switch (gate.kind) {
      case GateKind::CX:
        applyCX(gate.qubits[0], gate.qubits[1]);
        return;
      case GateKind::CZ:
        applyCZ(gate.qubits[0], gate.qubits[1]);
        return;
      case GateKind::SWAP:
        applySwap(gate.qubits[0], gate.qubits[1]);
        return;
      case GateKind::RZZ:
        applyRZZ(gate.qubits[0], gate.qubits[1], gate.angle);
        return;
      default:
        applyMatrix1q(gate.qubits[0], gate.matrix1q(gate.angle));
        return;
    }
}

void
Statevector::run(const Circuit& circuit)
{
    if (circuit.numParams() != 0)
        throw std::invalid_argument("Statevector::run: unbound parameters");
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("Statevector::run: qubit mismatch");
    for (const Gate& g : circuit.gates())
        applyGate(g);
}

void
Statevector::run(const Circuit& circuit, const std::vector<double>& params)
{
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument("Statevector::run: qubit mismatch");
    for (const Gate& g : circuit.gates()) {
        Gate resolved = g;
        resolved.angle = g.resolvedAngle(params);
        resolved.paramIndex = -1;
        applyGate(resolved);
    }
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> p(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        p[i] = std::norm(amps_[i]);
    return p;
}

double
Statevector::expectation(const PauliString& pauli) const
{
    assert(pauli.numQubits() == numQubits_);
    if (pauli.isDiagonal()) {
        double acc = 0.0;
        for (std::size_t i = 0; i < amps_.size(); ++i)
            acc += std::norm(amps_[i]) * pauli.diagonalEigenvalue(i);
        return acc;
    }
    // <psi|P|psi> via P|psi>: P permutes basis states (X/Y flip bits)
    // and multiplies by a phase (Y contributes i^{+-1}, Z a sign).
    std::uint64_t flip_mask = 0;
    for (int q = 0; q < numQubits_; ++q) {
        const PauliOp op = pauli.op(q);
        if (op == PauliOp::X || op == PauliOp::Y)
            flip_mask |= std::uint64_t{1} << q;
    }
    cplx acc(0.0, 0.0);
    const cplx im(0.0, 1.0);
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        const std::size_t j = i ^ flip_mask;
        // Compute the matrix element <i|P|j>.
        cplx elem(1.0, 0.0);
        for (int q = 0; q < numQubits_; ++q) {
            const bool bit_j = (j >> q) & 1ULL;
            switch (pauli.op(q)) {
              case PauliOp::I:
                break;
              case PauliOp::X:
                break; // element 1
              case PauliOp::Y:
                elem *= bit_j ? -im : im; // <0|Y|1> = -i, <1|Y|0> = i
                break;
              case PauliOp::Z:
                if (bit_j)
                    elem = -elem;
                break;
            }
        }
        acc += std::conj(amps_[i]) * elem * amps_[j];
    }
    return acc.real();
}

double
Statevector::expectationDiagonal(const std::vector<double>& diag) const
{
    assert(diag.size() == amps_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::norm(amps_[i]) * diag[i];
    return acc;
}

std::vector<std::uint64_t>
Statevector::sample(std::size_t shots, Rng& rng) const
{
    // Inverse-CDF sampling over the cumulative distribution.
    std::vector<double> cdf(amps_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        cdf[i] = acc;
    }
    std::vector<std::uint64_t> out;
    out.reserve(shots);
    for (std::size_t s = 0; s < shots; ++s) {
        const double u = rng.uniform() * acc;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        out.push_back(static_cast<std::uint64_t>(it - cdf.begin()));
    }
    return out;
}

cplx
Statevector::innerProduct(const Statevector& other) const
{
    assert(other.dim() == dim());
    cplx acc(0.0, 0.0);
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

double
Statevector::norm2() const
{
    double acc = 0.0;
    for (const cplx& a : amps_)
        acc += std::norm(a);
    return acc;
}

} // namespace oscar
