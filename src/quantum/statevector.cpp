#include "src/quantum/statevector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/quantum/compiled_circuit.h"
#include "src/quantum/kernels.h"

namespace oscar {

Statevector::Statevector(int num_qubits)
    : numQubits_(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 28)
        throw std::invalid_argument("Statevector: unsupported qubit count");
    amps_.assign(std::size_t{1} << num_qubits, cplx(0.0, 0.0));
    amps_[0] = 1.0;
}

void
Statevector::reset()
{
    std::fill(amps_.begin(), amps_.end(), cplx(0.0, 0.0));
    amps_[0] = 1.0;
}

void
Statevector::applyMatrix1q(int qubit, const std::array<cplx, 4>& m)
{
    assert(qubit >= 0 && qubit < numQubits_);
    kernels::defaultKernelTable().matrix1q(amps_.data(), amps_.size(),
                                           qubit, m);
}

void
Statevector::applyGate(const Gate& gate)
{
    assert(gate.paramIndex < 0 && "gate angle must be resolved");
    const kernels::KernelTable& t = kernels::defaultKernelTable();
    cplx* amps = amps_.data();
    const std::size_t dim = amps_.size();
    switch (gate.kind) {
      case GateKind::CX:
        t.cx(amps, dim, gate.qubits[0], gate.qubits[1]);
        return;
      case GateKind::CZ:
        t.cz(amps, dim, gate.qubits[0], gate.qubits[1]);
        return;
      case GateKind::SWAP:
        t.swapQubits(amps, dim, gate.qubits[0], gate.qubits[1]);
        return;
      case GateKind::RZZ:
        t.phaseZZ(amps, dim, gate.qubits[0], gate.qubits[1],
                  std::exp(cplx(0.0, -gate.angle / 2)),
                  std::exp(cplx(0.0, gate.angle / 2)));
        return;
      default:
        t.matrix1q(amps, dim, gate.qubits[0],
                   gate.matrix1q(gate.angle));
        return;
    }
}

void
Statevector::run(const Circuit& circuit)
{
    if (circuit.numParams() != 0)
        throw std::invalid_argument("Statevector::run: unbound parameters");
    CompiledCircuit(circuit).run(*this);
}

void
Statevector::run(const Circuit& circuit, const std::vector<double>& params)
{
    CompiledCircuit(circuit).run(*this, params);
}

std::vector<double>
Statevector::probabilities() const
{
    std::vector<double> p(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        p[i] = std::norm(amps_[i]);
    return p;
}

double
Statevector::expectation(const PauliString& pauli) const
{
    return expectation(pauli, kernels::defaultKernelTable());
}

double
Statevector::expectation(const PauliString& pauli,
                         const kernels::KernelTable& table) const
{
    assert(pauli.numQubits() == numQubits_);
    // <psi|P|psi> in mask form: P permutes basis states (X/Y flip
    // bits) and multiplies by a sign (Y/Z bits) and a constant phase
    // (i per Y). The dispatched kernel streams the whole contraction.
    const PauliMasks m = pauli.masks();
    static const cplx kPhases[4] = {{1.0, 0.0},
                                    {0.0, 1.0},
                                    {-1.0, 0.0},
                                    {0.0, -1.0}};
    return table.expectationPauli(amps_.data(), amps_.size(), m.flip,
                                  m.sign, kPhases[m.numY & 3]);
}

double
Statevector::expectationDiagonal(const std::vector<double>& diag) const
{
    assert(diag.size() == amps_.size());
    return kernels::defaultKernelTable().expectationDiagonal(
        amps_.data(), diag.data(), amps_.size());
}

std::vector<std::uint64_t>
Statevector::sample(std::size_t shots, Rng& rng) const
{
    // Inverse-CDF sampling over the cumulative distribution.
    std::vector<double> cdf(amps_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        cdf[i] = acc;
    }
    std::vector<std::uint64_t> out;
    out.reserve(shots);
    for (std::size_t s = 0; s < shots; ++s) {
        const double u = rng.uniform() * acc;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        out.push_back(static_cast<std::uint64_t>(it - cdf.begin()));
    }
    return out;
}

cplx
Statevector::innerProduct(const Statevector& other) const
{
    assert(other.dim() == dim());
    cplx acc(0.0, 0.0);
    for (std::size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

double
Statevector::norm2() const
{
    double acc = 0.0;
    for (const cplx& a : amps_)
        acc += std::norm(a);
    return acc;
}

} // namespace oscar
