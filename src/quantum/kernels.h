/**
 * @file
 * ISA-dispatched gate-application kernels on raw amplitude arrays.
 *
 * These are the innermost loops of every dense simulation in the
 * library. They operate on a bare `cplx*` of length `dim` (a power of
 * two) with the little-endian qubit convention of Statevector, so the
 * same kernels serve the state-vector simulator (dim = 2^n), the
 * density-matrix simulator (dim = 4^n, row qubits low / column qubits
 * high), and the compiled-circuit schedule (compiled_circuit.h), which
 * dispatches straight into them without materializing per-gate `Gate`
 * copies.
 *
 * The kernels come in per-ISA variants collected into a KernelTable of
 * function pointers:
 *
 *  - the *scalar* table is the portable reference implementation (the
 *    free functions below, compiled for the baseline target), and
 *  - the *AVX2* table (kernels_avx2.cpp, compiled with -mavx2 -mfma
 *    when OSCAR_ENABLE_AVX2 is on) vectorizes the complex arithmetic
 *    four doubles at a time.
 *
 * The table is selected once at startup via CPUID (defaultKernelTable)
 * and can be forced per evaluator through KernelOptions::isa or
 * process-wide with the OSCAR_KERNEL_ISA environment variable
 * ("scalar" / "avx2"). Within a fixed ISA every code path that applies
 * the same operation to the same bits produces bit-identical results —
 * the property the engine's determinism contract and the prefix cache
 * rest on. Different ISAs may round differently (FMA contraction), so
 * cross-ISA comparisons are tolerance-based, never bitwise.
 */

#ifndef OSCAR_QUANTUM_KERNELS_H
#define OSCAR_QUANTUM_KERNELS_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/quantum/gate.h"

namespace oscar {
namespace kernels {

// ---------------------------------------------------------------------
// Scalar reference kernels. These are the bit-exact baseline every
// other ISA is tested against; they are also the entries of the scalar
// KernelTable below.
// ---------------------------------------------------------------------

/** Apply a 2x2 matrix {m00, m01, m10, m11} to one qubit. */
void matrix1q(cplx* amps, std::size_t dim, int qubit,
              const std::array<cplx, 4>& m);

/** Apply a diagonal 1-qubit gate diag(phase0, phase1). */
void diag1q(cplx* amps, std::size_t dim, int qubit, cplx phase0,
            cplx phase1);

/** Controlled-X with control/target bit positions. */
void cx(cplx* amps, std::size_t dim, int control, int target);

/** Controlled-Z (symmetric). */
void cz(cplx* amps, std::size_t dim, int a, int b);

/** Swap two qubits. */
void swapQubits(cplx* amps, std::size_t dim, int a, int b);

/**
 * Two-qubit ZZ phase: multiply by `same` where the two bits agree and
 * by `diff` where they differ. RZZ(theta) is same = exp(-i theta/2),
 * diff = exp(+i theta/2).
 */
void phaseZZ(cplx* amps, std::size_t dim, int a, int b, cplx same,
             cplx diff);

/**
 * Multiply every amplitude by `factor`. The cache-blocked replay uses
 * this for diagonal ops whose qubits all lie above the current block
 * (the phase is constant across the block).
 */
void scale(cplx* amps, std::size_t dim, cplx factor);

/**
 * Negate amplitudes whose index has every bit of `mask` set (mask = 0
 * negates everything). `cz(a, b)` is negateMasked with both bit masks;
 * the blocked replay uses partial masks when some CZ qubits resolve
 * against the block's base index. Negation is exact, so this is
 * bit-identical across every ISA and blocking layout.
 */
void negateMasked(cplx* amps, std::size_t dim, std::size_t mask);

/**
 * Apply X on `target` (unconditional bit flip). The blocked replay
 * uses this for a CX whose control bit lies above the block and is set
 * in the block's base index. Pure swaps: exact on every ISA.
 */
void flipBit(cplx* amps, std::size_t dim, int target);

/**
 * Expectation of a diagonal observable: sum_i |amps[i]|^2 * diag[i],
 * accumulated in index order.
 */
double expectationDiagonal(const cplx* amps, const double* diag,
                           std::size_t dim);

/**
 * Batched diagonal expectation: one pass over `diag` evaluating
 * `count` states against the same value table,
 * out[s] = sum_i |states[s][i]|^2 * diag[i]. For every ISA, out[s] is
 * bit-identical to expectationDiagonal(states[s], diag, dim) — the
 * per-state accumulation order is unchanged; batching only shares the
 * diag[i] traffic — so backends can group shared-prefix points without
 * perturbing values.
 */
void expectationDiagonalBatch(const cplx* const* states,
                              std::size_t count, const double* diag,
                              std::size_t dim, double* out);

/**
 * Expectation of a general (possibly non-diagonal) Pauli string in
 * mask form: <psi|P|psi> where P maps basis state j to
 * phase * (-1)^popcount(j & sign_mask) |j ^ flip_mask>. The masks of a
 * string come from PauliString::masks(): flip collects X/Y qubits,
 * sign collects Y/Z qubits, and phase = i^numY. Accumulates
 * conj(amps[i]) * s(j) * amps[j] in index order and applies the
 * constant phase once at the end. For a diagonal string (flip = 0,
 * phase = 1) this is bit-identical to the historical diagonal loop.
 */
double expectationPauli(const cplx* amps, std::size_t dim,
                        std::uint64_t flip_mask, std::uint64_t sign_mask,
                        cplx phase);

// ---------------------------------------------------------------------
// ISA dispatch
// ---------------------------------------------------------------------

/** Instruction-set variants of the kernel layer. */
enum class KernelIsa : std::uint8_t
{
    Scalar = 0, ///< portable reference (baseline target)
    Avx2 = 1,   ///< AVX2 + FMA, runtime-checked via CPUID
    Auto = 255, ///< resolve to the best supported ISA at startup
};

/** Short lowercase name ("scalar", "avx2") for logs and stats. */
const char* isaName(KernelIsa isa);

/**
 * Parse an ISA name ("scalar", "avx2", "auto") as accepted by the
 * OSCAR_KERNEL_ISA environment variable. Unknown strings throw
 * std::invalid_argument listing the valid names — a typo'd override
 * must fail loudly, never silently fall back to a different ISA than
 * the one the user pinned.
 */
KernelIsa parseIsaName(const char* name);

/**
 * One ISA's implementation of every kernel. All entries are non-null;
 * permutation/negation kernels (cx, swap, negateMasked, flipBit) may
 * share the scalar implementation — they move or sign-flip values
 * without rounding, so their results are ISA-independent anyway.
 */
struct KernelTable
{
    KernelIsa isa = KernelIsa::Scalar;

    void (*matrix1q)(cplx*, std::size_t, int,
                     const std::array<cplx, 4>&) = nullptr;
    void (*diag1q)(cplx*, std::size_t, int, cplx, cplx) = nullptr;
    void (*cx)(cplx*, std::size_t, int, int) = nullptr;
    void (*cz)(cplx*, std::size_t, int, int) = nullptr;
    void (*swapQubits)(cplx*, std::size_t, int, int) = nullptr;
    void (*phaseZZ)(cplx*, std::size_t, int, int, cplx, cplx) = nullptr;
    void (*scale)(cplx*, std::size_t, cplx) = nullptr;
    void (*negateMasked)(cplx*, std::size_t, std::size_t) = nullptr;
    void (*flipBit)(cplx*, std::size_t, int) = nullptr;
    void (*expectationDiagonalBatch)(const cplx* const*, std::size_t,
                                     const double*, std::size_t,
                                     double*) = nullptr;
    double (*expectationPauli)(const cplx*, std::size_t, std::uint64_t,
                               std::uint64_t, cplx) = nullptr;

    /** Single-state convenience over expectationDiagonalBatch. */
    double
    expectationDiagonal(const cplx* amps, const double* diag,
                        std::size_t dim) const
    {
        double out;
        expectationDiagonalBatch(&amps, 1, diag, dim, &out);
        return out;
    }
};

/** The portable reference table (always available). */
const KernelTable& scalarKernelTable();

/**
 * True when the AVX2 table exists (built with OSCAR_ENABLE_AVX2) and
 * this CPU reports AVX2 + FMA.
 */
bool avx2Available();

/**
 * Table for a requested ISA. Auto resolves to the best available ISA,
 * honoring the OSCAR_KERNEL_ISA environment variable ("scalar" or
 * "avx2"); requesting Avx2 where unsupported falls back to scalar (the
 * returned table's `isa` field tells the truth).
 */
const KernelTable& kernelTable(KernelIsa isa);

/**
 * The process-wide default: kernelTable(Auto), resolved exactly once
 * (CPUID + environment) on first use.
 */
const KernelTable& defaultKernelTable();

} // namespace kernels
} // namespace oscar

#endif // OSCAR_QUANTUM_KERNELS_H
