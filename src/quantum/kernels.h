/**
 * @file
 * Free gate-application kernels on raw amplitude arrays.
 *
 * These are the innermost loops of every dense simulation in the
 * library. They operate on a bare `cplx*` of length `dim` (a power of
 * two) with the little-endian qubit convention of Statevector, so the
 * same kernels serve the state-vector simulator (dim = 2^n), the
 * density-matrix simulator (dim = 4^n, row qubits low / column qubits
 * high), and the compiled-circuit schedule (compiled_circuit.h), which
 * dispatches straight into them without materializing per-gate `Gate`
 * copies.
 *
 * Each kernel is compiled exactly once (no templates, no inlining into
 * call sites), so every code path that applies the same operation to
 * the same bits produces bit-identical results — the property the
 * engine's determinism contract and the prefix cache rest on.
 */

#ifndef OSCAR_QUANTUM_KERNELS_H
#define OSCAR_QUANTUM_KERNELS_H

#include <array>
#include <cstddef>

#include "src/quantum/gate.h"

namespace oscar {
namespace kernels {

/** Apply a 2x2 matrix {m00, m01, m10, m11} to one qubit. */
void matrix1q(cplx* amps, std::size_t dim, int qubit,
              const std::array<cplx, 4>& m);

/** Apply a diagonal 1-qubit gate diag(phase0, phase1). */
void diag1q(cplx* amps, std::size_t dim, int qubit, cplx phase0,
            cplx phase1);

/** Controlled-X with control/target bit positions. */
void cx(cplx* amps, std::size_t dim, int control, int target);

/** Controlled-Z (symmetric). */
void cz(cplx* amps, std::size_t dim, int a, int b);

/** Swap two qubits. */
void swapQubits(cplx* amps, std::size_t dim, int a, int b);

/**
 * Two-qubit ZZ phase: multiply by `same` where the two bits agree and
 * by `diff` where they differ. RZZ(theta) is same = exp(-i theta/2),
 * diff = exp(+i theta/2).
 */
void phaseZZ(cplx* amps, std::size_t dim, int a, int b, cplx same,
             cplx diff);

} // namespace kernels
} // namespace oscar

#endif // OSCAR_QUANTUM_KERNELS_H
