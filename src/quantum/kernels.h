/**
 * @file
 * ISA-dispatched gate-application kernels on raw amplitude arrays.
 *
 * These are the innermost loops of every dense simulation in the
 * library. They operate on a bare `cplx*` of length `dim` (a power of
 * two) with the little-endian qubit convention of Statevector, so the
 * same kernels serve the state-vector simulator (dim = 2^n), the
 * density-matrix simulator (dim = 4^n, row qubits low / column qubits
 * high), and the compiled-circuit schedule (compiled_circuit.h), which
 * dispatches straight into them without materializing per-gate `Gate`
 * copies.
 *
 * The kernels come in per-ISA variants collected into a KernelTable of
 * function pointers:
 *
 *  - the *scalar* table is the portable reference implementation (the
 *    free functions below, compiled for the baseline target),
 *  - the *AVX2* table (kernels_avx2.cpp, compiled with -mavx2 -mfma
 *    when OSCAR_ENABLE_AVX2 is on) vectorizes the complex arithmetic
 *    four doubles at a time, and
 *  - the *AVX-512* table (kernels_avx512.cpp, compiled with -mavx512f
 *    -mavx512dq when OSCAR_ENABLE_AVX512 is on) widens to eight
 *    doubles and uses masked loads/stores for arrays below the vector
 *    width instead of scalar remainder loops.
 *
 * The table is selected once at startup via CPUID (defaultKernelTable)
 * and can be forced per evaluator through KernelOptions::isa or
 * process-wide with the OSCAR_KERNEL_ISA environment variable
 * ("scalar" / "avx2" / "avx512"). Explicitly requesting a tier the
 * build or CPU lacks throws (kernelTable below) — a pinned ISA must
 * fail loudly, never silently degrade — while "auto" only ever
 * resolves to a supported tier. Within a fixed ISA every code path
 * that applies the same operation to the same bits produces
 * bit-identical results — the property the engine's determinism
 * contract and the prefix cache rest on. Different ISAs may round
 * differently (FMA contraction), so cross-ISA comparisons are
 * tolerance-based, never bitwise.
 */

#ifndef OSCAR_QUANTUM_KERNELS_H
#define OSCAR_QUANTUM_KERNELS_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/quantum/gate.h"

namespace oscar {
namespace kernels {

// ---------------------------------------------------------------------
// Scalar reference kernels. These are the bit-exact baseline every
// other ISA is tested against; they are also the entries of the scalar
// KernelTable below.
// ---------------------------------------------------------------------

/** Apply a 2x2 matrix {m00, m01, m10, m11} to one qubit. */
void matrix1q(cplx* amps, std::size_t dim, int qubit,
              const std::array<cplx, 4>& m);

/** Apply a diagonal 1-qubit gate diag(phase0, phase1). */
void diag1q(cplx* amps, std::size_t dim, int qubit, cplx phase0,
            cplx phase1);

/** Controlled-X with control/target bit positions. */
void cx(cplx* amps, std::size_t dim, int control, int target);

/** Controlled-Z (symmetric). */
void cz(cplx* amps, std::size_t dim, int a, int b);

/** Swap two qubits. */
void swapQubits(cplx* amps, std::size_t dim, int a, int b);

/**
 * Two-qubit ZZ phase: multiply by `same` where the two bits agree and
 * by `diff` where they differ. RZZ(theta) is same = exp(-i theta/2),
 * diff = exp(+i theta/2).
 */
void phaseZZ(cplx* amps, std::size_t dim, int a, int b, cplx same,
             cplx diff);

/**
 * Multiply every amplitude by `factor`. The cache-blocked replay uses
 * this for diagonal ops whose qubits all lie above the current block
 * (the phase is constant across the block).
 */
void scale(cplx* amps, std::size_t dim, cplx factor);

/**
 * Negate amplitudes whose index has every bit of `mask` set (mask = 0
 * negates everything). `cz(a, b)` is negateMasked with both bit masks;
 * the blocked replay uses partial masks when some CZ qubits resolve
 * against the block's base index. Negation is exact, so this is
 * bit-identical across every ISA and blocking layout.
 */
void negateMasked(cplx* amps, std::size_t dim, std::size_t mask);

/**
 * Apply X on `target` (unconditional bit flip). The blocked replay
 * uses this for a CX whose control bit lies above the block and is set
 * in the block's base index. Pure swaps: exact on every ISA.
 */
void flipBit(cplx* amps, std::size_t dim, int target);

/**
 * X-axis rotation RX(theta) with c = cos(theta/2), s = sin(theta/2):
 * the matrix [[c, -i s], [-i s, c]]. A super-kernel specialization of
 * matrix1q used by the fused replay plan (compiled_circuit.h): the
 * real diagonal and purely imaginary off-diagonal cut the complex
 * multiply count in half. Only dispatched when fusion is enabled —
 * its rounding differs from the generic matrix1q path on FMA ISAs, so
 * it is part of the (ISA, fusion plan) determinism key.
 */
void rotX(cplx* amps, std::size_t dim, int qubit, double c, double s);

/** Y-axis rotation RY(theta): the all-real matrix [[c, -s], [s, c]]. */
void rotY(cplx* amps, std::size_t dim, int qubit, double c, double s);

/**
 * Pair-fused rotations: apply rotX(qa, ca, sa) then rotX(qb, cb, sb)
 * in one pass over the amplitudes (qa != qb). Guaranteed bit-identical
 * per ISA to the two single-rotation calls in sequence: every
 * amplitude sees the exact same multiply/FMA sequence, the fused
 * kernel only keeps the intermediate values in registers instead of
 * storing and reloading them. That exactness is what lets the fused
 * replay pair adjacent lowered rotations opportunistically — at any
 * segment, chunk or checkpoint boundary the pairing may differ without
 * perturbing a single bit.
 */
void rotX2(cplx* amps, std::size_t dim, int qa, int qb, double ca,
           double sa, double cb, double sb);

/** Pair-fused RY rotations; same bit-identity contract as rotX2. */
void rotY2(cplx* amps, std::size_t dim, int qa, int qb, double ca,
           double sa, double cb, double sb);

/**
 * Fused diagonal super-kernel: amps[i] *= table[i]. The fused replay
 * collapses a run of diagonal ops into one precomputed phase table
 * per block (one pass over the amplitudes instead of one per op);
 * `table` has length `dim` and should be 64-byte aligned
 * (common/aligned.h) so the wide ISAs load it efficiently.
 */
void applyDiagTable(cplx* amps, std::size_t dim, const cplx* table);

/**
 * Fused dense super-kernel: apply one 2^fbits x 2^fbits matrix to
 * every aligned 2^fbits-amplitude sub-block of `amps` — the GEMM-like
 * replay of a whole op run collapsed at compile time. `matrix` is
 * column-major (matrix[c * 2^fbits + r]); out[r] accumulates columns
 * in ascending c for a fixed, ISA-deterministic order. `scratch`
 * holds 2^fbits amplitudes (the sub-block is read and written in
 * place). Both should be 64-byte aligned.
 */
void matvecDense(cplx* amps, std::size_t dim, int fbits,
                 const cplx* matrix, cplx* scratch);

/**
 * Expectation of a diagonal observable: sum_i |amps[i]|^2 * diag[i],
 * accumulated in index order.
 */
double expectationDiagonal(const cplx* amps, const double* diag,
                           std::size_t dim);

/**
 * Batched diagonal expectation: one pass over `diag` evaluating
 * `count` states against the same value table,
 * out[s] = sum_i |states[s][i]|^2 * diag[i]. For every ISA, out[s] is
 * bit-identical to expectationDiagonal(states[s], diag, dim) — the
 * per-state accumulation order is unchanged; batching only shares the
 * diag[i] traffic — so backends can group shared-prefix points without
 * perturbing values.
 */
void expectationDiagonalBatch(const cplx* const* states,
                              std::size_t count, const double* diag,
                              std::size_t dim, double* out);

/**
 * Expectation of a general (possibly non-diagonal) Pauli string in
 * mask form: <psi|P|psi> where P maps basis state j to
 * phase * (-1)^popcount(j & sign_mask) |j ^ flip_mask>. The masks of a
 * string come from PauliString::masks(): flip collects X/Y qubits,
 * sign collects Y/Z qubits, and phase = i^numY. Accumulates
 * conj(amps[i]) * s(j) * amps[j] in index order and applies the
 * constant phase once at the end. For a diagonal string (flip = 0,
 * phase = 1) this is bit-identical to the historical diagonal loop.
 */
double expectationPauli(const cplx* amps, std::size_t dim,
                        std::uint64_t flip_mask, std::uint64_t sign_mask,
                        cplx phase);

/**
 * Batched general Pauli expectation: evaluate `count` states against
 * the same mask-form string in one pass,
 * out[s] = expectationPauli(states[s], ...) bit for bit — the
 * per-state accumulation order is unchanged; batching only shares the
 * index arithmetic, partner-permutation and sign computation across
 * states. The non-diagonal analogue of expectationDiagonalBatch, so
 * backends can fuse prefix-grouped batch points of non-diagonal
 * Hamiltonians without perturbing values.
 */
void expectationPauliBatch(const cplx* const* states, std::size_t count,
                           std::size_t dim, std::uint64_t flip_mask,
                           std::uint64_t sign_mask, cplx phase,
                           double* out);

// ---------------------------------------------------------------------
// ISA dispatch
// ---------------------------------------------------------------------

/**
 * Instruction-set variants of the kernel layer. Ordered by width:
 * stats aggregation reports the max, so the numeric order must match
 * the "wider is larger" convention.
 */
enum class KernelIsa : std::uint8_t
{
    Scalar = 0, ///< portable reference (baseline target)
    Avx2 = 1,   ///< AVX2 + FMA, runtime-checked via CPUID
    Avx512 = 2, ///< AVX-512 F+DQ, runtime-checked via CPUID
    Auto = 255, ///< resolve to the best supported ISA at startup
};

/** Short lowercase name ("scalar", "avx2", "avx512") for logs/stats. */
const char* isaName(KernelIsa isa);

/**
 * Parse an ISA name ("scalar", "avx2", "avx512", "auto") as accepted
 * by the OSCAR_KERNEL_ISA environment variable. Unknown strings throw
 * std::invalid_argument listing the valid names — a typo'd override
 * must fail loudly, never silently fall back to a different ISA than
 * the one the user pinned.
 */
KernelIsa parseIsaName(const char* name);

/**
 * One ISA's implementation of every kernel. All entries are non-null;
 * permutation/negation kernels (cx, swap, negateMasked, flipBit) may
 * share the scalar implementation — they move or sign-flip values
 * without rounding, so their results are ISA-independent anyway.
 */
struct KernelTable
{
    KernelIsa isa = KernelIsa::Scalar;

    void (*matrix1q)(cplx*, std::size_t, int,
                     const std::array<cplx, 4>&) = nullptr;
    void (*diag1q)(cplx*, std::size_t, int, cplx, cplx) = nullptr;
    void (*cx)(cplx*, std::size_t, int, int) = nullptr;
    void (*cz)(cplx*, std::size_t, int, int) = nullptr;
    void (*swapQubits)(cplx*, std::size_t, int, int) = nullptr;
    void (*phaseZZ)(cplx*, std::size_t, int, int, cplx, cplx) = nullptr;
    void (*scale)(cplx*, std::size_t, cplx) = nullptr;
    void (*negateMasked)(cplx*, std::size_t, std::size_t) = nullptr;
    void (*flipBit)(cplx*, std::size_t, int) = nullptr;
    void (*rotX)(cplx*, std::size_t, int, double, double) = nullptr;
    void (*rotY)(cplx*, std::size_t, int, double, double) = nullptr;
    void (*rotX2)(cplx*, std::size_t, int, int, double, double, double,
                  double) = nullptr;
    void (*rotY2)(cplx*, std::size_t, int, int, double, double, double,
                  double) = nullptr;
    void (*applyDiagTable)(cplx*, std::size_t, const cplx*) = nullptr;
    void (*matvecDense)(cplx*, std::size_t, int, const cplx*,
                        cplx*) = nullptr;
    void (*expectationDiagonalBatch)(const cplx* const*, std::size_t,
                                     const double*, std::size_t,
                                     double*) = nullptr;
    double (*expectationPauli)(const cplx*, std::size_t, std::uint64_t,
                               std::uint64_t, cplx) = nullptr;
    void (*expectationPauliBatch)(const cplx* const*, std::size_t,
                                  std::size_t, std::uint64_t,
                                  std::uint64_t, cplx,
                                  double*) = nullptr;

    /** Single-state convenience over expectationDiagonalBatch. */
    double
    expectationDiagonal(const cplx* amps, const double* diag,
                        std::size_t dim) const
    {
        double out;
        expectationDiagonalBatch(&amps, 1, diag, dim, &out);
        return out;
    }
};

/** The portable reference table (always available). */
const KernelTable& scalarKernelTable();

/**
 * True when the AVX2 table exists (built with OSCAR_ENABLE_AVX2) and
 * this CPU reports AVX2 + FMA.
 */
bool avx2Available();

/**
 * True when the AVX-512 table exists (built with OSCAR_ENABLE_AVX512)
 * and this CPU reports AVX-512 F + DQ.
 */
bool avx512Available();

/**
 * Table for a requested ISA. Auto resolves to the widest available
 * tier, honoring the OSCAR_KERNEL_ISA environment variable ("scalar",
 * "avx2", "avx512"). Explicitly requesting a tier the build or CPU
 * lacks throws std::runtime_error listing the available ISAs — the
 * strict-dispatch counterpart of parseIsaName's strict parse; a
 * pinned ISA silently degrading would let distributed replicas drift
 * from the coordinator by rounding.
 */
const KernelTable& kernelTable(KernelIsa isa);

/**
 * The process-wide default: kernelTable(Auto), resolved exactly once
 * (CPUID + environment) on first use.
 */
const KernelTable& defaultKernelTable();

} // namespace kernels
} // namespace oscar

#endif // OSCAR_QUANTUM_KERNELS_H
