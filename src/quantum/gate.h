/**
 * @file
 * Gate definitions for the circuit IR.
 *
 * A Gate is a tagged record: kind, target qubits, and an angle that is
 * either fixed or bound to an entry of the circuit's parameter vector
 * (with a multiplicative coefficient, so e.g. a QAOA cost layer can use
 * angle = 2 * w_ij * gamma without extra parameters). This is the
 * minimal IR needed to express QAOA, Two-local, and UCCSD ansaetze, and
 * to implement ZNE circuit folding (every gate knows its inverse).
 */

#ifndef OSCAR_QUANTUM_GATE_H
#define OSCAR_QUANTUM_GATE_H

#include <array>
#include <complex>
#include <cstdint>
#include <string>
#include <vector>

namespace oscar {

using cplx = std::complex<double>;

/** Supported gate kinds. */
enum class GateKind : std::uint8_t
{
    H,     ///< Hadamard
    X,     ///< Pauli-X
    Y,     ///< Pauli-Y
    Z,     ///< Pauli-Z
    S,     ///< sqrt(Z)
    Sdg,   ///< S-dagger
    RX,    ///< exp(-i angle X / 2)
    RY,    ///< exp(-i angle Y / 2)
    RZ,    ///< exp(-i angle Z / 2)
    CX,    ///< controlled-X (control = qubits[0], target = qubits[1])
    CZ,    ///< controlled-Z
    SWAP,  ///< swap two qubits
    RZZ,   ///< exp(-i angle Z Z / 2)
};

/** Number of qubits a gate kind acts on (1 or 2). */
int gateArity(GateKind kind);

/** True for the parameterized rotation kinds (RX, RY, RZ, RZZ). */
bool gateIsParameterized(GateKind kind);

/** Short mnemonic, e.g. "rzz", for printing circuits. */
std::string gateName(GateKind kind);

/**
 * 2x2 unitary of a 1-qubit gate kind with resolved angle (the angle is
 * ignored for non-rotation kinds). Throws for 2-qubit kinds.
 */
std::array<cplx, 4> gateMatrix1q(GateKind kind, double resolved_angle);

/**
 * One gate application in a circuit.
 *
 * For rotation gates the effective angle when executed with parameter
 * vector p is:  angle + coeff * p[paramIndex]   (paramIndex >= 0)
 * or just `angle` when paramIndex < 0.
 */
struct Gate
{
    GateKind kind;
    std::array<int, 2> qubits{{-1, -1}};
    double angle = 0.0;
    int paramIndex = -1;
    double coeff = 1.0;

    /** Fixed (non-parameterized) gate factory helpers. */
    static Gate h(int q);
    static Gate x(int q);
    static Gate y(int q);
    static Gate z(int q);
    static Gate s(int q);
    static Gate sdg(int q);
    static Gate rx(int q, double angle);
    static Gate ry(int q, double angle);
    static Gate rz(int q, double angle);
    static Gate cx(int control, int target);
    static Gate cz(int a, int b);
    static Gate swap(int a, int b);
    static Gate rzz(int a, int b, double angle);

    /** Parameter-bound rotation factory helpers. */
    static Gate rxParam(int q, int param_index, double coeff = 1.0);
    static Gate ryParam(int q, int param_index, double coeff = 1.0);
    static Gate rzParam(int q, int param_index, double coeff = 1.0);
    static Gate rzzParam(int a, int b, int param_index, double coeff = 1.0);

    /** Effective rotation angle under a parameter binding. */
    double resolvedAngle(const std::vector<double>& params) const;

    /**
     * The adjoint gate under the same parameter binding convention
     * (rotations negate angle and coeff; self-inverse gates are
     * returned unchanged; S maps to Sdg).
     */
    Gate inverse() const;

    /** 2x2 unitary for a 1-qubit gate with resolved angle. */
    std::array<cplx, 4> matrix1q(double resolved_angle) const;
};

} // namespace oscar

#endif // OSCAR_QUANTUM_GATE_H
