/**
 * @file
 * Stabilizer (Clifford) simulator -- Aaronson-Gottesman tableau.
 *
 * Clifford circuits are classically simulable in polynomial time; this
 * is the substrate behind Clifford Data Regression (paper Section 2.3
 * cites CDR among the mitigation methods OSCAR helps configure): CDR
 * needs *exact ideal* expectation values of near-Clifford training
 * circuits at sizes where a state vector would be exponential.
 *
 * The tableau tracks n destabilizer and n stabilizer generators as
 * rows of X/Z bit matrices plus a sign bit (Aaronson & Gottesman,
 * PRA 70, 052328 (2004)). Supported gates: all Clifford gates of the
 * circuit IR, plus rotation gates whose angle is an exact multiple of
 * pi/2 (how CDR's projected training circuits arise).
 *
 * Pauli expectations: <P> of a stabilizer state is +/-1 when P is in
 * the stabilizer group (sign via destabilizer-indexed row
 * composition) and 0 otherwise.
 */

#ifndef OSCAR_QUANTUM_STABILIZER_H
#define OSCAR_QUANTUM_STABILIZER_H

#include <cstdint>
#include <vector>

#include "src/quantum/circuit.h"
#include "src/quantum/pauli.h"

namespace oscar {

/** Tableau simulator for Clifford circuits. */
class StabilizerState
{
  public:
    /** |0...0> on num_qubits qubits. */
    explicit StabilizerState(int num_qubits);

    int numQubits() const { return numQubits_; }

    /** Reset to |0...0>. */
    void reset();

    /** Apply H. */
    void applyH(int q);

    /** Apply S. */
    void applyS(int q);

    /** Apply S-dagger. */
    void applySdg(int q);

    /** Apply X. */
    void applyX(int q);

    /** Apply Y. */
    void applyY(int q);

    /** Apply Z. */
    void applyZ(int q);

    /** Apply CX (control, target). */
    void applyCX(int control, int target);

    /** Apply CZ. */
    void applyCZ(int a, int b);

    /** Apply SWAP. */
    void applySwap(int a, int b);

    /**
     * Apply a gate from the circuit IR. Rotation gates must carry an
     * angle that is a multiple of pi/2 (within `angle_tol`); others
     * throw std::invalid_argument.
     */
    void applyGate(const Gate& gate, double angle_tol = 1e-9);

    /** Run a bound (parameter-free) Clifford circuit. */
    void run(const Circuit& circuit);

    /** Exact expectation of a Pauli string: -1, 0, or +1. */
    double expectation(const PauliString& pauli) const;

    /** True when `angle` is a multiple of pi/2 within tolerance. */
    static bool isCliffordAngle(double angle, double tol = 1e-9);

  private:
    /** Number of quarter turns (mod 4) for a Clifford rotation. */
    static int quarterTurns(double angle);

    /** Apply RZ(k * pi/2) via S^k. */
    void applyRzQuarter(int q, int k);

    struct Row
    {
        std::vector<std::uint8_t> x;
        std::vector<std::uint8_t> z;
        int phase = 0; // exponent of i, always 0 or 2 for valid rows
    };

    /** Multiply Pauli row `src` into `dst`, tracking the i-exponent. */
    static void rowMultiply(Row& dst, const Row& src);

    int numQubits_;
    std::vector<Row> rows_; // 0..n-1 destabilizers, n..2n-1 stabilizers
};

} // namespace oscar

#endif // OSCAR_QUANTUM_STABILIZER_H
