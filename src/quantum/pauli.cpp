#include "src/quantum/pauli.h"

#include <cassert>
#include <stdexcept>

namespace oscar {

PauliString::PauliString(int num_qubits)
    : ops_(static_cast<std::size_t>(num_qubits), PauliOp::I)
{
    if (num_qubits < 1)
        throw std::invalid_argument("PauliString: need at least one qubit");
}

PauliString
PauliString::fromLabel(const std::string& label)
{
    PauliString p(static_cast<int>(label.size()));
    for (std::size_t k = 0; k < label.size(); ++k) {
        switch (label[k]) {
          case 'I': p.ops_[k] = PauliOp::I; break;
          case 'X': p.ops_[k] = PauliOp::X; break;
          case 'Y': p.ops_[k] = PauliOp::Y; break;
          case 'Z': p.ops_[k] = PauliOp::Z; break;
          default:
            throw std::invalid_argument("PauliString: bad label char");
        }
    }
    return p;
}

PauliString
PauliString::single(int num_qubits, int qubit, PauliOp op)
{
    PauliString p(num_qubits);
    assert(qubit >= 0 && qubit < num_qubits);
    p.ops_[qubit] = op;
    return p;
}

PauliString
PauliString::zString(int num_qubits, const std::vector<int>& qubits)
{
    PauliString p(num_qubits);
    for (int q : qubits) {
        assert(q >= 0 && q < num_qubits);
        p.ops_[q] = PauliOp::Z;
    }
    return p;
}

bool
PauliString::isDiagonal() const
{
    for (PauliOp op : ops_) {
        if (op == PauliOp::X || op == PauliOp::Y)
            return false;
    }
    return true;
}

bool
PauliString::isIdentity() const
{
    for (PauliOp op : ops_) {
        if (op != PauliOp::I)
            return false;
    }
    return true;
}

int
PauliString::weight() const
{
    int w = 0;
    for (PauliOp op : ops_)
        w += (op != PauliOp::I);
    return w;
}

int
PauliString::diagonalEigenvalue(std::uint64_t basis_state) const
{
    assert(isDiagonal());
    int parity = 0;
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        if (ops_[k] == PauliOp::Z)
            parity ^= static_cast<int>((basis_state >> k) & 1ULL);
    }
    return parity ? -1 : 1;
}

PauliMasks
PauliString::masks() const
{
    PauliMasks m;
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        const PauliOp op = ops_[k];
        if (op == PauliOp::X || op == PauliOp::Y)
            m.flip |= std::uint64_t{1} << k;
        if (op == PauliOp::Y || op == PauliOp::Z)
            m.sign |= std::uint64_t{1} << k;
        if (op == PauliOp::Y)
            ++m.numY;
    }
    return m;
}

std::string
PauliString::toLabel() const
{
    static const char names[] = {'I', 'X', 'Y', 'Z'};
    std::string label;
    label.reserve(ops_.size());
    for (PauliOp op : ops_)
        label.push_back(names[static_cast<int>(op)]);
    return label;
}

} // namespace oscar
