/**
 * @file
 * Parameterized quantum circuit IR.
 *
 * A Circuit is an ordered gate list over a fixed qubit count with a
 * declared number of free parameters. Ansatz builders emit circuits
 * whose rotation gates reference parameter indices; executors resolve
 * the angles against a concrete parameter vector at run time, so a
 * single circuit object serves the whole landscape sweep.
 */

#ifndef OSCAR_QUANTUM_CIRCUIT_H
#define OSCAR_QUANTUM_CIRCUIT_H

#include <string>
#include <vector>

#include "src/quantum/gate.h"

namespace oscar {

/** Ordered list of gates over numQubits() qubits. */
class Circuit
{
  public:
    Circuit() = default;

    /** Create an empty circuit. */
    Circuit(int num_qubits, int num_params = 0);

    int numQubits() const { return numQubits_; }
    int numParams() const { return numParams_; }
    std::size_t numGates() const { return gates_.size(); }

    const std::vector<Gate>& gates() const { return gates_; }

    /** Append a gate, validating its qubit indices. */
    void append(const Gate& gate);

    /** Append every gate of another circuit (qubit counts must match). */
    void append(const Circuit& other);

    /** Number of two-qubit gates (the fidelity-limiting resource). */
    std::size_t countTwoQubitGates() const;

    /**
     * Bind a parameter vector: returns an equivalent circuit whose
     * gates all carry fixed angles (numParams() == 0).
     */
    Circuit bind(const std::vector<double>& params) const;

    /** The adjoint circuit (gates reversed and inverted). */
    Circuit inverse() const;

    /** Human-readable listing, one gate per line. */
    std::string toString() const;

  private:
    int numQubits_ = 0;
    int numParams_ = 0;
    std::vector<Gate> gates_;
};

} // namespace oscar

#endif // OSCAR_QUANTUM_CIRCUIT_H
