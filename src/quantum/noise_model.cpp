// noise_model.h is header-only; this translation unit anchors it in the
// library so every consumer links against a single definition set.
#include "src/quantum/noise_model.h"
