/**
 * @file
 * Gate-level depolarizing + readout noise configuration.
 *
 * The paper's noisy experiments use depolarizing noise with a 1-qubit
 * gate error rate and a 2-qubit gate error rate (e.g. 0.003 / 0.007 in
 * Fig. 4, 0.001/0.005 vs 0.003/0.007 for the QPU pair in Fig. 8). A
 * NoiseModel carries those two rates plus optional readout-flip
 * probabilities, and supports scaling (used by ZNE, where folding
 * multiplies the effective noise).
 */

#ifndef OSCAR_QUANTUM_NOISE_MODEL_H
#define OSCAR_QUANTUM_NOISE_MODEL_H

namespace oscar {

/** Depolarizing + readout error configuration for one device. */
struct NoiseModel
{
    /** Depolarizing probability after every 1-qubit gate. */
    double p1 = 0.0;

    /** Depolarizing probability after every 2-qubit gate. */
    double p2 = 0.0;

    /** Probability of reading 1 when the qubit is 0. */
    double readout01 = 0.0;

    /** Probability of reading 0 when the qubit is 1. */
    double readout10 = 0.0;

    /** True when every error rate is zero. */
    bool
    ideal() const
    {
        return p1 == 0.0 && p2 == 0.0 && readout01 == 0.0 &&
               readout10 == 0.0;
    }

    /**
     * Noise model with gate error rates multiplied by `factor`
     * (clamped to valid probabilities). This models ZNE noise scaling
     * for backends that do not fold circuits explicitly.
     */
    NoiseModel
    scaled(double factor) const
    {
        auto clamp = [](double p) { return p > 1.0 ? 1.0 : p; };
        NoiseModel m = *this;
        m.p1 = clamp(p1 * factor);
        m.p2 = clamp(p2 * factor);
        return m;
    }

    /** An ideal (noise-free) model. */
    static NoiseModel idealModel() { return NoiseModel{}; }

    /** Depolarizing-only model. */
    static NoiseModel
    depolarizing(double p1_rate, double p2_rate)
    {
        NoiseModel m;
        m.p1 = p1_rate;
        m.p2 = p2_rate;
        return m;
    }
};

} // namespace oscar

#endif // OSCAR_QUANTUM_NOISE_MODEL_H
