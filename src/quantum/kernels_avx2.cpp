/**
 * @file
 * AVX2 + FMA kernel specializations.
 *
 * This translation unit is compiled with -mavx2 -mfma (see the
 * set_source_files_properties call in CMakeLists.txt) and must never
 * be entered on a CPU without those features: dispatch goes through
 * kernels::kernelTable, which checks CPUID before handing out this
 * table. When the build disables AVX2 (OSCAR_ENABLE_AVX2=OFF, e.g.
 * the -march=x86-64 CI leg), the file compiles to a stub that reports
 * "no table" and everything runs on the scalar reference.
 *
 * Layout reminder: a __m256d holds two complex<double> amplitudes as
 * [re0, im0, re1, im1]. The complex product is fused with
 * _mm256_fmaddsub_pd, so results differ from the scalar kernels by
 * rounding (never more); within this ISA every kernel is a pure
 * function of its arguments, which keeps the engine's "bit-identical
 * for a fixed ISA" contract.
 *
 * Pure permutation / sign-flip kernels (cx, swap, negateMasked,
 * flipBit, cz) reuse the scalar implementations: they move values
 * without rounding, so vectorizing them cannot change results and
 * gains little — the hot QAOA path is matrix1q / diag1q / phaseZZ /
 * expectationDiagonal.
 */

#include "src/quantum/kernels.h"

#ifdef OSCAR_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>

namespace oscar {
namespace kernels {
namespace {

inline __m256d
ld(const cplx* p)
{
    return _mm256_loadu_pd(reinterpret_cast<const double*>(p));
}

inline void
st(cplx* p, __m256d v)
{
    _mm256_storeu_pd(reinterpret_cast<double*>(p), v);
}

/** One complex constant in both 128-bit halves. */
inline __m256d
bcast(cplx c)
{
    return _mm256_setr_pd(c.real(), c.imag(), c.real(), c.imag());
}

/** Elementwise complex product of two amplitude pairs. */
inline __m256d
cmul(__m256d a, __m256d b)
{
    const __m256d br = _mm256_movedup_pd(b);      // [br0 br0 br1 br1]
    const __m256d bi = _mm256_permute_pd(b, 0xF); // [bi0 bi0 bi1 bi1]
    const __m256d as = _mm256_permute_pd(a, 0x5); // [ai0 ar0 ai1 ar1]
    // even lanes: ar*br - ai*bi, odd lanes: ai*br + ar*bi
    return _mm256_fmaddsub_pd(a, br, _mm256_mul_pd(as, bi));
}

/** Fixed-order horizontal sum: (v0 + v2) + (v1 + v3). */
inline double
hsum(__m256d v)
{
    const __m128d lo = _mm256_castpd256_pd128(v);
    const __m128d hi = _mm256_extractf128_pd(v, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

void
matrix1qAvx2(cplx* amps, std::size_t dim, int qubit,
             const std::array<cplx, 4>& m)
{
    if (dim < 4) {
        // One pair total (1-qubit system): below the vector width.
        matrix1q(amps, dim, qubit, m);
        return;
    }
    const std::size_t stride = std::size_t{1} << qubit;
    const __m256d m00 = bcast(m[0]);
    const __m256d m01 = bcast(m[1]);
    const __m256d m10 = bcast(m[2]);
    const __m256d m11 = bcast(m[3]);
    if (stride >= 2) {
        // Pair members are stride >= 2 apart: both halves load two
        // consecutive amplitudes.
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 2) {
                cplx* p0 = amps + base + off;
                cplx* p1 = p0 + stride;
                const __m256d a0 = ld(p0);
                const __m256d a1 = ld(p1);
                st(p0, _mm256_add_pd(cmul(a0, m00), cmul(a1, m01)));
                st(p1, _mm256_add_pd(cmul(a0, m10), cmul(a1, m11)));
            }
        }
        return;
    }
    // Qubit 0: pairs are adjacent; deinterleave two pairs per step.
    for (std::size_t i = 0; i < dim; i += 4) {
        const __m256d v0 = ld(amps + i);     // [a0(p) a1(p)]
        const __m256d v1 = ld(amps + i + 2); // [a0(q) a1(q)]
        const __m256d a0 = _mm256_permute2f128_pd(v0, v1, 0x20);
        const __m256d a1 = _mm256_permute2f128_pd(v0, v1, 0x31);
        const __m256d n0 = _mm256_add_pd(cmul(a0, m00), cmul(a1, m01));
        const __m256d n1 = _mm256_add_pd(cmul(a0, m10), cmul(a1, m11));
        st(amps + i, _mm256_permute2f128_pd(n0, n1, 0x20));
        st(amps + i + 2, _mm256_permute2f128_pd(n0, n1, 0x31));
    }
}

/**
 * RX rotation, [[c, -i s], [-i s, c]]: a0' = c a0 + s rot(a1) with
 * rot(x + i y) = y - i x. rot is a lane swap plus a sign pattern, so
 * each output costs one shuffle, one multiply and one fmadd — versus
 * four cmul (20 FMA-port ops) for the generic matrix1q path. The RX
 * layer dominates QAOA suffix replay, which makes this the single
 * highest-leverage kernel in the fused plan.
 */
void
rotXAvx2(cplx* amps, std::size_t dim, int qubit, double c, double s)
{
    if (dim < 4) {
        rotX(amps, dim, qubit, c, s);
        return;
    }
    const std::size_t stride = std::size_t{1} << qubit;
    const __m256d cv = _mm256_set1_pd(c);
    const __m256d sx = _mm256_setr_pd(s, -s, s, -s);
    if (stride >= 2) {
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 2) {
                cplx* p0 = amps + base + off;
                cplx* p1 = p0 + stride;
                const __m256d a0 = ld(p0);
                const __m256d a1 = ld(p1);
                const __m256d r1 = _mm256_permute_pd(a1, 0x5);
                const __m256d r0 = _mm256_permute_pd(a0, 0x5);
                st(p0, _mm256_fmadd_pd(cv, a0, _mm256_mul_pd(sx, r1)));
                st(p1, _mm256_fmadd_pd(cv, a1, _mm256_mul_pd(sx, r0)));
            }
        }
        return;
    }
    // Qubit 0: deinterleave adjacent pairs as in matrix1qAvx2.
    for (std::size_t i = 0; i < dim; i += 4) {
        const __m256d v0 = ld(amps + i);
        const __m256d v1 = ld(amps + i + 2);
        const __m256d a0 = _mm256_permute2f128_pd(v0, v1, 0x20);
        const __m256d a1 = _mm256_permute2f128_pd(v0, v1, 0x31);
        const __m256d n0 = _mm256_fmadd_pd(
            cv, a0, _mm256_mul_pd(sx, _mm256_permute_pd(a1, 0x5)));
        const __m256d n1 = _mm256_fmadd_pd(
            cv, a1, _mm256_mul_pd(sx, _mm256_permute_pd(a0, 0x5)));
        st(amps + i, _mm256_permute2f128_pd(n0, n1, 0x20));
        st(amps + i + 2, _mm256_permute2f128_pd(n0, n1, 0x31));
    }
}

/**
 * RY rotation, [[c, -s], [s, c]]: all-real matrix, so the complex
 * update is plain componentwise arithmetic with no shuffles at all.
 */
void
rotYAvx2(cplx* amps, std::size_t dim, int qubit, double c, double s)
{
    if (dim < 4) {
        rotY(amps, dim, qubit, c, s);
        return;
    }
    const std::size_t stride = std::size_t{1} << qubit;
    const __m256d cv = _mm256_set1_pd(c);
    const __m256d sv = _mm256_set1_pd(s);
    if (stride >= 2) {
        for (std::size_t base = 0; base < dim; base += 2 * stride) {
            for (std::size_t off = 0; off < stride; off += 2) {
                cplx* p0 = amps + base + off;
                cplx* p1 = p0 + stride;
                const __m256d a0 = ld(p0);
                const __m256d a1 = ld(p1);
                st(p0, _mm256_fnmadd_pd(sv, a1, _mm256_mul_pd(cv, a0)));
                st(p1, _mm256_fmadd_pd(sv, a0, _mm256_mul_pd(cv, a1)));
            }
        }
        return;
    }
    for (std::size_t i = 0; i < dim; i += 4) {
        const __m256d v0 = ld(amps + i);
        const __m256d v1 = ld(amps + i + 2);
        const __m256d a0 = _mm256_permute2f128_pd(v0, v1, 0x20);
        const __m256d a1 = _mm256_permute2f128_pd(v0, v1, 0x31);
        const __m256d n0 =
            _mm256_fnmadd_pd(sv, a1, _mm256_mul_pd(cv, a0));
        const __m256d n1 =
            _mm256_fmadd_pd(sv, a0, _mm256_mul_pd(cv, a1));
        st(amps + i, _mm256_permute2f128_pd(n0, n1, 0x20));
        st(amps + i + 2, _mm256_permute2f128_pd(n0, n1, 0x31));
    }
}

/**
 * Pair-fused RX: one pass applying rot(qa) then rot(qb). The quartet
 * {base, base+2^qa, base+2^qb, base+2^qa+2^qb} is held in registers
 * across both steps, halving the load/store traffic that bounds the
 * single-rotation kernel. Each step issues the exact mul+fmadd
 * sequence of rotXAvx2, so the result is bit-identical to the two
 * single passes (the contract that lets the replay pair ops freely).
 * Qubit 0 needs the deinterleave path, so such pairs (and tiny
 * statevectors) fall back to two single calls.
 */
void
rotX2Avx2(cplx* amps, std::size_t dim, int qa, int qb, double ca,
          double sa, double cb, double sb)
{
    if (qa == 0 || qb == 0 || dim < 8) {
        rotXAvx2(amps, dim, qa, ca, sa);
        rotXAvx2(amps, dim, qb, cb, sb);
        return;
    }
    const std::size_t stra = std::size_t{1} << qa;
    const std::size_t strb = std::size_t{1} << qb;
    const std::size_t slo = std::min(stra, strb);
    const std::size_t shi = std::max(stra, strb);
    const __m256d cva = _mm256_set1_pd(ca);
    const __m256d sxa = _mm256_setr_pd(sa, -sa, sa, -sa);
    const __m256d cvb = _mm256_set1_pd(cb);
    const __m256d sxb = _mm256_setr_pd(sb, -sb, sb, -sb);
    for (std::size_t hi = 0; hi < dim; hi += 2 * shi)
        for (std::size_t mid = 0; mid < shi; mid += 2 * slo)
            for (std::size_t off = 0; off < slo; off += 2) {
                cplx* p00 = amps + hi + mid + off;
                cplx* pa = p00 + stra;  // qa partner of base
                cplx* pb = p00 + strb;  // qb partner of base
                cplx* pab = p00 + stra + strb;
                const __m256d a00 = ld(p00), aa = ld(pa), ab = ld(pb),
                              aab = ld(pab);
                // step A: rot(qa) on pairs (base, +stra) and (+strb,
                // +stra+strb)
                const __m256d n00 = _mm256_fmadd_pd(
                    cva, a00,
                    _mm256_mul_pd(sxa, _mm256_permute_pd(aa, 0x5)));
                const __m256d na = _mm256_fmadd_pd(
                    cva, aa,
                    _mm256_mul_pd(sxa, _mm256_permute_pd(a00, 0x5)));
                const __m256d nb = _mm256_fmadd_pd(
                    cva, ab,
                    _mm256_mul_pd(sxa, _mm256_permute_pd(aab, 0x5)));
                const __m256d nab = _mm256_fmadd_pd(
                    cva, aab,
                    _mm256_mul_pd(sxa, _mm256_permute_pd(ab, 0x5)));
                // step B: rot(qb) on pairs (base, +strb) and (+stra,
                // +stra+strb)
                st(p00, _mm256_fmadd_pd(
                            cvb, n00,
                            _mm256_mul_pd(
                                sxb, _mm256_permute_pd(nb, 0x5))));
                st(pb, _mm256_fmadd_pd(
                           cvb, nb,
                           _mm256_mul_pd(
                               sxb, _mm256_permute_pd(n00, 0x5))));
                st(pa, _mm256_fmadd_pd(
                           cvb, na,
                           _mm256_mul_pd(
                               sxb, _mm256_permute_pd(nab, 0x5))));
                st(pab, _mm256_fmadd_pd(
                            cvb, nab,
                            _mm256_mul_pd(
                                sxb, _mm256_permute_pd(na, 0x5))));
            }
}

/** Pair-fused RY; same structure and contract as rotX2Avx2. */
void
rotY2Avx2(cplx* amps, std::size_t dim, int qa, int qb, double ca,
          double sa, double cb, double sb)
{
    if (qa == 0 || qb == 0 || dim < 8) {
        rotYAvx2(amps, dim, qa, ca, sa);
        rotYAvx2(amps, dim, qb, cb, sb);
        return;
    }
    const std::size_t stra = std::size_t{1} << qa;
    const std::size_t strb = std::size_t{1} << qb;
    const std::size_t slo = std::min(stra, strb);
    const std::size_t shi = std::max(stra, strb);
    const __m256d cva = _mm256_set1_pd(ca);
    const __m256d sva = _mm256_set1_pd(sa);
    const __m256d cvb = _mm256_set1_pd(cb);
    const __m256d svb = _mm256_set1_pd(sb);
    for (std::size_t hi = 0; hi < dim; hi += 2 * shi)
        for (std::size_t mid = 0; mid < shi; mid += 2 * slo)
            for (std::size_t off = 0; off < slo; off += 2) {
                cplx* p00 = amps + hi + mid + off;
                cplx* pa = p00 + stra;
                cplx* pb = p00 + strb;
                cplx* pab = p00 + stra + strb;
                const __m256d a00 = ld(p00), aa = ld(pa), ab = ld(pb),
                              aab = ld(pab);
                const __m256d n00 =
                    _mm256_fnmadd_pd(sva, aa, _mm256_mul_pd(cva, a00));
                const __m256d na =
                    _mm256_fmadd_pd(sva, a00, _mm256_mul_pd(cva, aa));
                const __m256d nb =
                    _mm256_fnmadd_pd(sva, aab, _mm256_mul_pd(cva, ab));
                const __m256d nab =
                    _mm256_fmadd_pd(sva, ab, _mm256_mul_pd(cva, aab));
                st(p00,
                   _mm256_fnmadd_pd(svb, nb, _mm256_mul_pd(cvb, n00)));
                st(pb,
                   _mm256_fmadd_pd(svb, n00, _mm256_mul_pd(cvb, nb)));
                st(pa,
                   _mm256_fnmadd_pd(svb, nab, _mm256_mul_pd(cvb, na)));
                st(pab,
                   _mm256_fmadd_pd(svb, na, _mm256_mul_pd(cvb, nab)));
            }
}

void
applyDiagTableAvx2(cplx* amps, std::size_t dim, const cplx* table)
{
    // dim is a power of two >= 2, so pairs tile it exactly.
    for (std::size_t i = 0; i < dim; i += 2)
        st(amps + i, cmul(ld(amps + i), ld(table + i)));
}

void
matvecDenseAvx2(cplx* amps, std::size_t dim, int fbits,
                const cplx* matrix, cplx* scratch)
{
    const std::size_t fdim = std::size_t{1} << fbits;
    for (std::size_t base = 0; base < dim; base += fdim) {
        cplx* blk = amps + base;
        // Ascending-column accumulation, two output rows per vector;
        // matches the scalar kernel's summation order (per-lane) so
        // the result is a pure function of (matrix, block) per ISA.
        const __m256d in0 = bcast(blk[0]);
        for (std::size_t r = 0; r < fdim; r += 2)
            st(scratch + r, cmul(ld(matrix + r), in0));
        for (std::size_t col = 1; col < fdim; ++col) {
            const __m256d in = bcast(blk[col]);
            const cplx* m = matrix + col * fdim;
            for (std::size_t r = 0; r < fdim; r += 2)
                st(scratch + r,
                   _mm256_add_pd(ld(scratch + r), cmul(ld(m + r), in)));
        }
        for (std::size_t r = 0; r < fdim; r += 2)
            st(blk + r, ld(scratch + r));
    }
}

void
diag1qAvx2(cplx* amps, std::size_t dim, int qubit, cplx phase0,
           cplx phase1)
{
    const std::size_t stride = std::size_t{1} << qubit;
    if (stride == 1) {
        const __m256d pv = _mm256_setr_pd(phase0.real(), phase0.imag(),
                                          phase1.real(), phase1.imag());
        for (std::size_t i = 0; i < dim; i += 2)
            st(amps + i, cmul(ld(amps + i), pv));
        return;
    }
    const __m256d p0 = bcast(phase0);
    const __m256d p1 = bcast(phase1);
    for (std::size_t base = 0; base < dim; base += 2 * stride) {
        for (std::size_t off = 0; off < stride; off += 2) {
            cplx* lo = amps + base + off;
            cplx* hi = lo + stride;
            st(lo, cmul(ld(lo), p0));
            st(hi, cmul(ld(hi), p1));
        }
    }
}

void
scaleAvx2(cplx* amps, std::size_t dim, cplx factor)
{
    const __m256d f = bcast(factor);
    for (std::size_t i = 0; i < dim; i += 2)
        st(amps + i, cmul(ld(amps + i), f));
}

void
phaseZZAvx2(cplx* amps, std::size_t dim, int a, int b, cplx same,
            cplx diff)
{
    // Split on the higher qubit: within each half the high bit is
    // fixed, and the low qubit selects agree/differ — exactly a
    // diagonal 1q pass with the phase pair oriented by the high bit.
    const int lo = std::min(a, b);
    const int hi = std::max(a, b);
    const std::size_t hs = std::size_t{1} << hi;
    for (std::size_t base = 0; base < dim; base += 2 * hs) {
        diag1qAvx2(amps + base, hs, lo, same, diff);
        diag1qAvx2(amps + base + hs, hs, lo, diff, same);
    }
}

void
expectationDiagonalBatchAvx2(const cplx* const* states, std::size_t count,
                             const double* diag, std::size_t dim,
                             double* out)
{
    if (dim < 4 || count == 0) {
        expectationDiagonalBatch(states, count, diag, dim, out);
        return;
    }
    // Per-state lane accumulators, processed in register-resident
    // chunks. The per-state sequence of fmadds (and the final
    // horizontal sum) does not depend on count or chunking, so a
    // batch of one is bit-identical to the batched evaluation of the
    // same state inside any group.
    constexpr std::size_t kChunk = 8;
    for (std::size_t s0 = 0; s0 < count; s0 += kChunk) {
        const std::size_t nc = std::min(kChunk, count - s0);
        __m256d acc[kChunk];
        std::fill(acc, acc + nc, _mm256_setzero_pd());
        for (std::size_t i = 0; i < dim; i += 4) {
            const __m256d d = _mm256_loadu_pd(diag + i);
            // [d0 d2 d1 d3], matching the hadd lane order below.
            const __m256d dp =
                _mm256_permute4x64_pd(d, _MM_SHUFFLE(3, 1, 2, 0));
            for (std::size_t c = 0; c < nc; ++c) {
                const double* p =
                    reinterpret_cast<const double*>(states[s0 + c] + i);
                const __m256d v0 = _mm256_loadu_pd(p);
                const __m256d v1 = _mm256_loadu_pd(p + 4);
                const __m256d q0 = _mm256_mul_pd(v0, v0);
                const __m256d q1 = _mm256_mul_pd(v1, v1);
                // [|a0|^2 |a2|^2 |a1|^2 |a3|^2]
                const __m256d n = _mm256_hadd_pd(q0, q1);
                acc[c] = _mm256_fmadd_pd(n, dp, acc[c]);
            }
        }
        for (std::size_t c = 0; c < nc; ++c)
            out[s0 + c] = hsum(acc[c]);
    }
}

/**
 * General Pauli-string expectation. One iteration handles the
 * amplitude pair (i, i+1), i even: the partner indices are
 * j0 = i ^ flip and j1 = j0 ^ 1, so the partner pair lives in the two
 * complexes at (j0 & ~1) -- in order when flip has bit 0 clear,
 * half-swapped when set. The per-lane sign needs one popcount per
 * pair: lane 1's parity differs from lane 0's exactly by bit 0 of the
 * sign mask. The constant phase (i^numY) multiplies the accumulated
 * sum once at the end, matching the scalar kernel's order of
 * operations in structure (though not bit for bit -- cross-ISA
 * comparisons stay tolerance-based).
 */
double
expectationPauliAvx2(const cplx* amps, std::size_t dim,
                     std::uint64_t flip_mask, std::uint64_t sign_mask,
                     cplx phase)
{
    if (dim < 4)
        return expectationPauli(amps, dim, flip_mask, sign_mask, phase);
    const std::size_t flip = static_cast<std::size_t>(flip_mask);
    const bool flip_low = (flip & 1) != 0;
    const bool sign_low = (sign_mask & 1) != 0;
    const __m256d conj_mask =
        _mm256_setr_pd(0.0, -0.0, 0.0, -0.0); // xor flips imag signs
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t i = 0; i < dim; i += 2) {
        const __m256d vi =
            _mm256_xor_pd(ld(amps + i), conj_mask); // conj pair
        const std::size_t j0 = i ^ flip;
        __m256d vj = ld(amps + (j0 & ~std::size_t{1}));
        if (flip_low) // partner pair arrives half-swapped
            vj = _mm256_permute2f128_pd(vj, vj, 0x01);
        const double s0 =
            (__builtin_popcountll(j0 & sign_mask) & 1) ? -1.0 : 1.0;
        const double s1 = sign_low ? -s0 : s0;
        const __m256d sv = _mm256_setr_pd(s0, s0, s1, s1);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(cmul(vi, vj), sv));
    }
    // Complex horizontal sum: lane pair 0 + lane pair 1.
    const __m128d lo = _mm256_castpd256_pd128(acc);
    const __m128d hi = _mm256_extractf128_pd(acc, 1);
    const __m128d c = _mm_add_pd(lo, hi);
    const cplx total(_mm_cvtsd_f64(c),
                     _mm_cvtsd_f64(_mm_unpackhi_pd(c, c)));
    return (phase * total).real();
}

/**
 * Batched Pauli expectation: the partner index, half-swap decision and
 * sign vector are computed once per amplitude pair and shared across
 * all states in the chunk. Each state's accumulator sees exactly the
 * operation sequence of expectationPauliAvx2 above, so out[s] is
 * bit-identical to the single-state kernel on states[s].
 */
void
expectationPauliBatchAvx2(const cplx* const* states, std::size_t count,
                          std::size_t dim, std::uint64_t flip_mask,
                          std::uint64_t sign_mask, cplx phase,
                          double* out)
{
    if (dim < 4 || count == 0) {
        // The single-state kernel also falls back to scalar below the
        // vector width, so delegating the whole batch keeps bitwise
        // agreement with it.
        expectationPauliBatch(states, count, dim, flip_mask, sign_mask,
                              phase, out);
        return;
    }
    const std::size_t flip = static_cast<std::size_t>(flip_mask);
    const bool flip_low = (flip & 1) != 0;
    const bool sign_low = (sign_mask & 1) != 0;
    const __m256d conj_mask = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
    constexpr std::size_t kChunk = 8;
    for (std::size_t s0 = 0; s0 < count; s0 += kChunk) {
        const std::size_t nc = std::min(kChunk, count - s0);
        __m256d acc[kChunk];
        std::fill(acc, acc + nc, _mm256_setzero_pd());
        for (std::size_t i = 0; i < dim; i += 2) {
            const std::size_t j0 = i ^ flip;
            const std::size_t jbase = j0 & ~std::size_t{1};
            const double sg0 =
                (__builtin_popcountll(j0 & sign_mask) & 1) ? -1.0 : 1.0;
            const double sg1 = sign_low ? -sg0 : sg0;
            const __m256d sv = _mm256_setr_pd(sg0, sg0, sg1, sg1);
            for (std::size_t c = 0; c < nc; ++c) {
                const cplx* amps = states[s0 + c];
                const __m256d vi =
                    _mm256_xor_pd(ld(amps + i), conj_mask);
                __m256d vj = ld(amps + jbase);
                if (flip_low)
                    vj = _mm256_permute2f128_pd(vj, vj, 0x01);
                acc[c] = _mm256_add_pd(
                    acc[c], _mm256_mul_pd(cmul(vi, vj), sv));
            }
        }
        for (std::size_t c = 0; c < nc; ++c) {
            const __m128d lo = _mm256_castpd256_pd128(acc[c]);
            const __m128d hi = _mm256_extractf128_pd(acc[c], 1);
            const __m128d cc = _mm_add_pd(lo, hi);
            const cplx total(_mm_cvtsd_f64(cc),
                             _mm_cvtsd_f64(_mm_unpackhi_pd(cc, cc)));
            out[s0 + c] = (phase * total).real();
        }
    }
}

} // namespace

namespace detail {

const KernelTable*
avx2KernelTableOrNull()
{
    static const KernelTable table = [] {
        KernelTable t;
        t.isa = KernelIsa::Avx2;
        t.matrix1q = &matrix1qAvx2;
        t.diag1q = &diag1qAvx2;
        t.cx = &cx;
        t.cz = &cz;
        t.swapQubits = &swapQubits;
        t.phaseZZ = &phaseZZAvx2;
        t.scale = &scaleAvx2;
        t.negateMasked = &negateMasked;
        t.flipBit = &flipBit;
        t.rotX = &rotXAvx2;
        t.rotY = &rotYAvx2;
        t.rotX2 = &rotX2Avx2;
        t.rotY2 = &rotY2Avx2;
        t.applyDiagTable = &applyDiagTableAvx2;
        t.matvecDense = &matvecDenseAvx2;
        t.expectationDiagonalBatch = &expectationDiagonalBatchAvx2;
        t.expectationPauli = &expectationPauliAvx2;
        t.expectationPauliBatch = &expectationPauliBatchAvx2;
        return t;
    }();
    return &table;
}

} // namespace detail
} // namespace kernels
} // namespace oscar

#else // !OSCAR_HAVE_AVX2

namespace oscar {
namespace kernels {
namespace detail {

const KernelTable*
avx2KernelTableOrNull()
{
    return nullptr;
}

} // namespace detail
} // namespace kernels
} // namespace oscar

#endif // OSCAR_HAVE_AVX2
