#include "src/quantum/compiled_circuit.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "src/quantum/kernels.h"
#include "src/quantum/statevector.h"

namespace oscar {

namespace {

/**
 * Diagonal rotation phases {exp(-i a/2), exp(+i a/2)}: the |0>/|1>
 * phases of RZ and equally the agree/differ phases of RZZ.
 */
inline void
rotationPhases(double angle, cplx& p0, cplx& p1)
{
    p0 = std::exp(cplx(0.0, -angle / 2));
    p1 = std::exp(cplx(0.0, angle / 2));
}

/** Matrix product a * b (apply b first, then a). */
std::array<cplx, 4>
matmul(const std::array<cplx, 4>& a, const std::array<cplx, 4>& b)
{
    return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

/** Lower one gate to a compiled op (no fusion). */
CompiledOp
lowerGate(const Gate& gate)
{
    CompiledOp op;
    op.kind = gate.kind;
    op.q0 = static_cast<std::int16_t>(gate.qubits[0]);
    op.q1 = static_cast<std::int16_t>(gate.qubits[1]);
    op.paramIndex = gate.paramIndex;
    op.angle = gate.angle;
    op.coeff = gate.coeff;

    switch (gate.kind) {
      case GateKind::CX:
        op.op = KernelOp::CX;
        return op;
      case GateKind::CZ:
        op.op = KernelOp::CZ;
        return op;
      case GateKind::SWAP:
        op.op = KernelOp::Swap;
        return op;
      case GateKind::RZZ:
        op.op = KernelOp::PhaseZZ;
        if (op.paramIndex < 0)
            rotationPhases(op.angle, op.phase0, op.phase1);
        return op;
      case GateKind::RZ:
        op.op = KernelOp::Diag1q;
        if (op.paramIndex < 0)
            rotationPhases(op.angle, op.phase0, op.phase1);
        return op;
      default:
        // H, X, Y, Z, S, Sdg, RX, RY. Constant payloads are resolved
        // now; a post-pass downgrades diagonal matrices to Diag1q.
        op.op = KernelOp::Matrix1q;
        if (op.paramIndex < 0)
            op.matrix = gateMatrix1q(gate.kind, gate.angle);
        return op;
    }
}

} // namespace

/** Parameter-resolved payload of one op inside a blocked run. */
struct ResolvedPayload
{
    const CompiledOp* op;
    std::array<cplx, 4> matrix;
    cplx p0, p1;
};

namespace {

ResolvedPayload
resolvePayload(const CompiledOp& op, const double* params)
{
    ResolvedPayload r;
    r.op = &op;
    switch (op.op) {
      case KernelOp::Matrix1q:
        r.matrix = op.paramIndex < 0
                       ? op.matrix
                       : gateMatrix1q(op.kind, op.resolvedAngle(params));
        break;
      case KernelOp::Diag1q:
      case KernelOp::PhaseZZ:
        if (op.paramIndex < 0) {
            r.p0 = op.phase0;
            r.p1 = op.phase1;
        } else {
            rotationPhases(op.resolvedAngle(params), r.p0, r.p1);
        }
        break;
      default:
        break; // CX / CZ / Swap carry no payload
    }
    return r;
}

/**
 * Apply one resolved op to the 2^k-amplitude block at amps[base].
 * Qubits below k act inside the block (the kernel runs on the block
 * exactly as it would on the full array); higher qubits are diagonal
 * by the blockable() contract and resolve against the block's base
 * index. Per amplitude this performs the identical operation the
 * unblocked kernel would, so blocking is value-neutral per ISA.
 */
void
applyToBlock(const kernels::KernelTable& t, cplx* blk, std::size_t bs,
             std::size_t base, const ResolvedPayload& r, int k)
{
    const CompiledOp& op = *r.op;
    switch (op.op) {
      case KernelOp::Matrix1q:
        t.matrix1q(blk, bs, op.q0, r.matrix);
        break;
      case KernelOp::Diag1q:
        if (op.q0 < k)
            t.diag1q(blk, bs, op.q0, r.p0, r.p1);
        else
            t.scale(blk, bs, (base >> op.q0) & 1 ? r.p1 : r.p0);
        break;
      case KernelOp::CX:
        if (op.q0 < k)
            t.cx(blk, bs, op.q0, op.q1);
        else if ((base >> op.q0) & 1)
            t.flipBit(blk, bs, op.q1);
        break;
      case KernelOp::CZ: {
        std::size_t lowmask = 0;
        bool high_set = true;
        for (const int q : {int(op.q0), int(op.q1)}) {
            if (q < k)
                lowmask |= std::size_t{1} << q;
            else
                high_set = high_set && ((base >> q) & 1);
        }
        if (high_set)
            t.negateMasked(blk, bs, lowmask);
        break;
      }
      case KernelOp::Swap:
        t.swapQubits(blk, bs, op.q0, op.q1);
        break;
      case KernelOp::PhaseZZ: {
        const bool a_in = op.q0 < k;
        const bool b_in = op.q1 < k;
        if (a_in && b_in) {
            t.phaseZZ(blk, bs, op.q0, op.q1, r.p0, r.p1);
        } else if (a_in || b_in) {
            const int low_q = a_in ? op.q0 : op.q1;
            const int high_q = a_in ? op.q1 : op.q0;
            const bool hb = (base >> high_q) & 1;
            // High bit set flips which low-bit value "agrees".
            t.diag1q(blk, bs, low_q, hb ? r.p1 : r.p0,
                     hb ? r.p0 : r.p1);
        } else {
            const bool ba = (base >> op.q0) & 1;
            const bool bb = (base >> op.q1) & 1;
            t.scale(blk, bs, ba == bb ? r.p0 : r.p1);
        }
        break;
      }
    }
}

/** Execute one op over the full array through the kernel table. */
void
runOp(const CompiledOp& op, cplx* amps, std::size_t dim,
      const double* params, const kernels::KernelTable& t)
{
    switch (op.op) {
      case KernelOp::Matrix1q:
        if (op.paramIndex < 0) {
            t.matrix1q(amps, dim, op.q0, op.matrix);
        } else {
            t.matrix1q(amps, dim, op.q0,
                       gateMatrix1q(op.kind, op.resolvedAngle(params)));
        }
        break;
      case KernelOp::Diag1q:
        if (op.paramIndex < 0) {
            t.diag1q(amps, dim, op.q0, op.phase0, op.phase1);
        } else {
            cplx p0, p1;
            rotationPhases(op.resolvedAngle(params), p0, p1);
            t.diag1q(amps, dim, op.q0, p0, p1);
        }
        break;
      case KernelOp::CX:
        t.cx(amps, dim, op.q0, op.q1);
        break;
      case KernelOp::CZ:
        t.cz(amps, dim, op.q0, op.q1);
        break;
      case KernelOp::Swap:
        t.swapQubits(amps, dim, op.q0, op.q1);
        break;
      case KernelOp::PhaseZZ:
        if (op.paramIndex < 0) {
            t.phaseZZ(amps, dim, op.q0, op.q1, op.phase0, op.phase1);
        } else {
            cplx same, diff;
            rotationPhases(op.resolvedAngle(params), same, diff);
            t.phaseZZ(amps, dim, op.q0, op.q1, same, diff);
        }
        break;
    }
}

} // namespace

CompiledCircuit::CompiledCircuit(const Circuit& circuit,
                                 const CompileOptions& options)
    : numQubits_(circuit.numQubits()), numParams_(circuit.numParams())
{
    ops_.reserve(circuit.numGates());
    firstUse_.assign(static_cast<std::size_t>(numParams_), 0);

    // fusible[q]: index of the trailing constant Matrix1q op on qubit
    // q that later constant 1q gates on q may merge into; -1 when the
    // last op touching q is not such a candidate.
    std::vector<std::ptrdiff_t> fusible(
        static_cast<std::size_t>(numQubits_), -1);

    for (const Gate& gate : circuit.gates()) {
        CompiledOp op = lowerGate(gate);
        const bool constant_1q =
            op.arity() == 1 && op.paramIndex < 0;

        if (options.fuse1q && constant_1q) {
            // Diagonal constants were lowered to Diag1q payloads only
            // for RZ; rebuild the fusable matrix form uniformly.
            const std::array<cplx, 4> m =
                op.op == KernelOp::Diag1q
                    ? std::array<cplx, 4>{op.phase0, cplx(0.0, 0.0),
                                          cplx(0.0, 0.0), op.phase1}
                    : op.matrix;
            std::ptrdiff_t& slot = fusible[op.q0];
            if (slot >= 0) {
                ops_[slot].matrix = matmul(m, ops_[slot].matrix);
                ++fusedGates_;
                continue;
            }
            op.op = KernelOp::Matrix1q;
            op.matrix = m;
            slot = static_cast<std::ptrdiff_t>(ops_.size());
            ops_.push_back(op);
            continue;
        }

        // Any other op ends the fusion window of the qubits it touches.
        fusible[op.q0] = -1;
        if (op.arity() == 2)
            fusible[op.q1] = -1;
        ops_.push_back(op);
    }

    // Downgrade exactly-diagonal constant matrices (Z, S, Sdg, and
    // diagonal fusion products) to the phase-multiply fast path.
    for (CompiledOp& op : ops_) {
        if (op.op == KernelOp::Matrix1q && op.paramIndex < 0 &&
            op.matrix[1] == cplx(0.0, 0.0) &&
            op.matrix[2] == cplx(0.0, 0.0)) {
            op.op = KernelOp::Diag1q;
            op.phase0 = op.matrix[0];
            op.phase1 = op.matrix[3];
        }
    }

    finalizeFrontier();
    setBlockWindow(options.blockWindow);
}

bool
CompiledCircuit::blockable(const CompiledOp& op, int k)
{
    switch (op.op) {
      case KernelOp::Diag1q:
      case KernelOp::CZ:
      case KernelOp::PhaseZZ:
        // Diagonal in every qubit: high qubits resolve against the
        // block base, low qubits act inside the block.
        return true;
      case KernelOp::Matrix1q:
        return op.q0 < k;
      case KernelOp::CX:
        // Diagonal in the control; the target must stay in-block.
        return op.q1 < k;
      case KernelOp::Swap:
        return op.q0 < k && op.q1 < k;
    }
    return false;
}

void
CompiledCircuit::setBlockWindow(int window)
{
    plan_.clear();
    blockedGroups_ = 0;
    blockedOps_ = 0;
    blockBits_ = window <= 0 ? 0 : std::min(window, numQubits_);
    if (blockBits_ <= 0 || ops_.empty()) {
        blockBits_ = 0;
        return;
    }
    const int k = blockBits_;
    // Greedy segmentation: maximal runs of >= 2 blockable ops become
    // fused passes; everything else collects into plain segments.
    std::size_t i = 0;
    while (i < ops_.size()) {
        std::size_t j = i;
        while (j < ops_.size() && blockable(ops_[j], k))
            ++j;
        if (j - i >= 2) {
            plan_.push_back({static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(j), true});
            ++blockedGroups_;
            blockedOps_ += j - i;
            i = j;
            continue;
        }
        std::size_t e = std::max(j, i + 1);
        while (e < ops_.size() &&
               !(blockable(ops_[e], k) && e + 1 < ops_.size() &&
                 blockable(ops_[e + 1], k)))
            ++e;
        plan_.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(e), false});
        i = e;
    }
}

void
CompiledCircuit::finalizeFrontier()
{
    std::fill(firstUse_.begin(), firstUse_.end(), ops_.size());
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        const std::int32_t j = ops_[k].paramIndex;
        if (j >= 0 && firstUse_[j] == ops_.size())
            firstUse_[j] = k;
    }

    constantPrefix_ = ops_.size();
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        if (ops_[k].paramIndex >= 0) {
            constantPrefix_ = k;
            break;
        }
    }

    frontier_ = firstUse_;
    std::sort(frontier_.begin(), frontier_.end());
    frontier_.erase(std::unique(frontier_.begin(), frontier_.end()),
                    frontier_.end());
    // Unused parameters contribute a bogus level at numOps().
    while (!frontier_.empty() && frontier_.back() >= ops_.size())
        frontier_.pop_back();
}

std::vector<int>
CompiledCircuit::paramsUsedBefore(std::size_t level) const
{
    std::vector<int> used;
    for (int j = 0; j < numParams_; ++j) {
        if (firstUse_[j] < level)
            used.push_back(j);
    }
    return used;
}

std::vector<int>
CompiledCircuit::parameterOrder() const
{
    std::vector<int> order(static_cast<std::size_t>(numParams_));
    for (int j = 0; j < numParams_; ++j)
        order[j] = j;
    std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
        return firstUse_[a] < firstUse_[b];
    });
    return order;
}

std::size_t
CompiledCircuit::sharedPrefixLength(const std::vector<double>& a,
                                    const std::vector<double>& b) const
{
    std::size_t prefix = ops_.size();
    for (int j = 0; j < numParams_; ++j) {
        if (std::bit_cast<std::uint64_t>(a[j]) !=
            std::bit_cast<std::uint64_t>(b[j]))
            prefix = std::min(prefix, firstUse_[j]);
    }
    return prefix;
}

void
CompiledCircuit::runBlocked(cplx* amps, std::size_t dim,
                            std::size_t begin, std::size_t end,
                            const double* params,
                            const kernels::KernelTable& table) const
{
    const int k = blockBits_;
    const std::size_t bs = std::size_t{1} << k;
    // Resolve payloads in bounded chunks (stack-local, keeps runRange
    // thread-safe), then stream the statevector once per chunk,
    // applying every op of the chunk while each block is cache-hot.
    constexpr std::size_t kOpChunk = 24;
    ResolvedPayload resolved[kOpChunk];
    for (std::size_t cb = begin; cb < end; cb += kOpChunk) {
        const std::size_t n = std::min(kOpChunk, end - cb);
        for (std::size_t j = 0; j < n; ++j)
            resolved[j] = resolvePayload(ops_[cb + j], params);
        for (std::size_t base = 0; base < dim; base += bs) {
            cplx* blk = amps + base;
            for (std::size_t j = 0; j < n; ++j)
                applyToBlock(table, blk, bs, base, resolved[j], k);
        }
    }
}

void
CompiledCircuit::runRange(cplx* amps, std::size_t dim, std::size_t begin,
                          std::size_t end, const double* params,
                          const kernels::KernelTable& table,
                          ReplayCounters* counters) const
{
    if (begin >= end)
        return;
    // Blocking requires the block to divide the array (callers with
    // dim != 2^numQubits, if any, degrade to the plain loop).
    const bool use_plan = blockBits_ > 0 && !plan_.empty() &&
                          (std::size_t{1} << blockBits_) <= dim;
    if (!use_plan) {
        for (std::size_t k = begin; k < end; ++k)
            runOp(ops_[k], amps, dim, params, table);
        return;
    }
    for (const PlanSegment& seg : plan_) {
        if (seg.end <= begin)
            continue;
        if (seg.begin >= end)
            break;
        const std::size_t lo = std::max<std::size_t>(seg.begin, begin);
        const std::size_t hi = std::min<std::size_t>(seg.end, end);
        if (seg.blocked && hi - lo >= 2) {
            runBlocked(amps, dim, lo, hi, params, table);
            if (counters) {
                ++counters->blockedGroupRuns;
                counters->blockedOpsApplied += hi - lo;
            }
        } else {
            for (std::size_t k = lo; k < hi; ++k)
                runOp(ops_[k], amps, dim, params, table);
        }
    }
}

void
CompiledCircuit::runRange(cplx* amps, std::size_t dim, std::size_t begin,
                          std::size_t end, const double* params) const
{
    runRange(amps, dim, begin, end, params,
             kernels::defaultKernelTable());
}

void
CompiledCircuit::run(Statevector& state,
                     const std::vector<double>& params) const
{
    if (state.numQubits() != numQubits_)
        throw std::invalid_argument("CompiledCircuit::run: qubit mismatch");
    if (static_cast<int>(params.size()) != numParams_)
        throw std::invalid_argument(
            "CompiledCircuit::run: wrong parameter count");
    runRange(state.amps().data(), state.dim(), 0, ops_.size(),
             params.data());
}

void
CompiledCircuit::run(Statevector& state) const
{
    if (numParams_ != 0)
        throw std::invalid_argument(
            "CompiledCircuit::run: unbound parameters");
    if (state.numQubits() != numQubits_)
        throw std::invalid_argument("CompiledCircuit::run: qubit mismatch");
    runRange(state.amps().data(), state.dim(), 0, ops_.size(), nullptr);
}

} // namespace oscar
