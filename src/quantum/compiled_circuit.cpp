#include "src/quantum/compiled_circuit.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "src/quantum/kernels.h"
#include "src/quantum/statevector.h"

namespace oscar {

namespace {

/**
 * Diagonal rotation phases {exp(-i a/2), exp(+i a/2)}: the |0>/|1>
 * phases of RZ and equally the agree/differ phases of RZZ.
 */
inline void
rotationPhases(double angle, cplx& p0, cplx& p1)
{
    p0 = std::exp(cplx(0.0, -angle / 2));
    p1 = std::exp(cplx(0.0, angle / 2));
}

/** Matrix product a * b (apply b first, then a). */
std::array<cplx, 4>
matmul(const std::array<cplx, 4>& a, const std::array<cplx, 4>& b)
{
    return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

/** Lower one gate to a compiled op (no fusion). */
CompiledOp
lowerGate(const Gate& gate)
{
    CompiledOp op;
    op.kind = gate.kind;
    op.q0 = static_cast<std::int16_t>(gate.qubits[0]);
    op.q1 = static_cast<std::int16_t>(gate.qubits[1]);
    op.paramIndex = gate.paramIndex;
    op.angle = gate.angle;
    op.coeff = gate.coeff;

    switch (gate.kind) {
      case GateKind::CX:
        op.op = KernelOp::CX;
        return op;
      case GateKind::CZ:
        op.op = KernelOp::CZ;
        return op;
      case GateKind::SWAP:
        op.op = KernelOp::Swap;
        return op;
      case GateKind::RZZ:
        op.op = KernelOp::PhaseZZ;
        if (op.paramIndex < 0)
            rotationPhases(op.angle, op.phase0, op.phase1);
        return op;
      case GateKind::RZ:
        op.op = KernelOp::Diag1q;
        if (op.paramIndex < 0)
            rotationPhases(op.angle, op.phase0, op.phase1);
        return op;
      default:
        // H, X, Y, Z, S, Sdg, RX, RY. Constant payloads are resolved
        // now; a post-pass downgrades diagonal matrices to Diag1q.
        op.op = KernelOp::Matrix1q;
        if (op.paramIndex < 0)
            op.matrix = gateMatrix1q(gate.kind, gate.angle);
        return op;
    }
}

} // namespace

/** Parameter-resolved payload of one op inside a blocked run. */
struct ResolvedPayload
{
    const CompiledOp* op;
    std::array<cplx, 4> matrix;
    cplx p0, p1;
    int rot = 0; ///< 1 = rotX(c, s), 2 = rotY(c, s) (fusion plans only)
    double c = 0.0, s = 0.0;
};

namespace {

/**
 * True when fusion plans lower this op onto the specialized rotation
 * kernels instead of the generic 2x2 matrix path. Constant RX/RY were
 * already merged by 1q fusion, so only parameterized ones remain.
 */
inline bool
rotLowerable(const CompiledOp& op)
{
    return op.op == KernelOp::Matrix1q && op.paramIndex >= 0 &&
           (op.kind == GateKind::RX || op.kind == GateKind::RY);
}

ResolvedPayload
resolvePayload(const CompiledOp& op, const double* params,
               bool rotLower = false)
{
    ResolvedPayload r;
    r.op = &op;
    switch (op.op) {
      case KernelOp::Matrix1q:
        if (rotLower && rotLowerable(op)) {
            // RX = [[c, -i s], [-i s, c]], RY = [[c, -s], [s, c]] with
            // c = cos(a/2), s = sin(a/2): both run ~2x faster through
            // the dedicated kernels. Rounding differs from the generic
            // matrix path, so the lowering is keyed on the fusion plan.
            const double a = op.resolvedAngle(params);
            r.rot = op.kind == GateKind::RX ? 1 : 2;
            r.c = std::cos(a / 2);
            r.s = std::sin(a / 2);
            break;
        }
        r.matrix = op.paramIndex < 0
                       ? op.matrix
                       : gateMatrix1q(op.kind, op.resolvedAngle(params));
        break;
      case KernelOp::Diag1q:
      case KernelOp::PhaseZZ:
        if (op.paramIndex < 0) {
            r.p0 = op.phase0;
            r.p1 = op.phase1;
        } else {
            rotationPhases(op.resolvedAngle(params), r.p0, r.p1);
        }
        break;
      default:
        break; // CX / CZ / Swap carry no payload
    }
    return r;
}

/**
 * Apply one resolved op to the 2^k-amplitude block at amps[base].
 * Qubits below k act inside the block (the kernel runs on the block
 * exactly as it would on the full array); higher qubits are diagonal
 * by the blockable() contract and resolve against the block's base
 * index. Per amplitude this performs the identical operation the
 * unblocked kernel would, so blocking is value-neutral per ISA.
 */
void
applyToBlock(const kernels::KernelTable& t, cplx* blk, std::size_t bs,
             std::size_t base, const ResolvedPayload& r, int k)
{
    const CompiledOp& op = *r.op;
    switch (op.op) {
      case KernelOp::Matrix1q:
        if (r.rot == 1)
            t.rotX(blk, bs, op.q0, r.c, r.s);
        else if (r.rot == 2)
            t.rotY(blk, bs, op.q0, r.c, r.s);
        else
            t.matrix1q(blk, bs, op.q0, r.matrix);
        break;
      case KernelOp::Diag1q:
        if (op.q0 < k)
            t.diag1q(blk, bs, op.q0, r.p0, r.p1);
        else
            t.scale(blk, bs, (base >> op.q0) & 1 ? r.p1 : r.p0);
        break;
      case KernelOp::CX:
        if (op.q0 < k)
            t.cx(blk, bs, op.q0, op.q1);
        else if ((base >> op.q0) & 1)
            t.flipBit(blk, bs, op.q1);
        break;
      case KernelOp::CZ: {
        std::size_t lowmask = 0;
        bool high_set = true;
        for (const int q : {int(op.q0), int(op.q1)}) {
            if (q < k)
                lowmask |= std::size_t{1} << q;
            else
                high_set = high_set && ((base >> q) & 1);
        }
        if (high_set)
            t.negateMasked(blk, bs, lowmask);
        break;
      }
      case KernelOp::Swap:
        t.swapQubits(blk, bs, op.q0, op.q1);
        break;
      case KernelOp::PhaseZZ: {
        const bool a_in = op.q0 < k;
        const bool b_in = op.q1 < k;
        if (a_in && b_in) {
            t.phaseZZ(blk, bs, op.q0, op.q1, r.p0, r.p1);
        } else if (a_in || b_in) {
            const int low_q = a_in ? op.q0 : op.q1;
            const int high_q = a_in ? op.q1 : op.q0;
            const bool hb = (base >> high_q) & 1;
            // High bit set flips which low-bit value "agrees".
            t.diag1q(blk, bs, low_q, hb ? r.p1 : r.p0,
                     hb ? r.p0 : r.p1);
        } else {
            const bool ba = (base >> op.q0) & 1;
            const bool bb = (base >> op.q1) & 1;
            t.scale(blk, bs, ba == bb ? r.p0 : r.p1);
        }
        break;
      }
    }
}

/**
 * Apply a run of resolved ops to one block, pair-fusing adjacent
 * lowered rotations of the same axis on distinct qubits through the
 * rotX2/rotY2 super-kernels. Those kernels are bit-identical to the
 * two single calls, so pairing is purely an execution-speed decision:
 * any chunk, segment or checkpoint boundary may split a would-be pair
 * without perturbing a single bit.
 */
void
applyRunToBlock(const kernels::KernelTable& t, cplx* blk,
                std::size_t bs, std::size_t base,
                const ResolvedPayload* r, std::size_t n, int k)
{
    std::size_t j = 0;
    while (j < n) {
        if (j + 1 < n && r[j].rot != 0 && r[j].rot == r[j + 1].rot &&
            r[j].op->q0 != r[j + 1].op->q0) {
            const auto pair = r[j].rot == 1 ? t.rotX2 : t.rotY2;
            pair(blk, bs, r[j].op->q0, r[j + 1].op->q0, r[j].c, r[j].s,
                 r[j + 1].c, r[j + 1].s);
            j += 2;
            continue;
        }
        applyToBlock(t, blk, bs, base, r[j], k);
        ++j;
    }
}

/** Execute one op over the full array through the kernel table. */
void
runOp(const CompiledOp& op, cplx* amps, std::size_t dim,
      const double* params, const kernels::KernelTable& t,
      bool rotLower)
{
    switch (op.op) {
      case KernelOp::Matrix1q:
        if (rotLower && rotLowerable(op)) {
            const double a = op.resolvedAngle(params);
            const double c = std::cos(a / 2);
            const double s = std::sin(a / 2);
            if (op.kind == GateKind::RX)
                t.rotX(amps, dim, op.q0, c, s);
            else
                t.rotY(amps, dim, op.q0, c, s);
        } else if (op.paramIndex < 0) {
            t.matrix1q(amps, dim, op.q0, op.matrix);
        } else {
            t.matrix1q(amps, dim, op.q0,
                       gateMatrix1q(op.kind, op.resolvedAngle(params)));
        }
        break;
      case KernelOp::Diag1q:
        if (op.paramIndex < 0) {
            t.diag1q(amps, dim, op.q0, op.phase0, op.phase1);
        } else {
            cplx p0, p1;
            rotationPhases(op.resolvedAngle(params), p0, p1);
            t.diag1q(amps, dim, op.q0, p0, p1);
        }
        break;
      case KernelOp::CX:
        t.cx(amps, dim, op.q0, op.q1);
        break;
      case KernelOp::CZ:
        t.cz(amps, dim, op.q0, op.q1);
        break;
      case KernelOp::Swap:
        t.swapQubits(amps, dim, op.q0, op.q1);
        break;
      case KernelOp::PhaseZZ:
        if (op.paramIndex < 0) {
            t.phaseZZ(amps, dim, op.q0, op.q1, op.phase0, op.phase1);
        } else {
            cplx same, diff;
            rotationPhases(op.resolvedAngle(params), same, diff);
            t.phaseZZ(amps, dim, op.q0, op.q1, same, diff);
        }
        break;
    }
}

/**
 * Execute ops [lo, hi) over the full array, pair-fusing adjacent
 * lowered rotations exactly like applyRunToBlock does per block.
 * Bit-identical to the one-op-at-a-time loop by the rotX2/rotY2
 * contract, so range boundaries never affect the result.
 */
void
runOps(const std::vector<CompiledOp>& ops, std::size_t lo, std::size_t hi,
       cplx* amps, std::size_t dim, const double* params,
       const kernels::KernelTable& t, bool rotLower)
{
    std::size_t k = lo;
    while (k < hi) {
        if (rotLower && k + 1 < hi && rotLowerable(ops[k]) &&
            rotLowerable(ops[k + 1]) && ops[k].kind == ops[k + 1].kind &&
            ops[k].q0 != ops[k + 1].q0) {
            const double aa = ops[k].resolvedAngle(params);
            const double ab = ops[k + 1].resolvedAngle(params);
            const auto pair =
                ops[k].kind == GateKind::RX ? t.rotX2 : t.rotY2;
            pair(amps, dim, ops[k].q0, ops[k + 1].q0, std::cos(aa / 2),
                 std::sin(aa / 2), std::cos(ab / 2), std::sin(ab / 2));
            k += 2;
            continue;
        }
        runOp(ops[k], amps, dim, params, t, rotLower);
        ++k;
    }
}

} // namespace

CompiledCircuit::CompiledCircuit(const Circuit& circuit,
                                 const CompileOptions& options)
    : numQubits_(circuit.numQubits()), numParams_(circuit.numParams())
{
    ops_.reserve(circuit.numGates());
    firstUse_.assign(static_cast<std::size_t>(numParams_), 0);

    // fusible[q]: index of the trailing constant Matrix1q op on qubit
    // q that later constant 1q gates on q may merge into; -1 when the
    // last op touching q is not such a candidate.
    std::vector<std::ptrdiff_t> fusible(
        static_cast<std::size_t>(numQubits_), -1);

    for (const Gate& gate : circuit.gates()) {
        CompiledOp op = lowerGate(gate);
        const bool constant_1q =
            op.arity() == 1 && op.paramIndex < 0;

        if (options.fuse1q && constant_1q) {
            // Diagonal constants were lowered to Diag1q payloads only
            // for RZ; rebuild the fusable matrix form uniformly.
            const std::array<cplx, 4> m =
                op.op == KernelOp::Diag1q
                    ? std::array<cplx, 4>{op.phase0, cplx(0.0, 0.0),
                                          cplx(0.0, 0.0), op.phase1}
                    : op.matrix;
            std::ptrdiff_t& slot = fusible[op.q0];
            if (slot >= 0) {
                ops_[slot].matrix = matmul(m, ops_[slot].matrix);
                ++fusedGates_;
                continue;
            }
            op.op = KernelOp::Matrix1q;
            op.matrix = m;
            slot = static_cast<std::ptrdiff_t>(ops_.size());
            ops_.push_back(op);
            continue;
        }

        // Any other op ends the fusion window of the qubits it touches.
        fusible[op.q0] = -1;
        if (op.arity() == 2)
            fusible[op.q1] = -1;
        ops_.push_back(op);
    }

    // Downgrade exactly-diagonal constant matrices (Z, S, Sdg, and
    // diagonal fusion products) to the phase-multiply fast path.
    for (CompiledOp& op : ops_) {
        if (op.op == KernelOp::Matrix1q && op.paramIndex < 0 &&
            op.matrix[1] == cplx(0.0, 0.0) &&
            op.matrix[2] == cplx(0.0, 0.0)) {
            op.op = KernelOp::Diag1q;
            op.phase0 = op.matrix[0];
            op.phase1 = op.matrix[3];
        }
    }

    finalizeFrontier();
    blockBits_ = options.blockWindow <= 0
                     ? 0
                     : std::min(options.blockWindow, numQubits_);
    fuseBits_ = options.fuseWindow <= 0
                    ? 0
                    : std::min(options.fuseWindow, numQubits_);
    rebuildPlan();
}

bool
CompiledCircuit::blockable(const CompiledOp& op, int k)
{
    switch (op.op) {
      case KernelOp::Diag1q:
      case KernelOp::CZ:
      case KernelOp::PhaseZZ:
        // Diagonal in every qubit: high qubits resolve against the
        // block base, low qubits act inside the block.
        return true;
      case KernelOp::Matrix1q:
        return op.q0 < k;
      case KernelOp::CX:
        // Diagonal in the control; the target must stay in-block.
        return op.q1 < k;
      case KernelOp::Swap:
        return op.q0 < k && op.q1 < k;
    }
    return false;
}

namespace {

/** True for the diagonal op kinds a DiagTable unit may contain. */
inline bool
isDiagonalOp(const CompiledOp& op)
{
    return op.op == KernelOp::Diag1q || op.op == KernelOp::CZ ||
           op.op == KernelOp::PhaseZZ;
}

/**
 * True when a diagonal op folds into the per-block table (every qubit
 * below the block window); false keeps it as per-block context.
 */
inline bool
diagFoldable(const CompiledOp& op, int k)
{
    if (op.q0 >= k)
        return false;
    return op.arity() == 1 || op.q1 < k;
}

/** True when every qubit the op touches sits below `f` (dense-fusable). */
inline bool
denseFusable(const CompiledOp& op, int f)
{
    if (op.q0 >= f)
        return false;
    return op.arity() == 1 || op.q1 < f;
}

/**
 * Per-amplitude replay cost of one op in quarter-complex-multiplies,
 * against which a dense matvec costs 4 << fbits. Conservative: the
 * generic 2x2 matrix is the expensive case, the rotation lowering
 * halves it, and diagonal/permutation ops are cheap.
 */
inline unsigned
denseWeight(const CompiledOp& op)
{
    if (op.op == KernelOp::Matrix1q)
        return rotLowerable(op) ? 8u : 16u;
    return 4u;
}

} // namespace

void
CompiledCircuit::setBlockWindow(int window)
{
    blockBits_ = window <= 0 ? 0 : std::min(window, numQubits_);
    rebuildPlan();
}

void
CompiledCircuit::setFuseWindow(int window)
{
    fuseBits_ = window <= 0 ? 0 : std::min(window, numQubits_);
    rebuildPlan();
}

void
CompiledCircuit::rebuildPlan()
{
    plan_.clear();
    units_.clear();
    constPayload_.clear();
    blockedGroups_ = 0;
    blockedOps_ = 0;
    fusedOps_ = 0;
    paramScratchSize_ = 0;
    matvecScratchSize_ = 0;
    if (blockBits_ <= 0 || ops_.empty()) {
        blockBits_ = 0;
        return;
    }
    const int k = blockBits_;
    // Greedy segmentation: maximal runs of >= 2 blockable ops become
    // fused passes; everything else collects into plain segments.
    std::size_t i = 0;
    while (i < ops_.size()) {
        std::size_t j = i;
        while (j < ops_.size() && blockable(ops_[j], k))
            ++j;
        if (j - i >= 2) {
            plan_.push_back({static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(j), true, 0, 0});
            ++blockedGroups_;
            blockedOps_ += j - i;
            i = j;
            continue;
        }
        std::size_t e = std::max(j, i + 1);
        while (e < ops_.size() &&
               !(blockable(ops_[e], k) && e + 1 < ops_.size() &&
                 blockable(ops_[e + 1], k)))
            ++e;
        plan_.push_back({static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(e), false, 0, 0});
        i = e;
    }

    if (fuseBits_ <= 0)
        return;
    for (PlanSegment& seg : plan_) {
        if (seg.blocked)
            formUnits(seg);
    }

    // Lay out payload storage: constant payloads pack into
    // constPayload_ once, parameterized ones get disjoint offsets in
    // the per-call scratch. Offsets round up to 8 complexes so every
    // payload starts on a 128-byte boundary inside the 64-byte-aligned
    // backing store.
    constexpr std::size_t kPayloadAlign = 8;
    std::size_t constSize = 0;
    std::size_t paramSize = 0;
    for (FusedUnit& u : units_) {
        const std::size_t psize =
            u.kind == FuseKind::DiagTable
                ? std::size_t{1} << blockBits_
                : std::size_t{1} << (2 * u.fbits);
        std::size_t& acc = u.constant ? constSize : paramSize;
        acc = (acc + kPayloadAlign - 1) & ~(kPayloadAlign - 1);
        u.payloadOffset = static_cast<std::uint32_t>(acc);
        acc += psize;
        if (u.kind == FuseKind::Dense) {
            matvecScratchSize_ = std::max(
                matvecScratchSize_, std::size_t{1} << u.fbits);
        }
        fusedOps_ += u.foldCount;
    }
    paramScratchSize_ = paramSize;
    constPayload_.assign(constSize, cplx(0.0, 0.0));
    for (const FusedUnit& u : units_) {
        if (!u.constant)
            continue;
        cplx* payload = constPayload_.data() + u.payloadOffset;
        if (u.kind == FuseKind::DiagTable)
            buildDiagTable(u, nullptr, kernels::scalarKernelTable(),
                           payload);
        else
            buildDenseMatrix(u, nullptr, payload);
    }
}

void
CompiledCircuit::formUnits(PlanSegment& seg)
{
    seg.unitBegin = static_cast<std::uint32_t>(units_.size());
    const int k = blockBits_;
    const int fcap = std::min({fuseBits_, blockBits_, 6});
    // Units never straddle a frontier level: checkpoint resume and
    // batched suffix replay cut the schedule exactly there, and a unit
    // crossing a cut would replay differently fused vs split.
    std::size_t lo = seg.begin;
    while (lo < seg.end) {
        const auto cut = std::upper_bound(frontier_.begin(),
                                          frontier_.end(), lo);
        const std::size_t hi = std::min<std::size_t>(
            seg.end, cut == frontier_.end() ? ops_.size() : *cut);
        std::size_t i = lo;
        while (i < hi) {
            // Diagonal run: >= 2 consecutive diagonal ops, at least 2
            // of them folding into the per-block table.
            std::size_t j = i;
            while (j < hi && isDiagonalOp(ops_[j]))
                ++j;
            if (j - i >= 2) {
                std::uint32_t fold = 0;
                bool constant = true;
                for (std::size_t m = i; m < j; ++m) {
                    if (!diagFoldable(ops_[m], k))
                        continue;
                    ++fold;
                    constant = constant && ops_[m].paramIndex < 0;
                }
                // A parameterized table costs a rebuild of 2^blockBits
                // complexes per replay (through the active ISA's
                // kernels, so it is cheap); >= 4 blocks amortize it.
                // Constant tables are free.
                if (fold >= 2 && (constant || numQubits_ - k >= 2)) {
                    units_.push_back({static_cast<std::uint32_t>(i),
                                      static_cast<std::uint32_t>(j),
                                      FuseKind::DiagTable,
                                      static_cast<std::uint8_t>(k),
                                      constant, 0, fold});
                    i = j;
                    continue;
                }
                i = j;
                continue;
            }
            // Dense run: >= 2 consecutive ops confined to the low fcap
            // qubits. Collapse the longest prefix whose summed per-op
            // weight beats the matvec cost of 4 quarter-multiplies per
            // amplitude per matrix dimension.
            std::size_t d = i;
            while (d < hi && denseFusable(ops_[d], fcap))
                ++d;
            bool fused = false;
            if (fcap > 0 && d - i >= 2) {
                std::vector<unsigned> wsum(d - i + 1, 0);
                std::vector<int> maxq(d - i + 1, 0);
                int q = 0;
                for (std::size_t m = i; m < d; ++m) {
                    const CompiledOp& op = ops_[m];
                    q = std::max(q, int(op.q0));
                    if (op.arity() == 2)
                        q = std::max(q, int(op.q1));
                    maxq[m - i + 1] = q;
                    wsum[m - i + 1] = wsum[m - i] + denseWeight(op);
                }
                for (std::size_t n = d - i; n >= 2; --n) {
                    const int fbits = maxq[n] + 1;
                    bool constant = true;
                    for (std::size_t m = i; m < i + n; ++m)
                        constant = constant && ops_[m].paramIndex < 0;
                    // Constant matrices are prebuilt, so fusing pays
                    // as soon as the matvec beats the folded ops.
                    // Parameterized ones are rebuilt every replay;
                    // demand a 4x margin so small runs (e.g. a pair
                    // of rotations, already served by the paired rot
                    // kernels) are not slowed down by the rebuild.
                    const unsigned need =
                        constant ? (4u << fbits) : (16u << fbits);
                    if (need > wsum[n])
                        continue;
                    units_.push_back(
                        {static_cast<std::uint32_t>(i),
                         static_cast<std::uint32_t>(i + n),
                         FuseKind::Dense,
                         static_cast<std::uint8_t>(fbits), constant, 0,
                         static_cast<std::uint32_t>(n)});
                    i += n;
                    fused = true;
                    break;
                }
            }
            if (!fused)
                ++i;
        }
        lo = hi;
    }
    seg.unitEnd = static_cast<std::uint32_t>(units_.size());
}

void
CompiledCircuit::buildDiagTable(const FusedUnit& unit,
                                const double* params,
                                const kernels::KernelTable& t,
                                cplx* table) const
{
    // The unit's kernels applied to a ones vector. Constant tables are
    // prebuilt once through the scalar reference kernels and are thus
    // ISA-independent; parameterized tables are rebuilt per replay
    // through the active table, which is the same table every replay
    // of a fixed (ISA, plan) pair uses — exactly the determinism
    // contract the engine documents.
    const std::size_t tdim = std::size_t{1} << blockBits_;
    std::fill(table, table + tdim, cplx(1.0, 0.0));
    for (std::size_t m = unit.begin; m < unit.end; ++m) {
        const CompiledOp& op = ops_[m];
        if (!diagFoldable(op, blockBits_))
            continue; // per-block context, applied at replay time
        const ResolvedPayload r = resolvePayload(op, params);
        switch (op.op) {
          case KernelOp::Diag1q:
            t.diag1q(table, tdim, op.q0, r.p0, r.p1);
            break;
          case KernelOp::CZ:
            t.cz(table, tdim, op.q0, op.q1);
            break;
          default: // PhaseZZ (the only other diagonal kind)
            t.phaseZZ(table, tdim, op.q0, op.q1, r.p0, r.p1);
            break;
        }
    }
}

void
CompiledCircuit::buildDenseMatrix(const FusedUnit& unit,
                                  const double* params,
                                  cplx* matrix) const
{
    // Column c of the fused matrix is the op run applied to basis
    // state |c>, via the scalar reference kernels (ISA-independent,
    // as above). Column-major: matrix[c * fdim + r].
    const std::size_t fdim = std::size_t{1} << unit.fbits;
    std::fill(matrix, matrix + fdim * fdim, cplx(0.0, 0.0));
    for (std::size_t c = 0; c < fdim; ++c)
        matrix[c * fdim + c] = cplx(1.0, 0.0);
    const kernels::KernelTable& t = kernels::scalarKernelTable();
    for (std::size_t m = unit.begin; m < unit.end; ++m) {
        for (std::size_t c = 0; c < fdim; ++c)
            runOp(ops_[m], matrix + c * fdim, fdim, params, t, false);
    }
}

void
CompiledCircuit::finalizeFrontier()
{
    std::fill(firstUse_.begin(), firstUse_.end(), ops_.size());
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        const std::int32_t j = ops_[k].paramIndex;
        if (j >= 0 && firstUse_[j] == ops_.size())
            firstUse_[j] = k;
    }

    constantPrefix_ = ops_.size();
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        if (ops_[k].paramIndex >= 0) {
            constantPrefix_ = k;
            break;
        }
    }

    frontier_ = firstUse_;
    std::sort(frontier_.begin(), frontier_.end());
    frontier_.erase(std::unique(frontier_.begin(), frontier_.end()),
                    frontier_.end());
    // Unused parameters contribute a bogus level at numOps().
    while (!frontier_.empty() && frontier_.back() >= ops_.size())
        frontier_.pop_back();
}

std::vector<int>
CompiledCircuit::paramsUsedBefore(std::size_t level) const
{
    std::vector<int> used;
    for (int j = 0; j < numParams_; ++j) {
        if (firstUse_[j] < level)
            used.push_back(j);
    }
    return used;
}

std::vector<int>
CompiledCircuit::parameterOrder() const
{
    std::vector<int> order(static_cast<std::size_t>(numParams_));
    for (int j = 0; j < numParams_; ++j)
        order[j] = j;
    std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
        return firstUse_[a] < firstUse_[b];
    });
    return order;
}

std::size_t
CompiledCircuit::sharedPrefixLength(const std::vector<double>& a,
                                    const std::vector<double>& b) const
{
    std::size_t prefix = ops_.size();
    for (int j = 0; j < numParams_; ++j) {
        if (std::bit_cast<std::uint64_t>(a[j]) !=
            std::bit_cast<std::uint64_t>(b[j]))
            prefix = std::min(prefix, firstUse_[j]);
    }
    return prefix;
}

void
CompiledCircuit::runBlocked(cplx* amps, std::size_t dim,
                            const PlanSegment& seg, std::size_t begin,
                            std::size_t end, const double* params,
                            const kernels::KernelTable& table,
                            ReplayCounters* counters) const
{
    const int k = blockBits_;
    const std::size_t bs = std::size_t{1} << k;
    const bool rotLower = fuseBits_ > 0;

    // Super-kernel units wholly inside [begin, end); a unit cut by the
    // range (possible only for non-frontier-aligned cuts) falls back
    // to per-op replay below.
    struct ActiveUnit
    {
        const FusedUnit* unit;
        const cplx* payload;
    };
    std::vector<ActiveUnit> active;
    for (std::uint32_t ui = seg.unitBegin; ui < seg.unitEnd; ++ui) {
        const FusedUnit& u = units_[ui];
        if (u.begin >= begin && u.end <= end)
            active.push_back({&u, nullptr});
    }

    if (active.empty()) {
        // Plain blocked pass: resolve payloads in bounded chunks
        // (stack-local, keeps runRange thread-safe), then stream the
        // statevector once per chunk, applying every op of the chunk
        // while each block is cache-hot.
        constexpr std::size_t kOpChunk = 24;
        ResolvedPayload resolved[kOpChunk];
        for (std::size_t cb = begin; cb < end; cb += kOpChunk) {
            const std::size_t n = std::min(kOpChunk, end - cb);
            for (std::size_t j = 0; j < n; ++j)
                resolved[j] =
                    resolvePayload(ops_[cb + j], params, rotLower);
            for (std::size_t base = 0; base < dim; base += bs) {
                cplx* blk = amps + base;
                applyRunToBlock(table, blk, bs, base, resolved, n, k);
            }
        }
        return;
    }

    // Parameterized unit payloads rebuild into call-local aligned
    // scratch (disjoint offsets laid out at plan time); constant ones
    // were prebuilt into constPayload_.
    AlignedVector<cplx> scratch;
    bool needScratch = false;
    for (const ActiveUnit& a : active)
        needScratch = needScratch || !a.unit->constant;
    if (needScratch)
        scratch.resize(paramScratchSize_);
    for (ActiveUnit& a : active) {
        const FusedUnit& u = *a.unit;
        if (u.constant) {
            a.payload = constPayload_.data() + u.payloadOffset;
            continue;
        }
        cplx* payload = scratch.data() + u.payloadOffset;
        if (u.kind == FuseKind::DiagTable)
            buildDiagTable(u, params, table, payload);
        else
            buildDenseMatrix(u, params, payload);
        a.payload = payload;
    }
    AlignedVector<cplx> mvScratch;
    for (const ActiveUnit& a : active) {
        if (a.unit->kind == FuseKind::Dense) {
            mvScratch.resize(matvecScratchSize_);
            break;
        }
    }

    // Ops outside units (and diagonal context ops inside DiagTable
    // units) still replay per block through their resolved payloads.
    std::vector<ResolvedPayload> resolved(end - begin);
    for (std::size_t m = begin; m < end; ++m)
        resolved[m - begin] = resolvePayload(ops_[m], params, rotLower);

    for (std::size_t base = 0; base < dim; base += bs) {
        cplx* blk = amps + base;
        std::size_t i = begin;
        std::size_t ai = 0;
        while (i < end) {
            if (ai < active.size() && active[ai].unit->begin == i) {
                const FusedUnit& u = *active[ai].unit;
                if (u.kind == FuseKind::DiagTable) {
                    table.applyDiagTable(blk, bs, active[ai].payload);
                    for (std::size_t m = u.begin; m < u.end; ++m) {
                        if (!diagFoldable(ops_[m], k))
                            applyToBlock(table, blk, bs, base,
                                         resolved[m - begin], k);
                    }
                } else {
                    table.matvecDense(blk, bs, u.fbits,
                                      active[ai].payload,
                                      mvScratch.data());
                }
                i = u.end;
                ++ai;
                continue;
            }
            // Stretch of non-unit ops up to the next unit: replay it
            // as one run so adjacent lowered rotations pair up.
            const std::size_t stop = ai < active.size()
                                         ? active[ai].unit->begin
                                         : end;
            applyRunToBlock(table, blk, bs, base,
                            resolved.data() + (i - begin), stop - i, k);
            i = stop;
        }
    }
    if (counters) {
        counters->fusedSuperKernels += active.size();
        for (const ActiveUnit& a : active)
            counters->fusedOpsCollapsed += a.unit->foldCount;
    }
}

void
CompiledCircuit::runRange(cplx* amps, std::size_t dim, std::size_t begin,
                          std::size_t end, const double* params,
                          const kernels::KernelTable& table,
                          ReplayCounters* counters) const
{
    if (begin >= end)
        return;
    // Blocking requires the block to divide the array (callers with
    // dim != 2^numQubits, if any, degrade to the plain loop).
    const bool use_plan = blockBits_ > 0 && !plan_.empty() &&
                          (std::size_t{1} << blockBits_) <= dim;
    const bool rotLower = fuseBits_ > 0;
    if (!use_plan) {
        runOps(ops_, begin, end, amps, dim, params, table, rotLower);
        return;
    }
    for (const PlanSegment& seg : plan_) {
        if (seg.end <= begin)
            continue;
        if (seg.begin >= end)
            break;
        const std::size_t lo = std::max<std::size_t>(seg.begin, begin);
        const std::size_t hi = std::min<std::size_t>(seg.end, end);
        if (seg.blocked && hi - lo >= 2) {
            runBlocked(amps, dim, seg, lo, hi, params, table, counters);
            if (counters) {
                ++counters->blockedGroupRuns;
                counters->blockedOpsApplied += hi - lo;
            }
        } else {
            runOps(ops_, lo, hi, amps, dim, params, table, rotLower);
        }
    }
}

void
CompiledCircuit::runRange(cplx* amps, std::size_t dim, std::size_t begin,
                          std::size_t end, const double* params) const
{
    runRange(amps, dim, begin, end, params,
             kernels::defaultKernelTable());
}

void
CompiledCircuit::run(Statevector& state,
                     const std::vector<double>& params) const
{
    if (state.numQubits() != numQubits_)
        throw std::invalid_argument("CompiledCircuit::run: qubit mismatch");
    if (static_cast<int>(params.size()) != numParams_)
        throw std::invalid_argument(
            "CompiledCircuit::run: wrong parameter count");
    runRange(state.amps().data(), state.dim(), 0, ops_.size(),
             params.data());
}

void
CompiledCircuit::run(Statevector& state) const
{
    if (numParams_ != 0)
        throw std::invalid_argument(
            "CompiledCircuit::run: unbound parameters");
    if (state.numQubits() != numQubits_)
        throw std::invalid_argument("CompiledCircuit::run: qubit mismatch");
    runRange(state.amps().data(), state.dim(), 0, ops_.size(), nullptr);
}

} // namespace oscar
