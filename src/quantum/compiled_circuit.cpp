#include "src/quantum/compiled_circuit.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "src/quantum/kernels.h"
#include "src/quantum/statevector.h"

namespace oscar {

namespace {

/**
 * Diagonal rotation phases {exp(-i a/2), exp(+i a/2)}: the |0>/|1>
 * phases of RZ and equally the agree/differ phases of RZZ.
 */
inline void
rotationPhases(double angle, cplx& p0, cplx& p1)
{
    p0 = std::exp(cplx(0.0, -angle / 2));
    p1 = std::exp(cplx(0.0, angle / 2));
}

/** Matrix product a * b (apply b first, then a). */
std::array<cplx, 4>
matmul(const std::array<cplx, 4>& a, const std::array<cplx, 4>& b)
{
    return {a[0] * b[0] + a[1] * b[2], a[0] * b[1] + a[1] * b[3],
            a[2] * b[0] + a[3] * b[2], a[2] * b[1] + a[3] * b[3]};
}

/** Lower one gate to a compiled op (no fusion). */
CompiledOp
lowerGate(const Gate& gate)
{
    CompiledOp op;
    op.kind = gate.kind;
    op.q0 = static_cast<std::int16_t>(gate.qubits[0]);
    op.q1 = static_cast<std::int16_t>(gate.qubits[1]);
    op.paramIndex = gate.paramIndex;
    op.angle = gate.angle;
    op.coeff = gate.coeff;

    switch (gate.kind) {
      case GateKind::CX:
        op.op = KernelOp::CX;
        return op;
      case GateKind::CZ:
        op.op = KernelOp::CZ;
        return op;
      case GateKind::SWAP:
        op.op = KernelOp::Swap;
        return op;
      case GateKind::RZZ:
        op.op = KernelOp::PhaseZZ;
        if (op.paramIndex < 0)
            rotationPhases(op.angle, op.phase0, op.phase1);
        return op;
      case GateKind::RZ:
        op.op = KernelOp::Diag1q;
        if (op.paramIndex < 0)
            rotationPhases(op.angle, op.phase0, op.phase1);
        return op;
      default:
        // H, X, Y, Z, S, Sdg, RX, RY. Constant payloads are resolved
        // now; a post-pass downgrades diagonal matrices to Diag1q.
        op.op = KernelOp::Matrix1q;
        if (op.paramIndex < 0)
            op.matrix = gateMatrix1q(gate.kind, gate.angle);
        return op;
    }
}

} // namespace

CompiledCircuit::CompiledCircuit(const Circuit& circuit,
                                 const CompileOptions& options)
    : numQubits_(circuit.numQubits()), numParams_(circuit.numParams())
{
    ops_.reserve(circuit.numGates());
    firstUse_.assign(static_cast<std::size_t>(numParams_), 0);

    // fusible[q]: index of the trailing constant Matrix1q op on qubit
    // q that later constant 1q gates on q may merge into; -1 when the
    // last op touching q is not such a candidate.
    std::vector<std::ptrdiff_t> fusible(
        static_cast<std::size_t>(numQubits_), -1);

    for (const Gate& gate : circuit.gates()) {
        CompiledOp op = lowerGate(gate);
        const bool constant_1q =
            op.arity() == 1 && op.paramIndex < 0;

        if (options.fuse1q && constant_1q) {
            // Diagonal constants were lowered to Diag1q payloads only
            // for RZ; rebuild the fusable matrix form uniformly.
            const std::array<cplx, 4> m =
                op.op == KernelOp::Diag1q
                    ? std::array<cplx, 4>{op.phase0, cplx(0.0, 0.0),
                                          cplx(0.0, 0.0), op.phase1}
                    : op.matrix;
            std::ptrdiff_t& slot = fusible[op.q0];
            if (slot >= 0) {
                ops_[slot].matrix = matmul(m, ops_[slot].matrix);
                ++fusedGates_;
                continue;
            }
            op.op = KernelOp::Matrix1q;
            op.matrix = m;
            slot = static_cast<std::ptrdiff_t>(ops_.size());
            ops_.push_back(op);
            continue;
        }

        // Any other op ends the fusion window of the qubits it touches.
        fusible[op.q0] = -1;
        if (op.arity() == 2)
            fusible[op.q1] = -1;
        ops_.push_back(op);
    }

    // Downgrade exactly-diagonal constant matrices (Z, S, Sdg, and
    // diagonal fusion products) to the phase-multiply fast path.
    for (CompiledOp& op : ops_) {
        if (op.op == KernelOp::Matrix1q && op.paramIndex < 0 &&
            op.matrix[1] == cplx(0.0, 0.0) &&
            op.matrix[2] == cplx(0.0, 0.0)) {
            op.op = KernelOp::Diag1q;
            op.phase0 = op.matrix[0];
            op.phase1 = op.matrix[3];
        }
    }

    finalizeFrontier();
}

void
CompiledCircuit::finalizeFrontier()
{
    std::fill(firstUse_.begin(), firstUse_.end(), ops_.size());
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        const std::int32_t j = ops_[k].paramIndex;
        if (j >= 0 && firstUse_[j] == ops_.size())
            firstUse_[j] = k;
    }

    constantPrefix_ = ops_.size();
    for (std::size_t k = 0; k < ops_.size(); ++k) {
        if (ops_[k].paramIndex >= 0) {
            constantPrefix_ = k;
            break;
        }
    }

    frontier_ = firstUse_;
    std::sort(frontier_.begin(), frontier_.end());
    frontier_.erase(std::unique(frontier_.begin(), frontier_.end()),
                    frontier_.end());
    // Unused parameters contribute a bogus level at numOps().
    while (!frontier_.empty() && frontier_.back() >= ops_.size())
        frontier_.pop_back();
}

std::vector<int>
CompiledCircuit::paramsUsedBefore(std::size_t level) const
{
    std::vector<int> used;
    for (int j = 0; j < numParams_; ++j) {
        if (firstUse_[j] < level)
            used.push_back(j);
    }
    return used;
}

std::vector<int>
CompiledCircuit::parameterOrder() const
{
    std::vector<int> order(static_cast<std::size_t>(numParams_));
    for (int j = 0; j < numParams_; ++j)
        order[j] = j;
    std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
        return firstUse_[a] < firstUse_[b];
    });
    return order;
}

std::size_t
CompiledCircuit::sharedPrefixLength(const std::vector<double>& a,
                                    const std::vector<double>& b) const
{
    std::size_t prefix = ops_.size();
    for (int j = 0; j < numParams_; ++j) {
        if (std::bit_cast<std::uint64_t>(a[j]) !=
            std::bit_cast<std::uint64_t>(b[j]))
            prefix = std::min(prefix, firstUse_[j]);
    }
    return prefix;
}

void
CompiledCircuit::runRange(cplx* amps, std::size_t dim, std::size_t begin,
                          std::size_t end, const double* params) const
{
    for (std::size_t k = begin; k < end; ++k) {
        const CompiledOp& op = ops_[k];
        switch (op.op) {
          case KernelOp::Matrix1q:
            if (op.paramIndex < 0) {
                kernels::matrix1q(amps, dim, op.q0, op.matrix);
            } else {
                kernels::matrix1q(
                    amps, dim, op.q0,
                    gateMatrix1q(op.kind, op.resolvedAngle(params)));
            }
            break;
          case KernelOp::Diag1q:
            if (op.paramIndex < 0) {
                kernels::diag1q(amps, dim, op.q0, op.phase0, op.phase1);
            } else {
                cplx p0, p1;
                rotationPhases(op.resolvedAngle(params), p0, p1);
                kernels::diag1q(amps, dim, op.q0, p0, p1);
            }
            break;
          case KernelOp::CX:
            kernels::cx(amps, dim, op.q0, op.q1);
            break;
          case KernelOp::CZ:
            kernels::cz(amps, dim, op.q0, op.q1);
            break;
          case KernelOp::Swap:
            kernels::swapQubits(amps, dim, op.q0, op.q1);
            break;
          case KernelOp::PhaseZZ:
            if (op.paramIndex < 0) {
                kernels::phaseZZ(amps, dim, op.q0, op.q1, op.phase0,
                                 op.phase1);
            } else {
                cplx same, diff;
                rotationPhases(op.resolvedAngle(params), same, diff);
                kernels::phaseZZ(amps, dim, op.q0, op.q1, same, diff);
            }
            break;
        }
    }
}

void
CompiledCircuit::run(Statevector& state,
                     const std::vector<double>& params) const
{
    if (state.numQubits() != numQubits_)
        throw std::invalid_argument("CompiledCircuit::run: qubit mismatch");
    if (static_cast<int>(params.size()) != numParams_)
        throw std::invalid_argument(
            "CompiledCircuit::run: wrong parameter count");
    runRange(state.amps().data(), state.dim(), 0, ops_.size(),
             params.data());
}

void
CompiledCircuit::run(Statevector& state) const
{
    if (numParams_ != 0)
        throw std::invalid_argument(
            "CompiledCircuit::run: unbound parameters");
    if (state.numQubits() != numQubits_)
        throw std::invalid_argument("CompiledCircuit::run: qubit mismatch");
    runRange(state.amps().data(), state.dim(), 0, ops_.size(), nullptr);
}

} // namespace oscar
