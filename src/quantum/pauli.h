/**
 * @file
 * Pauli strings: tensor products of I/X/Y/Z over n qubits.
 *
 * Pauli strings are the measurement language of VQAs: every cost
 * Hamiltonian in this library (MaxCut, SK, molecular) is a weighted sum
 * of Pauli strings, and landscape points are expectation values of such
 * sums. Diagonal (I/Z-only) strings get a fast path in the executors.
 */

#ifndef OSCAR_QUANTUM_PAULI_H
#define OSCAR_QUANTUM_PAULI_H

#include <cstdint>
#include <string>
#include <vector>

namespace oscar {

/** Single-qubit Pauli operator label. */
enum class PauliOp : std::uint8_t { I = 0, X = 1, Y = 2, Z = 3 };

/**
 * Mask form of a Pauli string, the input of the SIMD-dispatched
 * expectation kernel (kernels::expectationPauli): P maps basis state
 * j to i^numY * (-1)^popcount(j & sign) |j ^ flip>. X and Y
 * contribute to flip (they permute basis states); Y and Z contribute
 * to sign; each Y also contributes one factor i.
 */
struct PauliMasks
{
    std::uint64_t flip = 0;
    std::uint64_t sign = 0;
    int numY = 0;
};

/** Tensor product of single-qubit Paulis over a fixed qubit count. */
class PauliString
{
  public:
    /** Identity string on n qubits. */
    explicit PauliString(int num_qubits);

    /**
     * Parse from a label such as "ZZII" or "XYZI". Character k of the
     * label addresses qubit k (qubit 0 is the leftmost character).
     */
    static PauliString fromLabel(const std::string& label);

    /** Identity on n qubits with op placed on one qubit. */
    static PauliString single(int num_qubits, int qubit, PauliOp op);

    /** Z on each of the listed qubits, identity elsewhere. */
    static PauliString zString(int num_qubits,
                               const std::vector<int>& qubits);

    int numQubits() const { return static_cast<int>(ops_.size()); }

    PauliOp op(int qubit) const { return ops_[qubit]; }

    void setOp(int qubit, PauliOp op) { ops_[qubit] = op; }

    /** True when every operator is I or Z (computational diagonal). */
    bool isDiagonal() const;

    /** True when every operator is I. */
    bool isIdentity() const;

    /** Number of non-identity factors. */
    int weight() const;

    /**
     * Eigenvalue (+1/-1) of a diagonal string on a computational basis
     * state given as a bitmask (bit k = qubit k). Requires
     * isDiagonal().
     */
    int diagonalEigenvalue(std::uint64_t basis_state) const;

    /** Mask form for the expectation kernels (see PauliMasks). */
    PauliMasks masks() const;

    /** Label string, e.g. "ZZI". */
    std::string toLabel() const;

    bool operator==(const PauliString& other) const = default;

  private:
    std::vector<PauliOp> ops_;
};

} // namespace oscar

#endif // OSCAR_QUANTUM_PAULI_H
