#include "src/quantum/stabilizer.h"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace oscar {

namespace {

/**
 * Exponent of i contributed to the product P1 * P2 by one qubit,
 * where each local Pauli is encoded as (x, z) with Y = (1, 1) carrying
 * no extra phase (Aaronson-Gottesman's g function).
 */
int
phaseG(int x1, int z1, int x2, int z2)
{
    if (x1 == 0 && z1 == 0)
        return 0;
    if (x1 == 1 && z1 == 1) // Y
        return z2 - x2;
    if (x1 == 1 && z1 == 0) // X
        return z2 * (2 * x2 - 1);
    // Z
    return x2 * (1 - 2 * z2);
}

} // namespace

StabilizerState::StabilizerState(int num_qubits)
    : numQubits_(num_qubits)
{
    if (num_qubits < 1)
        throw std::invalid_argument("StabilizerState: need >= 1 qubit");
    reset();
}

void
StabilizerState::reset()
{
    const std::size_t n = static_cast<std::size_t>(numQubits_);
    rows_.assign(2 * n, Row{});
    for (std::size_t i = 0; i < 2 * n; ++i) {
        rows_[i].x.assign(n, 0);
        rows_[i].z.assign(n, 0);
        rows_[i].phase = 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
        rows_[i].x[i] = 1;     // destabilizer X_i
        rows_[n + i].z[i] = 1; // stabilizer Z_i
    }
}

void
StabilizerState::applyH(int q)
{
    for (Row& row : rows_) {
        if (row.x[q] && row.z[q])
            row.phase = (row.phase + 2) & 3;
        std::swap(row.x[q], row.z[q]);
    }
}

void
StabilizerState::applyS(int q)
{
    for (Row& row : rows_) {
        if (row.x[q] && row.z[q])
            row.phase = (row.phase + 2) & 3;
        row.z[q] ^= row.x[q];
    }
}

void
StabilizerState::applySdg(int q)
{
    applyS(q);
    applyS(q);
    applyS(q);
}

void
StabilizerState::applyZ(int q)
{
    applyS(q);
    applyS(q);
}

void
StabilizerState::applyX(int q)
{
    applyH(q);
    applyZ(q);
    applyH(q);
}

void
StabilizerState::applyY(int q)
{
    // Y = i X Z: conjugation by Y flips rows containing X or Z alone.
    applyZ(q);
    applyX(q);
}

void
StabilizerState::applyCX(int control, int target)
{
    for (Row& row : rows_) {
        if (row.x[control] && row.z[target] &&
            (row.x[target] ^ row.z[control] ^ 1))
            row.phase = (row.phase + 2) & 3;
        row.x[target] ^= row.x[control];
        row.z[control] ^= row.z[target];
    }
}

void
StabilizerState::applyCZ(int a, int b)
{
    applyH(b);
    applyCX(a, b);
    applyH(b);
}

void
StabilizerState::applySwap(int a, int b)
{
    applyCX(a, b);
    applyCX(b, a);
    applyCX(a, b);
}

bool
StabilizerState::isCliffordAngle(double angle, double tol)
{
    const double quarter = std::numbers::pi / 2.0;
    const double k = angle / quarter;
    return std::abs(k - std::round(k)) < tol;
}

int
StabilizerState::quarterTurns(double angle)
{
    const double quarter = std::numbers::pi / 2.0;
    const long long k = std::llround(angle / quarter);
    return static_cast<int>(((k % 4) + 4) % 4);
}

void
StabilizerState::applyRzQuarter(int q, int k)
{
    for (int i = 0; i < k; ++i)
        applyS(q);
}

void
StabilizerState::applyGate(const Gate& gate, double angle_tol)
{
    assert(gate.paramIndex < 0 && "gate angle must be resolved");
    switch (gate.kind) {
      case GateKind::H: applyH(gate.qubits[0]); return;
      case GateKind::X: applyX(gate.qubits[0]); return;
      case GateKind::Y: applyY(gate.qubits[0]); return;
      case GateKind::Z: applyZ(gate.qubits[0]); return;
      case GateKind::S: applyS(gate.qubits[0]); return;
      case GateKind::Sdg: applySdg(gate.qubits[0]); return;
      case GateKind::CX: applyCX(gate.qubits[0], gate.qubits[1]); return;
      case GateKind::CZ: applyCZ(gate.qubits[0], gate.qubits[1]); return;
      case GateKind::SWAP:
        applySwap(gate.qubits[0], gate.qubits[1]);
        return;
      case GateKind::RZ:
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZZ:
        break;
    }
    if (!isCliffordAngle(gate.angle, angle_tol))
        throw std::invalid_argument(
            "StabilizerState: rotation angle is not Clifford");
    const int k = quarterTurns(gate.angle);
    const int q = gate.qubits[0];
    switch (gate.kind) {
      case GateKind::RZ:
        applyRzQuarter(q, k);
        return;
      case GateKind::RX:
        applyH(q);
        applyRzQuarter(q, k);
        applyH(q);
        return;
      case GateKind::RY:
        // RY(t) = S RX(t) Sdg.
        applySdg(q);
        applyH(q);
        applyRzQuarter(q, k);
        applyH(q);
        applyS(q);
        return;
      case GateKind::RZZ:
        applyCX(q, gate.qubits[1]);
        applyRzQuarter(gate.qubits[1], k);
        applyCX(q, gate.qubits[1]);
        return;
      default:
        throw std::logic_error("StabilizerState: unreachable");
    }
}

void
StabilizerState::run(const Circuit& circuit)
{
    if (circuit.numParams() != 0)
        throw std::invalid_argument("StabilizerState::run: unbound params");
    if (circuit.numQubits() != numQubits_)
        throw std::invalid_argument(
            "StabilizerState::run: qubit mismatch");
    for (const Gate& g : circuit.gates())
        applyGate(g);
}

void
StabilizerState::rowMultiply(Row& dst, const Row& src)
{
    int phase = dst.phase + src.phase;
    for (std::size_t j = 0; j < dst.x.size(); ++j) {
        phase += phaseG(src.x[j], src.z[j], dst.x[j], dst.z[j]);
        dst.x[j] ^= src.x[j];
        dst.z[j] ^= src.z[j];
    }
    dst.phase = ((phase % 4) + 4) & 3;
}

double
StabilizerState::expectation(const PauliString& pauli) const
{
    if (pauli.numQubits() != numQubits_)
        throw std::invalid_argument(
            "StabilizerState::expectation: qubit mismatch");

    const std::size_t n = static_cast<std::size_t>(numQubits_);

    // Encode P as an (x, z) row (Y = (1,1), no extra phase).
    Row target;
    target.x.assign(n, 0);
    target.z.assign(n, 0);
    for (std::size_t q = 0; q < n; ++q) {
        switch (pauli.op(static_cast<int>(q))) {
          case PauliOp::I: break;
          case PauliOp::X: target.x[q] = 1; break;
          case PauliOp::Y: target.x[q] = 1; target.z[q] = 1; break;
          case PauliOp::Z: target.z[q] = 1; break;
        }
    }

    auto anticommutes = [&](const Row& row) {
        int sym = 0;
        for (std::size_t j = 0; j < n; ++j)
            sym ^= (row.x[j] & target.z[j]) ^ (row.z[j] & target.x[j]);
        return sym != 0;
    };

    // <P> = 0 unless P commutes with the whole stabilizer group.
    for (std::size_t i = n; i < 2 * n; ++i) {
        if (anticommutes(rows_[i]))
            return 0.0;
    }

    // P = +/- product of stabilizers indexed by the destabilizers P
    // anticommutes with; accumulate that product to read off the sign.
    Row product;
    product.x.assign(n, 0);
    product.z.assign(n, 0);
    product.phase = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (anticommutes(rows_[i]))
            rowMultiply(product, rows_[n + i]);
    }
    assert(product.x == target.x && product.z == target.z &&
           "P commutes with all stabilizers but is not in the group");
    // product == (i^phase) * P with phase in {0, 2}.
    return product.phase == 0 ? 1.0 : -1.0;
}

} // namespace oscar
