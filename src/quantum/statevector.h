/**
 * @file
 * Dense state-vector simulator.
 *
 * This is the ideal-execution substrate used for every landscape grid
 * search and for the ground-truth baselines. The convention is qubit k
 * = bit k of the basis index (little endian); the initial state is
 * |0...0>.
 */

#ifndef OSCAR_QUANTUM_STATEVECTOR_H
#define OSCAR_QUANTUM_STATEVECTOR_H

#include <complex>
#include <cstdint>
#include <vector>

#include "src/common/aligned.h"
#include "src/common/rng.h"
#include "src/quantum/circuit.h"
#include "src/quantum/pauli.h"

namespace oscar {

namespace kernels {
struct KernelTable;
}

/** A 2^n-amplitude quantum state with gate application kernels. */
class Statevector
{
  public:
    /** |0...0> on num_qubits qubits. */
    explicit Statevector(int num_qubits);

    int numQubits() const { return numQubits_; }
    std::size_t dim() const { return amps_.size(); }

    cplx& amp(std::size_t i) { return amps_[i]; }
    const cplx& amp(std::size_t i) const { return amps_[i]; }

    /** Amplitude storage; data() is 64-byte aligned for SIMD loads. */
    AlignedVector<cplx>& amps() { return amps_; }
    const AlignedVector<cplx>& amps() const { return amps_; }

    /** Reset to |0...0>. */
    void reset();

    /** Apply a single gate (angle must already be resolved). */
    void applyGate(const Gate& gate);

    /** Apply a 2x2 matrix to one qubit. */
    void applyMatrix1q(int qubit, const std::array<cplx, 4>& m);

    /**
     * Run all gates of a parameter-free circuit. Lowers the circuit
     * through the compiled-circuit kernel schedule; backends that run
     * the same circuit repeatedly should compile once and use
     * CompiledCircuit::run instead.
     */
    void run(const Circuit& circuit);

    /**
     * Run a parameterized circuit bound against params. The angles are
     * bound once into a compiled kernel schedule (no per-gate Gate
     * copies).
     */
    void run(const Circuit& circuit, const std::vector<double>& params);

    /** Measurement probabilities |amp|^2 for every basis state. */
    std::vector<double> probabilities() const;

    /**
     * Exact expectation value of a Pauli string, evaluated through
     * the SIMD-dispatched kernel table (kernels::expectationPauli;
     * the process default table, or an explicit one for evaluators
     * that pin a kernel ISA).
     */
    double expectation(const PauliString& pauli) const;
    double expectation(const PauliString& pauli,
                       const kernels::KernelTable& table) const;

    /**
     * Expectation of a diagonal observable given as a per-basis-state
     * value table of length dim().
     */
    double expectationDiagonal(const std::vector<double>& diag) const;

    /** Draw `shots` basis-state samples from the output distribution. */
    std::vector<std::uint64_t> sample(std::size_t shots, Rng& rng) const;

    /** <this|other>. */
    cplx innerProduct(const Statevector& other) const;

    /** Sum |amp|^2 (should be 1 up to rounding). */
    double norm2() const;

  private:
    int numQubits_;
    AlignedVector<cplx> amps_;
};

} // namespace oscar

#endif // OSCAR_QUANTUM_STATEVECTOR_H
