#include "src/quantum/gate.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace oscar {

int
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
      case GateKind::RZZ:
        return 2;
      default:
        return 1;
    }
}

bool
gateIsParameterized(GateKind kind)
{
    switch (kind) {
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::RZZ:
        return true;
      default:
        return false;
    }
}

std::string
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::H: return "h";
      case GateKind::X: return "x";
      case GateKind::Y: return "y";
      case GateKind::Z: return "z";
      case GateKind::S: return "s";
      case GateKind::Sdg: return "sdg";
      case GateKind::RX: return "rx";
      case GateKind::RY: return "ry";
      case GateKind::RZ: return "rz";
      case GateKind::CX: return "cx";
      case GateKind::CZ: return "cz";
      case GateKind::SWAP: return "swap";
      case GateKind::RZZ: return "rzz";
    }
    return "?";
}

namespace {

Gate
make1q(GateKind kind, int q, double angle = 0.0)
{
    Gate g;
    g.kind = kind;
    g.qubits = {q, -1};
    g.angle = angle;
    return g;
}

Gate
make2q(GateKind kind, int a, int b, double angle = 0.0)
{
    Gate g;
    g.kind = kind;
    g.qubits = {a, b};
    g.angle = angle;
    return g;
}

} // namespace

Gate Gate::h(int q) { return make1q(GateKind::H, q); }
Gate Gate::x(int q) { return make1q(GateKind::X, q); }
Gate Gate::y(int q) { return make1q(GateKind::Y, q); }
Gate Gate::z(int q) { return make1q(GateKind::Z, q); }
Gate Gate::s(int q) { return make1q(GateKind::S, q); }
Gate Gate::sdg(int q) { return make1q(GateKind::Sdg, q); }
Gate Gate::rx(int q, double angle) { return make1q(GateKind::RX, q, angle); }
Gate Gate::ry(int q, double angle) { return make1q(GateKind::RY, q, angle); }
Gate Gate::rz(int q, double angle) { return make1q(GateKind::RZ, q, angle); }
Gate Gate::cx(int c, int t) { return make2q(GateKind::CX, c, t); }
Gate Gate::cz(int a, int b) { return make2q(GateKind::CZ, a, b); }
Gate Gate::swap(int a, int b) { return make2q(GateKind::SWAP, a, b); }

Gate
Gate::rzz(int a, int b, double angle)
{
    return make2q(GateKind::RZZ, a, b, angle);
}

Gate
Gate::rxParam(int q, int param_index, double coeff)
{
    Gate g = make1q(GateKind::RX, q);
    g.paramIndex = param_index;
    g.coeff = coeff;
    return g;
}

Gate
Gate::ryParam(int q, int param_index, double coeff)
{
    Gate g = make1q(GateKind::RY, q);
    g.paramIndex = param_index;
    g.coeff = coeff;
    return g;
}

Gate
Gate::rzParam(int q, int param_index, double coeff)
{
    Gate g = make1q(GateKind::RZ, q);
    g.paramIndex = param_index;
    g.coeff = coeff;
    return g;
}

Gate
Gate::rzzParam(int a, int b, int param_index, double coeff)
{
    Gate g = make2q(GateKind::RZZ, a, b);
    g.paramIndex = param_index;
    g.coeff = coeff;
    return g;
}

double
Gate::resolvedAngle(const std::vector<double>& params) const
{
    if (paramIndex < 0)
        return angle;
    assert(static_cast<std::size_t>(paramIndex) < params.size());
    return angle + coeff * params[paramIndex];
}

Gate
Gate::inverse() const
{
    Gate inv = *this;
    switch (kind) {
      case GateKind::H:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        return inv; // self-inverse
      case GateKind::S:
        inv.kind = GateKind::Sdg;
        return inv;
      case GateKind::Sdg:
        inv.kind = GateKind::S;
        return inv;
      case GateKind::RX:
      case GateKind::RY:
      case GateKind::RZ:
      case GateKind::RZZ:
        inv.angle = -inv.angle;
        inv.coeff = -inv.coeff;
        return inv;
    }
    throw std::logic_error("Gate::inverse: unknown kind");
}

std::array<cplx, 4>
Gate::matrix1q(double a) const
{
    return gateMatrix1q(kind, a);
}

std::array<cplx, 4>
gateMatrix1q(GateKind kind, double a)
{
    const cplx i(0.0, 1.0);
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    switch (kind) {
      case GateKind::H:
        return {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
      case GateKind::X:
        return {0.0, 1.0, 1.0, 0.0};
      case GateKind::Y:
        return {0.0, -i, i, 0.0};
      case GateKind::Z:
        return {1.0, 0.0, 0.0, -1.0};
      case GateKind::S:
        return {1.0, 0.0, 0.0, i};
      case GateKind::Sdg:
        return {1.0, 0.0, 0.0, -i};
      case GateKind::RX:
        return {std::cos(a / 2), -i * std::sin(a / 2),
                -i * std::sin(a / 2), std::cos(a / 2)};
      case GateKind::RY:
        return {std::cos(a / 2), -std::sin(a / 2),
                std::sin(a / 2), std::cos(a / 2)};
      case GateKind::RZ:
        return {std::exp(-i * a / 2.0), 0.0, 0.0, std::exp(i * a / 2.0)};
      default:
        throw std::logic_error("Gate::matrix1q called on 2-qubit gate");
    }
}

} // namespace oscar
