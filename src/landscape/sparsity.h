/**
 * @file
 * Frequency-domain sparsity analysis (paper Table 4).
 *
 * The justification for compressed sensing is that VQA landscapes
 * concentrate their energy in very few DCT coefficients. These helpers
 * quantify that: the fraction of 2-D DCT coefficients needed to retain
 * a target share (paper: 99%) of the signal energy, and a utility that
 * reconstructs a landscape from its top-k coefficients (the best-case
 * k-sparse approximation).
 */

#ifndef OSCAR_LANDSCAPE_SPARSITY_H
#define OSCAR_LANDSCAPE_SPARSITY_H

#include <cstddef>

#include "src/common/ndarray.h"

namespace oscar {

/**
 * Smallest number of largest-magnitude 2-D DCT coefficients whose
 * cumulative squared magnitude reaches `energy_share` of the total.
 */
std::size_t dctCoefficientsForEnergy(const NdArray& landscape,
                                     double energy_share);

/** dctCoefficientsForEnergy as a fraction of all coefficients. */
double dctSparsityFraction(const NdArray& landscape,
                           double energy_share = 0.99);

/** Best k-sparse DCT approximation of a 2-D landscape. */
NdArray keepTopKDct(const NdArray& landscape, std::size_t k);

} // namespace oscar

#endif // OSCAR_LANDSCAPE_SPARSITY_H
