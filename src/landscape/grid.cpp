#include "src/landscape/grid.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace oscar {

double
GridAxis::value(std::size_t k) const
{
    assert(k < count);
    if (count == 1)
        return 0.5 * (lo + hi);
    return lo + (hi - lo) * static_cast<double>(k) /
                    static_cast<double>(count - 1);
}

GridSpec::GridSpec(std::vector<GridAxis> axes)
    : axes_(std::move(axes))
{
    if (axes_.empty())
        throw std::invalid_argument("GridSpec: no axes");
    for (const GridAxis& a : axes_) {
        if (a.count == 0)
            throw std::invalid_argument("GridSpec: empty axis");
        if (a.hi < a.lo)
            throw std::invalid_argument("GridSpec: inverted axis");
    }
}

GridSpec
GridSpec::qaoaP1(std::size_t beta_points, std::size_t gamma_points)
{
    const double pi = std::numbers::pi;
    return GridSpec({{-pi / 4, pi / 4, beta_points},
                     {-pi / 2, pi / 2, gamma_points}});
}

GridSpec
GridSpec::qaoaP2(std::size_t beta_points, std::size_t gamma_points)
{
    const double pi = std::numbers::pi;
    return GridSpec({{-pi / 8, pi / 8, beta_points},
                     {-pi / 8, pi / 8, beta_points},
                     {-pi / 4, pi / 4, gamma_points},
                     {-pi / 4, pi / 4, gamma_points}});
}

std::size_t
GridSpec::numPoints() const
{
    std::size_t n = 1;
    for (const GridAxis& a : axes_)
        n *= a.count;
    return n;
}

std::vector<std::size_t>
GridSpec::shape() const
{
    std::vector<std::size_t> s;
    s.reserve(axes_.size());
    for (const GridAxis& a : axes_)
        s.push_back(a.count);
    return s;
}

std::vector<double>
GridSpec::pointAt(std::size_t flat_index) const
{
    assert(flat_index < numPoints());
    std::vector<double> p(axes_.size());
    for (std::size_t d = axes_.size(); d-- > 0;) {
        const std::size_t k = flat_index % axes_[d].count;
        flat_index /= axes_[d].count;
        p[d] = axes_[d].value(k);
    }
    return p;
}

std::vector<double>
GridSpec::axisValues(std::size_t d) const
{
    assert(d < axes_.size());
    std::vector<double> v(axes_[d].count);
    for (std::size_t k = 0; k < axes_[d].count; ++k)
        v[k] = axes_[d].value(k);
    return v;
}

std::vector<std::size_t>
GridSpec::coordsAt(std::size_t flat_index) const
{
    assert(flat_index < numPoints());
    std::vector<std::size_t> c(axes_.size());
    for (std::size_t d = axes_.size(); d-- > 0;) {
        c[d] = flat_index % axes_[d].count;
        flat_index /= axes_[d].count;
    }
    return c;
}

std::vector<std::size_t>
GridSpec::prefixFriendlyPermutation(
    const std::vector<std::size_t>& indices,
    const std::vector<int>& axis_priority) const
{
    // Full digit order: the named axes slowest-first, then the
    // remaining axes ascending.
    std::vector<char> named(axes_.size(), 0);
    std::vector<std::size_t> digit_order;
    digit_order.reserve(axes_.size());
    for (int a : axis_priority) {
        if (a < 0 || static_cast<std::size_t>(a) >= axes_.size())
            throw std::invalid_argument(
                "GridSpec::prefixFriendlyPermutation: axis out of range");
        if (named[a])
            throw std::invalid_argument(
                "GridSpec::prefixFriendlyPermutation: duplicate axis");
        named[a] = 1;
        digit_order.push_back(static_cast<std::size_t>(a));
    }
    for (std::size_t d = 0; d < axes_.size(); ++d) {
        if (!named[d])
            digit_order.push_back(d);
    }

    // Mixed-radix sort key per point: a permutation of the row-major
    // digits, so keys stay within [0, numPoints).
    std::vector<std::pair<std::size_t, std::size_t>> keyed;
    keyed.reserve(indices.size());
    for (std::size_t pos = 0; pos < indices.size(); ++pos) {
        const auto coords = coordsAt(indices[pos]);
        std::size_t key = 0;
        for (std::size_t d : digit_order)
            key = key * axes_[d].count + coords[d];
        keyed.emplace_back(key, pos);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });

    std::vector<std::size_t> perm;
    perm.reserve(indices.size());
    for (const auto& [key, pos] : keyed)
        perm.push_back(pos);
    return perm;
}

std::size_t
GridSpec::nearestIndex(const std::vector<double>& params) const
{
    if (params.size() != axes_.size())
        throw std::invalid_argument("GridSpec::nearestIndex: rank mismatch");
    std::size_t flat = 0;
    for (std::size_t d = 0; d < axes_.size(); ++d) {
        const GridAxis& a = axes_[d];
        std::size_t best = 0;
        if (a.count > 1) {
            const double step =
                (a.hi - a.lo) / static_cast<double>(a.count - 1);
            const double raw = std::round((params[d] - a.lo) / step);
            best = static_cast<std::size_t>(std::clamp(
                raw, 0.0, static_cast<double>(a.count - 1)));
        }
        flat = flat * a.count + best;
    }
    return flat;
}

} // namespace oscar
