/**
 * @file
 * Landscape quality and shape metrics from the paper.
 *
 *  - NRMSE (Eq. 1): RMSE between flattened landscapes, normalized by
 *    the interquartile range of the ground truth.
 *  - Second derivative roughness D2 (Eq. 2).
 *  - Variance of gradients VoG (Eq. 3), the barren-plateau/flatness
 *    probe.
 *  - Landscape variance (Eq. 4).
 *
 * The three shape metrics are defined on 1-D slices; following the
 * paper ("we compute average metrics on all dimensions") we evaluate
 * them on every axis-aligned line of the array and average.
 */

#ifndef OSCAR_LANDSCAPE_METRICS_H
#define OSCAR_LANDSCAPE_METRICS_H

#include "src/common/ndarray.h"

namespace oscar {

/** NRMSE of a reconstruction vs. ground truth (Eq. 1). */
double nrmse(const NdArray& truth, const NdArray& reconstruction);

/** Mean squared second difference (Eq. 2), averaged over all lines. */
double secondDerivativeMetric(const NdArray& landscape);

/** Variance of first differences (Eq. 3), averaged over all lines. */
double varianceOfGradients(const NdArray& landscape);

/** Variance of the landscape values (Eq. 4). */
double landscapeVariance(const NdArray& landscape);

} // namespace oscar

#endif // OSCAR_LANDSCAPE_METRICS_H
