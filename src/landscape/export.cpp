#include "src/landscape/export.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace oscar {

namespace {

void
requireRank2(const Landscape& landscape, const char* who)
{
    if (landscape.grid().rank() != 2)
        throw std::invalid_argument(std::string(who) +
                                    ": need a rank-2 landscape");
}

/** Map a value into [0, levels-1] given the landscape range. */
int
quantize(double v, double min, double max, int levels)
{
    if (max <= min)
        return 0;
    const int q = static_cast<int>(
        (v - min) / (max - min) * (levels - 1) + 0.5);
    return std::clamp(q, 0, levels - 1);
}

} // namespace

void
writePgm(const Landscape& landscape, const std::string& path,
         int cell_pixels)
{
    requireRank2(landscape, "writePgm");
    if (cell_pixels < 1)
        throw std::invalid_argument("writePgm: cell_pixels must be >= 1");

    const std::size_t rows = landscape.grid().axis(0).count;
    const std::size_t cols = landscape.grid().axis(1).count;
    const double min = landscape.values().min();
    const double max = landscape.values().max();

    std::ofstream out(path, std::ios::binary);
    if (!out)
        throw std::runtime_error("writePgm: cannot open " + path);

    const std::size_t width = cols * cell_pixels;
    const std::size_t height = rows * cell_pixels;
    out << "P5\n" << width << " " << height << "\n255\n";
    std::vector<std::uint8_t> scanline(width);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const auto shade = static_cast<std::uint8_t>(quantize(
                landscape.values()[r * cols + c], min, max, 256));
            for (int p = 0; p < cell_pixels; ++p)
                scanline[c * cell_pixels + p] = shade;
        }
        for (int p = 0; p < cell_pixels; ++p) {
            out.write(reinterpret_cast<const char*>(scanline.data()),
                      static_cast<std::streamsize>(scanline.size()));
        }
    }
    if (!out)
        throw std::runtime_error("writePgm: write failed for " + path);
}

std::string
renderAscii(const Landscape& landscape, std::size_t rows,
            std::size_t cols)
{
    requireRank2(landscape, "renderAscii");
    static const char shades[] = " .:-=+*#%@";
    const std::size_t grid_rows = landscape.grid().axis(0).count;
    const std::size_t grid_cols = landscape.grid().axis(1).count;
    const double min = landscape.values().min();
    const double max = landscape.values().max();

    std::string art;
    art.reserve((cols + 3) * rows);
    for (std::size_t r = 0; r < rows; ++r) {
        art.push_back('|');
        const std::size_t gr =
            r * (grid_rows - 1) / std::max<std::size_t>(1, rows - 1);
        for (std::size_t c = 0; c < cols; ++c) {
            const std::size_t gc =
                c * (grid_cols - 1) / std::max<std::size_t>(1, cols - 1);
            const double v = landscape.values()[gr * grid_cols + gc];
            art.push_back(shades[quantize(v, min, max, 10)]);
        }
        art += "|\n";
    }
    return art;
}

} // namespace oscar
