/**
 * @file
 * Parameter-space grid specification.
 *
 * A GridSpec is the discretization of the VQA parameter space used for
 * both ground-truth grid search and OSCAR sampling: one axis per
 * circuit parameter, each an inclusive equidistant range (the paper's
 * Table 1, e.g. beta in [-pi/4, pi/4] x 50 points, gamma in
 * [-pi/2, pi/2] x 100 points for p=1 QAOA).
 */

#ifndef OSCAR_LANDSCAPE_GRID_H
#define OSCAR_LANDSCAPE_GRID_H

#include <cstddef>
#include <vector>

namespace oscar {

/** One equidistant inclusive axis of the parameter grid. */
struct GridAxis
{
    double lo;
    double hi;
    std::size_t count;

    /** The k-th grid value along this axis. */
    double value(std::size_t k) const;
};

/** Cartesian product of axes; flat indexing is row-major. */
class GridSpec
{
  public:
    GridSpec() = default;

    explicit GridSpec(std::vector<GridAxis> axes);

    /** Standard QAOA depth-1 grid of the paper's Table 1. */
    static GridSpec qaoaP1(std::size_t beta_points = 50,
                           std::size_t gamma_points = 100);

    /** Standard QAOA depth-2 grid of the paper's Table 1. */
    static GridSpec qaoaP2(std::size_t beta_points = 12,
                           std::size_t gamma_points = 15);

    std::size_t rank() const { return axes_.size(); }

    const GridAxis& axis(std::size_t d) const { return axes_[d]; }

    const std::vector<GridAxis>& axes() const { return axes_; }

    /** Total number of grid points. */
    std::size_t numPoints() const;

    /** Shape vector {count_0, ..., count_{r-1}}. */
    std::vector<std::size_t> shape() const;

    /** Parameter vector at a flat row-major grid index. */
    std::vector<double> pointAt(std::size_t flat_index) const;

    /** All grid values along one axis. */
    std::vector<double> axisValues(std::size_t d) const;

    /**
     * Flat index of the grid point nearest to an arbitrary parameter
     * vector (clamped to the grid).
     */
    std::size_t nearestIndex(const std::vector<double>& params) const;

    /** Per-axis coordinates of a flat row-major index. */
    std::vector<std::size_t> coordsAt(std::size_t flat_index) const;

    /**
     * Stable permutation of positions into `indices` that orders the
     * points axis-major under `axis_priority`: the first named axis
     * varies slowest, the last fastest; axes not named are appended
     * (ascending) as the fastest digits. Batched backends with a
     * shared-prefix cache publish their preferred priority as
     * CostFunction::batchOrderHint(); feeding them batches in this
     * order maximizes consecutive points' common circuit prefix.
     *
     * @throws std::invalid_argument on out-of-range / duplicate axes
     */
    std::vector<std::size_t>
    prefixFriendlyPermutation(const std::vector<std::size_t>& indices,
                              const std::vector<int>& axis_priority) const;

  private:
    std::vector<GridAxis> axes_;
};

} // namespace oscar

#endif // OSCAR_LANDSCAPE_GRID_H
