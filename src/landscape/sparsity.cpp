#include "src/landscape/sparsity.h"

#include <algorithm>
#include <stdexcept>

#include "src/cs/dct.h"

namespace oscar {

namespace {

NdArray
to2d(const NdArray& landscape)
{
    if (landscape.rank() == 2)
        return landscape;
    if (landscape.rank() % 2 == 0 && landscape.rank() >= 2) {
        std::size_t rows = 1, cols = 1;
        for (std::size_t d = 0; d < landscape.rank() / 2; ++d)
            rows *= landscape.dim(d);
        for (std::size_t d = landscape.rank() / 2; d < landscape.rank();
             ++d)
            cols *= landscape.dim(d);
        return landscape.reshape({rows, cols});
    }
    throw std::invalid_argument("sparsity: need an even-rank landscape");
}

} // namespace

std::size_t
dctCoefficientsForEnergy(const NdArray& landscape, double energy_share)
{
    if (energy_share <= 0.0 || energy_share > 1.0)
        throw std::invalid_argument(
            "dctCoefficientsForEnergy: share out of (0, 1]");
    const NdArray flat2d = to2d(landscape);
    const Dct2d dct(flat2d.dim(0), flat2d.dim(1));
    const NdArray coeffs = dct.forward(flat2d);

    std::vector<double> energy(coeffs.size());
    double total = 0.0;
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
        energy[i] = coeffs[i] * coeffs[i];
        total += energy[i];
    }
    if (total == 0.0)
        return 0;
    std::sort(energy.begin(), energy.end(), std::greater<>());
    double acc = 0.0;
    for (std::size_t k = 0; k < energy.size(); ++k) {
        acc += energy[k];
        if (acc >= energy_share * total)
            return k + 1;
    }
    return energy.size();
}

double
dctSparsityFraction(const NdArray& landscape, double energy_share)
{
    return static_cast<double>(
               dctCoefficientsForEnergy(landscape, energy_share)) /
           static_cast<double>(landscape.size());
}

NdArray
keepTopKDct(const NdArray& landscape, std::size_t k)
{
    const NdArray flat2d = to2d(landscape);
    const Dct2d dct(flat2d.dim(0), flat2d.dim(1));
    NdArray coeffs = dct.forward(flat2d);

    if (k < coeffs.size()) {
        std::vector<std::size_t> order(coeffs.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::nth_element(order.begin(), order.begin() + k, order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return std::abs(coeffs[a]) >
                                    std::abs(coeffs[b]);
                         });
        for (std::size_t i = k; i < order.size(); ++i)
            coeffs[order[i]] = 0.0;
    }
    NdArray recon = dct.inverse(coeffs);
    return recon.reshape(landscape.shape());
}

} // namespace oscar
