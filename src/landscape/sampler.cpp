#include "src/landscape/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oscar {

std::size_t
sampleCount(const GridSpec& grid, double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        throw std::invalid_argument("sampleCount: fraction out of (0, 1]");
    const auto n = static_cast<double>(grid.numPoints());
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(fraction * n)));
}

std::vector<std::size_t>
chooseSampleIndices(std::size_t num_points, double fraction, Rng& rng)
{
    if (fraction <= 0.0 || fraction > 1.0)
        throw std::invalid_argument(
            "chooseSampleIndices: fraction out of (0, 1]");
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(fraction * static_cast<double>(num_points))));
    auto idx = rng.sampleWithoutReplacement(num_points, k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

SampleSet
sampleCost(const GridSpec& grid, CostFunction& cost, double fraction,
           Rng& rng, ExecutionEngine* engine)
{
    return gatherCost(grid, cost,
                      chooseSampleIndices(grid.numPoints(), fraction, rng),
                      engine);
}

std::vector<double>
evaluateGridIndices(const GridSpec& grid, CostFunction& cost,
                    const std::vector<std::size_t>& indices,
                    ExecutionEngine* engine)
{
    for (std::size_t idx : indices) {
        if (idx >= grid.numPoints())
            throw std::out_of_range(
                "evaluateGridIndices: index out of range");
    }

    // Submit in the backend's preferred axis-major order so batches of
    // nearby points share the longest simulation prefix. Only hinted
    // (deterministic, prefix-cached) backends opt in; the scatter back
    // to caller order keeps results positional either way.
    const std::vector<int> hint = cost.batchOrderHint();
    const bool reorder =
        !hint.empty() &&
        grid.rank() == static_cast<std::size_t>(cost.numParams());
    if (!reorder) {
        return ExecutionEngine::engineOr(engine).evaluateGenerated(
            cost, indices.size(), [&grid, &indices](std::size_t i) {
                return grid.pointAt(indices[i]);
            });
    }

    const std::vector<std::size_t> perm =
        grid.prefixFriendlyPermutation(indices, hint);
    const std::vector<double> ordered =
        ExecutionEngine::engineOr(engine).evaluateGenerated(
            cost, indices.size(),
            [&grid, &indices, &perm](std::size_t i) {
                return grid.pointAt(indices[perm[i]]);
            });
    std::vector<double> values(indices.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        values[perm[i]] = ordered[i];
    return values;
}

SampleSet
gatherCost(const GridSpec& grid, CostFunction& cost,
           const std::vector<std::size_t>& indices, ExecutionEngine* engine)
{
    SampleSet set;
    set.indices = indices;
    set.values = evaluateGridIndices(grid, cost, indices, engine);
    return set;
}

SampleSet
sampleLandscape(const Landscape& landscape, double fraction, Rng& rng,
                ExecutionEngine* engine)
{
    return gatherLandscape(
        landscape,
        chooseSampleIndices(landscape.numPoints(), fraction, rng), engine);
}

SampleSet
gatherLandscape(const Landscape& landscape,
                const std::vector<std::size_t>& indices,
                ExecutionEngine* engine)
{
    for (std::size_t idx : indices) {
        if (idx >= landscape.numPoints())
            throw std::out_of_range("gatherLandscape: index out of range");
    }
    SampleSet set;
    set.indices = indices;
    set.values = ExecutionEngine::engineOr(engine).map(
        indices.size(), [&landscape, &indices](std::size_t i) {
            return landscape.value(indices[i]);
        });
    return set;
}

} // namespace oscar
