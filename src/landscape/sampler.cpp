#include "src/landscape/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace oscar {

std::size_t
sampleCount(const GridSpec& grid, double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        throw std::invalid_argument("sampleCount: fraction out of (0, 1]");
    const auto n = static_cast<double>(grid.numPoints());
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(fraction * n)));
}

std::vector<std::size_t>
chooseSampleIndices(std::size_t num_points, double fraction, Rng& rng)
{
    if (fraction <= 0.0 || fraction > 1.0)
        throw std::invalid_argument(
            "chooseSampleIndices: fraction out of (0, 1]");
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(fraction * static_cast<double>(num_points))));
    auto idx = rng.sampleWithoutReplacement(num_points, k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

SampleSet
sampleCost(const GridSpec& grid, CostFunction& cost, double fraction,
           Rng& rng, ExecutionEngine* engine)
{
    return gatherCost(grid, cost,
                      chooseSampleIndices(grid.numPoints(), fraction, rng),
                      engine);
}

std::vector<std::size_t>
prefixSubmissionOrder(const GridSpec& grid, const CostFunction& cost,
                      const std::vector<std::size_t>& indices)
{
    const std::vector<int> hint = cost.batchOrderHint();
    if (!hint.empty() &&
        grid.rank() == static_cast<std::size_t>(cost.numParams()))
        return grid.prefixFriendlyPermutation(indices, hint);
    std::vector<std::size_t> identity(indices.size());
    std::iota(identity.begin(), identity.end(), std::size_t{0});
    return identity;
}

GridBatch
submitGridIndices(const GridSpec& grid, CostFunction& cost,
                  const std::vector<std::size_t>& indices,
                  ExecutionEngine* engine, SubmitOptions options)
{
    for (std::size_t idx : indices) {
        if (idx >= grid.numPoints())
            throw std::out_of_range(
                "submitGridIndices: index out of range");
    }

    GridBatch batch;
    batch.perm = prefixSubmissionOrder(grid, cost, indices);
    // submitGenerated materializes all points before returning, so the
    // by-reference captures only need to live through this call.
    batch.handle = ExecutionEngine::engineOr(engine).submitGenerated(
        cost, indices.size(),
        [&grid, &indices, &batch](std::size_t i) {
            return grid.pointAt(indices[batch.perm[i]]);
        },
        std::move(options));
    return batch;
}

std::vector<double>
GridBatch::collect()
{
    const std::vector<double> ordered = handle.get();
    std::vector<double> values(ordered.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        values[perm[i]] = ordered[i];
    return values;
}

std::vector<double>
evaluateGridIndices(const GridSpec& grid, CostFunction& cost,
                    const std::vector<std::size_t>& indices,
                    ExecutionEngine* engine)
{
    return submitGridIndices(grid, cost, indices, engine).collect();
}

SampleSet
gatherCost(const GridSpec& grid, CostFunction& cost,
           const std::vector<std::size_t>& indices, ExecutionEngine* engine,
           SubmitOptions options)
{
    GridBatch batch = submitGridIndices(grid, cost, indices, engine,
                                        std::move(options));
    SampleSet set;
    set.indices = indices;
    set.values = batch.collect();
    set.stats = batch.handle.stats();
    return set;
}

SampleSet
sampleLandscape(const Landscape& landscape, double fraction, Rng& rng,
                ExecutionEngine* engine)
{
    return gatherLandscape(
        landscape,
        chooseSampleIndices(landscape.numPoints(), fraction, rng), engine);
}

SampleSet
gatherLandscape(const Landscape& landscape,
                const std::vector<std::size_t>& indices,
                ExecutionEngine* engine)
{
    for (std::size_t idx : indices) {
        if (idx >= landscape.numPoints())
            throw std::out_of_range("gatherLandscape: index out of range");
    }
    SampleSet set;
    set.indices = indices;
    set.values = ExecutionEngine::engineOr(engine).map(
        indices.size(), [&landscape, &indices](std::size_t i) {
            return landscape.value(indices[i]);
        });
    set.stats.pointsTotal = indices.size();
    set.stats.pointsCompleted = indices.size();
    return set;
}

} // namespace oscar
