#include "src/landscape/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oscar {

std::size_t
sampleCount(const GridSpec& grid, double fraction)
{
    if (fraction <= 0.0 || fraction > 1.0)
        throw std::invalid_argument("sampleCount: fraction out of (0, 1]");
    const auto n = static_cast<double>(grid.numPoints());
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(fraction * n)));
}

std::vector<std::size_t>
chooseSampleIndices(std::size_t num_points, double fraction, Rng& rng)
{
    if (fraction <= 0.0 || fraction > 1.0)
        throw std::invalid_argument(
            "chooseSampleIndices: fraction out of (0, 1]");
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(fraction * static_cast<double>(num_points))));
    auto idx = rng.sampleWithoutReplacement(num_points, k);
    std::sort(idx.begin(), idx.end());
    return idx;
}

SampleSet
sampleCost(const GridSpec& grid, CostFunction& cost, double fraction,
           Rng& rng)
{
    SampleSet set;
    set.indices = chooseSampleIndices(grid.numPoints(), fraction, rng);
    set.values.reserve(set.indices.size());
    for (std::size_t idx : set.indices)
        set.values.push_back(cost.evaluate(grid.pointAt(idx)));
    return set;
}

SampleSet
sampleLandscape(const Landscape& landscape, double fraction, Rng& rng)
{
    SampleSet set;
    set.indices =
        chooseSampleIndices(landscape.numPoints(), fraction, rng);
    set.values.reserve(set.indices.size());
    for (std::size_t idx : set.indices)
        set.values.push_back(landscape.value(idx));
    return set;
}

SampleSet
gatherLandscape(const Landscape& landscape,
                const std::vector<std::size_t>& indices)
{
    SampleSet set;
    set.indices = indices;
    set.values.reserve(indices.size());
    for (std::size_t idx : indices) {
        if (idx >= landscape.numPoints())
            throw std::out_of_range("gatherLandscape: index out of range");
        set.values.push_back(landscape.value(idx));
    }
    return set;
}

} // namespace oscar
