#include "src/landscape/io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace oscar {

namespace {

[[noreturn]] void
malformed(const std::string& what)
{
    throw std::runtime_error("loadLandscape: malformed input: " + what);
}

} // namespace

void
saveLandscape(const Landscape& landscape, std::ostream& out)
{
    out << "oscar-landscape 1\n";
    out << "axes " << landscape.grid().rank() << "\n";
    out << std::setprecision(17);
    for (const GridAxis& axis : landscape.grid().axes())
        out << "axis " << axis.lo << " " << axis.hi << " " << axis.count
            << "\n";
    out << "values " << landscape.numPoints() << "\n";
    for (std::size_t i = 0; i < landscape.numPoints(); ++i)
        out << landscape.value(i) << "\n";
    if (!out)
        throw std::runtime_error("saveLandscape: stream write failed");
}

void
saveLandscape(const Landscape& landscape, const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("saveLandscape: cannot open " + path);
    saveLandscape(landscape, out);
}

Landscape
loadLandscape(std::istream& in)
{
    std::string magic;
    int version = 0;
    if (!(in >> magic >> version) || magic != "oscar-landscape")
        malformed("missing magic header");
    if (version != 1)
        malformed("unsupported version");

    std::string key;
    std::size_t rank = 0;
    if (!(in >> key >> rank) || key != "axes" || rank == 0)
        malformed("axes line");

    std::vector<GridAxis> axes;
    axes.reserve(rank);
    for (std::size_t d = 0; d < rank; ++d) {
        GridAxis axis{};
        if (!(in >> key >> axis.lo >> axis.hi >> axis.count) ||
            key != "axis")
            malformed("axis line");
        axes.push_back(axis);
    }
    const GridSpec grid(std::move(axes));

    std::size_t count = 0;
    if (!(in >> key >> count) || key != "values")
        malformed("values line");
    if (count != grid.numPoints())
        malformed("value count does not match grid");

    NdArray values(grid.shape());
    for (std::size_t i = 0; i < count; ++i) {
        if (!(in >> values[i]))
            malformed("value entry");
    }
    return Landscape(grid, std::move(values));
}

Landscape
loadLandscape(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("loadLandscape: cannot open " + path);
    return loadLandscape(in);
}

} // namespace oscar
