/**
 * @file
 * Landscape persistence.
 *
 * OSCAR's hardware-dataset workflow (paper Section 4.3) replays
 * landscapes measured elsewhere; this module defines the on-disk
 * format for that exchange: a small self-describing text format with
 * the grid specification in the header and one value per line.
 *
 *     oscar-landscape 1
 *     axes 2
 *     axis -0.785398163 0.785398163 50
 *     axis -1.570796327 1.570796327 100
 *     values 5000
 *     -11.9134315
 *     ...
 *
 * Values are written with 17 significant digits, so a save/load round
 * trip is bit-exact for doubles.
 */

#ifndef OSCAR_LANDSCAPE_IO_H
#define OSCAR_LANDSCAPE_IO_H

#include <iosfwd>
#include <string>

#include "src/landscape/landscape.h"

namespace oscar {

/** Serialize a landscape to a stream (format above). */
void saveLandscape(const Landscape& landscape, std::ostream& out);

/** Serialize a landscape to a file. Throws std::runtime_error on IO
 * failure. */
void saveLandscape(const Landscape& landscape, const std::string& path);

/** Parse a landscape from a stream. Throws std::runtime_error on
 * malformed input. */
Landscape loadLandscape(std::istream& in);

/** Parse a landscape from a file. */
Landscape loadLandscape(const std::string& path);

} // namespace oscar

#endif // OSCAR_LANDSCAPE_IO_H
