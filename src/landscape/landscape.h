/**
 * @file
 * A cost landscape: grid specification plus the value at every point.
 *
 * Ground-truth landscapes are produced by full grid search (the
 * expensive baseline OSCAR is compared against); reconstructed
 * landscapes carry the same structure so every metric applies to both.
 */

#ifndef OSCAR_LANDSCAPE_LANDSCAPE_H
#define OSCAR_LANDSCAPE_LANDSCAPE_H

#include "src/backend/engine.h"
#include "src/backend/executor.h"
#include "src/common/ndarray.h"
#include "src/landscape/grid.h"

namespace oscar {

/** Grid + values container for true and reconstructed landscapes. */
class Landscape
{
  public:
    Landscape() = default;

    /** Wrap an existing value array (shape must match the grid). */
    Landscape(GridSpec grid, NdArray values);

    /**
     * Full grid search: evaluate the cost function at every grid
     * point. This is the paper's expensive ground-truth path (5k-32k
     * circuit evaluations for Table 1 grids); it batches the whole
     * grid through the engine (serial when null).
     */
    static Landscape gridSearch(const GridSpec& grid, CostFunction& cost,
                                ExecutionEngine* engine = nullptr);

    const GridSpec& grid() const { return grid_; }
    const NdArray& values() const { return values_; }
    NdArray& values() { return values_; }

    std::size_t numPoints() const { return values_.size(); }

    double value(std::size_t flat_index) const { return values_[flat_index]; }

    /** Flat index of the global minimum. */
    std::size_t argmin() const;

    /** Parameter vector of the global minimum. */
    std::vector<double> minimizerParams() const;

  private:
    GridSpec grid_;
    NdArray values_;
};

} // namespace oscar

#endif // OSCAR_LANDSCAPE_LANDSCAPE_H
