/**
 * @file
 * Random parameter sampling (the first OSCAR phase, paper Fig. 3).
 *
 * OSCAR draws grid points uniformly at random without replacement,
 * evaluates the circuit only there, and hands the (index, value) pairs
 * to the CS reconstructor. Samplers exist both for live cost functions
 * and for pre-computed landscapes (the hardware-dataset experiments,
 * where the "execution" is a lookup).
 *
 * Evaluation goes through the engine's asynchronous submission API:
 * submitGridIndices() returns an in-flight GridBatch so pipelines can
 * keep several shards executing while they reconstruct, fit, or
 * schedule (see Oscar::reconstruct's streaming mode); the synchronous
 * helpers are the submit-then-collect composition.
 */

#ifndef OSCAR_LANDSCAPE_SAMPLER_H
#define OSCAR_LANDSCAPE_SAMPLER_H

#include <cstddef>
#include <vector>

#include "src/backend/engine.h"
#include "src/backend/executor.h"
#include "src/common/rng.h"
#include "src/landscape/grid.h"
#include "src/landscape/landscape.h"

namespace oscar {

/** A set of measured grid points. */
struct SampleSet
{
    std::vector<std::size_t> indices;
    std::vector<double> values;

    /** Execution counters of the batches that produced `values`. */
    BatchStats stats;

    std::size_t size() const { return indices.size(); }
};

/** Number of samples implied by a sampling fraction of a grid. */
std::size_t sampleCount(const GridSpec& grid, double fraction);

/** Choose sample indices uniformly without replacement. */
std::vector<std::size_t> chooseSampleIndices(std::size_t num_points,
                                             double fraction, Rng& rng);

/**
 * Submission order for `indices` on `cost`: a permutation of positions
 * into `indices`, prefix-friendly axis-major when the backend
 * publishes a batch order hint (and its arity matches the grid),
 * identity otherwise. Submitting in this order maximizes consecutive
 * points' shared simulation prefix; results are scattered back so the
 * (index, value) pairing never depends on it.
 */
std::vector<std::size_t> prefixSubmissionOrder(
    const GridSpec& grid, const CostFunction& cost,
    const std::vector<std::size_t>& indices);

/**
 * An in-flight asynchronous evaluation of grid indices. Submission
 * position j evaluates indices[perm[j]]; collect() blocks and returns
 * values positionally aligned with the original `indices`.
 */
struct GridBatch
{
    BatchHandle handle;
    std::vector<std::size_t> perm;

    /** handle.get() scattered back to the caller's index order. */
    std::vector<double> collect();
};

/**
 * Submit `indices` for evaluation as one asynchronous batch in
 * prefix-friendly submission order. Queries/ordinals are reserved on
 * `cost` at submission, so interleaving several GridBatches is
 * deterministic (see engine.h).
 */
GridBatch submitGridIndices(const GridSpec& grid, CostFunction& cost,
                            const std::vector<std::size_t>& indices,
                            ExecutionEngine* engine = nullptr,
                            SubmitOptions options = {});

/**
 * Sample a live cost function at `fraction` of the grid points chosen
 * uniformly at random. The index batch is submitted to `engine`
 * (serial when null); results are positional, so the outcome is
 * bit-identical for any thread count.
 */
SampleSet sampleCost(const GridSpec& grid, CostFunction& cost,
                     double fraction, Rng& rng,
                     ExecutionEngine* engine = nullptr);

/**
 * Evaluate a live cost function at specific grid indices as one batch
 * through the engine, returning values positionally aligned with
 * `indices` (submitGridIndices + collect).
 */
std::vector<double> evaluateGridIndices(
    const GridSpec& grid, CostFunction& cost,
    const std::vector<std::size_t>& indices,
    ExecutionEngine* engine = nullptr);

/**
 * Evaluate a live cost function at specific grid indices as one batch
 * through the engine (evaluateGridIndices wrapped in a SampleSet,
 * execution stats included). `options` is forwarded to the submission
 * (streaming onComplete callbacks fire per completed point, in
 * submission order -- i.e. prefix-friendly order, not index order).
 */
SampleSet gatherCost(const GridSpec& grid, CostFunction& cost,
                     const std::vector<std::size_t>& indices,
                     ExecutionEngine* engine = nullptr,
                     SubmitOptions options = {});

/** Sample a precomputed landscape (dataset replay). */
SampleSet sampleLandscape(const Landscape& landscape, double fraction,
                          Rng& rng, ExecutionEngine* engine = nullptr);

/** Look up specific indices of a precomputed landscape. */
SampleSet gatherLandscape(const Landscape& landscape,
                          const std::vector<std::size_t>& indices,
                          ExecutionEngine* engine = nullptr);

} // namespace oscar

#endif // OSCAR_LANDSCAPE_SAMPLER_H
