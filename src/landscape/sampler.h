/**
 * @file
 * Random parameter sampling (the first OSCAR phase, paper Fig. 3).
 *
 * OSCAR draws grid points uniformly at random without replacement,
 * evaluates the circuit only there, and hands the (index, value) pairs
 * to the CS reconstructor. Samplers exist both for live cost functions
 * and for pre-computed landscapes (the hardware-dataset experiments,
 * where the "execution" is a lookup).
 */

#ifndef OSCAR_LANDSCAPE_SAMPLER_H
#define OSCAR_LANDSCAPE_SAMPLER_H

#include <cstddef>
#include <vector>

#include "src/backend/engine.h"
#include "src/backend/executor.h"
#include "src/common/rng.h"
#include "src/landscape/grid.h"
#include "src/landscape/landscape.h"

namespace oscar {

/** A set of measured grid points. */
struct SampleSet
{
    std::vector<std::size_t> indices;
    std::vector<double> values;

    std::size_t size() const { return indices.size(); }
};

/** Number of samples implied by a sampling fraction of a grid. */
std::size_t sampleCount(const GridSpec& grid, double fraction);

/** Choose sample indices uniformly without replacement. */
std::vector<std::size_t> chooseSampleIndices(std::size_t num_points,
                                             double fraction, Rng& rng);

/**
 * Sample a live cost function at `fraction` of the grid points chosen
 * uniformly at random. The index batch is submitted to `engine`
 * (serial when null); results are positional, so the outcome is
 * bit-identical for any thread count.
 */
SampleSet sampleCost(const GridSpec& grid, CostFunction& cost,
                     double fraction, Rng& rng,
                     ExecutionEngine* engine = nullptr);

/**
 * Evaluate a live cost function at specific grid indices as one batch
 * through the engine, returning values positionally aligned with
 * `indices`.
 *
 * When the cost function publishes a batch order hint (a prefix-cached
 * backend), the batch is submitted in prefix-friendly axis-major order
 * — the shared-coordinate structure the backend's checkpoint cache
 * keys on — and the results are scattered back to the caller's order,
 * so the (index, value) pairing is unaffected.
 */
std::vector<double> evaluateGridIndices(
    const GridSpec& grid, CostFunction& cost,
    const std::vector<std::size_t>& indices,
    ExecutionEngine* engine = nullptr);

/**
 * Evaluate a live cost function at specific grid indices as one batch
 * through the engine (evaluateGridIndices wrapped in a SampleSet).
 */
SampleSet gatherCost(const GridSpec& grid, CostFunction& cost,
                     const std::vector<std::size_t>& indices,
                     ExecutionEngine* engine = nullptr);

/** Sample a precomputed landscape (dataset replay). */
SampleSet sampleLandscape(const Landscape& landscape, double fraction,
                          Rng& rng, ExecutionEngine* engine = nullptr);

/** Look up specific indices of a precomputed landscape. */
SampleSet gatherLandscape(const Landscape& landscape,
                          const std::vector<std::size_t>& indices,
                          ExecutionEngine* engine = nullptr);

} // namespace oscar

#endif // OSCAR_LANDSCAPE_SAMPLER_H
