#include "src/landscape/metrics.h"

#include <stdexcept>

#include "src/common/stats.h"

namespace oscar {

namespace {

/**
 * Visit every axis-aligned 1-D line of the array along axis d and
 * invoke fn with the line's values.
 */
template <typename Fn>
void
forEachLine(const NdArray& a, std::size_t d, Fn&& fn)
{
    const auto& shape = a.shape();
    const std::size_t len = shape[d];
    std::size_t stride = 1;
    for (std::size_t k = d + 1; k < shape.size(); ++k)
        stride *= shape[k];
    const std::size_t block = stride * len;

    std::vector<double> line(len);
    for (std::size_t outer = 0; outer < a.size(); outer += block) {
        for (std::size_t inner = 0; inner < stride; ++inner) {
            for (std::size_t j = 0; j < len; ++j)
                line[j] = a[outer + inner + j * stride];
            fn(line);
        }
    }
}

} // namespace

double
nrmse(const NdArray& truth, const NdArray& reconstruction)
{
    if (truth.size() != reconstruction.size())
        throw std::invalid_argument("nrmse: size mismatch");
    const double denom = stats::iqr(truth.flat());
    if (denom == 0.0)
        throw std::invalid_argument("nrmse: degenerate truth (IQR = 0)");
    return stats::rmse(truth.flat(), reconstruction.flat()) / denom;
}

double
secondDerivativeMetric(const NdArray& landscape)
{
    double axis_sum = 0.0;
    std::size_t axes_used = 0;
    for (std::size_t d = 0; d < landscape.rank(); ++d) {
        if (landscape.dim(d) < 3)
            continue;
        double line_sum = 0.0;
        std::size_t lines = 0;
        forEachLine(landscape, d, [&](const std::vector<double>& x) {
            double acc = 0.0;
            for (std::size_t i = 2; i < x.size(); ++i) {
                const double dd = x[i] - 2.0 * x[i - 1] + x[i - 2];
                acc += dd * dd / 4.0;
            }
            line_sum += acc;
            ++lines;
        });
        axis_sum += line_sum / static_cast<double>(lines);
        ++axes_used;
    }
    if (axes_used == 0)
        throw std::invalid_argument(
            "secondDerivativeMetric: no axis with >= 3 points");
    return axis_sum / static_cast<double>(axes_used);
}

double
varianceOfGradients(const NdArray& landscape)
{
    double axis_sum = 0.0;
    std::size_t axes_used = 0;
    for (std::size_t d = 0; d < landscape.rank(); ++d) {
        if (landscape.dim(d) < 2)
            continue;
        std::vector<double> diffs;
        forEachLine(landscape, d, [&](const std::vector<double>& x) {
            for (std::size_t i = 1; i < x.size(); ++i)
                diffs.push_back(x[i] - x[i - 1]);
        });
        axis_sum += stats::variance(diffs);
        ++axes_used;
    }
    if (axes_used == 0)
        throw std::invalid_argument(
            "varianceOfGradients: no axis with >= 2 points");
    return axis_sum / static_cast<double>(axes_used);
}

double
landscapeVariance(const NdArray& landscape)
{
    return stats::variance(landscape.flat());
}

} // namespace oscar
