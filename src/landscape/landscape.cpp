#include "src/landscape/landscape.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "src/landscape/sampler.h"

namespace oscar {

Landscape::Landscape(GridSpec grid, NdArray values)
    : grid_(std::move(grid)), values_(std::move(values))
{
    if (values_.shape() != grid_.shape())
        throw std::invalid_argument("Landscape: grid/value shape mismatch");
}

Landscape
Landscape::gridSearch(const GridSpec& grid, CostFunction& cost,
                      ExecutionEngine* engine)
{
    if (static_cast<std::size_t>(cost.numParams()) != grid.rank())
        throw std::invalid_argument(
            "Landscape::gridSearch: grid rank != parameter count");
    // Evaluate in the backend's prefix-friendly order (values come
    // back scattered to row-major positions).
    std::vector<std::size_t> indices(grid.numPoints());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    std::vector<double> flat =
        evaluateGridIndices(grid, cost, indices, engine);
    return Landscape(grid, NdArray(grid.shape(), std::move(flat)));
}

std::size_t
Landscape::argmin() const
{
    const auto& v = values_.flat();
    return static_cast<std::size_t>(
        std::min_element(v.begin(), v.end()) - v.begin());
}

std::vector<double>
Landscape::minimizerParams() const
{
    return grid_.pointAt(argmin());
}

} // namespace oscar
