/**
 * @file
 * Landscape visualization exports.
 *
 * The paper's figures are heat maps of 2-D landscapes with optional
 * optimizer paths (Figs. 2, 5, 9, 11, 13). This module renders a
 * rank-2 landscape to a binary PGM image (a dependency-free grayscale
 * format every image viewer opens) and to ASCII art for terminal
 * inspection; examples use both.
 */

#ifndef OSCAR_LANDSCAPE_EXPORT_H
#define OSCAR_LANDSCAPE_EXPORT_H

#include <string>

#include "src/landscape/landscape.h"

namespace oscar {

/**
 * Write a rank-2 landscape as a binary 8-bit PGM heat map (dark = low
 * cost). Each grid cell becomes `cell_pixels` x `cell_pixels` pixels.
 * Throws std::runtime_error when the file cannot be written.
 */
void writePgm(const Landscape& landscape, const std::string& path,
              int cell_pixels = 4);

/**
 * Render a rank-2 landscape as ASCII art with the given character
 * resolution (values min..max map onto " .:-=+*#%@").
 */
std::string renderAscii(const Landscape& landscape, std::size_t rows = 20,
                        std::size_t cols = 60);

} // namespace oscar

#endif // OSCAR_LANDSCAPE_EXPORT_H
