/**
 * @file
 * Weighted undirected graphs for combinatorial problem instances.
 *
 * QAOA-MaxCut and the SK model are both defined over a weighted edge
 * list; this module is the instance substrate for all of the paper's
 * MaxCut / mesh / SK experiments.
 */

#ifndef OSCAR_GRAPH_GRAPH_H
#define OSCAR_GRAPH_GRAPH_H

#include <cstdint>
#include <vector>

namespace oscar {

/** One weighted undirected edge. */
struct Edge
{
    int u;
    int v;
    double weight = 1.0;
};

/** Simple undirected weighted graph with an adjacency index. */
class Graph
{
  public:
    Graph() = default;

    /** Graph with n isolated vertices. */
    explicit Graph(int num_vertices);

    int numVertices() const { return numVertices_; }
    std::size_t numEdges() const { return edges_.size(); }

    const std::vector<Edge>& edges() const { return edges_; }

    /** Add an undirected edge; duplicate and self edges are rejected. */
    void addEdge(int u, int v, double weight = 1.0);

    /** True when {u, v} is an edge. */
    bool hasEdge(int u, int v) const;

    /** Degree of vertex v. */
    int degree(int v) const;

    /** Neighbors of vertex v. */
    const std::vector<int>& neighbors(int v) const;

    /**
     * Number of common neighbors of edge endpoints u and v (triangles
     * through the edge) -- needed by the closed-form p=1 QAOA
     * expectation.
     */
    int commonNeighbors(int u, int v) const;

    /**
     * Cut value of an assignment given as a bitmask (bit k = side of
     * vertex k): total weight of edges crossing the cut.
     */
    double cutValue(std::uint64_t assignment) const;

    /** Maximum cut value by brute force (n <= 30 recommended small). */
    double maxCutBruteForce() const;

  private:
    int numVertices_ = 0;
    std::vector<Edge> edges_;
    std::vector<std::vector<int>> adj_;
};

} // namespace oscar

#endif // OSCAR_GRAPH_GRAPH_H
