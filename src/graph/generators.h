/**
 * @file
 * Problem-instance graph generators matching the paper's workloads:
 * random 3-regular graphs (the primary MaxCut benchmark), mesh/grid
 * graphs (the Google Sycamore hardware-grid workload), complete graphs
 * with Gaussian couplings (the Sherrington-Kirkpatrick model), and
 * Erdos-Renyi graphs for diversity in the test suite.
 */

#ifndef OSCAR_GRAPH_GENERATORS_H
#define OSCAR_GRAPH_GENERATORS_H

#include "src/common/rng.h"
#include "src/graph/graph.h"

namespace oscar {

/**
 * Uniform random d-regular simple graph via the pairing (configuration)
 * model with restarts. Requires n * d even and d < n.
 */
Graph randomRegularGraph(int num_vertices, int degree, Rng& rng);

/** Random 3-regular graph (paper's main MaxCut family). */
Graph random3RegularGraph(int num_vertices, Rng& rng);

/**
 * Rows x cols grid ("mesh") graph with unit weights; matches the
 * hardware-grid MaxCut instances in the Google dataset.
 */
Graph meshGraph(int rows, int cols);

/** Complete graph with unit weights. */
Graph completeGraph(int num_vertices);

/**
 * Sherrington-Kirkpatrick instance: complete graph with couplings
 * J_ij drawn iid from N(0, 1), scaled by 1/sqrt(n) so the energy
 * scale is n-independent.
 */
Graph skInstance(int num_vertices, Rng& rng);

/** Erdos-Renyi G(n, p) graph with unit weights. */
Graph erdosRenyiGraph(int num_vertices, double edge_prob, Rng& rng);

} // namespace oscar

#endif // OSCAR_GRAPH_GENERATORS_H
