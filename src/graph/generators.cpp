#include "src/graph/generators.h"

#include <cmath>
#include <stdexcept>

namespace oscar {

Graph
randomRegularGraph(int num_vertices, int degree, Rng& rng)
{
    if (degree >= num_vertices || (num_vertices * degree) % 2 != 0)
        throw std::invalid_argument(
            "randomRegularGraph: invalid (n, d) combination");

    // Pairing model: create d stubs per vertex, shuffle, pair them up;
    // restart whenever a pairing creates a self-loop or multi-edge.
    // For small d this terminates quickly with high probability.
    for (int attempt = 0; attempt < 1000; ++attempt) {
        std::vector<int> stubs;
        stubs.reserve(static_cast<std::size_t>(num_vertices) * degree);
        for (int v = 0; v < num_vertices; ++v) {
            for (int k = 0; k < degree; ++k)
                stubs.push_back(v);
        }
        rng.shuffle(stubs);

        Graph g(num_vertices);
        bool ok = true;
        for (std::size_t i = 0; i < stubs.size() && ok; i += 2) {
            const int u = stubs[i];
            const int v = stubs[i + 1];
            if (u == v || g.hasEdge(u, v))
                ok = false;
            else
                g.addEdge(u, v);
        }
        if (ok)
            return g;
    }
    throw std::runtime_error("randomRegularGraph: pairing model failed");
}

Graph
random3RegularGraph(int num_vertices, Rng& rng)
{
    return randomRegularGraph(num_vertices, 3, rng);
}

Graph
meshGraph(int rows, int cols)
{
    if (rows < 1 || cols < 1)
        throw std::invalid_argument("meshGraph: invalid dimensions");
    Graph g(rows * cols);
    auto id = [cols](int r, int c) { return r * cols + c; };
    for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
            if (c + 1 < cols)
                g.addEdge(id(r, c), id(r, c + 1));
            if (r + 1 < rows)
                g.addEdge(id(r, c), id(r + 1, c));
        }
    }
    return g;
}

Graph
completeGraph(int num_vertices)
{
    Graph g(num_vertices);
    for (int u = 0; u < num_vertices; ++u) {
        for (int v = u + 1; v < num_vertices; ++v)
            g.addEdge(u, v);
    }
    return g;
}

Graph
skInstance(int num_vertices, Rng& rng)
{
    Graph g(num_vertices);
    const double scale = 1.0 / std::sqrt(static_cast<double>(num_vertices));
    for (int u = 0; u < num_vertices; ++u) {
        for (int v = u + 1; v < num_vertices; ++v)
            g.addEdge(u, v, rng.normal() * scale);
    }
    return g;
}

Graph
erdosRenyiGraph(int num_vertices, double edge_prob, Rng& rng)
{
    Graph g(num_vertices);
    for (int u = 0; u < num_vertices; ++u) {
        for (int v = u + 1; v < num_vertices; ++v) {
            if (rng.bernoulli(edge_prob))
                g.addEdge(u, v);
        }
    }
    return g;
}

} // namespace oscar
