#include "src/graph/graph.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace oscar {

Graph::Graph(int num_vertices)
    : numVertices_(num_vertices),
      adj_(static_cast<std::size_t>(num_vertices))
{
    if (num_vertices < 1)
        throw std::invalid_argument("Graph: need at least one vertex");
}

void
Graph::addEdge(int u, int v, double weight)
{
    if (u < 0 || u >= numVertices_ || v < 0 || v >= numVertices_)
        throw std::out_of_range("Graph::addEdge: vertex out of range");
    if (u == v)
        throw std::invalid_argument("Graph::addEdge: self-loop");
    if (hasEdge(u, v))
        throw std::invalid_argument("Graph::addEdge: duplicate edge");
    edges_.push_back({u, v, weight});
    adj_[u].push_back(v);
    adj_[v].push_back(u);
}

bool
Graph::hasEdge(int u, int v) const
{
    const auto& nu = adj_[u];
    return std::find(nu.begin(), nu.end(), v) != nu.end();
}

int
Graph::degree(int v) const
{
    return static_cast<int>(adj_[v].size());
}

const std::vector<int>&
Graph::neighbors(int v) const
{
    return adj_[v];
}

int
Graph::commonNeighbors(int u, int v) const
{
    int count = 0;
    for (int w : adj_[u]) {
        if (w != v && hasEdge(w, v))
            ++count;
    }
    return count;
}

double
Graph::cutValue(std::uint64_t assignment) const
{
    double cut = 0.0;
    for (const Edge& e : edges_) {
        const bool su = (assignment >> e.u) & 1ULL;
        const bool sv = (assignment >> e.v) & 1ULL;
        if (su != sv)
            cut += e.weight;
    }
    return cut;
}

double
Graph::maxCutBruteForce() const
{
    assert(numVertices_ <= 30);
    double best = 0.0;
    const std::uint64_t total = std::uint64_t{1} << numVertices_;
    for (std::uint64_t a = 0; a < total; ++a)
        best = std::max(best, cutValue(a));
    return best;
}

} // namespace oscar
