#include "src/optimize/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace oscar {

NelderMead::NelderMead(NelderMeadOptions options)
    : options_(options)
{
}

OptimizerResult
NelderMead::minimize(CostFunction& cost, const std::vector<double>& initial)
{
    const std::size_t dim = initial.size();
    const std::size_t start_queries = cost.numQueries();

    OptimizerResult result;
    result.path.push_back(initial);

    // Initial simplex: the start point plus one offset vertex per axis,
    // evaluated as one batch.
    std::vector<std::vector<double>> simplex;
    simplex.push_back(initial);
    for (std::size_t i = 0; i < dim; ++i) {
        auto vertex = initial;
        vertex[i] += options_.initialStep;
        simplex.push_back(std::move(vertex));
    }
    std::vector<double> values = evalBatch(cost, simplex);

    std::vector<std::size_t> order(simplex.size());
    for (std::size_t iter = 0; iter < options_.maxIterations; ++iter) {
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [&](auto a, auto b) {
            return values[a] < values[b];
        });
        const std::size_t best = order.front();
        const std::size_t worst = order.back();
        const std::size_t second_worst = order[order.size() - 2];

        result.iterations = iter + 1;
        result.path.push_back(simplex[best]);

        if (std::abs(values[worst] - values[best]) < options_.tolerance) {
            result.converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(dim, 0.0);
        for (std::size_t k : order) {
            if (k == worst)
                continue;
            for (std::size_t i = 0; i < dim; ++i)
                centroid[i] += simplex[k][i];
        }
        for (double& c : centroid)
            c /= static_cast<double>(dim);

        auto blend = [&](double t) {
            std::vector<double> p(dim);
            for (std::size_t i = 0; i < dim; ++i)
                p[i] = centroid[i] + t * (centroid[i] - simplex[worst][i]);
            return p;
        };

        // All four candidate probes depend only on the centroid and
        // the worst vertex, never on each other's values -- so in
        // speculative mode they are submitted together before the
        // branch is decided, and the losers are cancelled.
        const auto reflected = blend(options_.reflection);
        const bool speculate = options_.speculative && engine();
        BatchHandle h_reflected, h_expanded, h_out, h_in;
        if (speculate) {
            SubmitOptions eager;
            eager.eager = true;
            h_reflected = engine()->submit(cost, {reflected}, eager);
            h_expanded = engine()->submit(
                cost, {blend(options_.reflection * options_.expansion)},
                eager);
            h_out = engine()->submit(
                cost, {blend(options_.reflection * options_.contraction)},
                eager);
            h_in = engine()->submit(cost, {blend(-options_.contraction)},
                                    eager);
        }
        const double f_reflected =
            speculate ? h_reflected.get()[0] : cost.evaluate(reflected);

        if (f_reflected < values[best]) {
            const auto expanded =
                blend(options_.reflection * options_.expansion);
            double f_expanded;
            if (speculate) {
                h_out.cancel();
                h_in.cancel();
                f_expanded = h_expanded.get()[0];
            } else {
                f_expanded = cost.evaluate(expanded);
            }
            if (f_expanded < f_reflected) {
                simplex[worst] = expanded;
                values[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            }
            continue;
        }
        if (speculate)
            h_expanded.cancel();
        if (f_reflected < values[second_worst]) {
            if (speculate) {
                h_out.cancel();
                h_in.cancel();
            }
            simplex[worst] = reflected;
            values[worst] = f_reflected;
            continue;
        }

        // Contraction (outside if the reflection helped at all).
        const bool outside = f_reflected < values[worst];
        const auto contracted = blend(
            outside ? options_.reflection * options_.contraction
                    : -options_.contraction);
        double f_contracted;
        if (speculate) {
            (outside ? h_in : h_out).cancel();
            f_contracted = (outside ? h_out : h_in).get()[0];
        } else {
            f_contracted = cost.evaluate(contracted);
        }
        const double f_cmp = outside ? f_reflected : values[worst];
        if (f_contracted < f_cmp) {
            simplex[worst] = contracted;
            values[worst] = f_contracted;
            continue;
        }

        // Shrink toward the best vertex; re-evaluate as one batch.
        std::vector<std::size_t> shrunk;
        std::vector<std::vector<double>> shrunk_points;
        for (std::size_t k : order) {
            if (k == best)
                continue;
            for (std::size_t i = 0; i < dim; ++i) {
                simplex[k][i] =
                    simplex[best][i] +
                    options_.shrink * (simplex[k][i] - simplex[best][i]);
            }
            shrunk.push_back(k);
            shrunk_points.push_back(simplex[k]);
        }
        const std::vector<double> shrunk_values =
            evalBatch(cost, shrunk_points);
        for (std::size_t j = 0; j < shrunk.size(); ++j)
            values[shrunk[j]] = shrunk_values[j];
    }

    const std::size_t best = static_cast<std::size_t>(
        std::min_element(values.begin(), values.end()) - values.begin());
    result.bestParams = simplex[best];
    result.bestValue = values[best];
    result.numQueries = cost.numQueries() - start_queries;
    return result;
}

} // namespace oscar
