/**
 * @file
 * Plain gradient descent with finite-difference gradients -- the
 * simplest gradient baseline, used in ablations and tests.
 */

#ifndef OSCAR_OPTIMIZE_GRADIENT_DESCENT_H
#define OSCAR_OPTIMIZE_GRADIENT_DESCENT_H

#include "src/optimize/optimizer.h"

namespace oscar {

/** Gradient descent configuration. */
struct GradientDescentOptions
{
    double learningRate = 0.05;
    double fdStep = 1e-2;
    std::size_t maxIterations = 200;
    double gradientTolerance = 1e-4;
};

/** Fixed-step gradient descent minimizer. */
class GradientDescent : public Optimizer
{
  public:
    explicit GradientDescent(GradientDescentOptions options = {});

    std::string name() const override { return "gd"; }

    OptimizerResult minimize(CostFunction& cost,
                             const std::vector<double>& initial) override;

  private:
    GradientDescentOptions options_;
};

} // namespace oscar

#endif // OSCAR_OPTIMIZE_GRADIENT_DESCENT_H
