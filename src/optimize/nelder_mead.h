/**
 * @file
 * Nelder-Mead simplex minimizer (gradient-free baseline).
 */

#ifndef OSCAR_OPTIMIZE_NELDER_MEAD_H
#define OSCAR_OPTIMIZE_NELDER_MEAD_H

#include "src/optimize/optimizer.h"

namespace oscar {

/** Nelder-Mead configuration (standard coefficients). */
struct NelderMeadOptions
{
    double initialStep = 0.1;    ///< simplex edge length
    double reflection = 1.0;
    double expansion = 2.0;
    double contraction = 0.5;
    double shrink = 0.5;
    std::size_t maxIterations = 400;
    double tolerance = 1e-8;     ///< simplex value spread stop
};

/** Nelder-Mead minimizer. */
class NelderMead : public Optimizer
{
  public:
    explicit NelderMead(NelderMeadOptions options = {});

    std::string name() const override { return "nelder-mead"; }

    OptimizerResult minimize(CostFunction& cost,
                             const std::vector<double>& initial) override;

  private:
    NelderMeadOptions options_;
};

} // namespace oscar

#endif // OSCAR_OPTIMIZE_NELDER_MEAD_H
