/**
 * @file
 * Nelder-Mead simplex minimizer (gradient-free baseline).
 */

#ifndef OSCAR_OPTIMIZE_NELDER_MEAD_H
#define OSCAR_OPTIMIZE_NELDER_MEAD_H

#include "src/optimize/optimizer.h"

namespace oscar {

/** Nelder-Mead configuration (standard coefficients). */
struct NelderMeadOptions
{
    double initialStep = 0.1;    ///< simplex edge length
    double reflection = 1.0;
    double expansion = 2.0;
    double contraction = 0.5;
    double shrink = 0.5;
    std::size_t maxIterations = 400;
    double tolerance = 1e-8;     ///< simplex value spread stop

    /**
     * Speculative probing (requires setEngine): every iteration
     * submits the reflection, expansion, and both contraction
     * candidates as eager asynchronous batches up front -- they all
     * depend only on the centroid, not on each other's values -- and
     * cancels the losers once the reflection value picks the branch.
     * Workers therefore evaluate the possible next steps while the
     * decision is being made.
     *
     * The submission schedule is fixed (4 reserved ordinals per
     * iteration), so results are bit-identical for any engine thread
     * count; deterministic backends also match the non-speculative
     * path exactly. Stochastic backends see different ordinals than
     * the non-speculative path (documented divergence), and the query
     * count includes losers that finished before their cancel landed,
     * so numQueries becomes timing-dependent -- which is why this is
     * opt-in.
     */
    bool speculative = false;
};

/** Nelder-Mead minimizer. */
class NelderMead : public Optimizer
{
  public:
    explicit NelderMead(NelderMeadOptions options = {});

    std::string name() const override { return "nelder-mead"; }

    OptimizerResult minimize(CostFunction& cost,
                             const std::vector<double>& initial) override;

  private:
    NelderMeadOptions options_;
};

} // namespace oscar

#endif // OSCAR_OPTIMIZE_NELDER_MEAD_H
