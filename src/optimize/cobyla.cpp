#include "src/optimize/cobyla.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/linear_regression.h"

namespace oscar {

Cobyla::Cobyla(CobylaOptions options)
    : options_(options)
{
}

OptimizerResult
Cobyla::minimize(CostFunction& cost, const std::vector<double>& initial)
{
    const std::size_t dim = initial.size();
    const std::size_t start_queries = cost.numQueries();

    OptimizerResult result;
    result.path.push_back(initial);

    // Simplex of n+1 interpolation points, evaluated as one batch.
    std::vector<std::vector<double>> pts;
    pts.push_back(initial);
    for (std::size_t i = 0; i < dim; ++i) {
        auto p = initial;
        p[i] += options_.rhoBegin;
        pts.push_back(std::move(p));
    }
    std::vector<double> vals = evalBatch(cost, pts);

    double rho = options_.rhoBegin;
    for (std::size_t iter = 0; iter < options_.maxIterations; ++iter) {
        result.iterations = iter + 1;

        const std::size_t best = static_cast<std::size_t>(
            std::min_element(vals.begin(), vals.end()) - vals.begin());
        const std::size_t worst = static_cast<std::size_t>(
            std::max_element(vals.begin(), vals.end()) - vals.begin());
        result.path.push_back(pts[best]);

        if (rho < options_.rhoEnd) {
            result.converged = true;
            break;
        }

        // Linear model through the simplex relative to the best point:
        // f(best + d) ~ f(best) + g . d, solving the n x n system of
        // interpolation conditions at the other vertices.
        std::vector<double> a(dim * dim, 0.0);
        std::vector<double> b(dim, 0.0);
        std::size_t row = 0;
        for (std::size_t k = 0; k < pts.size(); ++k) {
            if (k == best)
                continue;
            for (std::size_t i = 0; i < dim; ++i)
                a[row * dim + i] = pts[k][i] - pts[best][i];
            b[row] = vals[k] - vals[best];
            ++row;
        }

        std::vector<double> g;
        bool model_ok = true;
        try {
            g = solveDense(std::move(a), std::move(b), dim);
        } catch (...) {
            model_ok = false;
        }

        double g_norm = 0.0;
        if (model_ok) {
            for (double gi : g)
                g_norm += gi * gi;
            g_norm = std::sqrt(g_norm);
        }

        if (!model_ok || g_norm < 1e-14) {
            // Degenerate model: rebuild the simplex at a smaller scale,
            // re-evaluated as one batch.
            rho *= 0.5;
            std::vector<std::size_t> rebuilt;
            std::vector<std::vector<double>> rebuilt_points;
            for (std::size_t k = 0, axis = 0; k < pts.size(); ++k) {
                if (k == best)
                    continue;
                pts[k] = pts[best];
                pts[k][axis] += rho;
                rebuilt.push_back(k);
                rebuilt_points.push_back(pts[k]);
                ++axis;
            }
            const std::vector<double> rebuilt_values =
                evalBatch(cost, rebuilt_points);
            for (std::size_t j = 0; j < rebuilt.size(); ++j)
                vals[rebuilt[j]] = rebuilt_values[j];
            continue;
        }

        // Trust-region step along the model's steepest descent.
        std::vector<double> trial(dim);
        for (std::size_t i = 0; i < dim; ++i)
            trial[i] = pts[best][i] - rho * g[i] / g_norm;
        const double f_trial = cost.evaluate(trial);

        if (f_trial < vals[best]) {
            pts[worst] = std::move(trial);
            vals[worst] = f_trial;
        } else {
            // No improvement at this scale: replace the worst vertex
            // if the trial at least beats it, then shrink.
            if (f_trial < vals[worst]) {
                pts[worst] = std::move(trial);
                vals[worst] = f_trial;
            }
            rho *= 0.5;
            // Pull the simplex toward the best vertex to keep the
            // interpolation points within the trust region; the moved
            // vertices re-evaluate as one batch.
            std::vector<std::size_t> moved;
            std::vector<std::vector<double>> moved_points;
            for (std::size_t k = 0; k < pts.size(); ++k) {
                if (k == best)
                    continue;
                double dist = 0.0;
                for (std::size_t i = 0; i < dim; ++i) {
                    const double d = pts[k][i] - pts[best][i];
                    dist += d * d;
                }
                if (std::sqrt(dist) > 2.0 * rho) {
                    for (std::size_t i = 0; i < dim; ++i) {
                        pts[k][i] = pts[best][i] +
                                    0.5 * (pts[k][i] - pts[best][i]);
                    }
                    moved.push_back(k);
                    moved_points.push_back(pts[k]);
                }
            }
            if (!moved.empty()) {
                const std::vector<double> moved_values =
                    evalBatch(cost, moved_points);
                for (std::size_t j = 0; j < moved.size(); ++j)
                    vals[moved[j]] = moved_values[j];
            }
        }
    }

    const std::size_t best = static_cast<std::size_t>(
        std::min_element(vals.begin(), vals.end()) - vals.begin());
    result.bestParams = pts[best];
    result.bestValue = vals[best];
    result.numQueries = cost.numQueries() - start_queries;
    return result;
}

} // namespace oscar
