#include "src/optimize/spsa.h"

#include <cmath>

#include "src/common/rng.h"

namespace oscar {

Spsa::Spsa(SpsaOptions options)
    : options_(options)
{
}

OptimizerResult
Spsa::minimize(CostFunction& cost, const std::vector<double>& initial)
{
    const std::size_t start_queries = cost.numQueries();
    Rng rng(options_.seed);

    OptimizerResult result;
    std::vector<double> theta = initial;
    result.path.push_back(theta);

    double best = cost.evaluate(theta);
    std::vector<double> best_theta = theta;

    std::vector<double> plus(theta.size()), minus(theta.size());
    for (std::size_t k = 0; k < options_.maxIterations; ++k) {
        const double ak =
            options_.a /
            std::pow(static_cast<double>(k) + 1.0 + options_.stability,
                     options_.alpha);
        const double ck =
            options_.c /
            std::pow(static_cast<double>(k) + 1.0, options_.gamma);

        // Rademacher perturbation direction.
        std::vector<double> delta(theta.size());
        for (double& d : delta)
            d = rng.bernoulli(0.5) ? 1.0 : -1.0;

        for (std::size_t i = 0; i < theta.size(); ++i) {
            plus[i] = theta[i] + ck * delta[i];
            minus[i] = theta[i] - ck * delta[i];
        }
        const std::vector<double> f = evalBatch(cost, {plus, minus});
        const double scale = (f[0] - f[1]) / (2.0 * ck);

        for (std::size_t i = 0; i < theta.size(); ++i)
            theta[i] -= ak * scale / delta[i];

        result.path.push_back(theta);
        result.iterations = k + 1;

        const double value = cost.evaluate(theta);
        if (value < best) {
            best = value;
            best_theta = theta;
        }
    }

    result.bestParams = best_theta;
    result.bestValue = best;
    result.numQueries = cost.numQueries() - start_queries;
    return result;
}

} // namespace oscar
