/**
 * @file
 * ADAM with central-finite-difference gradients.
 *
 * Matches the paper's gradient-based optimizer choice ("the
 * gradient-based optimizer ADAM ... with default settings from
 * Qiskit"): Qiskit's ADAM estimates gradients by finite differences,
 * which is why it consumes thousands of QPU queries (Table 6) -- each
 * gradient costs 2 * numParams circuit evaluations.
 */

#ifndef OSCAR_OPTIMIZE_ADAM_H
#define OSCAR_OPTIMIZE_ADAM_H

#include "src/optimize/optimizer.h"

namespace oscar {

/** ADAM configuration (defaults follow Qiskit's ADAM). */
struct AdamOptions
{
    double learningRate = 0.1;
    double beta1 = 0.9;
    double beta2 = 0.99;
    double epsilon = 1e-8;

    /** Finite-difference step. */
    double fdStep = 1e-2;

    std::size_t maxIterations = 200;

    /** Stop when the gradient norm drops below this. */
    double gradientTolerance = 1e-4;
};

/** ADAM minimizer. */
class Adam : public Optimizer
{
  public:
    explicit Adam(AdamOptions options = {});

    std::string name() const override { return "adam"; }

    OptimizerResult minimize(CostFunction& cost,
                             const std::vector<double>& initial) override;

  private:
    AdamOptions options_;
};

/**
 * Central finite-difference gradient estimate (2 * dim evaluations).
 * Shared by Adam and GradientDescent. The 2 * dim probe points are
 * submitted as one batch to `engine` (serial when null).
 */
std::vector<double> finiteDifferenceGradient(CostFunction& cost,
                                             const std::vector<double>& at,
                                             double step,
                                             ExecutionEngine* engine =
                                                 nullptr);

} // namespace oscar

#endif // OSCAR_OPTIMIZE_ADAM_H
