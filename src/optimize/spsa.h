/**
 * @file
 * Simultaneous Perturbation Stochastic Approximation (SPSA).
 *
 * SPSA estimates the full gradient from two evaluations regardless of
 * dimension, which makes it the standard choice on shot-noisy quantum
 * hardware. Included to round out the optimizer zoo OSCAR is meant to
 * help users choose among (paper Section 7).
 */

#ifndef OSCAR_OPTIMIZE_SPSA_H
#define OSCAR_OPTIMIZE_SPSA_H

#include <cstdint>

#include "src/optimize/optimizer.h"

namespace oscar {

/** SPSA configuration (standard Spall gain schedules). */
struct SpsaOptions
{
    double a = 0.2;         ///< numerator of the step-size schedule
    double c = 0.1;         ///< numerator of the perturbation schedule
    double alpha = 0.602;   ///< step-size decay exponent
    double gamma = 0.101;   ///< perturbation decay exponent
    double stability = 10.0; ///< A in a_k = a / (k + 1 + A)^alpha
    std::size_t maxIterations = 300;
    std::uint64_t seed = 7;
};

/** SPSA minimizer. */
class Spsa : public Optimizer
{
  public:
    explicit Spsa(SpsaOptions options = {});

    std::string name() const override { return "spsa"; }

    OptimizerResult minimize(CostFunction& cost,
                             const std::vector<double>& initial) override;

  private:
    SpsaOptions options_;
};

} // namespace oscar

#endif // OSCAR_OPTIMIZE_SPSA_H
