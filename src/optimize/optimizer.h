/**
 * @file
 * Optimizer interface for the VQA training loop.
 *
 * The paper's use cases 2 and 3 (Sections 7-8) run standard classical
 * optimizers either against real circuit executions or against an
 * interpolated reconstructed landscape; both paths are CostFunctions,
 * so optimizers are backend-agnostic. Every run records the traversed
 * path -- the paper's Figs. 2, 11 and 13 are views of this path -- and
 * the number of cost queries (Table 6's headline metric).
 */

#ifndef OSCAR_OPTIMIZE_OPTIMIZER_H
#define OSCAR_OPTIMIZE_OPTIMIZER_H

#include <string>
#include <vector>

#include "src/backend/engine.h"
#include "src/backend/executor.h"

namespace oscar {

/** Outcome of one optimization run. */
struct OptimizerResult
{
    std::vector<double> bestParams;
    double bestValue = 0.0;

    /** Iterations executed (optimizer steps, not cost queries). */
    std::size_t iterations = 0;

    /** Cost-function queries consumed by this run. */
    std::size_t numQueries = 0;

    /** Whether the tolerance-based stop condition triggered. */
    bool converged = false;

    /** Parameter iterates, including the initial point. */
    std::vector<std::vector<double>> path;
};

/** Abstract minimizer. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Short identifier such as "adam" or "cobyla". */
    virtual std::string name() const = 0;

    /** Minimize the cost starting at `initial`. */
    virtual OptimizerResult minimize(CostFunction& cost,
                                     const std::vector<double>& initial) = 0;

    /**
     * Engine for the optimizer's batchable evaluations (gradient
     * probes, simplex construction, shrink steps). Null = the cost's
     * own serial batch path. Not owned.
     */
    void setEngine(ExecutionEngine* engine) { engine_ = engine; }

    ExecutionEngine* engine() const { return engine_; }

  protected:
    /** Evaluate a batch of candidate points through the engine. */
    std::vector<double>
    evalBatch(CostFunction& cost,
              const std::vector<std::vector<double>>& points) const
    {
        return ExecutionEngine::engineOr(engine_).evaluate(cost, points);
    }

  private:
    ExecutionEngine* engine_ = nullptr;
};

/** Euclidean distance between two parameter vectors. */
double paramDistance(const std::vector<double>& a,
                     const std::vector<double>& b);

} // namespace oscar

#endif // OSCAR_OPTIMIZE_OPTIMIZER_H
