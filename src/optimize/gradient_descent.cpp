#include "src/optimize/gradient_descent.h"

#include <cmath>

#include "src/optimize/adam.h"

namespace oscar {

GradientDescent::GradientDescent(GradientDescentOptions options)
    : options_(options)
{
}

OptimizerResult
GradientDescent::minimize(CostFunction& cost,
                          const std::vector<double>& initial)
{
    const std::size_t start_queries = cost.numQueries();
    OptimizerResult result;
    std::vector<double> theta = initial;
    result.path.push_back(theta);

    double best = cost.evaluate(theta);
    std::vector<double> best_theta = theta;

    for (std::size_t iter = 1; iter <= options_.maxIterations; ++iter) {
        const auto grad =
            finiteDifferenceGradient(cost, theta, options_.fdStep,
                                     engine());
        double grad_norm = 0.0;
        for (double g : grad)
            grad_norm += g * g;
        grad_norm = std::sqrt(grad_norm);

        for (std::size_t i = 0; i < theta.size(); ++i)
            theta[i] -= options_.learningRate * grad[i];
        result.path.push_back(theta);
        result.iterations = iter;

        const double value = cost.evaluate(theta);
        if (value < best) {
            best = value;
            best_theta = theta;
        }
        if (grad_norm < options_.gradientTolerance) {
            result.converged = true;
            break;
        }
    }

    result.bestParams = best_theta;
    result.bestValue = best;
    result.numQueries = cost.numQueries() - start_queries;
    return result;
}

} // namespace oscar
