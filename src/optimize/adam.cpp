#include "src/optimize/adam.h"

#include <cmath>

namespace oscar {

std::vector<double>
finiteDifferenceGradient(CostFunction& cost, const std::vector<double>& at,
                         double step, ExecutionEngine* engine)
{
    // One batch of all 2 * dim probes: [x + s e_0, x - s e_0, ...].
    std::vector<std::vector<double>> probes;
    probes.reserve(2 * at.size());
    for (std::size_t i = 0; i < at.size(); ++i) {
        probes.push_back(at);
        probes.back()[i] = at[i] + step;
        probes.push_back(at);
        probes.back()[i] = at[i] - step;
    }
    const std::vector<double> values =
        ExecutionEngine::engineOr(engine).evaluate(cost, probes);

    std::vector<double> grad(at.size());
    for (std::size_t i = 0; i < at.size(); ++i)
        grad[i] = (values[2 * i] - values[2 * i + 1]) / (2.0 * step);
    return grad;
}

Adam::Adam(AdamOptions options)
    : options_(options)
{
}

OptimizerResult
Adam::minimize(CostFunction& cost, const std::vector<double>& initial)
{
    const std::size_t dim = initial.size();
    const std::size_t start_queries = cost.numQueries();

    OptimizerResult result;
    std::vector<double> theta = initial;
    std::vector<double> m(dim, 0.0), v(dim, 0.0);
    result.path.push_back(theta);

    double best = cost.evaluate(theta);
    std::vector<double> best_theta = theta;

    for (std::size_t iter = 1; iter <= options_.maxIterations; ++iter) {
        const auto grad =
            finiteDifferenceGradient(cost, theta, options_.fdStep,
                                     engine());

        double grad_norm = 0.0;
        for (double g : grad)
            grad_norm += g * g;
        grad_norm = std::sqrt(grad_norm);

        for (std::size_t i = 0; i < dim; ++i) {
            m[i] = options_.beta1 * m[i] + (1.0 - options_.beta1) * grad[i];
            v[i] = options_.beta2 * v[i] +
                   (1.0 - options_.beta2) * grad[i] * grad[i];
            const double m_hat =
                m[i] / (1.0 - std::pow(options_.beta1,
                                       static_cast<double>(iter)));
            const double v_hat =
                v[i] / (1.0 - std::pow(options_.beta2,
                                       static_cast<double>(iter)));
            theta[i] -= options_.learningRate * m_hat /
                        (std::sqrt(v_hat) + options_.epsilon);
        }
        result.path.push_back(theta);
        result.iterations = iter;

        const double value = cost.evaluate(theta);
        if (value < best) {
            best = value;
            best_theta = theta;
        }
        if (grad_norm < options_.gradientTolerance) {
            result.converged = true;
            break;
        }
    }

    result.bestParams = best_theta;
    result.bestValue = best;
    result.numQueries = cost.numQueries() - start_queries;
    return result;
}

} // namespace oscar
