/**
 * @file
 * COBYLA-style gradient-free trust-region minimizer.
 *
 * Powell's COBYLA builds linear interpolation models over a simplex of
 * n+1 points and minimizes them inside a shrinking trust region. This
 * implementation follows that skeleton for the unconstrained case
 * (the paper's use never adds constraints): interpolate a linear
 * model through the current simplex, step to the model minimizer on
 * the trust-region boundary, accept on improvement, shrink otherwise.
 * Like COBYLA, it converges in tens of queries on smooth 2-D QAOA
 * landscapes (cf. Table 6's ~40 queries). See DESIGN.md substitution
 * #5.
 */

#ifndef OSCAR_OPTIMIZE_COBYLA_H
#define OSCAR_OPTIMIZE_COBYLA_H

#include "src/optimize/optimizer.h"

namespace oscar {

/** Cobyla configuration. */
struct CobylaOptions
{
    double rhoBegin = 0.15; ///< initial trust-region radius
    double rhoEnd = 1e-4;   ///< stopping radius
    std::size_t maxIterations = 500;
};

/** Linear-approximation trust-region minimizer. */
class Cobyla : public Optimizer
{
  public:
    explicit Cobyla(CobylaOptions options = {});

    std::string name() const override { return "cobyla"; }

    OptimizerResult minimize(CostFunction& cost,
                             const std::vector<double>& initial) override;

  private:
    CobylaOptions options_;
};

} // namespace oscar

#endif // OSCAR_OPTIMIZE_COBYLA_H
