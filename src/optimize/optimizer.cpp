#include "src/optimize/optimizer.h"

#include <cassert>
#include <cmath>

namespace oscar {

double
paramDistance(const std::vector<double>& a, const std::vector<double>& b)
{
    assert(a.size() == b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(acc);
}

} // namespace oscar
