#include "src/parallel/ncm.h"

#include <stdexcept>

namespace oscar {

NoiseCompensationModel
NoiseCompensationModel::train(const std::vector<double>& secondary,
                              const std::vector<double>& reference)
{
    if (secondary.size() != reference.size() || secondary.size() < 2)
        throw std::invalid_argument(
            "NoiseCompensationModel::train: need >= 2 paired samples");
    return NoiseCompensationModel(fitLinear(secondary, reference));
}

NoiseCompensationModel
NoiseCompensationModel::trainOnDevices(const GridSpec& grid,
                                       QpuDevice& reference,
                                       QpuDevice& secondary,
                                       double train_fraction, Rng& rng)
{
    const auto indices =
        chooseSampleIndices(grid.numPoints(), train_fraction, rng);
    if (indices.size() < 2)
        throw std::invalid_argument(
            "NoiseCompensationModel::trainOnDevices: too few samples");
    std::vector<double> ref_vals, sec_vals;
    ref_vals.reserve(indices.size());
    sec_vals.reserve(indices.size());
    for (std::size_t idx : indices) {
        const auto params = grid.pointAt(idx);
        ref_vals.push_back(reference.cost->evaluate(params));
        sec_vals.push_back(secondary.cost->evaluate(params));
    }
    return train(sec_vals, ref_vals);
}

SampleSet
NoiseCompensationModel::transform(SampleSet samples) const
{
    for (double& v : samples.values)
        v = fit_(v);
    return samples;
}

} // namespace oscar
