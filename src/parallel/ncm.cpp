#include "src/parallel/ncm.h"

#include <stdexcept>

namespace oscar {

NoiseCompensationModel
NoiseCompensationModel::train(const std::vector<double>& secondary,
                              const std::vector<double>& reference)
{
    if (secondary.size() != reference.size() || secondary.size() < 2)
        throw std::invalid_argument(
            "NoiseCompensationModel::train: need >= 2 paired samples");
    return NoiseCompensationModel(fitLinear(secondary, reference));
}

NoiseCompensationModel
NoiseCompensationModel::trainOnDevices(const GridSpec& grid,
                                       QpuDevice& reference,
                                       QpuDevice& secondary,
                                       double train_fraction, Rng& rng,
                                       ExecutionEngine* engine,
                                       BatchStats* stats)
{
    const auto indices =
        chooseSampleIndices(grid.numPoints(), train_fraction, rng);
    if (indices.size() < 2)
        throw std::invalid_argument(
            "NoiseCompensationModel::trainOnDevices: too few samples");
    // Both devices' training batches fly at once: the engine overlaps
    // them on its worker pool instead of idling one device while the
    // other trains. Values are unchanged (independent evaluators,
    // device-local submission order).
    GridBatch ref = submitGridIndices(grid, *reference.cost, indices,
                                      engine);
    GridBatch sec = submitGridIndices(grid, *secondary.cost, indices,
                                      engine);
    const std::vector<double> ref_values = ref.collect();
    const std::vector<double> sec_values = sec.collect();
    if (stats) {
        *stats += ref.handle.stats();
        *stats += sec.handle.stats();
    }
    return train(sec_values, ref_values);
}

SampleSet
NoiseCompensationModel::transform(SampleSet samples) const
{
    for (double& v : samples.values)
        v = fit_(v);
    return samples;
}

} // namespace oscar
