#include "src/parallel/ncm.h"

#include <stdexcept>

namespace oscar {

NoiseCompensationModel
NoiseCompensationModel::train(const std::vector<double>& secondary,
                              const std::vector<double>& reference)
{
    if (secondary.size() != reference.size() || secondary.size() < 2)
        throw std::invalid_argument(
            "NoiseCompensationModel::train: need >= 2 paired samples");
    return NoiseCompensationModel(fitLinear(secondary, reference));
}

NoiseCompensationModel
NoiseCompensationModel::trainOnDevices(const GridSpec& grid,
                                       QpuDevice& reference,
                                       QpuDevice& secondary,
                                       double train_fraction, Rng& rng,
                                       ExecutionEngine* engine)
{
    const auto indices =
        chooseSampleIndices(grid.numPoints(), train_fraction, rng);
    if (indices.size() < 2)
        throw std::invalid_argument(
            "NoiseCompensationModel::trainOnDevices: too few samples");
    const SampleSet ref =
        gatherCost(grid, *reference.cost, indices, engine);
    const SampleSet sec =
        gatherCost(grid, *secondary.cost, indices, engine);
    return train(sec.values, ref.values);
}

SampleSet
NoiseCompensationModel::transform(SampleSet samples) const
{
    for (double& v : samples.values)
        v = fit_(v);
    return samples;
}

} // namespace oscar
