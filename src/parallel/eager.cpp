#include "src/parallel/eager.h"

#include <stdexcept>

#include "src/common/stats.h"

namespace oscar {

EagerOutcome
eagerCutoff(const ParallelRunResult& run, double deadline)
{
    EagerOutcome outcome;
    outcome.deadline = deadline;
    outcome.retained = run.retainedBefore(deadline);
    outcome.dropped = run.samples.size() - outcome.retained.size();
    outcome.retainedFraction =
        run.samples.empty()
            ? 0.0
            : static_cast<double>(outcome.retained.size()) /
                  static_cast<double>(run.samples.size());
    outcome.fullMakespan = run.makespan;
    return outcome;
}

EagerOutcome
eagerCutoffQuantile(const ParallelRunResult& run, double quantile)
{
    if (run.samples.empty())
        throw std::invalid_argument("eagerCutoffQuantile: empty run");
    if (quantile <= 0.0 || quantile > 1.0)
        throw std::invalid_argument(
            "eagerCutoffQuantile: quantile out of (0, 1]");
    std::vector<double> times;
    times.reserve(run.samples.size());
    for (const ParallelSample& s : run.samples)
        times.push_back(s.completionTime);
    return eagerCutoff(run, stats::quantile(times, quantile));
}

} // namespace oscar
