#include "src/parallel/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oscar {

SampleSet
ParallelRunResult::retainedBefore(double deadline) const
{
    SampleSet set;
    for (const ParallelSample& s : samples) {
        if (s.completionTime <= deadline) {
            set.indices.push_back(s.index);
            set.values.push_back(s.value);
        }
    }
    return set;
}

SampleSet
ParallelRunResult::allSamples() const
{
    SampleSet set;
    for (const ParallelSample& s : samples) {
        set.indices.push_back(s.index);
        set.values.push_back(s.value);
    }
    return set;
}

SampleSet
ParallelRunResult::deviceSamples(std::size_t device) const
{
    SampleSet set;
    for (const ParallelSample& s : samples) {
        if (s.device == device) {
            set.indices.push_back(s.index);
            set.values.push_back(s.value);
        }
    }
    return set;
}

namespace {

/** One scheduled execution, in simulated execution order. */
struct ScheduledTask
{
    std::size_t position; ///< position into `indices`
    std::size_t device;
    double latency;
};

/**
 * Static policies: owner per position, latency drawn serially in
 * submission order (the legacy interleaved order, kept bit-identical
 * across engine thread counts and with earlier releases).
 */
std::vector<ScheduledTask>
scheduleStatic(const std::vector<std::size_t>& indices,
               std::vector<QpuDevice>& devices, Rng& rng, Assignment how,
               const std::vector<double>& fractions)
{
    std::vector<std::size_t> owner(indices.size());
    if (how == Assignment::RoundRobin) {
        for (std::size_t i = 0; i < indices.size(); ++i)
            owner[i] = i % devices.size();
    } else {
        if (fractions.size() != devices.size())
            throw std::invalid_argument(
                "runParallelSampling: fraction per device required");
        double total = 0.0;
        for (double f : fractions) {
            if (f < 0.0)
                throw std::invalid_argument(
                    "runParallelSampling: negative fraction");
            total += f;
        }
        if (std::abs(total - 1.0) > 1e-6)
            throw std::invalid_argument(
                "runParallelSampling: fractions must sum to 1");
        std::size_t cursor = 0;
        for (std::size_t d = 0; d < devices.size(); ++d) {
            std::size_t count = static_cast<std::size_t>(std::llround(
                fractions[d] * static_cast<double>(indices.size())));
            if (d + 1 == devices.size())
                count = indices.size() - cursor; // absorb rounding
            count = std::min(count, indices.size() - cursor);
            for (std::size_t i = 0; i < count; ++i)
                owner[cursor++] = d;
        }
    }

    std::vector<ScheduledTask> schedule;
    schedule.reserve(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        schedule.push_back(
            {i, owner[i], devices[owner[i]].latency.sample(rng)});
    return schedule;
}

/**
 * Group positions into runs sharing a circuit prefix: consecutive
 * points of the axis-major submission order that agree on every axis
 * but the fastest-varying one. Without a usable order hint, fall back
 * to contiguous blocks sized for a few pulls per device.
 */
std::vector<std::vector<std::size_t>>
prefixGroups(const GridSpec& grid, const QpuDevice& reference,
             const std::vector<std::size_t>& indices,
             std::size_t num_devices)
{
    std::vector<std::size_t> order(indices.size());
    std::size_t fastest = 0;
    bool hinted = false;
    if (reference.cost) {
        const std::vector<int> hint = reference.cost->batchOrderHint();
        if (!hint.empty() &&
            grid.rank() ==
                static_cast<std::size_t>(reference.cost->numParams())) {
            order = grid.prefixFriendlyPermutation(indices, hint);
            // Effective axis order appends unnamed axes, ascending, as
            // the fastest digits; the grouping key drops the fastest.
            std::vector<bool> named(grid.rank(), false);
            for (int a : hint)
                named[static_cast<std::size_t>(a)] = true;
            fastest = static_cast<std::size_t>(hint.back());
            for (std::size_t a = 0; a < grid.rank(); ++a) {
                if (!named[a])
                    fastest = a;
            }
            hinted = true;
        }
    }

    std::vector<std::vector<std::size_t>> groups;
    if (!hinted) {
        // No prefix structure to exploit: contiguous blocks, about
        // four pulls per device so faster devices can still grab more.
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        const std::size_t block = std::max<std::size_t>(
            1, (indices.size() + 4 * num_devices - 1) /
                   (4 * num_devices));
        for (std::size_t lo = 0; lo < order.size(); lo += block) {
            const std::size_t hi = std::min(order.size(), lo + block);
            groups.emplace_back(order.begin() + lo, order.begin() + hi);
        }
        return groups;
    }

    std::vector<std::size_t> prev_key;
    for (std::size_t pos : order) {
        std::vector<std::size_t> key = grid.coordsAt(indices[pos]);
        key.erase(key.begin() + static_cast<std::ptrdiff_t>(fastest));
        if (groups.empty() || key != prev_key)
            groups.emplace_back();
        groups.back().push_back(pos);
        prev_key = std::move(key);
    }
    return groups;
}

/**
 * Pull-based scheduling: whenever a device falls idle in simulated
 * time it pulls the next prefix group off the shared queue. Latency
 * draws consume `rng` in pull order; the simulation is serial, so the
 * schedule is deterministic for any engine thread count.
 */
std::vector<ScheduledTask>
schedulePull(const GridSpec& grid,
             const std::vector<std::size_t>& indices,
             std::vector<QpuDevice>& devices, Rng& rng)
{
    const auto groups =
        prefixGroups(grid, devices.front(), indices, devices.size());
    std::vector<double> clock(devices.size(), 0.0);
    std::vector<ScheduledTask> schedule;
    schedule.reserve(indices.size());
    for (const auto& group : groups) {
        std::size_t d = 0;
        for (std::size_t k = 1; k < clock.size(); ++k) {
            if (clock[k] < clock[d])
                d = k;
        }
        for (std::size_t pos : group) {
            const double latency = devices[d].latency.sample(rng);
            clock[d] += latency;
            schedule.push_back({pos, d, latency});
        }
    }
    return schedule;
}

} // namespace

ParallelRunResult
runParallelSampling(const GridSpec& grid, std::vector<QpuDevice>& devices,
                    const std::vector<std::size_t>& indices, Rng& rng,
                    Assignment how, const std::vector<double>& fractions,
                    ExecutionEngine* engine)
{
    if (devices.empty())
        throw std::invalid_argument("runParallelSampling: no devices");

    const std::vector<ScheduledTask> schedule =
        how == Assignment::PrefixPull
            ? schedulePull(grid, indices, devices, rng)
            : scheduleStatic(indices, devices, rng, how, fractions);

    ParallelRunResult result;
    result.samples.reserve(indices.size());
    result.perDeviceCounts.assign(devices.size(), 0);

    // Submit every device's share as one asynchronous batch, all
    // in flight together: the engine overlaps the simulated devices'
    // executions on its worker pool. Values land positionally, keyed
    // to the device-local submission (= schedule) order.
    std::vector<std::vector<std::size_t>> device_jobs(devices.size());
    for (const ScheduledTask& task : schedule)
        device_jobs[task.device].push_back(task.position);

    ExecutionEngine& eng = ExecutionEngine::engineOr(engine);
    std::vector<BatchHandle> handles(devices.size());
    for (std::size_t d = 0; d < devices.size(); ++d) {
        const std::vector<std::size_t>& jobs = device_jobs[d];
        if (jobs.empty())
            continue;
        handles[d] = eng.submitGenerated(
            *devices[d].cost, jobs.size(),
            [&grid, &indices, &jobs](std::size_t j) {
                return grid.pointAt(indices[jobs[j]]);
            });
    }

    std::vector<double> values(indices.size());
    for (std::size_t d = 0; d < devices.size(); ++d) {
        if (!handles[d].valid())
            continue;
        const std::vector<double> batch = handles[d].get();
        for (std::size_t j = 0; j < device_jobs[d].size(); ++j)
            values[device_jobs[d][j]] = batch[j];
        result.execStats += handles[d].stats();
    }

    // Each simulated device runs its jobs serially; devices run
    // concurrently. Completion times replay the schedule order.
    std::vector<double> device_clock(devices.size(), 0.0);
    for (const ScheduledTask& task : schedule) {
        device_clock[task.device] += task.latency;
        result.samples.push_back({indices[task.position],
                                  values[task.position], task.device,
                                  device_clock[task.device]});
        ++result.perDeviceCounts[task.device];
    }
    result.makespan =
        *std::max_element(device_clock.begin(), device_clock.end());
    return result;
}

} // namespace oscar
