#include "src/parallel/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oscar {

SampleSet
ParallelRunResult::retainedBefore(double deadline) const
{
    SampleSet set;
    for (const ParallelSample& s : samples) {
        if (s.completionTime <= deadline) {
            set.indices.push_back(s.index);
            set.values.push_back(s.value);
        }
    }
    return set;
}

SampleSet
ParallelRunResult::allSamples() const
{
    SampleSet set;
    for (const ParallelSample& s : samples) {
        set.indices.push_back(s.index);
        set.values.push_back(s.value);
    }
    return set;
}

SampleSet
ParallelRunResult::deviceSamples(std::size_t device) const
{
    SampleSet set;
    for (const ParallelSample& s : samples) {
        if (s.device == device) {
            set.indices.push_back(s.index);
            set.values.push_back(s.value);
        }
    }
    return set;
}

ParallelRunResult
runParallelSampling(const GridSpec& grid, std::vector<QpuDevice>& devices,
                    const std::vector<std::size_t>& indices, Rng& rng,
                    Assignment how, const std::vector<double>& fractions)
{
    if (devices.empty())
        throw std::invalid_argument("runParallelSampling: no devices");

    // Assign each sample to a device.
    std::vector<std::size_t> owner(indices.size());
    if (how == Assignment::RoundRobin) {
        for (std::size_t i = 0; i < indices.size(); ++i)
            owner[i] = i % devices.size();
    } else {
        if (fractions.size() != devices.size())
            throw std::invalid_argument(
                "runParallelSampling: fraction per device required");
        double total = 0.0;
        for (double f : fractions) {
            if (f < 0.0)
                throw std::invalid_argument(
                    "runParallelSampling: negative fraction");
            total += f;
        }
        if (std::abs(total - 1.0) > 1e-6)
            throw std::invalid_argument(
                "runParallelSampling: fractions must sum to 1");
        std::size_t cursor = 0;
        for (std::size_t d = 0; d < devices.size(); ++d) {
            std::size_t count = static_cast<std::size_t>(std::llround(
                fractions[d] * static_cast<double>(indices.size())));
            if (d + 1 == devices.size())
                count = indices.size() - cursor; // absorb rounding
            count = std::min(count, indices.size() - cursor);
            for (std::size_t i = 0; i < count; ++i)
                owner[cursor++] = d;
        }
    }

    ParallelRunResult result;
    result.samples.reserve(indices.size());
    result.perDeviceCounts.assign(devices.size(), 0);

    // Each device runs its jobs serially; devices run concurrently.
    std::vector<double> device_clock(devices.size(), 0.0);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::size_t d = owner[i];
        QpuDevice& dev = devices[d];
        const auto params = grid.pointAt(indices[i]);
        const double value = dev.cost->evaluate(params);
        device_clock[d] += dev.latency.sample(rng);
        result.samples.push_back(
            {indices[i], value, d, device_clock[d]});
        ++result.perDeviceCounts[d];
    }
    result.makespan =
        *std::max_element(device_clock.begin(), device_clock.end());
    return result;
}

} // namespace oscar
