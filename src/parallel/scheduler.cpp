#include "src/parallel/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oscar {

SampleSet
ParallelRunResult::retainedBefore(double deadline) const
{
    SampleSet set;
    for (const ParallelSample& s : samples) {
        if (s.completionTime <= deadline) {
            set.indices.push_back(s.index);
            set.values.push_back(s.value);
        }
    }
    return set;
}

SampleSet
ParallelRunResult::allSamples() const
{
    SampleSet set;
    for (const ParallelSample& s : samples) {
        set.indices.push_back(s.index);
        set.values.push_back(s.value);
    }
    return set;
}

SampleSet
ParallelRunResult::deviceSamples(std::size_t device) const
{
    SampleSet set;
    for (const ParallelSample& s : samples) {
        if (s.device == device) {
            set.indices.push_back(s.index);
            set.values.push_back(s.value);
        }
    }
    return set;
}

ParallelRunResult
runParallelSampling(const GridSpec& grid, std::vector<QpuDevice>& devices,
                    const std::vector<std::size_t>& indices, Rng& rng,
                    Assignment how, const std::vector<double>& fractions,
                    ExecutionEngine* engine)
{
    if (devices.empty())
        throw std::invalid_argument("runParallelSampling: no devices");

    // Assign each sample to a device.
    std::vector<std::size_t> owner(indices.size());
    if (how == Assignment::RoundRobin) {
        for (std::size_t i = 0; i < indices.size(); ++i)
            owner[i] = i % devices.size();
    } else {
        if (fractions.size() != devices.size())
            throw std::invalid_argument(
                "runParallelSampling: fraction per device required");
        double total = 0.0;
        for (double f : fractions) {
            if (f < 0.0)
                throw std::invalid_argument(
                    "runParallelSampling: negative fraction");
            total += f;
        }
        if (std::abs(total - 1.0) > 1e-6)
            throw std::invalid_argument(
                "runParallelSampling: fractions must sum to 1");
        std::size_t cursor = 0;
        for (std::size_t d = 0; d < devices.size(); ++d) {
            std::size_t count = static_cast<std::size_t>(std::llround(
                fractions[d] * static_cast<double>(indices.size())));
            if (d + 1 == devices.size())
                count = indices.size() - cursor; // absorb rounding
            count = std::min(count, indices.size() - cursor);
            for (std::size_t i = 0; i < count; ++i)
                owner[cursor++] = d;
        }
    }

    ParallelRunResult result;
    result.samples.reserve(indices.size());
    result.perDeviceCounts.assign(devices.size(), 0);

    // Latency draws consume `rng` serially in submission order, so the
    // simulated timing is independent of the engine's thread count.
    std::vector<double> latency(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        latency[i] = devices[owner[i]].latency.sample(rng);

    // Submit each device's share as one batch to the engine. Values
    // land positionally, keyed to the device-local submission order.
    std::vector<std::vector<std::size_t>> device_jobs(devices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        device_jobs[owner[i]].push_back(i);

    std::vector<double> values(indices.size());
    ExecutionEngine& eng = ExecutionEngine::engineOr(engine);
    for (std::size_t d = 0; d < devices.size(); ++d) {
        const std::vector<std::size_t>& jobs = device_jobs[d];
        if (jobs.empty())
            continue;
        const std::vector<double> batch = eng.evaluateGenerated(
            *devices[d].cost, jobs.size(),
            [&grid, &indices, &jobs](std::size_t j) {
                return grid.pointAt(indices[jobs[j]]);
            });
        for (std::size_t j = 0; j < jobs.size(); ++j)
            values[jobs[j]] = batch[j];
    }

    // Each simulated device runs its jobs serially; devices run
    // concurrently. Completion times replay the submission order.
    std::vector<double> device_clock(devices.size(), 0.0);
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const std::size_t d = owner[i];
        device_clock[d] += latency[i];
        result.samples.push_back(
            {indices[i], values[i], d, device_clock[d]});
        ++result.perDeviceCounts[d];
    }
    result.makespan =
        *std::max_element(device_clock.begin(), device_clock.end());
    return result;
}

} // namespace oscar
