#include "src/parallel/latency_model.h"

#include <cmath>

namespace oscar {

double
LatencyModel::sample(Rng& rng) const
{
    double exec = execMedian;
    if (tailSigma > 0.0)
        exec = rng.lognormal(std::log(execMedian), tailSigma);
    return queueDelay + exec;
}

} // namespace oscar
