/**
 * @file
 * Parallel sampling scheduler (paper Fig. 7A).
 *
 * OSCAR's samples are independent, so they can run on k QPUs at once.
 * The scheduler assigns sample points to devices, executes each
 * device's share serially (a device processes one job at a time) and
 * records per-sample completion timestamps, which downstream consumers
 * use for makespan/speedup accounting and for eager reconstruction.
 */

#ifndef OSCAR_PARALLEL_SCHEDULER_H
#define OSCAR_PARALLEL_SCHEDULER_H

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/landscape/grid.h"
#include "src/landscape/sampler.h"
#include "src/parallel/qpu.h"

namespace oscar {

/** How sample points are split across devices. */
enum class Assignment
{
    RoundRobin,
    /** First `fractions[d]` share of samples to device d, in order. */
    FractionSplit,
};

/** One executed sample. */
struct ParallelSample
{
    std::size_t index;       ///< flat grid index
    double value;            ///< measured cost on the assigned device
    std::size_t device;      ///< device that ran it
    double completionTime;   ///< simulated wall-clock completion
};

/** Result of a parallel sampling run. */
struct ParallelRunResult
{
    std::vector<ParallelSample> samples;

    /** Wall-clock time at which the last sample finished. */
    double makespan = 0.0;

    /** Number of samples each device executed. */
    std::vector<std::size_t> perDeviceCounts;

    /** Drop everything finishing after `deadline`. */
    SampleSet retainedBefore(double deadline) const;

    /** All samples as a SampleSet (order of execution). */
    SampleSet allSamples() const;

    /** Samples executed by one device. */
    SampleSet deviceSamples(std::size_t device) const;
};

/**
 * Execute the given grid points across devices.
 *
 * @param grid      parameter grid
 * @param devices   simulated QPUs (non-empty)
 * @param indices   flat grid indices to evaluate
 * @param rng       randomness for latency draws
 * @param how       assignment policy
 * @param fractions per-device shares for FractionSplit (must sum ~1)
 */
ParallelRunResult runParallelSampling(
    const GridSpec& grid, std::vector<QpuDevice>& devices,
    const std::vector<std::size_t>& indices, Rng& rng,
    Assignment how = Assignment::RoundRobin,
    const std::vector<double>& fractions = {});

} // namespace oscar

#endif // OSCAR_PARALLEL_SCHEDULER_H
