/**
 * @file
 * Parallel sampling scheduler (paper Fig. 7A).
 *
 * OSCAR's samples are independent, so they can run on k QPUs at once.
 * The scheduler assigns sample points to devices and submits each
 * device's share as one batch to the ExecutionEngine (the simulated
 * device still processes one job at a time for *timing* purposes, so
 * completion timestamps and makespans are unchanged). Latency draws
 * are made serially up front in the legacy interleaved order, and
 * evaluation randomness is ordinal-keyed, so a run is bit-identical
 * for any engine thread count. Downstream consumers use the
 * per-sample completion timestamps for makespan/speedup accounting
 * and for eager reconstruction.
 */

#ifndef OSCAR_PARALLEL_SCHEDULER_H
#define OSCAR_PARALLEL_SCHEDULER_H

#include <cstddef>
#include <vector>

#include "src/backend/engine.h"
#include "src/common/rng.h"
#include "src/landscape/grid.h"
#include "src/landscape/sampler.h"
#include "src/parallel/qpu.h"

namespace oscar {

/** How sample points are split across devices. */
enum class Assignment
{
    RoundRobin,
    /** First `fractions[d]` share of samples to device d, in order. */
    FractionSplit,
};

/** One executed sample. */
struct ParallelSample
{
    std::size_t index;       ///< flat grid index
    double value;            ///< measured cost on the assigned device
    std::size_t device;      ///< device that ran it
    double completionTime;   ///< simulated wall-clock completion
};

/** Result of a parallel sampling run. */
struct ParallelRunResult
{
    std::vector<ParallelSample> samples;

    /** Wall-clock time at which the last sample finished. */
    double makespan = 0.0;

    /** Number of samples each device executed. */
    std::vector<std::size_t> perDeviceCounts;

    /** Drop everything finishing after `deadline`. */
    SampleSet retainedBefore(double deadline) const;

    /** All samples as a SampleSet (order of execution). */
    SampleSet allSamples() const;

    /** Samples executed by one device. */
    SampleSet deviceSamples(std::size_t device) const;
};

/**
 * Execute the given grid points across devices.
 *
 * @param grid      parameter grid
 * @param devices   simulated QPUs (non-empty)
 * @param indices   flat grid indices to evaluate
 * @param rng       randomness for latency draws
 * @param how       assignment policy
 * @param fractions per-device shares for FractionSplit (must sum ~1)
 * @param engine    execution engine for the per-device batches
 *                  (serial when null)
 */
ParallelRunResult runParallelSampling(
    const GridSpec& grid, std::vector<QpuDevice>& devices,
    const std::vector<std::size_t>& indices, Rng& rng,
    Assignment how = Assignment::RoundRobin,
    const std::vector<double>& fractions = {},
    ExecutionEngine* engine = nullptr);

} // namespace oscar

#endif // OSCAR_PARALLEL_SCHEDULER_H
