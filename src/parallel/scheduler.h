/**
 * @file
 * Parallel sampling scheduler (paper Fig. 7A).
 *
 * OSCAR's samples are independent, so they can run on k QPUs at once.
 * The scheduler assigns sample points to devices -- statically
 * (RoundRobin / FractionSplit) or by a pull-based shared task queue
 * with prefix-aware placement (PrefixPull) -- and submits every
 * device's share as one asynchronous batch to the ExecutionEngine, so
 * all simulated devices execute concurrently on the worker pool (the
 * simulated device still processes one job at a time for *timing*
 * purposes, so completion timestamps and makespans are unchanged).
 *
 * Determinism: latency draws consume `rng` serially in a fixed order
 * (submission order for the static policies, pull order for
 * PrefixPull), and evaluation randomness is ordinal-keyed per device
 * cost, so a run is bit-identical for any engine thread count.
 * Downstream consumers use the per-sample completion timestamps for
 * makespan/speedup accounting and for eager reconstruction.
 */

#ifndef OSCAR_PARALLEL_SCHEDULER_H
#define OSCAR_PARALLEL_SCHEDULER_H

#include <cstddef>
#include <vector>

#include "src/backend/engine.h"
#include "src/common/rng.h"
#include "src/landscape/grid.h"
#include "src/landscape/sampler.h"
#include "src/parallel/qpu.h"

namespace oscar {

/** How sample points are split across devices. */
enum class Assignment
{
    RoundRobin,
    /** First `fractions[d]` share of samples to device d, in order. */
    FractionSplit,
    /**
     * Pull-based shared task queue with prefix-aware placement: the
     * samples are grouped into runs sharing a circuit prefix (the
     * leading axes of the reference device's batch order hint), and
     * whenever a device falls idle in simulated time it pulls the next
     * whole group. Same-prefix points therefore land on the same
     * device -- each device's PrefixCache stays hot -- while load
     * balances by actual device speed instead of a static split.
     * Per-device shares become latency-dependent, so `fractions` is
     * ignored.
     */
    PrefixPull,
};

/** One executed sample. */
struct ParallelSample
{
    std::size_t index;       ///< flat grid index
    double value;            ///< measured cost on the assigned device
    std::size_t device;      ///< device that ran it
    double completionTime;   ///< simulated wall-clock completion
};

/** Result of a parallel sampling run. */
struct ParallelRunResult
{
    /** Executed samples, in simulated execution order. */
    std::vector<ParallelSample> samples;

    /** Wall-clock time at which the last sample finished. */
    double makespan = 0.0;

    /** Number of samples each device executed. */
    std::vector<std::size_t> perDeviceCounts;

    /** Execution counters summed over every device's batch. */
    BatchStats execStats;

    /** Drop everything finishing after `deadline`. */
    SampleSet retainedBefore(double deadline) const;

    /** All samples as a SampleSet (order of execution). */
    SampleSet allSamples() const;

    /** Samples executed by one device. */
    SampleSet deviceSamples(std::size_t device) const;
};

/**
 * Execute the given grid points across devices.
 *
 * @param grid      parameter grid
 * @param devices   simulated QPUs (non-empty)
 * @param indices   flat grid indices to evaluate
 * @param rng       randomness for latency draws
 * @param how       assignment policy
 * @param fractions per-device shares for FractionSplit (must sum ~1)
 * @param engine    execution engine the per-device batches are
 *                  submitted to asynchronously (serial when null)
 */
ParallelRunResult runParallelSampling(
    const GridSpec& grid, std::vector<QpuDevice>& devices,
    const std::vector<std::size_t>& indices, Rng& rng,
    Assignment how = Assignment::RoundRobin,
    const std::vector<double>& fractions = {},
    ExecutionEngine* engine = nullptr);

} // namespace oscar

#endif // OSCAR_PARALLEL_SCHEDULER_H
