/**
 * @file
 * Eager reconstruction (paper Section 5.2).
 *
 * Even with k QPUs, Amdahl's law says the straggler jobs bound the
 * makespan -- and cloud QPUs exhibit 10x-30x tail latencies. Eager
 * reconstruction sets a soft timeout, reconstructs from whatever
 * samples have completed by then, and relies on the flat
 * accuracy-vs-sampling-fraction tradeoff to lose almost nothing:
 * dropping the tail turns a straggler-bound makespan into a
 * timeout-bound one.
 */

#ifndef OSCAR_PARALLEL_EAGER_H
#define OSCAR_PARALLEL_EAGER_H

#include <cstddef>

#include "src/parallel/scheduler.h"

namespace oscar {

/** Outcome of applying an eager timeout to a parallel run. */
struct EagerOutcome
{
    /** Samples that completed before the deadline. */
    SampleSet retained;

    /** The applied deadline (absolute simulated time). */
    double deadline = 0.0;

    /** Samples dropped as stragglers. */
    std::size_t dropped = 0;

    /** Fraction of requested samples retained. */
    double retainedFraction = 0.0;

    /** Makespan without eager reconstruction (last straggler). */
    double fullMakespan = 0.0;
};

/** Apply an absolute deadline to a completed parallel run. */
EagerOutcome eagerCutoff(const ParallelRunResult& run, double deadline);

/**
 * Choose the deadline as the completion time of the q-th quantile
 * sample (e.g. q = 0.9 drops the slowest 10%).
 */
EagerOutcome eagerCutoffQuantile(const ParallelRunResult& run,
                                 double quantile);

} // namespace oscar

#endif // OSCAR_PARALLEL_EAGER_H
