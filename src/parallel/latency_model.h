/**
 * @file
 * Queuing and execution latency model for cloud QPUs.
 *
 * The paper's parallel mode (Section 5) is motivated by queuing delays
 * spanning hours-to-days on public QPUs [Ravi et al., IISWC'21] and by
 * 10x-30x tail latencies observed during their evaluation. We model
 * per-job latency as
 *     queue_delay + Lognormal(ln(exec_median), tail_sigma),
 * which produces exactly that heavy-tailed behaviour: tail_sigma ~ 1.2
 * gives p99/median ratios in the paper's 10-30x range.
 */

#ifndef OSCAR_PARALLEL_LATENCY_MODEL_H
#define OSCAR_PARALLEL_LATENCY_MODEL_H

#include "src/common/rng.h"

namespace oscar {

/** Heavy-tailed per-job latency distribution. */
struct LatencyModel
{
    /** Fixed queue wait added to every job (seconds). */
    double queueDelay = 0.0;

    /** Median execution latency of one landscape point (seconds). */
    double execMedian = 1.0;

    /** Lognormal sigma; 0 = deterministic, ~1.2 = heavy tail. */
    double tailSigma = 0.0;

    /** Draw one job latency. */
    double sample(Rng& rng) const;
};

} // namespace oscar

#endif // OSCAR_PARALLEL_LATENCY_MODEL_H
