// qpu.h is header-only; this translation unit anchors it in the library.
#include "src/parallel/qpu.h"
