/**
 * @file
 * Simulated QPU device: a named cost evaluator with its own noise
 * configuration and latency behaviour.
 *
 * This is the substitution for the paper's physical devices (IBM
 * Perth/Lagos, simulated QPU pairs): what the parallel-reconstruction
 * and NCM experiments require is several devices that (a) evaluate the
 * same circuit, (b) have systematically different noise, and (c) take
 * wall-clock time with queuing and tail latency. See DESIGN.md
 * substitution #1.
 */

#ifndef OSCAR_PARALLEL_QPU_H
#define OSCAR_PARALLEL_QPU_H

#include <memory>
#include <string>

#include "src/backend/executor.h"
#include "src/parallel/latency_model.h"
#include "src/quantum/noise_model.h"

namespace oscar {

/** One (simulated) quantum processing unit. */
struct QpuDevice
{
    std::string name;
    NoiseModel noise;
    std::shared_ptr<CostFunction> cost;
    LatencyModel latency;
};

} // namespace oscar

#endif // OSCAR_PARALLEL_QPU_H
