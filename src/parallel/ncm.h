/**
 * @file
 * Noise Compensation Model (paper Section 5.1, Fig. 7B/C).
 *
 * When samples come from QPUs with different noise levels, the
 * reconstructed landscape is an artificial mixture. The NCM fixes this
 * by learning an affine map from the secondary device's expectation
 * values to the reference device's, trained on a small set of grid
 * points executed on BOTH devices (the paper uses ~1% of the grid).
 * Transformed secondary samples then blend with reference samples
 * without masking the reference device's noise signature.
 *
 * Linear regression suffices because gate-level depolarizing noise
 * acts (to first order) as a contraction of expectation values toward
 * the maximally-mixed value -- an affine map per device, hence an
 * affine map between devices.
 */

#ifndef OSCAR_PARALLEL_NCM_H
#define OSCAR_PARALLEL_NCM_H

#include <vector>

#include "src/common/linear_regression.h"
#include "src/landscape/grid.h"
#include "src/landscape/sampler.h"
#include "src/parallel/qpu.h"

namespace oscar {

/** Affine map from a secondary QPU's values to a reference QPU's. */
class NoiseCompensationModel
{
  public:
    /**
     * Fit from paired observations of the same parameter points:
     * `secondary[i]` and `reference[i]` measured at identical params.
     */
    static NoiseCompensationModel train(
        const std::vector<double>& secondary,
        const std::vector<double>& reference);

    /**
     * Convenience: run `train_fraction` of the grid on both devices
     * and fit (this is the "1% training samples" of the paper). The
     * training points go through the engine as one asynchronous batch
     * per device, both in flight together. When `stats` is non-null,
     * the two batches' execution counters are accumulated into it
     * (Oscar::reconstructParallel folds them into
     * OscarResult::execution).
     */
    static NoiseCompensationModel trainOnDevices(
        const GridSpec& grid, QpuDevice& reference, QpuDevice& secondary,
        double train_fraction, Rng& rng, ExecutionEngine* engine = nullptr,
        BatchStats* stats = nullptr);

    /** Map one secondary-device value to the reference device. */
    double transform(double value) const { return fit_(value); }

    /** Map a whole sample set in place. */
    SampleSet transform(SampleSet samples) const;

    double slope() const { return fit_.slope; }
    double intercept() const { return fit_.intercept; }

  private:
    explicit NoiseCompensationModel(LinearFit fit)
        : fit_(fit)
    {
    }

    LinearFit fit_;
};

} // namespace oscar

#endif // OSCAR_PARALLEL_NCM_H
