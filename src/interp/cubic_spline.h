/**
 * @file
 * Natural cubic spline interpolation on a 1-D point set.
 *
 * Building block for the bicubic grid interpolator that OSCAR uses to
 * turn a reconstructed (discrete) landscape into a continuous cost
 * function for optimizers (paper Section 7: "rectangular bivariate
 * spline interpolation").
 */

#ifndef OSCAR_INTERP_CUBIC_SPLINE_H
#define OSCAR_INTERP_CUBIC_SPLINE_H

#include <cstddef>
#include <vector>

namespace oscar {

/** Natural cubic spline through strictly increasing knots. */
class CubicSpline
{
  public:
    /**
     * Construct from knot positions (strictly increasing, >= 2) and
     * values. With exactly two knots this degenerates to a line.
     */
    CubicSpline(std::vector<double> x, std::vector<double> y);

    /** Evaluate at t; outside the knot range extrapolates linearly. */
    double operator()(double t) const;

    /** First derivative at t. */
    double derivative(double t) const;

  private:
    std::size_t findSegment(double t) const;

    std::vector<double> x_;
    std::vector<double> y_;
    std::vector<double> m_; // second derivatives at knots
};

} // namespace oscar

#endif // OSCAR_INTERP_CUBIC_SPLINE_H
