/**
 * @file
 * Bicubic spline interpolation on a rectilinear 2-D grid.
 *
 * This is the library's equivalent of SciPy's RectBivariateSpline used
 * by the paper (Section 7) to make a reconstructed landscape
 * continuously queryable: optimizers then run against the interpolant
 * instead of the QPU, which answers "an optimizer function query in an
 * instant" (paper abstract).
 *
 * Construction precomputes one natural cubic spline per grid row
 * (along the column axis); each evaluation splines the per-row results
 * along the row axis.
 */

#ifndef OSCAR_INTERP_BICUBIC_H
#define OSCAR_INTERP_BICUBIC_H

#include <memory>
#include <vector>

#include "src/backend/executor.h"
#include "src/common/ndarray.h"
#include "src/interp/cubic_spline.h"
#include "src/landscape/landscape.h"

namespace oscar {

/** Tensor-product natural-spline interpolant over a 2-D grid. */
class BicubicSpline
{
  public:
    /**
     * @param row_coords grid values along axis 0 (size = values.dim(0))
     * @param col_coords grid values along axis 1 (size = values.dim(1))
     * @param values     2-D value array
     */
    BicubicSpline(std::vector<double> row_coords,
                  std::vector<double> col_coords, const NdArray& values);

    /** Interpolated value at (row coordinate, column coordinate). */
    double operator()(double r, double c) const;

  private:
    std::vector<double> rowCoords_;
    std::vector<CubicSpline> rowSplines_; // one per row, along columns
};

/**
 * Build the interpolant of a rank-2 landscape and expose it as a
 * CostFunction (parameter order = grid axis order). This is the
 * "optimize on the reconstructed landscape" evaluator of paper
 * Sections 7-8.
 *
 * Queries are clamped to the grid's bounding box: the reconstruction
 * is only defined there, and spline extrapolation would otherwise
 * hand optimizers an unbounded linear descent direction.
 */
class InterpolatedLandscapeCost : public CostFunction
{
  public:
    explicit InterpolatedLandscapeCost(const Landscape& landscape);

    int numParams() const override { return 2; }

    /** Replicable: spline evaluation is const after construction. */
    std::unique_ptr<CostFunction> clone() const override;

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    BicubicSpline spline_;
    double rowLo_, rowHi_, colLo_, colHi_;
};

} // namespace oscar

#endif // OSCAR_INTERP_BICUBIC_H
