/**
 * @file
 * Multilinear interpolation on an N-dimensional rectilinear grid.
 *
 * The bicubic interpolant (bicubic.h) covers the paper's rank-2
 * workflows; this module extends "optimize on the reconstruction" to
 * higher-rank landscapes such as the (b1, b2, g1, g2) grids of depth-2
 * QAOA: each query blends the 2^d surrounding grid values. Queries
 * are clamped to the grid box for the same reason as the bicubic
 * evaluator.
 */

#ifndef OSCAR_INTERP_MULTILINEAR_H
#define OSCAR_INTERP_MULTILINEAR_H

#include "src/backend/executor.h"
#include "src/landscape/landscape.h"

namespace oscar {

/** N-linear interpolant over a Landscape of any rank. */
class MultilinearInterpolator
{
  public:
    explicit MultilinearInterpolator(Landscape landscape);

    /** Interpolated value at an arbitrary (clamped) parameter point. */
    double operator()(const std::vector<double>& params) const;

    const Landscape& landscape() const { return landscape_; }

  private:
    Landscape landscape_;
};

/** CostFunction adapter over the multilinear interpolant. */
class MultilinearLandscapeCost : public CostFunction
{
  public:
    explicit MultilinearLandscapeCost(Landscape landscape);

    int numParams() const override
    {
        return static_cast<int>(
            interp_.landscape().grid().rank());
    }

    /** Replicable: interpolation is const after construction. */
    std::unique_ptr<CostFunction> clone() const override;

  protected:
    double evaluateImpl(const std::vector<double>& params,
                        std::uint64_t ordinal) override;

  private:
    MultilinearInterpolator interp_;
};

} // namespace oscar

#endif // OSCAR_INTERP_MULTILINEAR_H
