#include "src/interp/bicubic.h"

#include <algorithm>
#include <stdexcept>

namespace oscar {

BicubicSpline::BicubicSpline(std::vector<double> row_coords,
                             std::vector<double> col_coords,
                             const NdArray& values)
    : rowCoords_(std::move(row_coords))
{
    if (values.rank() != 2)
        throw std::invalid_argument("BicubicSpline: values must be rank 2");
    const std::size_t nr = values.dim(0);
    const std::size_t nc = values.dim(1);
    if (rowCoords_.size() != nr || col_coords.size() != nc)
        throw std::invalid_argument(
            "BicubicSpline: coordinate/value size mismatch");

    rowSplines_.reserve(nr);
    for (std::size_t r = 0; r < nr; ++r) {
        std::vector<double> row(nc);
        for (std::size_t c = 0; c < nc; ++c)
            row[c] = values[r * nc + c];
        rowSplines_.emplace_back(col_coords, std::move(row));
    }
}

double
BicubicSpline::operator()(double r, double c) const
{
    std::vector<double> column(rowSplines_.size());
    for (std::size_t i = 0; i < rowSplines_.size(); ++i)
        column[i] = rowSplines_[i](c);
    const CubicSpline cross(rowCoords_, std::move(column));
    return cross(r);
}

InterpolatedLandscapeCost::InterpolatedLandscapeCost(
    const Landscape& landscape)
    : spline_(landscape.grid().axisValues(0),
              landscape.grid().axisValues(1), landscape.values()),
      rowLo_(landscape.grid().axis(0).lo),
      rowHi_(landscape.grid().axis(0).hi),
      colLo_(landscape.grid().axis(1).lo),
      colHi_(landscape.grid().axis(1).hi)
{
    if (landscape.grid().rank() != 2)
        throw std::invalid_argument(
            "InterpolatedLandscapeCost: need a rank-2 landscape");
}

std::unique_ptr<CostFunction>
InterpolatedLandscapeCost::clone() const
{
    return std::make_unique<InterpolatedLandscapeCost>(*this);
}

double
InterpolatedLandscapeCost::evaluateImpl(const std::vector<double>& params,
                                        std::uint64_t /*ordinal*/)
{
    const double r = std::clamp(params[0], rowLo_, rowHi_);
    const double c = std::clamp(params[1], colLo_, colHi_);
    return spline_(r, c);
}

} // namespace oscar
