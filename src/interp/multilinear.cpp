#include "src/interp/multilinear.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oscar {

MultilinearInterpolator::MultilinearInterpolator(Landscape landscape)
    : landscape_(std::move(landscape))
{
}

double
MultilinearInterpolator::operator()(
    const std::vector<double>& params) const
{
    const GridSpec& grid = landscape_.grid();
    const std::size_t rank = grid.rank();
    if (params.size() != rank)
        throw std::invalid_argument(
            "MultilinearInterpolator: wrong parameter count");

    // Per axis: lower cell index and fractional position within it.
    std::vector<std::size_t> lower(rank);
    std::vector<double> frac(rank);
    for (std::size_t d = 0; d < rank; ++d) {
        const GridAxis& axis = grid.axis(d);
        if (axis.count == 1) {
            lower[d] = 0;
            frac[d] = 0.0;
            continue;
        }
        const double step =
            (axis.hi - axis.lo) / static_cast<double>(axis.count - 1);
        const double clamped = std::clamp(params[d], axis.lo, axis.hi);
        double pos = (clamped - axis.lo) / step;
        pos = std::min(pos, static_cast<double>(axis.count - 1));
        lower[d] = std::min(static_cast<std::size_t>(pos),
                            axis.count - 2);
        frac[d] = pos - static_cast<double>(lower[d]);
    }

    // Blend the 2^rank surrounding corners.
    double acc = 0.0;
    const std::size_t corners = std::size_t{1} << rank;
    std::vector<std::size_t> idx(rank);
    for (std::size_t corner = 0; corner < corners; ++corner) {
        double weight = 1.0;
        for (std::size_t d = 0; d < rank; ++d) {
            const bool upper = (corner >> d) & 1;
            if (upper && grid.axis(d).count == 1) {
                weight = 0.0;
                break;
            }
            idx[d] = lower[d] + (upper ? 1 : 0);
            weight *= upper ? frac[d] : (1.0 - frac[d]);
        }
        if (weight == 0.0)
            continue;
        acc += weight * landscape_.values()[
            landscape_.values().offset(idx)];
    }
    return acc;
}

MultilinearLandscapeCost::MultilinearLandscapeCost(Landscape landscape)
    : interp_(std::move(landscape))
{
}

std::unique_ptr<CostFunction>
MultilinearLandscapeCost::clone() const
{
    return std::make_unique<MultilinearLandscapeCost>(*this);
}

double
MultilinearLandscapeCost::evaluateImpl(const std::vector<double>& params,
                                       std::uint64_t /*ordinal*/)
{
    return interp_(params);
}

} // namespace oscar
