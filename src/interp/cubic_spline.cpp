#include "src/interp/cubic_spline.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace oscar {

CubicSpline::CubicSpline(std::vector<double> x, std::vector<double> y)
    : x_(std::move(x)), y_(std::move(y))
{
    const std::size_t n = x_.size();
    if (n < 2 || y_.size() != n)
        throw std::invalid_argument("CubicSpline: need >= 2 matching knots");
    for (std::size_t i = 1; i < n; ++i) {
        if (x_[i] <= x_[i - 1])
            throw std::invalid_argument("CubicSpline: knots not increasing");
    }

    // Natural spline: solve the tridiagonal system for the second
    // derivatives m with m_0 = m_{n-1} = 0 (Thomas algorithm).
    m_.assign(n, 0.0);
    if (n == 2)
        return;

    std::vector<double> diag(n, 0.0), upper(n, 0.0), rhs(n, 0.0);
    for (std::size_t i = 1; i + 1 < n; ++i) {
        const double h0 = x_[i] - x_[i - 1];
        const double h1 = x_[i + 1] - x_[i];
        diag[i] = 2.0 * (h0 + h1);
        upper[i] = h1;
        rhs[i] = 6.0 * ((y_[i + 1] - y_[i]) / h1 -
                        (y_[i] - y_[i - 1]) / h0);
    }
    // Forward sweep over interior rows (lower diagonal = h0).
    for (std::size_t i = 2; i + 1 < n; ++i) {
        const double h0 = x_[i] - x_[i - 1];
        const double w = h0 / diag[i - 1];
        diag[i] -= w * upper[i - 1];
        rhs[i] -= w * rhs[i - 1];
    }
    // Back substitution.
    for (std::size_t i = n - 2; i >= 1; --i) {
        m_[i] = (rhs[i] - upper[i] * m_[i + 1]) / diag[i];
        if (i == 1)
            break;
    }
}

std::size_t
CubicSpline::findSegment(double t) const
{
    // Segment i covers [x_i, x_{i+1}); clamp to the boundary segments.
    const auto it = std::upper_bound(x_.begin(), x_.end(), t);
    std::size_t i = static_cast<std::size_t>(it - x_.begin());
    if (i == 0)
        return 0;
    if (i >= x_.size())
        return x_.size() - 2;
    return i - 1;
}

double
CubicSpline::operator()(double t) const
{
    const std::size_t i = findSegment(t);
    const double h = x_[i + 1] - x_[i];
    const double a = (x_[i + 1] - t) / h;
    const double b = (t - x_[i]) / h;
    return a * y_[i] + b * y_[i + 1] +
           ((a * a * a - a) * m_[i] + (b * b * b - b) * m_[i + 1]) *
               (h * h) / 6.0;
}

double
CubicSpline::derivative(double t) const
{
    const std::size_t i = findSegment(t);
    const double h = x_[i + 1] - x_[i];
    const double a = (x_[i + 1] - t) / h;
    const double b = (t - x_[i]) / h;
    return (y_[i + 1] - y_[i]) / h +
           ((-3.0 * a * a + 1.0) * m_[i] + (3.0 * b * b - 1.0) * m_[i + 1]) *
               h / 6.0;
}

} // namespace oscar
