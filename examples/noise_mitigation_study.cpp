/**
 * @file
 * Use case 1 (paper Section 6): benchmarking and tuning a noise
 * mitigation method with OSCAR instead of exhaustive circuit runs.
 *
 * We compare Zero Noise Extrapolation configured with Richardson
 * ({1,2,3} scaling) and linear ({1,3} scaling) extrapolation on a
 * 16-qubit depth-1 QAOA MaxCut problem under depolarizing noise with
 * finite shots. OSCAR reconstructs each mitigated landscape from 10%
 * of the grid, and the roughness / flatness metrics computed on the
 * reconstructions match the conclusions from the (10x more expensive)
 * full landscapes: Richardson amplifies shot noise into salt-like
 * jaggedness; linear extrapolation stays smooth.
 */

#include <cstdio>

#include "src/backend/analytic_qaoa.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/landscape/metrics.h"
#include "src/mitigation/zne.h"

int
main()
{
    using namespace oscar;

    Rng rng(6);
    const Graph graph = random3RegularGraph(16, rng);
    const NoiseModel noise = NoiseModel::depolarizing(0.001, 0.02);
    const GridSpec grid = GridSpec::qaoaP1(40, 80);
    const std::size_t shots = 1024;

    std::printf("ZNE configuration study on 16-qubit QAOA MaxCut "
                "(noise 1q=0.001, 2q=0.02, %zu shots)\n\n", shots);

    struct Config
    {
        const char* name;
        std::shared_ptr<CostFunction> cost;
    };
    const std::vector<Config> configs = {
        {"unmitigated",
         std::make_shared<ShotNoiseCost>(
             std::make_shared<AnalyticQaoaCost>(graph, noise), shots,
             2.0, 11)},
        {"ZNE Richardson {1,2,3}",
         makeZneAnalyticCost(graph, noise, {1.0, 2.0, 3.0},
                             ZneExtrapolation::Richardson, shots, 2.0,
                             22)},
        {"ZNE linear {1,3}",
         makeZneAnalyticCost(graph, noise, {1.0, 3.0},
                             ZneExtrapolation::Linear, shots, 2.0, 33)},
    };

    AnalyticQaoaCost ideal(graph);
    const Landscape ideal_ls = Landscape::gridSearch(grid, ideal);

    std::printf("%-24s %12s %12s %12s %12s\n", "configuration",
                "D2(recon)", "VoG(recon)", "Var(recon)", "vs ideal");
    for (const Config& config : configs) {
        OscarOptions options;
        options.samplingFraction = 0.10;
        const auto result =
            Oscar::reconstruct(grid, *config.cost, options);
        const NdArray& recon = result.reconstructed.values();
        std::printf("%-24s %12.3f %12.4f %12.3f %12.4f\n", config.name,
                    secondDerivativeMetric(recon),
                    varianceOfGradients(recon), landscapeVariance(recon),
                    nrmse(ideal_ls.values(), recon));
    }

    std::printf("\nReading the table: linear ZNE lands closest to the "
                "ideal landscape with low roughness (D2); Richardson "
                "recovers contrast but its D2 blow-up warns that "
                "gradient-based optimizers will struggle. Each row cost "
                "10%% of a grid search.\n");
    return 0;
}
