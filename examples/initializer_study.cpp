/**
 * @file
 * Use case 3 (paper Section 8 / Table 6): warm-starting the VQA
 * optimizer from the minimizer of the interpolated reconstruction.
 *
 * For several random 16-qubit MaxCut instances we compare the number
 * of circuit executions ADAM needs to converge from (a) a random
 * initial point and (b) the OSCAR-suggested initial point, including
 * the reconstruction's own sample budget. The example also shows the
 * paper's caveat: for the query-frugal COBYLA the reconstruction
 * overhead does not pay off.
 */

#include <cstdio>

#include "src/backend/analytic_qaoa.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/optimize/adam.h"
#include "src/optimize/cobyla.h"

int
main()
{
    using namespace oscar;

    const GridSpec grid = GridSpec::qaoaP1();
    std::printf("Warm-start study: ADAM and COBYLA on 16-qubit "
                "depth-1 QAOA MaxCut (5 instances)\n\n");
    std::printf("%-10s %14s %14s %14s %14s\n", "instance",
                "ADAM random", "ADAM oscar", "COBYLA random",
                "COBYLA oscar");

    double adam_cold = 0, adam_warm = 0, cob_cold = 0, cob_warm = 0,
           recon_budget = 0;
    const int instances = 5;
    for (int inst = 0; inst < instances; ++inst) {
        Rng rng(400 + inst);
        const Graph graph = random3RegularGraph(16, rng);
        AnalyticQaoaCost cost(graph);

        OscarOptions options;
        options.samplingFraction = 0.05;
        options.seed = 40 + inst;
        const auto recon = Oscar::reconstruct(grid, cost, options);
        recon_budget += static_cast<double>(recon.queriesUsed);

        Adam suggester;
        const auto warm_start = suggestInitialPoint(
            recon.reconstructed, suggester, {0.05, 0.05});
        Rng init_rng(90 + inst);
        const std::vector<double> cold_start{
            init_rng.uniform(grid.axis(0).lo, grid.axis(0).hi),
            init_rng.uniform(grid.axis(1).lo, grid.axis(1).hi)};

        AdamOptions adam_opts;
        adam_opts.learningRate = 0.01;
        adam_opts.gradientTolerance = 0.02;
        adam_opts.maxIterations = 2000;
        Adam adam(adam_opts);
        Cobyla cobyla;

        cost.resetQueries();
        const auto a_cold = adam.minimize(cost, cold_start);
        cost.resetQueries();
        const auto a_warm = adam.minimize(cost, warm_start);
        cost.resetQueries();
        const auto c_cold = cobyla.minimize(cost, cold_start);
        cost.resetQueries();
        const auto c_warm = cobyla.minimize(cost, warm_start);

        std::printf("%-10d %14zu %14zu %14zu %14zu\n", inst,
                    a_cold.numQueries, a_warm.numQueries,
                    c_cold.numQueries, c_warm.numQueries);
        adam_cold += static_cast<double>(a_cold.numQueries);
        adam_warm += static_cast<double>(a_warm.numQueries);
        cob_cold += static_cast<double>(c_cold.numQueries);
        cob_warm += static_cast<double>(c_warm.numQueries);
    }

    adam_cold /= instances;
    adam_warm /= instances;
    cob_cold /= instances;
    cob_warm /= instances;
    recon_budget /= instances;

    std::printf("\nmean queries:\n");
    std::printf("  ADAM   random %.0f | oscar %.0f | oscar+recon %.0f "
                "-> OSCAR %s\n",
                adam_cold, adam_warm, adam_warm + recon_budget,
                adam_warm + recon_budget < adam_cold ? "pays off"
                                                     : "does not pay");
    std::printf("  COBYLA random %.0f | oscar %.0f | oscar+recon %.0f "
                "-> OSCAR %s\n",
                cob_cold, cob_warm, cob_warm + recon_budget,
                cob_warm + recon_budget < cob_cold ? "pays off"
                                                   : "does not pay");
    std::printf("\n(The reconstruction samples are embarrassingly "
                "parallel, so the wall-clock verdict for ADAM is even "
                "more favorable than the query count suggests.)\n");
    return 0;
}
