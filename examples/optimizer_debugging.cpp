/**
 * @file
 * Use case 2 (paper Section 7 / Figs. 2 and 11): debugging an
 * optimizer configuration against the reconstructed landscape instead
 * of live circuit runs.
 *
 * The example reproduces the paper's motivating scenario: an ADAM
 * configuration that looks stuck when all you see is the cost-vs-
 * iteration curve. The bird's-eye view -- the optimizer path overlaid
 * on the reconstructed landscape (rendered here as ASCII art) --
 * immediately shows why: a too-small learning rate creeps along a
 * plateau. Re-running with a sane learning rate on the SAME
 * reconstruction (zero extra circuit executions) fixes it.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "src/backend/analytic_qaoa.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/interp/bicubic.h"
#include "src/optimize/adam.h"

namespace {

using namespace oscar;

/** Render the landscape as ASCII with the optimizer path overlaid. */
void
renderPath(const Landscape& landscape, const OptimizerResult& run)
{
    const std::size_t rows = 18, cols = 48;
    const GridSpec& grid = landscape.grid();
    const double lo0 = grid.axis(0).lo, hi0 = grid.axis(0).hi;
    const double lo1 = grid.axis(1).lo, hi1 = grid.axis(1).hi;
    const double min = landscape.values().min();
    const double max = landscape.values().max();
    static const char shades[] = " .:-=+*#%@";

    std::vector<std::string> canvas(rows, std::string(cols, ' '));
    InterpolatedLandscapeCost interp(landscape);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const double b = lo0 + (hi0 - lo0) * r / (rows - 1);
            const double g = lo1 + (hi1 - lo1) * c / (cols - 1);
            const double v = interp.evaluate({b, g});
            const int shade = static_cast<int>(
                9.99 * (v - min) / (max - min + 1e-12));
            canvas[r][c] = shades[std::min(9, std::max(0, shade))];
        }
    }
    for (const auto& point : run.path) {
        const int r = static_cast<int>(
            (point[0] - lo0) / (hi0 - lo0) * (rows - 1) + 0.5);
        const int c = static_cast<int>(
            (point[1] - lo1) / (hi1 - lo1) * (cols - 1) + 0.5);
        if (r >= 0 && r < static_cast<int>(rows) && c >= 0 &&
            c < static_cast<int>(cols))
            canvas[r][c] = 'o';
    }
    // Mark start and end.
    auto mark = [&](const std::vector<double>& p, char ch) {
        const int r = static_cast<int>(
            (p[0] - lo0) / (hi0 - lo0) * (rows - 1) + 0.5);
        const int c = static_cast<int>(
            (p[1] - lo1) / (hi1 - lo1) * (cols - 1) + 0.5);
        if (r >= 0 && r < static_cast<int>(rows) && c >= 0 &&
            c < static_cast<int>(cols))
            canvas[r][c] = ch;
    };
    mark(run.path.front(), 'S');
    mark(run.path.back(), 'E');

    for (const auto& line : canvas)
        std::printf("  |%s|\n", line.c_str());
}

} // namespace

int
main()
{
    using namespace oscar;

    Rng rng(2);
    const Graph graph = random3RegularGraph(16, rng);
    AnalyticQaoaCost circuit_cost(graph);
    const GridSpec grid = GridSpec::qaoaP1();

    // One reconstruction, reused for every optimizer trial below.
    OscarOptions options;
    options.samplingFraction = 0.08;
    const auto recon = Oscar::reconstruct(grid, circuit_cost, options);
    std::printf("reconstruction used %zu circuit runs (%.0fx fewer "
                "than the %zu-point grid search)\n\n",
                recon.queriesUsed, recon.querySpeedup,
                grid.numPoints());
    InterpolatedLandscapeCost interp(recon.reconstructed);

    const std::vector<double> start{0.05, 1.2};

    // Misconfigured optimizer: learning rate 100x too small.
    AdamOptions bad;
    bad.learningRate = 0.001;
    bad.maxIterations = 60;
    Adam bad_adam(bad);
    const auto bad_run = bad_adam.minimize(interp, start);
    std::printf("ADAM lr=0.001: final cost %.4f after %zu iterations "
                "(stuck -- path barely moves):\n", bad_run.bestValue,
                bad_run.iterations);
    renderPath(recon.reconstructed, bad_run);

    // Fixed configuration, same reconstruction, zero circuit runs.
    AdamOptions good;
    good.learningRate = 0.1;
    good.maxIterations = 60;
    Adam good_adam(good);
    const auto good_run = good_adam.minimize(interp, start);
    std::printf("\nADAM lr=0.1: final cost %.4f (converged, E marks "
                "the end point):\n", good_run.bestValue);
    renderPath(recon.reconstructed, good_run);

    std::printf("\ngrid-search optimum for reference: %.4f\n",
                recon.reconstructed.values().min());
    std::printf("Both debugging runs consumed 0 additional circuit "
                "executions.\n");
    return 0;
}
