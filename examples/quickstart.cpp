/**
 * @file
 * Quickstart: reconstruct a depth-1 QAOA MaxCut landscape from a 6%
 * random sample and compare it against the full grid search.
 */

#include <cstdio>

#include "src/backend/analytic_qaoa.h"
#include "src/core/oscar.h"
#include "src/graph/generators.h"
#include "src/landscape/metrics.h"

int
main()
{
    using namespace oscar;

    // A 16-vertex random 3-regular MaxCut instance.
    Rng rng(1);
    const Graph graph = random3RegularGraph(16, rng);
    AnalyticQaoaCost cost(graph);

    // Every circuit execution goes through the batched engine; one
    // pool for the whole run, sized to the machine.
    ExecutionEngine engine(EngineOptions{/*numThreads=*/0,
                                         /*minPointsPerThread=*/4});

    // Ground truth: full 50 x 100 grid search (5,000 circuit runs).
    const GridSpec grid = GridSpec::qaoaP1();
    const Landscape truth = Landscape::gridSearch(grid, cost, &engine);

    // OSCAR: 6% of the grid, compressed-sensing reconstruction. The
    // result is bit-identical for any thread count.
    OscarOptions options;
    options.samplingFraction = 0.06;
    const OscarResult result =
        Oscar::reconstruct(grid, cost, options, &engine);

    std::printf("grid points          : %zu\n", grid.numPoints());
    std::printf("samples used         : %zu\n", result.queriesUsed);
    std::printf("query speedup        : %.1fx\n", result.querySpeedup);
    std::printf("reconstruction NRMSE : %.4f\n",
                nrmse(truth.values(), result.reconstructed.values()));
    std::printf("true minimum         : %.4f at (beta=%.3f, gamma=%.3f)\n",
                truth.value(truth.argmin()),
                truth.minimizerParams()[0], truth.minimizerParams()[1]);
    std::printf("recon minimum        : %.4f at (beta=%.3f, gamma=%.3f)\n",
                result.reconstructed.value(result.reconstructed.argmin()),
                result.reconstructed.minimizerParams()[0],
                result.reconstructed.minimizerParams()[1]);
    return 0;
}
